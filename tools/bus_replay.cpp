// bus_replay: record, replay, and bisect flight-recorder envelope logs
// (src/replay, DESIGN.md §6i). Every subcommand emits one
// aequus-bus-replay-v1 JSON document on stdout (or --json FILE).
//
// Usage:
//   bus_replay record <spec> --out LOG [--cap N] [--format binary|jsonl]
//                     [--jobs-scale F] [--max-jobs N] [--time-scale F]
//                     [--threads N] [--reps N]
//       Compile and run a scenario spec (path or catalog name) with the
//       flight recorder forced on; the envelope log lands at LOG with its
//       replay fingerprint hash in the footer.
//   bus_replay replay <log> [--afap] [--prefix N]
//       Replay the log through a fresh USS/engine stack and check the
//       recomputed fingerprint hash against the footer (record->replay
//       bit-identity). --afap collapses the clock (throughput mode, not
//       comparable); --prefix replays only the first N envelopes.
//   bus_replay bisect <logA> <logB> [--expect-index N]
//       Binary-search the first envelope index whose inclusion makes the
//       two logs' replay fingerprints diverge; prints the offending
//       envelope with its span chain. --expect-index asserts the found
//       index (exit 1 on mismatch) — the ctest replay tier uses it.
//   bus_replay stat <log>
//       Envelope/verdict/site/user census of a log, no replay.
//   bus_replay perturb <in> <out> --index N [--scale F]
//       Copy a log, scaling the usage amounts of envelope N by F
//       (default 2.0) — a divergence-injection drill for bisect. The
//       footer hash is kept, so `replay` flags the perturbed log as
//       non-identical by construction.
//
// Exit status: 0 ok / check passed, 1 a check failed (fingerprint
// mismatch, unexpected bisect index), 2 usage or log errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "replay/bisect.hpp"
#include "replay/log.hpp"
#include "replay/replayer.hpp"
#include "scenario/catalog.hpp"
#include "scenario/runner.hpp"

using namespace aequus;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: bus_replay record <spec> --out LOG [--cap N] [--format binary|jsonl]\n"
      "                  [--jobs-scale F] [--max-jobs N] [--time-scale F] [--threads N]\n"
      "                  [--reps N] [--json FILE]\n"
      "       bus_replay replay <log> [--afap] [--prefix N] [--json FILE]\n"
      "       bus_replay bisect <logA> <logB> [--expect-index N] [--json FILE]\n"
      "       bus_replay stat <log> [--json FILE]\n"
      "       bus_replay perturb <in> <out> --index N [--scale F] [--json FILE]\n");
  return 2;
}

/// Wrap a subcommand result in the schema envelope and emit it.
int emit(const std::string& command, json::Object body, const std::string& json_path) {
  json::Object document;
  document["schema"] = "aequus-bus-replay-v1";
  document["command"] = command;
  for (auto& [key, value] : body) document[key] = std::move(value);
  const json::Value out = json::Value(std::move(document));
  if (json_path.empty() || json_path == "-") {
    std::printf("%s\n", out.pretty().c_str());
  } else {
    std::ofstream file(json_path);
    if (!file) {
      std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 2;
    }
    file << out.pretty() << "\n";
  }
  return 0;
}

int run_record(std::vector<std::string> positional, std::map<std::string, std::string> flags,
               const std::string& json_path) {
  if (positional.size() != 1 || flags["out"].empty()) return usage();
  scenario::CompileOptions compile;
  if (flags.count("jobs-scale")) compile.jobs_scale = std::strtod(flags["jobs-scale"].c_str(), nullptr);
  if (flags.count("max-jobs")) compile.max_jobs = std::strtoull(flags["max-jobs"].c_str(), nullptr, 10);
  if (flags.count("time-scale")) compile.time_scale = std::strtod(flags["time-scale"].c_str(), nullptr);
  if (flags.count("threads")) compile.threads = static_cast<int>(std::strtol(flags["threads"].c_str(), nullptr, 10));
  if (flags.count("reps")) compile.replications = std::strtoull(flags["reps"].c_str(), nullptr, 10);

  std::string spec_path = positional[0];
  if (!std::ifstream(spec_path).good()) {
    const std::string named = scenario::catalog_dir() + "/" + spec_path + ".json";
    if (std::ifstream(named).good()) spec_path = named;
  }
  const scenario::ScenarioSpec spec = scenario::load_spec_file(spec_path);
  scenario::CompiledScenario compiled = scenario::compile(spec, compile);
  compiled.record.enabled = true;
  compiled.record.path = flags["out"];
  if (flags.count("cap")) compiled.record.cap = std::strtoull(flags["cap"].c_str(), nullptr, 10);
  if (flags.count("format")) compiled.record.format = flags["format"];
  if (compiled.record.format != "binary" && compiled.record.format != "jsonl") return usage();

  scenario::RunOptions run;
  run.determinism = false;  // recording wants one run, not the dual-threaded gate
  const scenario::ScenarioReport report = scenario::run_scenario(compiled, run);

  json::Object body;
  body["scenario"] = report.name;
  body["path"] = report.record.path;
  body["envelopes"] = report.record.envelopes;
  body["recorder_dropped"] = report.record.recorder_dropped;
  body["fingerprint_hash"] = report.record.fingerprint_hash;
  body["gates_passed"] = report.passed;
  const int status = emit("record", std::move(body), json_path);
  return status != 0 ? status : (report.passed ? 0 : 1);
}

int run_replay(std::vector<std::string> positional, std::map<std::string, std::string> flags,
               const std::string& json_path) {
  if (positional.size() != 1) return usage();
  const replay::EnvelopeLog log = replay::load_log(positional[0]);
  replay::ReplayOptions options;
  options.preserve_spacing = flags.count("afap") == 0;
  if (flags.count("prefix")) options.prefix = std::strtoull(flags["prefix"].c_str(), nullptr, 10);
  const replay::VerifyResult verdict = replay::BusReplayer(options).verify(log);

  json::Object body;
  body["path"] = positional[0];
  body["envelopes"] = verdict.result.envelopes;
  body["applied"] = verdict.result.applied;
  body["dropped"] = verdict.result.dropped;
  body["recorder_dropped"] = log.recorder_dropped;
  body["fingerprint_hash"] = verdict.result.fingerprint_hash;
  body["expected_hash"] = verdict.expected_hash;
  body["comparable"] = verdict.comparable;
  body["bit_identical"] = verdict.bit_identical;
  body["wall_seconds"] = verdict.result.wall_seconds;
  const int status = emit("replay", std::move(body), json_path);
  if (status != 0) return status;
  return (verdict.comparable && !verdict.bit_identical) ? 1 : 0;
}

int run_bisect(std::vector<std::string> positional, std::map<std::string, std::string> flags,
               const std::string& json_path) {
  if (positional.size() != 2) return usage();
  const replay::EnvelopeLog a = replay::load_log(positional[0]);
  const replay::EnvelopeLog b = replay::load_log(positional[1]);
  const replay::BisectReport report = replay::DivergenceBisector().bisect(a, b);

  json::Object body;
  body["log_a"] = positional[0];
  body["log_b"] = positional[1];
  json::Value report_json = report.to_json();  // named: range-for over a
  for (auto& [key, value] : report_json.as_object()) {  // temporary dangles
    body[key] = std::move(value);
  }
  const int status = emit("bisect", std::move(body), json_path);
  if (status != 0) return status;
  if (flags.count("expect-index")) {
    const std::size_t expected = std::strtoull(flags["expect-index"].c_str(), nullptr, 10);
    if (!report.diverged || report.first_divergence != expected) {
      std::fprintf(stderr, "bisect: expected divergence at %zu, got %s index %zu\n", expected,
                   report.diverged ? "divergence at" : "no divergence;", report.first_divergence);
      return 1;
    }
  }
  return 0;
}

int run_stat(std::vector<std::string> positional, const std::string& json_path) {
  if (positional.size() != 1) return usage();
  const replay::EnvelopeLog log = replay::load_log(positional[0]);

  std::map<std::string, std::uint64_t> verdicts;
  std::uint64_t batches = 0;
  std::uint64_t batch_records = 0;
  std::uint64_t duplicated = 0;
  double first_sent = 0.0;
  double last_delivered = 0.0;
  for (const replay::Envelope& envelope : log.envelopes) {
    ++verdicts[net::to_string(envelope.verdict)];
    if (envelope.batch) {
      ++batches;
      batch_records += envelope.record_count;
    }
    if (envelope.duplicated) ++duplicated;
    if (first_sent == 0.0 || envelope.sent_at < first_sent) first_sent = envelope.sent_at;
    if (envelope.delivered()) last_delivered = std::max(last_delivered, envelope.delivered_at);
  }

  json::Object body;
  body["path"] = positional[0];
  body["envelopes"] = log.envelopes.size();
  body["recorder_dropped"] = log.recorder_dropped;
  body["fingerprint_hash"] = log.fingerprint_hash;
  body["meta"] = log.meta;
  json::Object verdict_counts;
  for (const auto& [name, count] : verdicts) verdict_counts[name] = count;
  body["verdicts"] = json::Value(std::move(verdict_counts));
  body["batches"] = batches;
  body["batch_records"] = batch_records;
  body["duplicated"] = duplicated;
  body["first_sent_at"] = first_sent;
  body["last_delivered_at"] = last_delivered;
  json::Array sites;
  for (const std::string& site : replay::BusReplayer::sites_of(log)) sites.push_back(json::Value(site));
  body["sites"] = json::Value(std::move(sites));
  json::Array users;
  for (const std::string& user : replay::BusReplayer::users_of(log)) users.push_back(json::Value(user));
  body["users"] = json::Value(std::move(users));
  return emit("stat", std::move(body), json_path);
}

int run_perturb(std::vector<std::string> positional, std::map<std::string, std::string> flags,
                const std::string& json_path) {
  if (positional.size() != 2 || flags.count("index") == 0) return usage();
  const std::size_t index = std::strtoull(flags["index"].c_str(), nullptr, 10);
  const double scale = flags.count("scale") ? std::strtod(flags["scale"].c_str(), nullptr) : 2.0;

  replay::EnvelopeLog log = replay::load_log(positional[0]);
  if (index >= log.envelopes.size()) {
    std::fprintf(stderr, "perturb: index %zu out of range (log has %zu envelopes)\n", index,
                 log.envelopes.size());
    return 2;
  }
  replay::Envelope& envelope = log.envelopes[index];
  json::Value payload = json::parse(envelope.payload);
  json::Object& object = payload.as_object();
  const std::string op = payload.get_string("op", "");
  if (op == "report") {
    object["usage"] = payload.get_number("usage", 0.0) * scale;
  } else if (op == "report_batch") {
    for (json::Value& delta : object["deltas"].as_array()) {
      json::Array& fields = delta.as_array();
      if (fields.size() >= 3) fields[2] = fields[2].as_number() * scale;
    }
  } else {
    std::fprintf(stderr, "perturb: envelope %zu is not a usage report (op '%s')\n", index,
                 op.c_str());
    return 2;
  }
  envelope.payload = payload.dump();
  // Keep the original footer hash: a verify of the perturbed log now
  // fails by construction (that is the drill).
  const bool jsonl = !positional[1].ends_with(".aeqlog") && positional[1].ends_with(".jsonl");
  replay::save_log(positional[1], log,
                   jsonl ? replay::LogFormat::kJsonl : replay::LogFormat::kBinary);

  json::Object body;
  body["path"] = positional[1];
  body["index"] = index;
  body["scale"] = scale;
  body["op"] = op;
  return emit("perturb", std::move(body), json_path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  // Flags are --name VALUE (or bare --afap); everything else is positional.
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;
  std::string json_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string name = arg.substr(2);
      if (name == "afap") {
        flags[name] = "1";
      } else if (i + 1 < argc) {
        const std::string value = argv[++i];
        if (name == "json") {
          json_path = value;
        } else {
          flags[name] = value;
        }
      } else {
        return usage();
      }
    } else {
      positional.push_back(arg);
    }
  }

  try {
    if (command == "record") return run_record(std::move(positional), std::move(flags), json_path);
    if (command == "replay") return run_replay(std::move(positional), std::move(flags), json_path);
    if (command == "bisect") return run_bisect(std::move(positional), std::move(flags), json_path);
    if (command == "stat") return run_stat(std::move(positional), json_path);
    if (command == "perturb") return run_perturb(std::move(positional), std::move(flags), json_path);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bus_replay %s: %s\n", command.c_str(), error.what());
    return 2;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return usage();
}
