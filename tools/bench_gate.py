#!/usr/bin/env python3
"""Bench regression gate.

Compares a machine-readable bench report (the BENCH_<name>.json files the
sweep-capable benches emit) against a checked-in baseline, metric by
metric, with a relative tolerance. Two modes:

  # run a bench, then compare its emitted report
  bench_gate.py --bench ./build/bench/bench_fig10_baseline \
      --bench-args "800 --reps 2 --threads 2 --no-serial-reference" \
      --out-dir ./build/bench-gate \
      --baseline tools/bench_baselines/BENCH_fig10_baseline.json

  # compare an already-emitted report
  bench_gate.py --compare BENCH_fig10_baseline.json \
      --baseline tools/bench_baselines/BENCH_fig10_baseline.json

A third mode schema-checks the JSON reports tools/scenario_run emits
(aequus-scenario-report-v1) without gating any values:

  bench_gate.py --validate-scenario-report ./build/scenario-report.json

A fourth mode schema-checks the metrics dumps benches and scenario_run
emit via --metrics FILE (aequus-metrics-dump-v1):

  bench_gate.py --validate-metrics-dump ./build/metrics.json

The gated quantity is each variant's aggregate *mean* per metric; the
sweep's metrics are deterministic for a fixed (jobs, replications, seed)
triple and independent of the thread count, so the tolerance (default
15 %) only needs to absorb cross-platform floating-point drift. Run
configuration (jobs, replications, root seed, variant names) must match
the baseline exactly — comparing different configurations is refused, not
fudged. Wall-clock fields are reported but never gated: they depend on
the machine, not the code's correctness.

A baseline metric entry may carry "floor" and/or "ceiling" instead of a
mean, turning the gate one-sided: the emitted mean must stay >= floor
and <= ceiling, with no relative band. This is how performance *ratios*
(the incremental engine's speedup, the batch-wrapper overhead) are
gated — only one direction is a regression, and the absolute
microseconds they are derived from are machine-specific.

Exit codes: 0 pass, 1 regression or mismatch, 77 skipped (missing
baseline/report — wired to ctest's SKIP_RETURN_CODE), 2 usage error.

Refresh a baseline intentionally with:
  ./build/bench/bench_fig10_baseline 800 --reps 2 --no-serial-reference \
      --json-dir tools/bench_baselines
"""

import argparse
import json
import shlex
import subprocess
import sys
from pathlib import Path

SKIP = 77

# Fields compared exactly (run configuration, not measurements).
CONFIG_KEYS = ("bench", "jobs", "replications", "root_seed")


def load(path: Path, role: str):
    if not path.is_file():
        print(f"SKIP: {role} {path} not found")
        sys.exit(SKIP)
    with path.open() as fh:
        return json.load(fh)


def histogram_layouts(report: dict) -> dict:
    """variant.histogram -> its bucket layout (spec + explicit bounds)."""
    layouts = {}
    for variant, payload in report.get("variants", {}).items():
        for key, hist in payload.get("obs", {}).get("histograms", {}).items():
            layouts[f"{variant}.{key}"] = {
                "spec": hist.get("spec"),
                "bounds": hist.get("bounds"),
            }
    return layouts


def compare(emitted: dict, baseline: dict, tolerance: float,
            abs_epsilon: float = 1e-6) -> list[str]:
    """Returns a list of human-readable failures (empty = gate passes)."""
    failures = []
    for key in CONFIG_KEYS:
        if emitted.get(key) != baseline.get(key):
            failures.append(
                f"config mismatch: {key} = {emitted.get(key)!r}, "
                f"baseline has {baseline.get(key)!r}"
            )
    if failures:
        return failures  # different run shape; metric diffs would be noise

    base_variants = baseline.get("variants", {})
    new_variants = emitted.get("variants", {})
    if set(base_variants) != set(new_variants):
        return [
            f"variant set changed: {sorted(new_variants)} vs baseline {sorted(base_variants)}"
        ]

    for variant, payload in sorted(base_variants.items()):
        for metric, summary in sorted(payload.get("metrics", {}).items()):
            expected = summary.get("mean")
            actual = new_variants[variant].get("metrics", {}).get(metric, {}).get("mean")
            if actual is None:
                failures.append(f"{variant}.{metric}: missing from emitted report")
                continue
            # One-sided contracts: a baseline entry may carry "floor"
            # and/or "ceiling" instead of a mean. These gate performance
            # *ratios* (speedups, overheads) where only one direction is a
            # regression and the machine-to-machine spread makes a
            # two-sided band meaningless.
            floor = summary.get("floor")
            ceiling = summary.get("ceiling")
            if floor is not None or ceiling is not None:
                if floor is not None and actual < floor:
                    failures.append(
                        f"{variant}.{metric}: {actual:.6g} below floor {floor:.6g}"
                    )
                if ceiling is not None and actual > ceiling:
                    failures.append(
                        f"{variant}.{metric}: {actual:.6g} above ceiling {ceiling:.6g}"
                    )
                continue
            # The allowed band is relative with an absolute floor: a purely
            # relative band collapses for near-zero baselines (a mean of
            # 1e-8 would only admit +-1.5e-9 of float noise), so deviations
            # within abs_epsilon always pass.
            band = max(tolerance * abs(expected), abs_epsilon)
            if abs(actual - expected) > band:
                failures.append(
                    f"{variant}.{metric}: {actual:.6g} deviates from baseline "
                    f"{expected:.6g} by more than {tolerance:.0%} (band {band:.6g})"
                )

    # Histogram bucket layouts are configuration, not measurements: the
    # bounds come from the HistogramSpec exported in each variant's "obs"
    # snapshot, and a silent layout change would make historical bucket
    # counts incomparable. Exact equality, no tolerance. Baselines that
    # predate the obs section simply contribute no layouts here.
    base_layouts = histogram_layouts(baseline)
    new_layouts = histogram_layouts(emitted)
    for key in sorted(base_layouts):
        if key not in new_layouts:
            failures.append(f"{key}: histogram missing from emitted report")
            continue
        if base_layouts[key]["spec"] != new_layouts[key]["spec"]:
            failures.append(
                f"{key}: histogram spec changed: {new_layouts[key]['spec']} "
                f"vs baseline {base_layouts[key]['spec']}"
            )
        elif base_layouts[key]["bounds"] != new_layouts[key]["bounds"]:
            failures.append(f"{key}: histogram bucket bounds changed")
    return failures


SCENARIO_SCHEMA = "aequus-scenario-report-v1"
FINGERPRINT_HEX = set("0123456789abcdef")

# Per-metric summary fields tools/scenario_run emits for every variant.
SUMMARY_FIELDS = ("count", "mean", "stddev", "ci95_half", "min", "max")

# Numeric columns of a backend-comparison row (the head-to-head table
# scenarios with a variants list emit; see scenarios/backend_faceoff.json).
COMPARISON_COLUMNS = ("fairness_distance", "starved_jobs", "throughput_jobs_per_h",
                      "max_share_error", "delta_latency_ms")


def _validate_comparison(where: str, entry: dict, errors: list[str]) -> None:
    """Check an optional per-scenario 'comparison' array (backend face-off).

    Each row names a variant (which must exist in the scenario's variants
    object) and its resolved fairness backend, and carries one number per
    face-off column. Scenarios without the key validate unchanged.
    """
    comparison = entry.get("comparison")
    if comparison is None:
        return
    if not isinstance(comparison, list) or not comparison:
        errors.append(f"{where}: 'comparison' must be a non-empty array")
        return
    variants = entry.get("variants")
    known_variants = set(variants) if isinstance(variants, dict) else None
    for j, row in enumerate(comparison):
        if not isinstance(row, dict):
            errors.append(f"{where}: comparison[{j}] must be an object")
            continue
        for field in ("variant", "backend"):
            if not isinstance(row.get(field), str) or not row[field]:
                errors.append(
                    f"{where}: comparison[{j}] needs a non-empty string {field!r}")
        bad = [c for c in COMPARISON_COLUMNS
               if not isinstance(row.get(c), (int, float)) or isinstance(row.get(c), bool)]
        if bad:
            errors.append(
                f"{where}: comparison[{j}] missing numeric {'/'.join(bad)}")
        if (known_variants is not None and isinstance(row.get("variant"), str)
                and row["variant"] not in known_variants):
            errors.append(
                f"{where}: comparison[{j}] names unknown variant {row['variant']!r}")


def validate_scenario_report(document) -> list[str]:
    """Schema check for the reports tools/scenario_run emits.

    Purely structural: gate *outcomes* are the scenario runner's job (and
    its exit code); this guards the report contract downstream tooling
    parses — schema tag, per-scenario gate entries, fingerprint shape,
    and metric summaries.
    """
    errors = []
    if not isinstance(document, dict):
        return ["report root must be an object"]
    if document.get("schema") != SCENARIO_SCHEMA:
        errors.append(f"schema must be {SCENARIO_SCHEMA!r}, got {document.get('schema')!r}")
    if not isinstance(document.get("passed"), bool):
        errors.append("top-level 'passed' must be a bool")
    if not isinstance(document.get("wall_seconds"), (int, float)):
        errors.append("top-level 'wall_seconds' must be a number")
    scenarios = document.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        errors.append("'scenarios' must be a non-empty array")
        return errors

    for i, entry in enumerate(scenarios):
        where = f"scenarios[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: must be an object")
            continue
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: 'name' must be a non-empty string")
        else:
            where = f"scenarios[{i}] ({name})"
        for field in ("jobs", "tasks", "threads"):
            value = entry.get(field)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                errors.append(f"{where}: '{field}' must be a positive integer")
        if not isinstance(entry.get("passed"), bool):
            errors.append(f"{where}: 'passed' must be a bool")

        gates = entry.get("gates")
        if not isinstance(gates, list) or not gates:
            errors.append(f"{where}: 'gates' must be a non-empty array")
        else:
            for j, gate in enumerate(gates):
                if (not isinstance(gate, dict)
                        or not isinstance(gate.get("gate"), str)
                        or not isinstance(gate.get("passed"), bool)
                        or not isinstance(gate.get("detail"), str)):
                    errors.append(f"{where}: gates[{j}] needs gate/passed/detail")
            if isinstance(entry.get("passed"), bool):
                all_gates = all(g.get("passed") is True for g in gates if isinstance(g, dict))
                if entry["passed"] != all_gates:
                    errors.append(f"{where}: 'passed' disagrees with its gate results")

        fingerprints = entry.get("fingerprints")
        if not isinstance(fingerprints, list):
            errors.append(f"{where}: 'fingerprints' must be an array")
        else:
            if isinstance(entry.get("tasks"), int) and len(fingerprints) != entry["tasks"]:
                errors.append(
                    f"{where}: {len(fingerprints)} fingerprint(s) for {entry['tasks']} task(s)")
            for fp in fingerprints:
                if (not isinstance(fp, str) or len(fp) != 16
                        or not set(fp) <= FINGERPRINT_HEX):
                    errors.append(f"{where}: fingerprint {fp!r} is not 16 hex chars")
                    break

        variants = entry.get("variants")
        if not isinstance(variants, dict) or not variants:
            errors.append(f"{where}: 'variants' must be a non-empty object")
        else:
            for vname, payload in sorted(variants.items()):
                metrics = payload.get("metrics") if isinstance(payload, dict) else None
                if not isinstance(metrics, dict):
                    errors.append(f"{where}: variants[{vname!r}] needs a 'metrics' object")
                    continue
                for metric, summary in sorted(metrics.items()):
                    missing = [f for f in SUMMARY_FIELDS
                               if not isinstance(summary, dict)
                               or not isinstance(summary.get(f), (int, float))]
                    if missing:
                        errors.append(
                            f"{where}: variants[{vname!r}].metrics[{metric!r}] "
                            f"missing numeric {'/'.join(missing)}")
                        break

        _validate_comparison(where, entry, errors)
    return errors


METRICS_SCHEMA = "aequus-metrics-dump-v1"


def _is_count(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and value >= 0 and float(value).is_integer()


def validate_metrics_dump(document) -> list[str]:
    """Schema check for aequus-metrics-dump-v1 documents.

    These are the registry snapshot exports behind --metrics FILE (benches
    and tools/scenario_run alike). Counters must be non-negative integers,
    gauges numeric, and histogram bucket counts must be consistent: one
    overflow bucket beyond the bounds, and the scalar count equal to the
    bucket sum.
    """
    errors = []
    if not isinstance(document, dict):
        return ["dump root must be an object"]
    if document.get("schema") != METRICS_SCHEMA:
        errors.append(f"schema must be {METRICS_SCHEMA!r}, got {document.get('schema')!r}")
    if not isinstance(document.get("source"), str) or not document["source"]:
        errors.append("'source' must be a non-empty string")
    snapshots = document.get("snapshots")
    if not isinstance(snapshots, dict) or not snapshots:
        errors.append("'snapshots' must be a non-empty object")
        return errors

    for name, snapshot in sorted(snapshots.items()):
        where = f"snapshots[{name!r}]"
        if not isinstance(snapshot, dict):
            errors.append(f"{where}: must be an object")
            continue
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(snapshot.get(section), dict):
                errors.append(f"{where}: '{section}' must be an object")
        if any(not isinstance(snapshot.get(s), dict)
               for s in ("counters", "gauges", "histograms")):
            continue
        for key, value in sorted(snapshot["counters"].items()):
            if not _is_count(value):
                errors.append(f"{where}: counter {key!r} must be a non-negative "
                              f"integer, got {value!r}")
        for key, gauge in sorted(snapshot["gauges"].items()):
            fields = ("last", "sum", "samples", "mean")
            if (not isinstance(gauge, dict)
                    or any(not isinstance(gauge.get(f), (int, float))
                           or isinstance(gauge.get(f), bool) for f in fields)):
                errors.append(f"{where}: gauge {key!r} needs numeric "
                              f"{'/'.join(fields)}")
        for key, hist in sorted(snapshot["histograms"].items()):
            if (not isinstance(hist, dict)
                    or not isinstance(hist.get("bounds"), list)
                    or not isinstance(hist.get("counts"), list)
                    or not _is_count(hist.get("count"))):
                errors.append(f"{where}: histogram {key!r} needs bounds/counts arrays "
                              "and an integer count")
                continue
            if len(hist["counts"]) != len(hist["bounds"]) + 1:
                errors.append(
                    f"{where}: histogram {key!r} has {len(hist['counts'])} bucket "
                    f"count(s) for {len(hist['bounds'])} bound(s) "
                    "(expected bounds + overflow)")
            if not all(_is_count(c) for c in hist["counts"]):
                errors.append(f"{where}: histogram {key!r} bucket counts must be "
                              "non-negative integers")
            elif hist["count"] != sum(hist["counts"]):
                errors.append(
                    f"{where}: histogram {key!r} count {hist['count']} != bucket "
                    f"sum {sum(hist['counts'])}")
    return errors


def self_test() -> int:
    """Unit cases for compare(), runnable without any bench artifacts."""

    def report(metrics: dict, histograms: dict | None = None, **config):
        # A metric value may be a plain mean, or a dict of summary fields
        # (for baselines carrying one-sided "floor"/"ceiling" contracts).
        base = {"bench": "t", "jobs": 100, "replications": 2, "root_seed": "0x7de"}
        base.update(config)
        base["variants"] = {
            "v": {"metrics": {name: (dict(spec) if isinstance(spec, dict) else {"mean": spec})
                              for name, spec in metrics.items()}}
        }
        if histograms is not None:
            base["variants"]["v"]["obs"] = {"histograms": histograms}
        return base

    hist = {"spec": {"first_bound": 0.1, "growth": 2, "buckets": 4},
            "bounds": [0.1, 0.2, 0.4, 0.8], "counts": [1, 2, 3, 4]}
    rebucketed = dict(hist, spec={"first_bound": 0.5, "growth": 2, "buckets": 4},
                      bounds=[0.5, 1.0, 2.0, 4.0])

    cases = [
        ("zero baseline stays zero",
         report({"drops": 0.0}), report({"drops": 0.0}), 0),
        ("near-zero baseline absorbs float noise via the absolute floor",
         report({"err": 1e-8}), report({"err": 2e-8}), 0),
        ("relative band passes a small drift",
         report({"makespan": 100.0}), report({"makespan": 110.0}), 0),
        ("relative band rejects a real regression",
         report({"makespan": 100.0}), report({"makespan": 130.0}), 1),
        ("absolute floor does not mask a regression on a large metric",
         report({"makespan": 100.0}), report({"makespan": 84.0}), 1),
        ("missing metric is a failure",
         report({"makespan": 100.0, "gone": 1.0}), report({"makespan": 100.0}), 1),
        ("config mismatch is refused before metric diffs",
         report({"makespan": 100.0}), report({"makespan": 100.0}, jobs=200), 1),
        ("identical histogram layouts pass, counts ungated",
         report({}, histograms={"wait_s": hist}),
         report({}, histograms={"wait_s": dict(hist, counts=[9, 9, 9, 9])}), 0),
        ("histogram spec change is a failure",
         report({}, histograms={"wait_s": hist}),
         report({}, histograms={"wait_s": rebucketed}), 1),
        ("histogram missing from the emitted report is a failure",
         report({}, histograms={"wait_s": hist}), report({}), 1),
        ("baseline without an obs section gates nothing",
         report({"makespan": 100.0}),
         report({"makespan": 100.0}, histograms={"wait_s": hist}), 0),
        ("speedup above its floor passes",
         report({"speedup": {"floor": 5.0}}), report({"speedup": 22.9}), 0),
        ("speedup below its floor is a regression",
         report({"speedup": {"floor": 5.0}}), report({"speedup": 3.1}), 1),
        ("overhead under its ceiling passes",
         report({"overhead": {"ceiling": 1.02}}), report({"overhead": 0.25}), 0),
        ("overhead above its ceiling is a regression",
         report({"overhead": {"ceiling": 1.02}}), report({"overhead": 1.5}), 1),
        ("one-sided metric missing from the emitted report is a failure",
         report({"speedup": {"floor": 5.0}}), report({}), 1),
        ("emitted metrics absent from the baseline are ungated",
         # The ingest-throughput baseline leans on this: it floors the
         # speedup ratios while the emitted absolute completion rates
         # (machine-specific) pass through uncompared.
         report({"speedup": {"floor": 5.0}}),
         report({"speedup": 6.5, "rpc_completions_per_sec": 664654.0}), 0),
        ("floor and ceiling can bracket a ratio together",
         report({"ratio": {"floor": 0.9, "ceiling": 1.1}}), report({"ratio": 2.0}), 1),
    ]
    failed = 0
    for name, baseline, emitted, expected_failures in cases:
        failures = compare(emitted, baseline, tolerance=0.15)
        ok = len(failures) == expected_failures
        print(f"  {'ok  ' if ok else 'FAIL'} {name}")
        if not ok:
            print(f"       expected {expected_failures} failure(s), got: {failures}")
            failed += 1

    # Scenario-report schema validator cases.
    def scenario_report(**overrides):
        entry = {
            "name": "fig10_baseline", "jobs": 216, "tasks": 4, "threads": 1,
            "wall_seconds": 1.5, "passed": True,
            "gates": [{"gate": "invariants", "passed": True, "detail": "120 checks"}],
            "variants": {"fig10_baseline": {"metrics": {"makespan": {
                "count": 4.0, "mean": 21600.0, "stddev": 0.0,
                "ci95_half": 0.0, "min": 21600.0, "max": 21600.0}}}},
            "fingerprints": ["0123456789abcdef"] * 4,
        }
        entry.update({k: v for k, v in overrides.items() if k != "_doc"})
        doc = {"schema": SCENARIO_SCHEMA, "passed": entry["passed"],
               "wall_seconds": 1.5, "scenarios": [entry]}
        doc.update(overrides.get("_doc", {}))
        return doc

    scenario_cases = [
        ("well-formed scenario report validates", scenario_report(), True),
        ("wrong schema tag is rejected",
         scenario_report(_doc={"schema": "aequus-bench-v1"}), False),
        ("non-array scenarios are rejected",
         scenario_report(_doc={"scenarios": {}}), False),
        ("gate entry without a detail is rejected",
         scenario_report(gates=[{"gate": "invariants", "passed": True}]), False),
        ("passed flag disagreeing with gates is rejected",
         scenario_report(gates=[{"gate": "invariants", "passed": False,
                                 "detail": "violation"}]), False),
        ("fingerprint count must match the task count",
         scenario_report(fingerprints=["0123456789abcdef"] * 3), False),
        ("fingerprints must be 16 hex chars",
         scenario_report(fingerprints=["xyz"] * 4), False),
        ("metric summaries need all numeric fields",
         scenario_report(variants={"v": {"metrics": {"m": {"mean": 1.0}}}}), False),
        ("zero tasks is rejected", scenario_report(tasks=0, fingerprints=[]), False),
    ]

    # Backend-comparison block cases (scenarios/backend_faceoff.json emits
    # one row per variant; scenarios without the key stay valid — covered
    # by "well-formed scenario report validates" above).
    def comparison_row(**overrides):
        row = {"variant": "fig10_baseline", "backend": "aequus",
               "fairness_distance": 0.074, "starved_jobs": 11.0,
               "throughput_jobs_per_h": 36.0, "max_share_error": 0.052,
               "delta_latency_ms": 0.8}
        row.update(overrides)
        for key in [k for k, v in row.items() if v is None]:
            del row[key]
        return row

    scenario_cases += [
        ("comparison block with well-formed rows validates",
         scenario_report(comparison=[comparison_row()]), True),
        ("comparison row without a backend is rejected",
         scenario_report(comparison=[comparison_row(backend=None)]), False),
        ("comparison row with a non-numeric column is rejected",
         scenario_report(comparison=[comparison_row(starved_jobs="11")]), False),
        ("comparison row naming an unknown variant is rejected",
         scenario_report(comparison=[comparison_row(variant="lottery")]), False),
        ("empty comparison array is rejected",
         scenario_report(comparison=[]), False),
    ]
    for name, document, expected_ok in scenario_cases:
        errors = validate_scenario_report(document)
        ok = (not errors) == expected_ok
        print(f"  {'ok  ' if ok else 'FAIL'} {name}")
        if not ok:
            print(f"       expected {'pass' if expected_ok else 'errors'}, got: {errors}")
            failed += 1

    # Metrics-dump schema validator cases.
    def metrics_dump(**overrides):
        snapshot = {
            "counters": {"replay.envelopes": 120, "replay.dropped": 0},
            "gauges": {"queue.depth": {"last": 3.0, "sum": 12.0, "samples": 4,
                                       "mean": 3.0}},
            "histograms": {"wait_s": {"bounds": [0.1, 0.2], "counts": [1, 2, 3],
                                      "count": 6, "sum": 1.5, "min": 0.05,
                                      "max": 0.4, "mean": 0.25}},
        }
        snapshot.update({k: v for k, v in overrides.items() if k != "_doc"})
        doc = {"schema": METRICS_SCHEMA, "source": "bench",
               "snapshots": {"fig10_baseline/base": snapshot}}
        doc.update(overrides.get("_doc", {}))
        return doc

    metrics_cases = [
        ("well-formed metrics dump validates", metrics_dump(), True),
        ("wrong schema tag is rejected",
         metrics_dump(_doc={"schema": "aequus-bench-v1"}), False),
        ("empty snapshots object is rejected",
         metrics_dump(_doc={"snapshots": {}}), False),
        ("negative counter is rejected",
         metrics_dump(counters={"replay.dropped": -1}), False),
        ("non-integer counter is rejected",
         metrics_dump(counters={"replay.envelopes": 1.5}), False),
        ("gauge missing a field is rejected",
         metrics_dump(gauges={"queue.depth": {"last": 3.0}}), False),
        ("histogram without the overflow bucket is rejected",
         metrics_dump(histograms={"wait_s": {"bounds": [0.1, 0.2], "counts": [1, 2],
                                             "count": 3}}), False),
        ("histogram count disagreeing with its buckets is rejected",
         metrics_dump(histograms={"wait_s": {"bounds": [0.1], "counts": [1, 2],
                                             "count": 9}}), False),
        ("snapshot with empty sections validates",
         metrics_dump(counters={}, gauges={}, histograms={}), True),
    ]
    for name, document, expected_ok in metrics_cases:
        errors = validate_metrics_dump(document)
        ok = (not errors) == expected_ok
        print(f"  {'ok  ' if ok else 'FAIL'} {name}")
        if not ok:
            print(f"       expected {'pass' if expected_ok else 'errors'}, got: {errors}")
            failed += 1

    total = len(cases) + len(scenario_cases) + len(metrics_cases)
    if failed:
        print(f"SELF-TEST FAIL: {failed}/{total} case(s)")
        return 1
    print(f"SELF-TEST PASS: {total} case(s)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", type=Path, help="bench binary to run first")
    parser.add_argument("--bench-args", default="", help="arguments for --bench (one string)")
    parser.add_argument("--out-dir", type=Path, default=Path("."),
                        help="where the bench writes its BENCH_*.json")
    parser.add_argument("--compare", type=Path,
                        help="already-emitted report (instead of --bench)")
    parser.add_argument("--baseline", type=Path)
    parser.add_argument("--tolerance", type=float, default=0.15)
    parser.add_argument("--abs-epsilon", type=float, default=1e-6,
                        help="absolute floor of the allowed band (near-zero baselines)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate's own unit cases and exit")
    parser.add_argument("--validate-scenario-report", type=Path, metavar="FILE",
                        help="schema-check a tools/scenario_run JSON report and exit")
    parser.add_argument("--validate-metrics-dump", type=Path, metavar="FILE",
                        help="schema-check an aequus-metrics-dump-v1 document and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.validate_metrics_dump:
        document = load(args.validate_metrics_dump, "metrics dump")
        errors = validate_metrics_dump(document)
        if errors:
            print(f"FAIL: {len(errors)} schema error(s) in {args.validate_metrics_dump}:")
            for error in errors:
                print("  -", error)
            return 1
        count = len(document.get("snapshots", {}))
        print(f"PASS: {args.validate_metrics_dump} is a valid {METRICS_SCHEMA} "
              f"document ({count} snapshot(s))")
        return 0
    if args.validate_scenario_report:
        document = load(args.validate_scenario_report, "scenario report")
        errors = validate_scenario_report(document)
        if errors:
            print(f"FAIL: {len(errors)} schema error(s) in {args.validate_scenario_report}:")
            for error in errors:
                print("  -", error)
            return 1
        count = len(document.get("scenarios", []))
        print(f"PASS: {args.validate_scenario_report} is a valid {SCENARIO_SCHEMA} "
              f"document ({count} scenario(s))")
        return 0
    if args.baseline is None:
        parser.error("--baseline is required (unless --self-test)")
    if bool(args.bench) == bool(args.compare):
        parser.error("exactly one of --bench / --compare is required")

    baseline = load(args.baseline, "baseline")

    if args.bench:
        if not args.bench.is_file():
            print(f"SKIP: bench binary {args.bench} not found")
            return SKIP
        args.out_dir.mkdir(parents=True, exist_ok=True)
        command = [str(args.bench), *shlex.split(args.bench_args),
                   "--json-dir", str(args.out_dir)]
        print("+", " ".join(command), flush=True)
        proc = subprocess.run(command)
        if proc.returncode != 0:
            print(f"FAIL: bench exited with {proc.returncode}")
            return 1
        report_path = args.out_dir / args.baseline.name
    else:
        report_path = args.compare

    emitted = load(report_path, "report")
    failures = compare(emitted, baseline, args.tolerance, args.abs_epsilon)

    wall = emitted.get("wall_seconds")
    threads = emitted.get("threads")
    print(f"report: {report_path} (threads={threads}, wall={wall:.2f}s)"
          if isinstance(wall, float) else f"report: {report_path}")
    if failures:
        print(f"FAIL: {len(failures)} metric(s) outside +-{args.tolerance:.0%}:")
        for failure in failures:
            print("  -", failure)
        return 1
    metric_count = sum(len(v.get("metrics", {})) for v in baseline.get("variants", {}).values())
    print(f"PASS: {metric_count} metric means within +-{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
