// scenario_run: compile and execute declarative scenario specs with
// invariant gates, emitting the aequus-scenario-report-v1 JSON document.
//
// Usage:
//   scenario_run [options] [spec ...]
//
// Each spec is a path to a .json file or a bare catalog name
// (`fig10_baseline` resolves to <catalog>/fig10_baseline.json). With no
// specs the whole shipped catalog runs (scenarios/*.json; override the
// directory with --catalog DIR or $AEQUUS_SCENARIO_DIR).
//
// Options:
//   --list               list catalog specs and exit
//   --catalog DIR        use DIR instead of the built-in catalog path
//   --jobs-scale F       multiply every spec's job count by F
//   --max-jobs N         cap the post-scale job count
//   --time-scale F       extra time compression folded into variant scales
//   --threads N          sweep threads for the primary run
//   --backend NAME       force the fairness backend (aequus | balanced |
//                        credit) on every loaded spec, overriding its
//                        fairness: key and any variant overlay
//   --reps N             override every spec's replication count
//   --no-determinism     skip the dual-threaded determinism gate
//   --json FILE          write the report document to FILE ("-" = stdout)
//   --record DIR         force-enable flight recording; envelope logs land
//                        in DIR (see src/replay and tools/bus_replay)
//   --metrics FILE       dump the merged obs registry snapshots as an
//                        aequus-metrics-dump-v1 document ("-" = stdout)
//
// $AEQUUS_SCENARIO_SCALE (a fraction) multiplies jobs-scale and
// time-scale on top of the flags, so CI can compress a full catalog run
// without touching the invocation.
//
// Exit status: 0 all gates passed, 1 a gate failed, 2 usage/spec error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "scenario/catalog.hpp"
#include "scenario/runner.hpp"

using namespace aequus;

namespace {

struct CliArgs {
  std::vector<std::string> specs;
  std::string catalog;
  std::string json_path;
  std::string metrics_path;
  std::string backend;  ///< non-empty: force this fairness backend
  scenario::CompileOptions compile;
  scenario::RunOptions run;
  bool list = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--catalog DIR] [--jobs-scale F] [--max-jobs N]\n"
               "          [--time-scale F] [--threads N] [--reps N] [--backend NAME]\n"
               "          [--no-determinism] [--json FILE] [--record DIR]\n"
               "          [--metrics FILE] [spec.json ...]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, CliArgs& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--list") args.list = true;
    else if (arg == "--catalog") args.catalog = value();
    else if (arg == "--jobs-scale") args.compile.jobs_scale = std::strtod(value(), nullptr);
    else if (arg == "--max-jobs") {
      args.compile.max_jobs = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--time-scale") {
      args.compile.time_scale = std::strtod(value(), nullptr);
    } else if (arg == "--threads") {
      args.run.threads = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (arg == "--reps") {
      args.compile.replications = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--backend") {
      args.backend = value();
    } else if (arg == "--no-determinism") {
      args.run.determinism = false;
    } else if (arg == "--json") {
      args.json_path = value();
    } else if (arg == "--record") {
      args.run.record_dir = value();
    } else if (arg == "--metrics") {
      args.metrics_path = value();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    } else {
      args.specs.push_back(arg);
    }
  }
  if (args.compile.jobs_scale <= 0.0 || args.compile.time_scale <= 0.0) {
    std::fprintf(stderr, "--jobs-scale and --time-scale must be > 0\n");
    return false;
  }
  return true;
}

/// The aequus-metrics-dump-v1 document: merged per-variant registry
/// snapshots keyed "<scenario>/<variant>" (validated by
/// bench_gate.py --validate-metrics-dump).
json::Value metrics_dump_json(const std::vector<scenario::ScenarioReport>& reports) {
  json::Object snapshots;
  for (const scenario::ScenarioReport& report : reports) {
    for (const auto& [variant, snapshot] : report.sweep.obs) {
      snapshots[report.name + "/" + variant] = snapshot.to_json();
    }
  }
  json::Object out;
  out["schema"] = "aequus-metrics-dump-v1";
  out["source"] = "scenario_run";
  out["snapshots"] = json::Value(std::move(snapshots));
  return json::Value(std::move(out));
}

/// Drop a fairshare.backend overlay from an experiment-config object so a
/// --backend override is not shadowed by the spec's own overlays (the
/// spec-level fairness key sits *below* them in the merge order).
void strip_backend_overlay(json::Value& experiment) {
  if (!experiment.is_object()) return;
  json::Object& object = experiment.as_object();
  const auto fairshare = object.find("fairshare");
  if (fairshare == object.end() || !fairshare->second.is_object()) return;
  fairshare->second.as_object().erase("backend");
}

/// Apply --backend NAME: retarget the spec's fairness selection and strip
/// competing overlays, so every variant runs the forced backend.
void force_backend(scenario::ScenarioSpec& spec, const std::string& backend) {
  spec.fairness.name = backend;
  strip_backend_overlay(spec.experiment);
  for (scenario::VariantSpec& variant : spec.variants) {
    strip_backend_overlay(variant.experiment);
  }
}

/// A positional spec is a file path, or a bare catalog name resolved to
/// <catalog>/<name>.json when no such file exists.
std::string resolve_spec(const std::string& spec, const std::string& catalog) {
  if (std::filesystem::exists(spec)) return spec;
  const std::string dir = catalog.empty() ? scenario::catalog_dir() : catalog;
  const std::filesystem::path named = std::filesystem::path(dir) / (spec + ".json");
  if (std::filesystem::exists(named)) return named.string();
  return spec;  // let load_spec_file produce the cannot-open error
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!parse_args(argc, argv, args)) return usage(argv[0]);

  std::vector<std::string> paths;
  paths.reserve(args.specs.size());
  for (const std::string& spec : args.specs) {
    paths.push_back(resolve_spec(spec, args.catalog));
  }
  if (paths.empty()) {
    paths = scenario::list_catalog(args.catalog);
    if (paths.empty()) {
      std::fprintf(stderr, "no specs given and no catalog found at '%s'\n",
                   (args.catalog.empty() ? scenario::catalog_dir() : args.catalog).c_str());
      return 2;
    }
  }

  if (args.list) {
    for (const std::string& path : paths) {
      try {
        const scenario::ScenarioSpec spec = scenario::load_spec_file(path);
        std::printf("%-24s %s\n", spec.name.c_str(), spec.description.c_str());
      } catch (const scenario::SpecError& error) {
        std::printf("%-24s INVALID: %s\n", path.c_str(), error.what());
      }
    }
    return 0;
  }

  scenario::apply_env_scale(args.compile);

  if (!args.backend.empty() && !core::fairness_backend_known(args.backend)) {
    std::fprintf(stderr, "--backend: unknown fairness backend '%s'\n", args.backend.c_str());
    return 2;
  }

  std::vector<scenario::ScenarioReport> reports;
  double wall = 0.0;
  for (const std::string& path : paths) {
    try {
      scenario::ScenarioSpec spec = scenario::load_spec_file(path);
      if (!args.backend.empty()) force_backend(spec, args.backend);
      const scenario::CompiledScenario compiled = scenario::compile(spec, args.compile);
      std::printf("== %s: %zu jobs x %zu task(s)...\n", compiled.name.c_str(), compiled.jobs,
                  compiled.sweep.task_count());
      std::fflush(stdout);
      scenario::ScenarioReport report = scenario::run_scenario(compiled, args.run);
      for (const scenario::GateResult& gate : report.gates) {
        std::printf("   [%s] %-14s %s\n", gate.passed ? "PASS" : "FAIL", gate.gate.c_str(),
                    gate.detail.c_str());
      }
      if (report.record.enabled) {
        std::printf("   recorded %llu envelope(s) -> %s (fingerprint %s)\n",
                    static_cast<unsigned long long>(report.record.envelopes),
                    report.record.path.c_str(), report.record.fingerprint_hash.c_str());
      }
      std::printf("   %s in %.2f s wall (%d threads)\n", report.passed ? "ok" : "FAILED",
                  report.wall_seconds, report.threads);
      wall += report.wall_seconds;
      reports.push_back(std::move(report));
    } catch (const scenario::SpecError& error) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), error.what());
      return 2;
    } catch (const std::exception& error) {  // e.g. an unwritable record log
      std::fprintf(stderr, "%s: %s\n", path.c_str(), error.what());
      return 2;
    }
  }

  const json::Value document = scenario::catalog_report_json(reports, wall);
  if (!args.json_path.empty()) {
    if (args.json_path == "-") {
      std::printf("%s\n", document.pretty().c_str());
    } else {
      std::ofstream out(args.json_path);
      if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", args.json_path.c_str());
        return 2;
      }
      out << document.pretty() << "\n";
      std::printf("report written to %s\n", args.json_path.c_str());
    }
  }

  if (!args.metrics_path.empty()) {
    const json::Value dump = metrics_dump_json(reports);
    if (args.metrics_path == "-") {
      std::printf("%s\n", dump.pretty().c_str());
    } else {
      std::ofstream out(args.metrics_path);
      if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", args.metrics_path.c_str());
        return 2;
      }
      out << dump.pretty() << "\n";
      std::printf("metrics dump written to %s\n", args.metrics_path.c_str());
    }
  }

  bool passed = true;
  for (const scenario::ScenarioReport& report : reports) passed = passed && report.passed;
  std::printf("%zu scenario(s), %s, %.2f s total\n", reports.size(),
              passed ? "all gates passed" : "GATE FAILURES", wall);
  return passed ? 0 : 1;
}
