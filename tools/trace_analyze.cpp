// trace_analyze: offline critical-path analyzer for Aequus span traces.
//
// Reads a JSONL trace written by obs::write_jsonl (bench --trace runs or
// Experiment results), rebuilds the causal span trees, and reports:
//
//   - per-chain statistics: complete vs broken trees, retries, retry
//     storms, mean/max end-to-end duration;
//   - per-hop breakdown: each hop's self time as a strict partition of
//     the complete chains' durations (hop totals sum to the chain total);
//   - the critical path of the slowest complete chain per chain key;
//   - anomalies: orphan spans, open spans (chains broken by drops or
//     outages), retry storms, duplicate span ends (bus duplication),
//     unmatched ends (ring eviction).
//
// With --report BENCH.json it additionally prints the histogram layouts
// the bench exported (satellite of the observability issue: bucket bounds
// are read from the report's spec, never recomputed), cross-checking the
// spec-derived bounds against the exported bounds array.
//
// --self-test runs built-in consistency checks on synthetic traces and
// exits non-zero on any failure (wired as a ctest entry, label "trace").
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "obs/span_analysis.hpp"
#include "obs/trace.hpp"

namespace {

namespace json = aequus::json;

using aequus::obs::AnalyzeOptions;
using aequus::obs::ChainStats;
using aequus::obs::EventKind;
using aequus::obs::SpanContext;
using aequus::obs::SpanNode;
using aequus::obs::TraceAnalysis;
using aequus::obs::TraceEvent;
using aequus::obs::Tracer;
using aequus::obs::analyze_spans;
using aequus::obs::hop_key;
using aequus::obs::kNoSpan;
using aequus::obs::read_trace_jsonl;

struct Options {
  std::string trace_path;
  std::string report_path;
  bool chains = true;
  bool hops = true;
  bool critical = true;
  bool anomalies = true;
  bool json = false;
  bool self_test = false;
  std::size_t retry_storm_threshold = 3;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [options] TRACE.jsonl\n"
            << "  --json                  emit the analysis as one JSON object\n"
            << "  --no-chains             skip the per-chain table\n"
            << "  --no-hops               skip the per-hop breakdown\n"
            << "  --no-critical           skip the critical-path section\n"
            << "  --no-anomalies          skip the anomaly section\n"
            << "  --retry-storm-threshold N   retries per tree that flag a storm (default 3)\n"
            << "  --report BENCH.json     print the report's histogram layouts\n"
            << "  --self-test             run built-in consistency checks\n";
  return 2;
}

json::Value chains_to_json(const TraceAnalysis& analysis) {
  using aequus::json::Object;
  using aequus::json::Value;
  Object chains;
  for (const auto& [key, stats] : analysis.chains) {
    Object chain;
    chain["complete"] = stats.complete;
    chain["broken"] = stats.broken;
    chain["retries"] = stats.retries;
    chain["retry_storms"] = stats.retry_storms;
    chain["total_duration_s"] = stats.total_duration;
    chain["mean_duration_s"] = stats.mean_duration();
    chain["max_duration_s"] = stats.max_duration;
    Object hops;
    for (const auto& [hop, self] : stats.hop_self_time) {
      Object h;
      h["self_time_s"] = self;
      h["spans"] = stats.hop_spans.at(hop);
      hops[hop] = Value(std::move(h));
    }
    chain["hops"] = Value(std::move(hops));
    chains[key] = Value(std::move(chain));
  }
  return Value(std::move(chains));
}

json::Value analysis_to_json(const TraceAnalysis& analysis) {
  using aequus::json::Object;
  using aequus::json::Value;
  Object root;
  root["total_events"] = analysis.total_events;
  root["span_events"] = analysis.span_events;
  root["spans"] = analysis.spans.size();
  root["trees"] = analysis.roots.size();
  root["contextless_events"] = analysis.contextless_events;
  root["orphan_spans"] = analysis.orphan_spans;
  root["open_spans"] = analysis.open_spans;
  root["broken_chains"] = analysis.broken_chains;
  root["retry_storms"] = analysis.retry_storms;
  root["duplicate_ends"] = analysis.duplicate_ends;
  root["unmatched_ends"] = analysis.unmatched_ends;
  root["drop_events"] = analysis.drop_events;
  root["chains"] = chains_to_json(analysis);
  return Value(std::move(root));
}

void print_summary(const TraceAnalysis& analysis) {
  std::cout << "trace: " << analysis.total_events << " events, "
            << analysis.spans.size() << " spans, " << analysis.roots.size()
            << " trees, " << analysis.contextless_events << " contextless events\n";
}

void print_chains(const TraceAnalysis& analysis) {
  std::cout << "\nchains (by root component/name):\n";
  for (const auto& [key, stats] : analysis.chains) {
    std::cout << "  " << key << ": " << stats.complete << " complete, " << stats.broken
              << " broken";
    if (stats.retries > 0) std::cout << ", " << stats.retries << " retries";
    if (stats.retry_storms > 0) std::cout << ", " << stats.retry_storms << " storms";
    if (stats.complete > 0) {
      std::cout << "; mean " << stats.mean_duration() << " s, max " << stats.max_duration
                << " s";
    }
    std::cout << "\n";
  }
}

void print_hops(const TraceAnalysis& analysis) {
  std::cout << "\nper-hop breakdown (self time over complete chains):\n";
  for (const auto& [key, stats] : analysis.chains) {
    if (stats.complete == 0) continue;
    std::cout << "  " << key << " (total " << stats.total_duration << " s):\n";
    for (const auto& [hop, self] : stats.hop_self_time) {
      const double share =
          stats.total_duration > 0.0 ? 100.0 * self / stats.total_duration : 0.0;
      std::cout << "    " << hop << ": " << self << " s (" << share << "%, "
                << stats.hop_spans.at(hop) << " spans)\n";
    }
  }
}

void print_critical(const TraceAnalysis& analysis) {
  std::cout << "\ncritical path of the slowest complete chain per key:\n";
  for (const auto& [key, stats] : analysis.chains) {
    if (stats.slowest_root == kNoSpan) continue;
    std::cout << "  " << key << " (" << stats.max_duration << " s):\n";
    for (const std::size_t index : analysis.critical_path(stats.slowest_root)) {
      const SpanNode& span = analysis.spans[index];
      std::cout << "    " << span.site << " " << span.component << "/" << span.name
                << " @" << span.start << " +" << span.duration() << " s (self "
                << analysis.self_time(index) << " s)\n";
    }
  }
}

void print_anomalies(const TraceAnalysis& analysis) {
  std::cout << "\nanomalies:\n"
            << "  orphan spans:   " << analysis.orphan_spans << "\n"
            << "  open spans:     " << analysis.open_spans << "\n"
            << "  broken chains:  " << analysis.broken_chains << "\n"
            << "  retry storms:   " << analysis.retry_storms << "\n"
            << "  duplicate ends: " << analysis.duplicate_ends << "\n"
            << "  unmatched ends: " << analysis.unmatched_ends << "\n"
            << "  drops in spans: " << analysis.drop_events << "\n";
}

/// Print (and verify) the histogram layouts a bench report exported. The
/// bounds are taken from the report's "spec" — the analyzer never invents
/// a layout — and cross-checked against the exported bounds array.
int report_histograms(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "trace_analyze: cannot open report " << path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const aequus::json::Value report = aequus::json::parse(buffer.str());
  const auto variants = report.find("variants");
  if (!variants) {
    std::cerr << "trace_analyze: no variants in " << path << "\n";
    return 1;
  }
  int checked = 0;
  for (const auto& [variant, body] : variants->get().as_object()) {
    const auto obs = body.find("obs");
    if (!obs) continue;
    const auto histograms = obs->get().find("histograms");
    if (!histograms) continue;
    for (const auto& [key, hist] : histograms->get().as_object()) {
      const auto spec = hist.find("spec");
      if (!spec) continue;  // merged layouts drop their spec
      const double first_bound = spec->get().get_number("first_bound");
      const double growth = spec->get().get_number("growth");
      const int buckets = static_cast<int>(spec->get().get_number("buckets"));
      const auto bounds = hist.find("bounds");
      std::cout << variant << " " << key << ": " << buckets << " buckets, bounds "
                << first_bound << " x" << growth << ", count "
                << hist.get_number("count") << ", mean " << hist.get_number("mean")
                << " s\n";
      // The exported bounds must be exactly the spec-derived layout.
      if (bounds) {
        double bound = first_bound;
        const auto& array = bounds->get().as_array();
        if (static_cast<int>(array.size()) != buckets) {
          std::cerr << "trace_analyze: " << key << ": bounds/spec size mismatch\n";
          return 1;
        }
        for (const auto& b : array) {
          if (std::abs(b.as_number() - bound) > 1e-9 * bound) {
            std::cerr << "trace_analyze: " << key << ": bounds diverge from spec\n";
            return 1;
          }
          bound *= growth;
        }
      }
      ++checked;
    }
  }
  std::cout << checked << " histogram layouts verified against their specs\n";
  return 0;
}

// ---------------------------------------------------------------------------
// --self-test: synthetic traces exercising every analyzer code path.

int failures = 0;

#define CHECK(cond)                                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::cerr << "self-test FAILED at " << __FILE__ << ":" << __LINE__     \
                << ": " #cond "\n";                                          \
      ++failures;                                                            \
    }                                                                        \
  } while (0)

#define CHECK_NEAR(a, b, eps) CHECK(std::abs((a) - (b)) <= (eps))

/// A complete jobcomp-like tree: hop self times must partition the root
/// duration exactly (the telescoping identity the bench tables rely on).
void self_test_complete_tree() {
  Tracer tracer;
  tracer.enable();
  tracer.seed_trace_ids(7);
  const SpanContext root = tracer.begin_span(0.0, "site0", "rm", "jobcomp:c0");
  const SpanContext send = tracer.begin_child(0.1, root, "site0", "bus", "send:site0.uss");
  const SpanContext leg = tracer.begin_child(0.1, send, "site0", "bus", "data:site0.uss");
  tracer.end_span(0.11, leg, "site0", "bus");
  const SpanContext handle =
      tracer.begin_child(0.11, send, "site0", "uss", "handle:site0.uss");
  tracer.end_span(0.12, handle, "site0", "uss");
  tracer.end_span(0.12, send, "site0", "bus");
  tracer.end_span(0.5, root, "site0", "rm");

  const TraceAnalysis analysis = analyze_spans(tracer.events());
  CHECK(analysis.spans.size() == 4);
  CHECK(analysis.roots.size() == 1);
  CHECK(analysis.broken_chains == 0);
  const auto it = analysis.chains.find("rm/jobcomp");
  CHECK(it != analysis.chains.end());
  if (it == analysis.chains.end()) return;
  const ChainStats& stats = it->second;
  CHECK(stats.complete == 1);
  double hop_total = 0.0;
  for (const auto& [hop, self] : stats.hop_self_time) {
    (void)hop;
    hop_total += self;
  }
  CHECK_NEAR(hop_total, 0.5, 1e-12);          // telescoping identity
  CHECK_NEAR(stats.total_duration, 0.5, 1e-12);
  CHECK_NEAR(stats.hop_self_time.at("bus/data"), 0.01, 1e-12);
  CHECK_NEAR(stats.hop_self_time.at("uss/handle"), 0.01, 1e-12);
  // Critical path descends to the child that finished last.
  const auto path = analysis.critical_path(analysis.roots.front());
  CHECK(path.size() == 3);  // root -> send -> handle (ends at 0.12)
  if (path.size() == 3) CHECK(analysis.spans[path.back()].component == "uss");
}

/// A child whose parent never appears is an orphan and roots its own
/// (broken) partial tree.
void self_test_orphan() {
  Tracer tracer;
  tracer.enable();
  tracer.seed_trace_ids(7);
  SpanContext ghost;
  ghost.trace_id = 42;
  ghost.span_id = 999;  // never begun in this trace
  const SpanContext child = tracer.begin_child(1.0, ghost, "site1", "client", "refresh");
  tracer.end_span(2.0, child, "site1", "client", "ok");

  const TraceAnalysis analysis = analyze_spans(tracer.events());
  CHECK(analysis.orphan_spans == 1);
  CHECK(analysis.roots.size() == 1);
  CHECK(analysis.broken_chains == 1);  // orphan trees count as broken
}

/// A span begun but never ended (dropped message) breaks its chain.
void self_test_broken_chain() {
  Tracer tracer;
  tracer.enable();
  tracer.seed_trace_ids(7);
  const SpanContext root = tracer.begin_span(0.0, "site0", "bus", "send:site1.uss");
  const SpanContext leg = tracer.begin_child(0.0, root, "site0", "bus", "data:site1.uss");
  {
    aequus::obs::SpanScope scope(&tracer, leg);
    tracer.record(0.0, EventKind::kMessageDrop, "site0", "bus", "loss:site1.uss");
  }
  // Neither the leg nor the send span ever ends.
  const TraceAnalysis analysis = analyze_spans(tracer.events());
  CHECK(analysis.open_spans == 2);
  CHECK(analysis.broken_chains == 1);
  CHECK(analysis.drop_events == 1);
  const auto it = analysis.chains.find("bus/send");
  CHECK(it != analysis.chains.end() && it->second.broken == 1);
}

/// Four attempts under one refresh root = 3 retries = a storm at the
/// default threshold.
void self_test_retry_storm() {
  Tracer tracer;
  tracer.enable();
  tracer.seed_trace_ids(7);
  const SpanContext root = tracer.begin_span(0.0, "site0", "client", "refresh");
  for (int attempt = 0; attempt < 4; ++attempt) {
    const SpanContext a = tracer.begin_child(attempt * 1.0, root, "site0", "client",
                                             "attempt:" + std::to_string(attempt));
    tracer.end_span(attempt * 1.0 + 0.5, a, "site0", "client", "failed");
  }
  tracer.end_span(4.0, root, "site0", "client", "stale_fallback");

  const TraceAnalysis analysis = analyze_spans(tracer.events());
  const auto it = analysis.chains.find("client/refresh");
  CHECK(it != analysis.chains.end());
  if (it == analysis.chains.end()) return;
  CHECK(it->second.retries == 3);
  CHECK(it->second.retry_storms == 1);
  CHECK(analysis.retry_storms == 1);
  // Raising the threshold clears the storm flag.
  AnalyzeOptions lax;
  lax.retry_storm_threshold = 4;
  CHECK(analyze_spans(tracer.events(), lax).retry_storms == 0);
}

/// A duplicated bus leg delivers the same span end twice; the first wins.
void self_test_duplicate_end() {
  Tracer tracer;
  tracer.enable();
  tracer.seed_trace_ids(7);
  const SpanContext span = tracer.begin_span(0.0, "site0", "bus", "data:site1.uss");
  tracer.end_span(1.0, span, "site1", "bus");
  tracer.end_span(2.0, span, "site1", "bus");  // duplicate delivery

  const TraceAnalysis analysis = analyze_spans(tracer.events());
  CHECK(analysis.duplicate_ends == 1);
  CHECK(analysis.spans.size() == 1);
  CHECK_NEAR(analysis.spans[0].end, 1.0, 0.0);  // first end wins
}

/// write_jsonl -> read_trace_jsonl round-trips every span field.
void self_test_jsonl_round_trip() {
  Tracer tracer;
  tracer.enable();
  tracer.seed_trace_ids(0x5eed);
  const SpanContext root = tracer.begin_span(0.25, "site0", "rm", "jobcomp:c0");
  {
    aequus::obs::SpanScope scope(&tracer, root);
    tracer.record(0.3, EventKind::kCacheHit, "site0", "client", "identity:u1");
  }
  tracer.end_span(0.5, root, "site0", "rm", "u1", 17.0);

  std::ostringstream out;
  aequus::obs::write_jsonl(out, tracer.events());
  std::istringstream in(out.str());
  const std::vector<TraceEvent> parsed = read_trace_jsonl(in);
  const std::vector<TraceEvent> original = tracer.events();
  CHECK(parsed.size() == original.size());
  if (parsed.size() != original.size()) return;
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    CHECK(parsed[i].time == original[i].time);
    CHECK(parsed[i].kind == original[i].kind);
    CHECK(parsed[i].site == original[i].site);
    CHECK(parsed[i].component == original[i].component);
    CHECK(parsed[i].detail == original[i].detail);
    CHECK(parsed[i].value == original[i].value);
    CHECK(parsed[i].span == original[i].span);
  }
  // 48-bit trace ids survive the double-typed JSON number representation.
  CHECK(parsed[0].span.trace_id == original[0].span.trace_id);
  CHECK(parsed[0].span.trace_id != 0);
  CHECK(parsed[0].span.trace_id <= 0xffffffffffffULL);
}

/// The ring cap evicts oldest events; analysis degrades to unmatched ends
/// instead of failing.
void self_test_ring_eviction() {
  Tracer tracer;
  tracer.enable();
  tracer.seed_trace_ids(7);
  tracer.set_capacity(2);
  const SpanContext span = tracer.begin_span(0.0, "site0", "bus", "send:a.b");
  tracer.record(0.1, EventKind::kMessageSend, "site0", "bus", "a.b");
  tracer.record(0.2, EventKind::kMessageDeliver, "site0", "bus", "a.b");  // evicts begin
  tracer.end_span(0.3, span, "site0", "bus");
  CHECK(tracer.dropped() == 2);
  const TraceAnalysis analysis = analyze_spans(tracer.events());
  CHECK(analysis.unmatched_ends == 1);
  CHECK(analysis.spans.empty());
}

int run_self_test() {
  self_test_complete_tree();
  self_test_orphan();
  self_test_broken_chain();
  self_test_retry_storm();
  self_test_duplicate_end();
  self_test_jsonl_round_trip();
  self_test_ring_eviction();
  if (failures == 0) {
    std::cout << "trace_analyze self-test: all checks passed\n";
    return 0;
  }
  std::cerr << "trace_analyze self-test: " << failures << " check(s) failed\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--self-test") == 0) {
      options.self_test = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      options.json = true;
    } else if (std::strcmp(arg, "--no-chains") == 0) {
      options.chains = false;
    } else if (std::strcmp(arg, "--no-hops") == 0) {
      options.hops = false;
    } else if (std::strcmp(arg, "--no-critical") == 0) {
      options.critical = false;
    } else if (std::strcmp(arg, "--no-anomalies") == 0) {
      options.anomalies = false;
    } else if (std::strcmp(arg, "--retry-storm-threshold") == 0 && i + 1 < argc) {
      options.retry_storm_threshold = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(arg, "--report") == 0 && i + 1 < argc) {
      options.report_path = argv[++i];
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else {
      options.trace_path = arg;
    }
  }
  if (options.self_test) return run_self_test();
  if (!options.report_path.empty() && options.trace_path.empty()) {
    return report_histograms(options.report_path);
  }
  if (options.trace_path.empty()) return usage(argv[0]);

  std::ifstream in(options.trace_path);
  if (!in) {
    std::cerr << "trace_analyze: cannot open " << options.trace_path << "\n";
    return 1;
  }
  std::vector<TraceEvent> events;
  try {
    events = read_trace_jsonl(in);
  } catch (const std::exception& e) {
    std::cerr << "trace_analyze: " << e.what() << "\n";
    return 1;
  }
  AnalyzeOptions analyze_options;
  analyze_options.retry_storm_threshold = options.retry_storm_threshold;
  const TraceAnalysis analysis = analyze_spans(events, analyze_options);

  if (options.json) {
    std::cout << analysis_to_json(analysis).pretty() << "\n";
  } else {
    print_summary(analysis);
    if (options.chains) print_chains(analysis);
    if (options.hops) print_hops(analysis);
    if (options.critical) print_critical(analysis);
    if (options.anomalies) print_anomalies(analysis);
  }
  if (!options.report_path.empty()) {
    std::cout << "\n";
    const int status = report_histograms(options.report_path);
    if (status != 0) return status;
  }
  return 0;
}
