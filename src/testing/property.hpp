// Seeded property-test runner.
//
// The repo's single-threaded determinism makes every randomized check
// replayable from one 64-bit seed: a property is a callable that builds a
// random input from the seed, exercises the system, and *throws* on
// violation. run_property() derives N trial seeds from a base seed
// (splitmix64, so nearby bases give uncorrelated streams) and reports the
// exact failing seed, which replay_property() — or the
// AEQUUS_PROPERTY_SEED environment variable — reproduces bit-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace aequus::testing {

/// Thrown by trials (directly or via require()) to signal a violation.
class PropertyFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throw PropertyFailure(message) unless `condition` holds.
void require(bool condition, const std::string& message);

/// Outcome of a property run; `summary()` is the line to print (and, on
/// failure, contains the replay instructions).
struct PropertyOutcome {
  std::string name;
  int trials = 0;              ///< trials actually executed
  bool passed = true;
  std::uint64_t failing_seed = 0;
  std::string failure;         ///< what() of the failing trial

  [[nodiscard]] std::string summary() const;
};

/// Run `trial(seed)` for `trials` seeds derived from `base_seed`. Stops at
/// the first failure (any std::exception) and records the failing seed.
/// When the AEQUUS_PROPERTY_SEED environment variable is set, only that
/// seed runs — the replay path for a reported failure.
[[nodiscard]] PropertyOutcome run_property(std::string name, int trials,
                                           std::uint64_t base_seed,
                                           const std::function<void(std::uint64_t)>& trial);

/// Re-run a single reported seed; returns the outcome of that one trial.
[[nodiscard]] PropertyOutcome replay_property(std::string name, std::uint64_t seed,
                                              const std::function<void(std::uint64_t)>& trial);

}  // namespace aequus::testing
