#include "testing/property.hpp"

#include <cstdlib>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace aequus::testing {

void require(bool condition, const std::string& message) {
  if (!condition) throw PropertyFailure(message);
}

std::string PropertyOutcome::summary() const {
  if (passed) {
    return util::format("property '%s': %d trials passed", name.c_str(), trials);
  }
  return util::format(
      "property '%s' FAILED at seed %llu after %d trials: %s "
      "(replay with AEQUUS_PROPERTY_SEED=%llu)",
      name.c_str(), static_cast<unsigned long long>(failing_seed), trials, failure.c_str(),
      static_cast<unsigned long long>(failing_seed));
}

PropertyOutcome replay_property(std::string name, std::uint64_t seed,
                                const std::function<void(std::uint64_t)>& trial) {
  PropertyOutcome outcome;
  outcome.name = std::move(name);
  outcome.trials = 1;
  try {
    trial(seed);
  } catch (const std::exception& e) {
    outcome.passed = false;
    outcome.failing_seed = seed;
    outcome.failure = e.what();
  }
  return outcome;
}

PropertyOutcome run_property(std::string name, int trials, std::uint64_t base_seed,
                             const std::function<void(std::uint64_t)>& trial) {
  if (const char* replay = std::getenv("AEQUUS_PROPERTY_SEED")) {
    return replay_property(std::move(name), std::strtoull(replay, nullptr, 0), trial);
  }
  PropertyOutcome outcome;
  outcome.name = std::move(name);
  std::uint64_t state = base_seed;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t seed = util::splitmix64(state);
    ++outcome.trials;
    try {
      trial(seed);
    } catch (const std::exception& e) {
      outcome.passed = false;
      outcome.failing_seed = seed;
      outcome.failure = e.what();
      break;
    }
  }
  return outcome;
}

}  // namespace aequus::testing
