// System-level invariant checking for testbed experiments.
//
// An InvariantChecker attaches to a testbed::Experiment sampling tick and
// asserts, at every tick, the properties a decentralized fairshare system
// must keep even under injected faults:
//
//   1. usage conservation — the usage recorded across all USS instances
//      never exceeds the core-seconds actually charged for completed jobs
//      (and, in lossless runs, eventually equals it);
//   2. structural consistency — every site's UMS usage tree is
//      non-negative, internally additive, and maps onto the experiment's
//      policy leaves;
//   3. priority monotonicity — recomputing fairshare from any site's live
//      usage view, users with equal policy shares order opposite to their
//      usage, and identical fairshare vectors project to identical
//      factors.
//
// After the run, check_reconvergence() asserts that the replicated usage
// views of all fully participating sites have converged — the "views
// reconverge once faults clear" property — and, for lossless runs,
// check_conservation_final() asserts exact conservation.
//
// Violations are collected (not thrown), so one failing tick does not
// hide later ones; ok()/report() feed the test assertion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "testbed/experiment.hpp"

namespace aequus::testing {

struct InvariantOptions {
  /// Relative slack on "recorded <= completed" (covers double rounding
  /// across many accumulations).
  double conservation_slack = 1e-9;
  /// Relative per-leaf disagreement tolerated between replicated usage
  /// views at reconvergence.
  double convergence_tolerance = 0.02;
  /// Slack on monotonicity/equality comparisons of projected factors.
  double monotonicity_epsilon = 1e-9;
  /// Stop recording after this many violations (the report stays legible
  /// when an experiment goes completely sideways).
  std::size_t max_violations = 32;
};

class InvariantChecker {
 public:
  struct Violation {
    double time = 0.0;
    std::string invariant;
    std::string detail;
  };

  /// Registers the per-tick hook on `experiment`; call before run().
  /// The experiment must outlive the checker.
  explicit InvariantChecker(testbed::Experiment& experiment, InvariantOptions options = {});

  /// The per-tick hook body (also callable directly in tests).
  void check_now(double now);

  /// Post-run: replicated usage views of fully participating sites agree
  /// within `convergence_tolerance`. Meaningful once outage windows have
  /// ended and a few update intervals have passed (the drain phase).
  void check_reconvergence();

  /// Post-run, lossless runs only: recorded usage equals charged usage.
  void check_conservation_final();

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t checks_run() const noexcept { return checks_; }

  /// Human-readable list of violations (empty string when ok()).
  [[nodiscard]] std::string report() const;

 private:
  void record(double now, const std::string& invariant, const std::string& detail);
  void check_usage_conservation(double now);
  void check_tree_consistency(double now);
  void check_priority_monotonicity(double now);

  /// Sum of all histogram bins currently held by one site's USS.
  [[nodiscard]] static double uss_recorded_total(const testbed::ClusterSite& site);

  testbed::Experiment& experiment_;
  InvariantOptions options_;
  std::vector<Violation> violations_;
  std::uint64_t checks_ = 0;
};

}  // namespace aequus::testing
