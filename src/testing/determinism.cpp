#include "testing/determinism.hpp"

#include "util/strings.hpp"

namespace aequus::testing {

std::string fingerprint(const net::BusStats& stats) {
  std::string out;
  out += util::format("requests=%llu\n", static_cast<unsigned long long>(stats.requests));
  out += util::format("one_way=%llu\n", static_cast<unsigned long long>(stats.one_way));
  out += util::format("dropped_participation=%llu\n",
                      static_cast<unsigned long long>(stats.dropped_participation));
  out += util::format("dropped_unbound=%llu\n",
                      static_cast<unsigned long long>(stats.dropped_unbound));
  out += util::format("dropped_loss=%llu\n",
                      static_cast<unsigned long long>(stats.dropped_loss));
  out += util::format("dropped_outage=%llu\n",
                      static_cast<unsigned long long>(stats.dropped_outage));
  out += util::format("duplicated=%llu\n", static_cast<unsigned long long>(stats.duplicated));
  out += util::format("unbound_bounces=%llu\n",
                      static_cast<unsigned long long>(stats.unbound_bounces));
  out += util::format("payload_bytes=%llu\n",
                      static_cast<unsigned long long>(stats.payload_bytes));
  out += util::format("batches=%llu\n", static_cast<unsigned long long>(stats.batches));
  out += util::format("batch_records=%llu\n",
                      static_cast<unsigned long long>(stats.batch_records));
  return out;
}

std::string fingerprint(const util::SeriesSet& series) {
  std::string out;
  for (const auto& [name, one] : series.all()) {
    out += name;
    out += ':';
    for (std::size_t i = 0; i < one.size(); ++i) {
      out += util::format(" (%.17g,%.17g)", one.times()[i], one.values()[i]);
    }
    out += '\n';
  }
  return out;
}

std::string fingerprint(const testbed::ExperimentResult& result) {
  std::string out;
  out += util::format("jobs_submitted=%llu\n",
                      static_cast<unsigned long long>(result.jobs_submitted));
  out += util::format("jobs_completed=%llu\n",
                      static_cast<unsigned long long>(result.jobs_completed));
  out += util::format("makespan=%.17g\n", result.makespan);
  out += util::format("mean_utilization=%.17g\n", result.mean_utilization);
  out += util::format("rates=(%.17g,%.17g)\n", result.rates.sustained_per_minute,
                      result.rates.peak_per_minute);
  for (const auto& [user, share] : result.final_usage_share) {
    out += util::format("final_share[%s]=%.17g\n", user.c_str(), share);
  }
  out += "[bus]\n";
  out += fingerprint(result.bus);
  out += "[usage_shares]\n";
  out += fingerprint(result.usage_shares);
  out += "[priorities]\n";
  out += fingerprint(result.priorities);
  out += "[per_site]\n";
  out += fingerprint(result.per_site);
  out += "[utilization]\n";
  out += fingerprint(result.utilization);
  out += "[start_priorities]\n";
  out += fingerprint(result.start_priorities);
  out += "[waits]\n";
  out += fingerprint(result.waits);
  return out;
}

void attach_fingerprints(testbed::SweepSpec& spec) {
  spec.fingerprinter = [](const testbed::ExperimentResult& result) {
    return fingerprint(result);
  };
}

}  // namespace aequus::testing
