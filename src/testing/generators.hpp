// Seeded random scenario and value generators for property tests.
//
// Everything here is a pure function of the Rng state passed in, so a
// generated input replays exactly from the seed that produced it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "net/service_bus.hpp"
#include "util/rng.hpp"

namespace aequus::testing {

/// Random JSON document: scalars, arrays, and objects nested up to
/// `max_depth`, with strings drawn from an alphabet that exercises
/// escaping (quotes, backslashes, control characters) and multi-byte
/// UTF-8. Numbers are always finite — the serializer rejects NaN/inf.
[[nodiscard]] json::Value random_json(util::Rng& rng, int max_depth = 4);

/// Random string from the escape-heavy alphabet used by random_json.
[[nodiscard]] std::string random_json_string(util::Rng& rng);

/// Knobs bounding random_fault_plan(); defaults produce survivable but
/// decidedly hostile networks.
struct FaultPlanBounds {
  double max_loss_rate = 0.30;
  double max_duplicate_rate = 0.10;
  double max_latency_jitter = 0.05;  ///< seconds
  int max_outages = 2;
  /// Outage windows start within [0, latest_outage_start] * horizon and
  /// last at most max_outage_fraction * horizon.
  double latest_outage_start = 0.5;
  double max_outage_fraction = 0.2;
};

/// Random deterministic fault schedule for `sites` over a run of
/// `horizon` simulated seconds: a base loss rate, a few per-link loss
/// overrides, duplication, jitter, and up to `max_outages` site outage
/// windows that all end before the horizon (so reconvergence is
/// observable). The plan's own seed is derived from `rng`.
[[nodiscard]] net::FaultPlan random_fault_plan(util::Rng& rng,
                                               const std::vector<std::string>& sites,
                                               double horizon,
                                               const FaultPlanBounds& bounds = {});

}  // namespace aequus::testing
