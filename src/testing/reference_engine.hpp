// Frozen copy of the pre-arena, map-based incremental engine.
//
// This is the FairshareEngine as it stood before the arena/SoA rework
// (DESIGN.md §6h): a pointer-linked working tree plus string-keyed
// std::maps for leaf values and bins. It is kept verbatim (modulo the
// rename) as a *test oracle*: the arena engine must stay bit-identical
// to it for any mutation sequence, and the differential property test
// (tests/engine_arena_differential_test.cpp) plus the bench comparison
// rows drive both side by side. Do not modernize or optimize this file —
// its value is that it does not change.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/decay.hpp"
#include "core/fairshare.hpp"
#include "core/policy.hpp"
#include "core/snapshot.hpp"
#include "core/usage.hpp"

namespace aequus::testing {

class ReferenceMapEngine {
 public:
  explicit ReferenceMapEngine(core::FairshareConfig config = {},
                              core::DecayConfig decay = {});

  void set_policy(const core::PolicyTree& policy);
  void apply_usage(const std::string& user_path, double amount, double bin_time);
  void set_usage(const core::UsageTree& decayed);
  void set_decay_epoch(double now);
  [[nodiscard]] double decay_epoch() const noexcept { return epoch_; }
  void set_decay(core::DecayConfig decay);
  void set_config(core::FairshareConfig config);
  [[nodiscard]] const core::FairshareConfig& config() const noexcept {
    return algorithm_.config();
  }

  core::FairshareSnapshotPtr snapshot();

  [[nodiscard]] core::FairshareSnapshotPtr current() const {
    const std::lock_guard<std::mutex> guard(publish_mutex_);
    return published_;
  }

  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

 private:
  struct Node {
    std::string name;
    std::string path;
    double raw_share = 0.0;
    double policy_share = 0.0;
    double usage_share = 0.0;
    double distance = 0.0;
    double subtree_usage = 0.0;
    bool sum_stale = true;
    bool children_dirty = true;
    bool needs_visit = false;
    bool value_changed = true;
    std::vector<std::unique_ptr<Node>> children;
    std::shared_ptr<const core::FairshareSnapshot::Node> published;

    [[nodiscard]] Node* find_child(const std::string& child_name);
  };

  struct BinnedLeaf {
    std::vector<std::pair<double, double>> bins;
    double cached_epoch = 0.0;
    double cached_value = 0.0;
    bool cached = false;
  };

  bool sync_policy(Node& node, const core::PolicyTree::Node& policy_node);
  void mark_leaf_dirty(const std::string& leaf_path);
  void set_leaf_value(const std::string& leaf_path, double value);
  void refresh(Node& node);
  [[nodiscard]] double subtree_sum(const std::string& path) const;
  bool publish_node(Node& node);

  core::FairshareAlgorithm algorithm_;
  core::Decay decay_;
  double epoch_ = 0.0;
  Node root_;
  int depth_ = 0;
  std::map<std::string, double> leaf_values_;
  std::map<std::string, BinnedLeaf> leaf_bins_;
  std::uint64_t generation_ = 0;
  bool force_republish_ = true;
  mutable std::mutex publish_mutex_;
  core::FairshareSnapshotPtr published_;
};

}  // namespace aequus::testing
