#include "testing/generators.hpp"

#include <algorithm>

namespace aequus::testing {

namespace {

// Fragments chosen to stress the serializer: every escape class, embedded
// quotes/backslashes, and multi-byte UTF-8 sequences that must pass
// through byte-exact.
const std::vector<std::string>& string_fragments() {
  static const std::vector<std::string> kFragments = {
      "plain", "with space", "\"quoted\"", "back\\slash", "tab\there",
      "new\nline", "ret\rurn", "bell\b", "feed\f", "\x01\x1f",
      "éclair",  // é, 2-byte UTF-8
      "λ-calc",  // λ, 2-byte UTF-8
      "→",       // →, 3-byte UTF-8
      "", "/slash/", "0123456789",
  };
  return kFragments;
}

double random_number(util::Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0: return static_cast<double>(rng.uniform_int(-1000000, 1000000));
    case 1: return rng.uniform(-1.0, 1.0);
    case 2: return rng.uniform(-1e15, 1e15);
    default: return rng.normal(0.0, 1e-6);  // subnormal-adjacent magnitudes
  }
}

}  // namespace

std::string random_json_string(util::Rng& rng) {
  const auto& fragments = string_fragments();
  std::string out;
  const int pieces = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < pieces; ++i) {
    out += fragments[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(fragments.size()) - 1))];
  }
  return out;
}

json::Value random_json(util::Rng& rng, int max_depth) {
  // Composite kinds only while depth remains; scalars otherwise.
  const std::int64_t kind = rng.uniform_int(0, max_depth > 0 ? 5 : 3);
  switch (kind) {
    case 0: return json::Value(nullptr);
    case 1: return json::Value(rng.bernoulli(0.5));
    case 2: return json::Value(random_number(rng));
    case 3: return json::Value(random_json_string(rng));
    case 4: {
      json::Array array;
      const int n = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < n; ++i) array.push_back(random_json(rng, max_depth - 1));
      return json::Value(std::move(array));
    }
    default: {
      json::Object object;
      const int n = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < n; ++i) {
        object[random_json_string(rng)] = random_json(rng, max_depth - 1);
      }
      return json::Value(std::move(object));
    }
  }
}

net::FaultPlan random_fault_plan(util::Rng& rng, const std::vector<std::string>& sites,
                                 double horizon, const FaultPlanBounds& bounds) {
  net::FaultPlan plan;
  plan.seed = rng();
  plan.loss_rate = rng.uniform(0.0, bounds.max_loss_rate);
  plan.duplicate_rate = rng.uniform(0.0, bounds.max_duplicate_rate);
  plan.latency_jitter = rng.uniform(0.0, bounds.max_latency_jitter);

  // A few directed links get their own (possibly harsher) loss rate.
  if (sites.size() >= 2) {
    const int overrides = static_cast<int>(rng.uniform_int(0, 2));
    for (int i = 0; i < overrides; ++i) {
      const auto from = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sites.size()) - 1));
      auto to = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sites.size()) - 1));
      if (to == from) to = (to + 1) % sites.size();
      plan.link_loss[{sites[from], sites[to]}] =
          rng.uniform(0.0, std::min(1.0, 2.0 * bounds.max_loss_rate));
    }
  }

  if (!sites.empty()) {
    const int outages = static_cast<int>(rng.uniform_int(0, bounds.max_outages));
    for (int i = 0; i < outages; ++i) {
      net::OutageWindow window;
      window.site = sites[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sites.size()) - 1))];
      window.start = rng.uniform(0.0, bounds.latest_outage_start * horizon);
      window.end =
          window.start + rng.uniform(0.0, bounds.max_outage_fraction * horizon);
      window.end = std::min(window.end, horizon);
      plan.outages.push_back(std::move(window));
    }
  }
  return plan;
}

}  // namespace aequus::testing
