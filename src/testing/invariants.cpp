#include "testing/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/engine.hpp"
#include "core/fairshare.hpp"
#include "core/projection.hpp"
#include "util/strings.hpp"

namespace aequus::testing {

InvariantChecker::InvariantChecker(testbed::Experiment& experiment, InvariantOptions options)
    : experiment_(experiment), options_(options) {
  experiment_.add_tick_hook([this](double now) { check_now(now); });
}

void InvariantChecker::record(double now, const std::string& invariant,
                              const std::string& detail) {
  if (violations_.size() >= options_.max_violations) return;
  violations_.push_back({now, invariant, detail});
}

std::string InvariantChecker::report() const {
  std::string out;
  for (const auto& v : violations_) {
    out += util::format("[t=%.1f] %s: %s\n", v.time, v.invariant.c_str(), v.detail.c_str());
  }
  return out;
}

double InvariantChecker::uss_recorded_total(const testbed::ClusterSite& site) {
  double total = 0.0;
  // histograms() is on the non-const Uss accessor path; the site reference
  // we get from Experiment::sites() is non-const anyway.
  auto& mutable_site = const_cast<testbed::ClusterSite&>(site);
  for (const auto& [user, bins] : mutable_site.aequus().uss().histograms()) {
    (void)user;
    for (const auto& [time, amount] : bins) {
      (void)time;
      total += amount;
    }
  }
  return total;
}

void InvariantChecker::check_now(double now) {
  ++checks_;
  if (violations_.size() >= options_.max_violations) return;
  check_usage_conservation(now);
  check_tree_consistency(now);
  check_priority_monotonicity(now);
}

void InvariantChecker::check_usage_conservation(double now) {
  double recorded = 0.0;
  for (const auto& site : experiment_.sites()) recorded += uss_recorded_total(*site);
  const double completed = experiment_.total_completed_usage();
  // Reports trail completions by one bus hop and may be dropped by faults,
  // so the recorded side can only ever lag. Duplication is the one fault
  // that legitimately inflates it — skip the upper bound then.
  if (experiment_.bus().fault_plan().duplicate_rate > 0.0) return;
  const double bound = completed * (1.0 + options_.conservation_slack);
  if (recorded > bound + 1e-9) {
    record(now, "usage-conservation",
           util::format("recorded %.6f core-s exceeds charged %.6f", recorded, completed));
  }
}

void InvariantChecker::check_tree_consistency(double now) {
  const auto& policy_shares = experiment_.scenario().policy_shares;
  for (const auto& site : experiment_.sites()) {
    const auto& tree = site->aequus().ums().usage_tree();
    double leaf_sum = 0.0;
    for (const auto& [path, amount] : tree.leaves()) {
      if (amount < 0.0) {
        record(now, "tree-consistency",
               util::format("%s: negative usage %.6f at %s", site->name().c_str(), amount,
                            path.c_str()));
      }
      leaf_sum += amount;
      const auto segments = core::split_path(path);
      if (segments.empty() || policy_shares.count(segments.back()) == 0) {
        record(now, "tree-consistency",
               util::format("%s: usage leaf %s does not map to a policy user",
                            site->name().c_str(), path.c_str()));
      }
    }
    const double slack = 1e-9 * std::max(1.0, leaf_sum);
    if (std::fabs(tree.total() - leaf_sum) > slack ||
        std::fabs(tree.usage("/") - leaf_sum) > slack) {
      record(now, "tree-consistency",
             util::format("%s: aggregate mismatch (total %.9f, root %.9f, leaves %.9f)",
                          site->name().c_str(), tree.total(), tree.usage("/"), leaf_sum));
    }
  }
}

void InvariantChecker::check_priority_monotonicity(double now) {
  const auto& scenario = experiment_.scenario();
  const auto& fairshare = experiment_.config().fairshare;
  core::PolicyTree policy;
  for (const auto& [user, share] : scenario.policy_shares) {
    policy.set_share("/" + user, share);
  }
  const bool rank_spaced =
      fairshare.projection.kind == core::ProjectionKind::kDictionaryOrdering;

  for (const auto& site : experiment_.sites()) {
    const auto& usage = site->aequus().ums().usage_tree();
    const core::FairshareTree tree =
        core::FairshareEngine::compute_once(fairshare.algorithm, policy, usage);
    const auto factors = core::project(tree, fairshare.projection);

    struct User {
      std::string name;
      double share;
      double usage;
      double factor;
      std::optional<core::FairshareVector> vector;
    };
    std::vector<User> users;
    for (const auto& [user, share] : scenario.policy_shares) {
      const std::string path = "/" + user;
      const auto factor_it = factors.find(path);
      if (factor_it == factors.end()) continue;
      users.push_back(
          {user, share, usage.usage(path), factor_it->second, tree.vector_for(path)});
    }

    for (std::size_t i = 0; i < users.size(); ++i) {
      for (std::size_t j = i + 1; j < users.size(); ++j) {
        const User& a = users[i];
        const User& b = users[j];
        if (a.share != b.share) continue;
        // Equal target, strictly less usage => at least as high a factor.
        const User& low = a.usage <= b.usage ? a : b;
        const User& high = a.usage <= b.usage ? b : a;
        if (low.usage < high.usage &&
            low.factor < high.factor - options_.monotonicity_epsilon) {
          record(now, "priority-monotonicity",
                 util::format("%s: %s (usage %.3f, factor %.6f) below %s (usage %.3f, "
                              "factor %.6f) despite equal share",
                              site->name().c_str(), low.name.c_str(), low.usage, low.factor,
                              high.name.c_str(), high.usage, high.factor));
        }
        // Identical fairshare vectors must project identically. Dictionary
        // ordering is rank-spaced and ties get distinct ranks by design
        // (Table I: loses proportionality), so it is exempt.
        if (!rank_spaced && a.vector && b.vector &&
            a.vector->compare(*b.vector) == std::strong_ordering::equal &&
            std::fabs(a.factor - b.factor) > options_.monotonicity_epsilon) {
          record(now, "priority-monotonicity",
                 util::format("%s: identical vectors for %s and %s but factors %.9f vs %.9f",
                              site->name().c_str(), a.name.c_str(), b.name.c_str(), a.factor,
                              b.factor));
        }
      }
    }
  }
}

void InvariantChecker::check_reconvergence() {
  const double now = experiment_.simulator().now();
  // Only fully participating sites are required to agree: read-only sites
  // legitimately see extra (their own unshared) usage, local-only sites
  // legitimately see less.
  std::vector<const testbed::ClusterSite*> participants;
  for (const auto& site : experiment_.sites()) {
    const auto& participation = site->spec().participation;
    if (participation.contributes && participation.reads_global) {
      participants.push_back(site.get());
    }
  }
  for (std::size_t i = 0; i < participants.size(); ++i) {
    for (std::size_t j = i + 1; j < participants.size(); ++j) {
      auto& a = const_cast<testbed::ClusterSite&>(*participants[i]);
      auto& b = const_cast<testbed::ClusterSite&>(*participants[j]);
      const auto& leaves_a = a.aequus().ums().usage_tree().leaves();
      const auto& leaves_b = b.aequus().ums().usage_tree().leaves();
      const double scale = std::max(
          {a.aequus().ums().usage_tree().total(), b.aequus().ums().usage_tree().total(), 1e-9});
      std::set<std::string> keys;
      for (const auto& [path, amount] : leaves_a) (void)amount, keys.insert(path);
      for (const auto& [path, amount] : leaves_b) (void)amount, keys.insert(path);
      for (const auto& path : keys) {
        const auto it_a = leaves_a.find(path);
        const auto it_b = leaves_b.find(path);
        const double va = it_a != leaves_a.end() ? it_a->second : 0.0;
        const double vb = it_b != leaves_b.end() ? it_b->second : 0.0;
        if (std::fabs(va - vb) / scale > options_.convergence_tolerance) {
          record(now, "view-reconvergence",
                 util::format("%s vs %s disagree on %s: %.3f vs %.3f (scale %.3f)",
                              a.name().c_str(), b.name().c_str(), path.c_str(), va, vb,
                              scale));
        }
      }
    }
  }
}

void InvariantChecker::check_conservation_final() {
  const double now = experiment_.simulator().now();
  double recorded = 0.0;
  for (const auto& site : experiment_.sites()) recorded += uss_recorded_total(*site);
  const double completed = experiment_.total_completed_usage();
  const double slack = std::max(1.0, completed) * std::max(options_.conservation_slack, 1e-9);
  if (std::fabs(recorded - completed) > slack) {
    record(now, "usage-conservation-final",
           util::format("recorded %.6f core-s != charged %.6f after drain", recorded,
                        completed));
  }
}

}  // namespace aequus::testing
