// Canonical fingerprints for golden determinism assertions.
//
// A fingerprint is a byte-exact textual rendering of a result object:
// every counter and every sample, doubles printed with %.17g so any
// floating-point divergence — even one ULP, even in one sample of one
// series — changes the string. Two runs of the same scenario with the
// same seed must produce identical fingerprints; runs with different
// seeds must not (if they did, the seed would not actually be feeding
// the randomness).
#pragma once

#include <string>

#include "net/service_bus.hpp"
#include "testbed/experiment.hpp"
#include "testbed/sweep.hpp"
#include "util/timeseries.hpp"

namespace aequus::testing {

/// All BusStats counters, in declaration order, as "name=value" lines.
[[nodiscard]] std::string fingerprint(const net::BusStats& stats);

/// Every sample of every series in the set, %.17g.
[[nodiscard]] std::string fingerprint(const util::SeriesSet& series);

/// The whole experiment result: counters, final shares, bus stats, and
/// every recorded series.
[[nodiscard]] std::string fingerprint(const testbed::ExperimentResult& result);

/// Make every task of `spec` carry the determinism fingerprint of its
/// result. Lives here (not in the sweep engine) because the testbed
/// library cannot depend on this one; the sweep takes the fingerprinter
/// as an injected function for exactly this reason.
void attach_fingerprints(testbed::SweepSpec& spec);

}  // namespace aequus::testing
