// Frozen pre-arena engine implementation; see reference_engine.hpp for
// why this file must not change.
#include "testing/reference_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace aequus::testing {

using core::FairshareSnapshot;
using core::FairshareSnapshotPtr;

namespace {

void mark_all_groups_dirty(auto& node) {
  node.children_dirty = true;
  node.needs_visit = true;
  for (auto& child : node.children) mark_all_groups_dirty(*child);
}

}  // namespace

ReferenceMapEngine::Node* ReferenceMapEngine::Node::find_child(const std::string& child_name) {
  for (auto& child : children) {
    if (child != nullptr && child->name == child_name) return child.get();
  }
  return nullptr;
}

ReferenceMapEngine::ReferenceMapEngine(core::FairshareConfig config, core::DecayConfig decay)
    : algorithm_(config), decay_(decay) {
  root_.name.assign(1, '/');
  root_.path = root_.name;
}

void ReferenceMapEngine::set_policy(const core::PolicyTree& policy) {
  sync_policy(root_, policy.root());
  depth_ = policy.depth();
}

bool ReferenceMapEngine::sync_policy(Node& node, const core::PolicyTree::Node& policy_node) {
  bool same_structure = node.children.size() == policy_node.children.size();
  if (same_structure) {
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      if (node.children[i]->name != policy_node.children[i].name) {
        same_structure = false;
        break;
      }
    }
  }
  bool group_changed = false;
  if (!same_structure) {
    std::vector<std::unique_ptr<Node>> next;
    next.reserve(policy_node.children.size());
    for (const auto& policy_child : policy_node.children) {
      std::unique_ptr<Node> child;
      for (auto& old : node.children) {
        if (old != nullptr && old->name == policy_child.name) {
          child = std::move(old);
          break;
        }
      }
      if (child == nullptr) {
        child = std::make_unique<Node>();
        child->name = policy_child.name;
        child->path =
            (node.path.size() == 1 ? node.path : node.path + "/") + policy_child.name;
      }
      next.push_back(std::move(child));
    }
    node.children = std::move(next);
    group_changed = true;
  }
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (node.children[i]->raw_share != policy_node.children[i].share) {
      node.children[i]->raw_share = policy_node.children[i].share;
      group_changed = true;
    }
  }
  if (group_changed) node.children_dirty = true;
  bool any = group_changed;
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    any |= sync_policy(*node.children[i], policy_node.children[i]);
  }
  if (any) node.needs_visit = true;
  return any;
}

void ReferenceMapEngine::mark_leaf_dirty(const std::string& leaf_path) {
  const auto segments = core::split_path(leaf_path);
  Node* node = &root_;
  node->needs_visit = true;
  for (const auto& segment : segments) {
    Node* child = node->find_child(segment);
    if (child == nullptr) break;
    node->children_dirty = true;
    child->sum_stale = true;
    child->needs_visit = true;
    node = child;
  }
}

void ReferenceMapEngine::set_leaf_value(const std::string& leaf_path, double value) {
  const auto it = leaf_values_.find(leaf_path);
  if (value > 0.0) {
    if (it != leaf_values_.end() && it->second == value) return;
    leaf_values_[leaf_path] = value;
  } else {
    if (it == leaf_values_.end()) return;
    leaf_values_.erase(it);
  }
  mark_leaf_dirty(leaf_path);
}

void ReferenceMapEngine::apply_usage(const std::string& user_path, double amount,
                                     double bin_time) {
  if (!std::isfinite(amount) || amount < 0.0) {
    throw std::invalid_argument("ReferenceMapEngine::apply_usage: bad amount");
  }
  if (amount == 0.0) return;
  const std::string path = core::join_path(core::split_path(user_path));
  BinnedLeaf& leaf = leaf_bins_[path];
  leaf.bins.emplace_back(bin_time, amount);
  leaf.cached_value = decay_.decayed_total(leaf.bins, epoch_);
  leaf.cached_epoch = epoch_;
  leaf.cached = true;
  set_leaf_value(path, leaf.cached_value);
}

void ReferenceMapEngine::set_usage(const core::UsageTree& decayed) {
  leaf_bins_.clear();
  const auto& next = decayed.leaves();
  auto it = leaf_values_.begin();
  auto jt = next.begin();
  while (it != leaf_values_.end() || jt != next.end()) {
    if (jt == next.end() || (it != leaf_values_.end() && it->first < jt->first)) {
      mark_leaf_dirty(it->first);
      ++it;
    } else if (it == leaf_values_.end() || jt->first < it->first) {
      mark_leaf_dirty(jt->first);
      ++jt;
    } else {
      if (it->second != jt->second) mark_leaf_dirty(it->first);
      ++it;
      ++jt;
    }
  }
  leaf_values_ = next;
}

void ReferenceMapEngine::set_decay_epoch(double now) {
  epoch_ = now;
  for (auto& [path, leaf] : leaf_bins_) {
    if (leaf.cached && leaf.cached_epoch == now) continue;
    const double value = decay_.decayed_total(leaf.bins, now);
    leaf.cached_epoch = now;
    leaf.cached = true;
    leaf.cached_value = value;
    set_leaf_value(path, value);
  }
}

void ReferenceMapEngine::set_decay(core::DecayConfig decay) {
  decay_ = core::Decay(decay);
  for (auto& [path, leaf] : leaf_bins_) leaf.cached = false;
  set_decay_epoch(epoch_);
}

void ReferenceMapEngine::set_config(core::FairshareConfig config) {
  algorithm_ = core::FairshareAlgorithm(config);
  mark_all_groups_dirty(root_);
  force_republish_ = true;
}

double ReferenceMapEngine::subtree_sum(const std::string& path) const {
  double total = 0.0;
  for (auto it = leaf_values_.lower_bound(path);
       it != leaf_values_.end() && it->first.compare(0, path.size(), path) == 0; ++it) {
    const std::string& leaf = it->first;
    if (leaf.size() == path.size() || leaf[path.size()] == '/') total += it->second;
  }
  return total;
}

void ReferenceMapEngine::refresh(Node& node) {
  if (node.children_dirty) {
    double share_total = 0.0;
    for (const auto& child : node.children) {
      share_total += std::max(child->raw_share, 0.0);
    }
    double usage_total = 0.0;
    for (auto& child : node.children) {
      if (child->sum_stale) {
        child->subtree_usage = subtree_sum(child->path);
        child->sum_stale = false;
      }
      usage_total += child->subtree_usage;
    }
    for (auto& child : node.children) {
      const double policy_share =
          share_total > 0.0 ? std::max(child->raw_share, 0.0) / share_total : 0.0;
      const double usage_share = usage_total > 0.0 ? child->subtree_usage / usage_total : 0.0;
      const double distance = algorithm_.node_distance(policy_share, usage_share);
      if (policy_share != child->policy_share || usage_share != child->usage_share ||
          distance != child->distance) {
        child->policy_share = policy_share;
        child->usage_share = usage_share;
        child->distance = distance;
        child->value_changed = true;
      }
    }
    node.children_dirty = false;
  }
  for (auto& child : node.children) {
    if (child->needs_visit || child->children_dirty) refresh(*child);
  }
}

bool ReferenceMapEngine::publish_node(Node& node) {
  bool child_republished = false;
  for (auto& child : node.children) {
    if (child->needs_visit || child->value_changed || child->published == nullptr) {
      child_republished |= publish_node(*child);
    }
  }
  node.needs_visit = false;
  const bool rebuild = node.value_changed || node.published == nullptr || child_republished;
  node.value_changed = false;
  if (!rebuild) return false;
  auto snapshot_node = std::make_shared<FairshareSnapshot::Node>();
  snapshot_node->name = node.name;
  snapshot_node->policy_share = node.policy_share;
  snapshot_node->usage_share = node.usage_share;
  snapshot_node->distance = node.distance;
  snapshot_node->children.reserve(node.children.size());
  for (const auto& child : node.children) {
    snapshot_node->children.push_back(child->published);
  }
  node.published = std::move(snapshot_node);
  return true;
}

FairshareSnapshotPtr ReferenceMapEngine::snapshot() {
  const double root_usage = leaf_values_.empty() ? 0.0 : 1.0;
  if (root_.policy_share != 1.0 || root_.usage_share != root_usage ||
      root_.distance != 0.0) {
    root_.policy_share = 1.0;
    root_.usage_share = root_usage;
    root_.distance = 0.0;
    root_.value_changed = true;
  }
  const bool dirty = root_.needs_visit || root_.children_dirty || root_.value_changed ||
                     force_republish_;
  if (dirty || current() == nullptr) {
    refresh(root_);
    const bool changed = publish_node(root_);
    if (changed || force_republish_ || current() == nullptr) {
      ++generation_;
      auto next = std::make_shared<const FairshareSnapshot>(
          root_.published, generation_, algorithm_.config().resolution, depth_);
      const std::lock_guard<std::mutex> guard(publish_mutex_);
      published_ = std::move(next);
    }
    force_republish_ = false;
  }
  return current();
}

}  // namespace aequus::testing
