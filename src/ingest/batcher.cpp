#include "ingest/batcher.hpp"

#include <utility>

namespace aequus::ingest {

DeltaLog::DeltaLog(sim::Simulator& simulator, net::ServiceBus& bus, std::string site,
                   std::string sink_address, IngestConfig config, obs::Observability obs)
    : simulator_(simulator),
      bus_(bus),
      site_(std::move(site)),
      sink_(std::move(sink_address)),
      config_(config),
      obs_(obs),
      queue_(config.queue_capacity, config.overflow, config.bin_width) {
  if (obs_.registry != nullptr) {
    const std::string prefix = site_ + ".ingest.";
    dropped_global_ = &obs_.registry->counter("ingest.dropped_deltas");
    dropped_site_ = &obs_.registry->counter(prefix + "dropped_deltas");
    batches_ = &obs_.registry->counter(prefix + "batches_shipped");
    records_ = &obs_.registry->counter(prefix + "records_shipped");
    backpressure_ = &obs_.registry->counter(prefix + "backpressure_flushes");
    depth_gauge_ = &obs_.registry->gauge(prefix + "queue_depth");
  }
  if (config_.batch_interval > 0.0) {
    flush_task_ = simulator_.schedule_periodic(config_.batch_interval, config_.batch_interval,
                                               [this] { flush_now(); });
  }
}

DeltaLog::~DeltaLog() {
  flush_task_.cancel();
}

void DeltaLog::set_depth_gauge() {
  if (depth_gauge_ != nullptr) depth_gauge_->set(static_cast<double>(queue_.size()));
}

void DeltaLog::append(const std::string& user, double amount) {
  append_at(user, amount, simulator_.now());
}

void DeltaLog::append_at(const std::string& user, double amount, double time) {
  if (amount <= 0.0 || user.empty()) return;
  UsageDelta delta{user, time, amount};
  auto result = queue_.push(delta);
  if (result == BoundedDeltaQueue::Append::kWouldBlock) {
    // Block-producer backpressure: the producer stalls while the log
    // drains synchronously, then the append goes through. Modeled as an
    // immediate flush — visible in the counters, lossless by contract.
    ++stats_.backpressure_flushes;
    obs::bump(backpressure_);
    flush_now();
    result = queue_.push(std::move(delta));
  }
  if (result == BoundedDeltaQueue::Append::kDroppedOldest) {
    // A merge-less eviction: usage was genuinely shed. Overflow merges
    // (kCoalesced) conserve every amount and stay out of this counter so
    // the conservation auto-skip only fires on real loss.
    ++stats_.dropped_deltas;
    obs::bump(dropped_global_);
    obs::bump(dropped_site_);
  } else if (result == BoundedDeltaQueue::Append::kCoalesced) {
    ++stats_.coalesced_records;
  }
  ++stats_.appended;
  set_depth_gauge();
}

void DeltaLog::flush_now() {
  while (!queue_.empty()) {
    ship(queue_.drain(config_.max_batch_records));
  }
  set_depth_gauge();
}

void DeltaLog::ship(std::vector<UsageDelta> records) {
  if (records.empty()) return;
  const std::size_t raw = records.size();
  std::vector<UsageDelta> merged = coalesce(records, config_.bin_width);
  stats_.coalesced_records += raw - merged.size();

  DeltaBatch batch;
  batch.source = site_;
  batch.seq = next_seq_++;
  batch.deltas = std::move(merged);

  // One span per batch: the bus send (and its data leg) hang underneath,
  // so the analyzer sees one ingestion hop per envelope instead of one
  // per job completion.
  obs::SpanContext span;
  if (obs_.tracer != nullptr && obs_.tracer->enabled()) {
    span = obs_.tracer->begin_span(simulator_.now(), site_, "ingest",
                                   "batch:" + std::to_string(batch.seq));
  }
  obs::SpanScope scope(obs_.tracer, span);
  const std::size_t shipped = batch.deltas.size();
  bus_.send_batch(site_, sink_, batch.to_json(), shipped);
  ++stats_.batches_shipped;
  stats_.records_shipped += shipped;
  obs::bump(batches_);
  obs::bump(records_, shipped);
  if (span.valid()) {
    obs_.tracer->end_span(simulator_.now(), span, site_, "ingest", "shipped",
                          static_cast<double>(shipped));
  }
}

}  // namespace aequus::ingest
