// Receiver-side batch application: idempotency and engine transactions.
//
// The bus may duplicate inter-site legs (FaultPlan) and jitter can
// reorder them, so batch application must be exactly-once per
// (source, seq) regardless of delivery order or multiplicity. The
// BatchApplier keeps, per source, the set of admitted sequence numbers
// above a pruned floor: duplicates are rejected, late out-of-order
// arrivals (seq n after n+1) are still admitted — rejecting them would
// turn reordering into data loss.
//
// EngineSink is the FCS-side seam: it commits one admitted batch as a
// single core::FairnessBackend transaction — one apply_usage_batch()
// call and exactly one publish() — instead of N independent updates
// each paying a snapshot.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "core/backend.hpp"
#include "ingest/delta.hpp"

namespace aequus::ingest {

/// Exactly-once admission of (source, seq) pairs.
class BatchApplier {
 public:
  /// True when the pair was never seen before (caller applies the batch);
  /// false for a duplicate delivery. Seen-sets are pruned below the
  /// longest contiguous prefix, so memory stays proportional to the
  /// reorder window, not the stream length.
  bool admit(const std::string& source, std::uint64_t seq);

  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint64_t duplicates() const noexcept { return duplicates_; }
  /// Highest contiguously-admitted sequence for a source (0 = none).
  [[nodiscard]] std::uint64_t contiguous_floor(const std::string& source) const;

 private:
  struct SourceState {
    std::uint64_t floor = 0;          ///< every seq <= floor was admitted
    std::set<std::uint64_t> beyond;   ///< admitted seqs > floor (reorder gap)
  };
  std::map<std::string, SourceState> sources_;
  std::uint64_t admitted_ = 0;
  std::uint64_t duplicates_ = 0;
};

/// Maps a grid user to its engine leaf path ("/user" by default; the FCS
/// resolves through the site policy).
using PathResolver = std::function<std::string(const std::string&)>;

struct EngineSinkStats {
  std::uint64_t committed_batches = 0;
  std::uint64_t duplicate_batches = 0;
  std::uint64_t applied_records = 0;
};

/// Commits admitted batches into a FairnessBackend, one transaction (and
/// one snapshot generation at most) per batch.
class EngineSink {
 public:
  explicit EngineSink(core::FairnessBackend& backend, PathResolver path_of = {});

  /// Apply `batch` unless it is a duplicate. Returns the snapshot
  /// published after the transaction (null for rejected duplicates).
  core::FairshareSnapshotPtr commit(const DeltaBatch& batch);

  [[nodiscard]] const EngineSinkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] BatchApplier& applier() noexcept { return applier_; }

 private:
  core::FairnessBackend& backend_;
  PathResolver path_of_;
  BatchApplier applier_;
  EngineSinkStats stats_;
};

}  // namespace aequus::ingest
