#include "ingest/delta.hpp"

#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

namespace aequus::ingest {

std::vector<UsageDelta> coalesce(const std::vector<UsageDelta>& deltas, double bin_width) {
  std::vector<UsageDelta> merged;
  merged.reserve(deltas.size());
  // (user, bin) -> index into `merged`; first appearance fixes the order.
  std::map<std::pair<std::string, double>, std::size_t> index;
  for (const UsageDelta& delta : deltas) {
    const auto key = std::make_pair(delta.user, bin_of(delta.time, bin_width));
    const auto it = index.find(key);
    if (it == index.end()) {
      index.emplace(key, merged.size());
      merged.push_back(delta);
    } else {
      merged[it->second].amount += delta.amount;
    }
  }
  return merged;
}

double DeltaBatch::total() const noexcept {
  double sum = 0.0;
  for (const UsageDelta& delta : deltas) sum += delta.amount;
  return sum;
}

json::Value DeltaBatch::to_json() const {
  json::Array records;
  records.reserve(deltas.size());
  for (const UsageDelta& delta : deltas) {
    records.push_back(json::Array{json::Value(delta.user), json::Value(delta.time),
                                  json::Value(delta.amount)});
  }
  json::Object envelope;
  envelope["op"] = kBatchOp;
  envelope["source"] = source;
  envelope["seq"] = static_cast<double>(seq);
  envelope["deltas"] = std::move(records);
  return json::Value(std::move(envelope));
}

DeltaBatch DeltaBatch::from_json(const json::Value& value) {
  DeltaBatch batch;
  if (value.get_string("op") != kBatchOp) {
    throw std::invalid_argument("DeltaBatch: op is not " + std::string(kBatchOp));
  }
  batch.source = value.get_string("source");
  if (batch.source.empty()) throw std::invalid_argument("DeltaBatch: missing source");
  const double seq = value.get_number("seq", -1.0);
  if (seq < 1.0) throw std::invalid_argument("DeltaBatch: bad seq");
  batch.seq = static_cast<std::uint64_t>(seq);
  const json::Value& records = value.at("deltas");
  batch.deltas.reserve(records.size());
  for (const json::Value& record : records.as_array()) {
    if (record.size() != 3) throw std::invalid_argument("DeltaBatch: bad record arity");
    UsageDelta delta;
    delta.user = record.at(0).as_string();
    delta.time = record.at(1).as_number();
    delta.amount = record.at(2).as_number();
    if (delta.user.empty()) throw std::invalid_argument("DeltaBatch: empty user");
    if (!(delta.amount > 0.0)) throw std::invalid_argument("DeltaBatch: non-positive amount");
    batch.deltas.push_back(std::move(delta));
  }
  return batch;
}

}  // namespace aequus::ingest
