// Bounded, deterministic delta queue with an explicit overflow policy.
//
// Producers (RM completion plugins via the client) append UsageDelta
// records; the DeltaLog drains them on its flush cadence. The queue is
// strictly FIFO and single-threaded (the simulator owns all execution),
// so determinism comes for free; the bound and its overflow policy are
// the interesting part:
//
//   kBlockProducer — a full queue refuses the append (kWouldBlock). The
//     DeltaLog models the stalled producer by flushing synchronously and
//     retrying, so no record is ever lost; the stall is accounted in
//     `ingest.backpressure_flushes`.
//   kDropOldest — a full queue first tries to *coalesce*: if the incoming
//     record (or the would-be-evicted oldest one) can merge into a queued
//     record of the same (user, bin) — exactly the merge ship-time
//     coalesce() would perform anyway — no information is lost and
//     nothing is counted dropped. Only when no merge is possible is the
//     oldest record genuinely shed, counted in `ingest.dropped_deltas`
//     (the trace.dropped_events precedent: shed load visibly, never
//     silently). Counting only real sheds keeps the scenario runner's
//     conservation auto-skip accurate under multi-producer overflow.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "ingest/delta.hpp"

namespace aequus::ingest {

enum class OverflowPolicy {
  kBlockProducer,  ///< full queue refuses appends (producer must flush)
  kDropOldest,     ///< full queue evicts the oldest record
};

class BoundedDeltaQueue {
 public:
  enum class Append {
    kAccepted,      ///< stored
    kCoalesced,     ///< merged into a queued same-(user, bin) record; nothing lost
    kDroppedOldest, ///< stored; the oldest record was evicted and could not merge
    kWouldBlock,    ///< refused (kBlockProducer and the queue is full)
  };

  /// `bin_width` scopes overflow coalescing exactly like ship-time
  /// coalesce(): <= 0 merges only bit-equal record times.
  explicit BoundedDeltaQueue(std::size_t capacity, OverflowPolicy policy,
                             double bin_width = 0.0)
      : capacity_(capacity > 0 ? capacity : 1), policy_(policy), bin_width_(bin_width) {}

  Append push(UsageDelta delta) {
    if (queue_.size() >= capacity_) {
      if (policy_ == OverflowPolicy::kBlockProducer) return Append::kWouldBlock;
      // Overflow coalescing, cheapest first: fold the incoming record
      // into a queued sibling (same merge ship() would do), else evict
      // the oldest but fold *it* into a sibling. Amounts are conserved
      // in both cases; only a merge-less eviction sheds information.
      if (merge_into_queue(delta, 0)) return Append::kCoalesced;
      UsageDelta oldest = std::move(queue_.front());
      queue_.pop_front();
      const bool preserved = merge_into_queue(oldest, 0);
      if (!preserved) ++dropped_;
      queue_.push_back(std::move(delta));
      return preserved ? Append::kCoalesced : Append::kDroppedOldest;
    }
    queue_.push_back(std::move(delta));
    return Append::kAccepted;
  }

  /// Pop up to `max_records` oldest records (0 = everything).
  [[nodiscard]] std::vector<UsageDelta> drain(std::size_t max_records = 0) {
    const std::size_t take =
        max_records == 0 ? queue_.size() : std::min(max_records, queue_.size());
    std::vector<UsageDelta> out;
    out.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] OverflowPolicy policy() const noexcept { return policy_; }
  /// Records genuinely shed by kDropOldest over the queue's lifetime —
  /// evictions that could not coalesce into any queued record. Evictions
  /// absorbed by a same-(user, bin) merge are NOT counted: ship-time
  /// coalesce() would have merged them anyway, so no usage was lost.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  /// Fold `delta` into the first queued record with the same (user, bin),
  /// keeping the queued record's (earlier) time like coalesce() does.
  /// Linear in queue size, so sustained kDropOldest overflow costs
  /// O(capacity) per append (twice when the incoming record can't merge
  /// and the evicted one is retried). Fine for the bounded capacities the
  /// shippers use; a (user, bin) -> index map is the upgrade path if
  /// large-capacity overflow shows up in profiles.
  bool merge_into_queue(const UsageDelta& delta, std::size_t from) {
    const double bin = bin_of(delta.time, bin_width_);
    for (std::size_t i = from; i < queue_.size(); ++i) {
      UsageDelta& candidate = queue_[i];
      if (candidate.user == delta.user && bin_of(candidate.time, bin_width_) == bin) {
        candidate.amount += delta.amount;
        return true;
      }
    }
    return false;
  }

  std::size_t capacity_;
  OverflowPolicy policy_;
  double bin_width_ = 0.0;
  std::deque<UsageDelta> queue_;
  std::uint64_t dropped_ = 0;
};

}  // namespace aequus::ingest
