// Bounded, deterministic delta queue with an explicit overflow policy.
//
// Producers (RM completion plugins via the client) append UsageDelta
// records; the DeltaLog drains them on its flush cadence. The queue is
// strictly FIFO and single-threaded (the simulator owns all execution),
// so determinism comes for free; the bound and its overflow policy are
// the interesting part:
//
//   kBlockProducer — a full queue refuses the append (kWouldBlock). The
//     DeltaLog models the stalled producer by flushing synchronously and
//     retrying, so no record is ever lost; the stall is accounted in
//     `ingest.backpressure_flushes`.
//   kDropOldest — a full queue evicts its oldest record to admit the new
//     one, counted in `ingest.dropped_deltas` (the trace.dropped_events
//     precedent: shed load visibly, never silently).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "ingest/delta.hpp"

namespace aequus::ingest {

enum class OverflowPolicy {
  kBlockProducer,  ///< full queue refuses appends (producer must flush)
  kDropOldest,     ///< full queue evicts the oldest record
};

class BoundedDeltaQueue {
 public:
  enum class Append {
    kAccepted,      ///< stored
    kDroppedOldest, ///< stored; the oldest record was evicted to make room
    kWouldBlock,    ///< refused (kBlockProducer and the queue is full)
  };

  explicit BoundedDeltaQueue(std::size_t capacity, OverflowPolicy policy)
      : capacity_(capacity > 0 ? capacity : 1), policy_(policy) {}

  Append push(UsageDelta delta) {
    if (queue_.size() >= capacity_) {
      if (policy_ == OverflowPolicy::kBlockProducer) return Append::kWouldBlock;
      queue_.pop_front();
      ++dropped_;
      queue_.push_back(std::move(delta));
      return Append::kDroppedOldest;
    }
    queue_.push_back(std::move(delta));
    return Append::kAccepted;
  }

  /// Pop up to `max_records` oldest records (0 = everything).
  [[nodiscard]] std::vector<UsageDelta> drain(std::size_t max_records = 0) {
    const std::size_t take =
        max_records == 0 ? queue_.size() : std::min(max_records, queue_.size());
    std::vector<UsageDelta> out;
    out.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] OverflowPolicy policy() const noexcept { return policy_; }
  /// Records evicted by kDropOldest over the queue's lifetime.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  std::size_t capacity_;
  OverflowPolicy policy_;
  std::deque<UsageDelta> queue_;
  std::uint64_t dropped_ = 0;
};

}  // namespace aequus::ingest
