// Streaming usage ingestion: the delta-log wire format (§ DESIGN.md 6g).
//
// Every job completion used to flow as one RPC through the client into
// the site USS. For serving-scale completion rates (the Equinox problem)
// that is one bus envelope per job; the paper's own update-interval
// experiments (fig11) show fairness quality is robust to coalesced,
// delayed usage propagation, so batching is safe by design.
//
// A UsageDelta is one usage record: (grid user, record time, amount).
// The record time travels with the delta so the receiver bins by when
// the usage *happened*, not when the batch arrived — a batch delayed by
// its cadence must land in the same histogram bins the per-delta path
// would have used, or batched and unbatched runs could never converge
// to identical fairshare state.
//
// A DeltaBatch is the envelope: a source site, a per-source sequence
// number (the idempotency key — the bus may duplicate inter-site legs),
// and the coalesced records. Wire form, one compact array per record:
//   {"op":"report_batch", "source":"siteA", "seq":7,
//    "deltas":[["U1", 120.0, 40.0], ...]}          // [user, time, amount]
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace aequus::ingest {

/// Bus op naming the batch envelope (shared by USS and FCS seams).
inline constexpr const char* kBatchOp = "report_batch";

/// One usage record: `amount` core-seconds consumed by `user`, recorded
/// at simulated time `time` (the receiver derives the histogram bin).
struct UsageDelta {
  std::string user;
  double time = 0.0;
  double amount = 0.0;
};

/// Histogram bin a record time falls into (the USS uses the same floor).
/// `bin_width` <= 0 keeps the raw time: only bit-equal times share a bin.
[[nodiscard]] inline double bin_of(double time, double bin_width) noexcept {
  if (bin_width <= 0.0) return time;
  return std::floor(time / bin_width) * bin_width;
}

/// Merge same-(user, bin) deltas by summing amounts, preserving the
/// first-appearance order of each key — application order stays
/// deterministic and FIFO-shaped regardless of how much coalescing
/// happened. `bin_width` <= 0 coalesces only records with bit-equal
/// times. The merged record keeps the *first* record's time (the
/// earliest, since producers append in time order), which lands in the
/// same bin as every coalesced sibling by construction.
[[nodiscard]] std::vector<UsageDelta> coalesce(const std::vector<UsageDelta>& deltas,
                                               double bin_width);

/// The batch envelope: records from one source site under one sequence
/// number. Sequence numbers start at 1 and increase per shipped batch,
/// so receivers can discard bus-duplicated deliveries.
struct DeltaBatch {
  std::string source;
  std::uint64_t seq = 0;
  std::vector<UsageDelta> deltas;

  /// Sum of all record amounts (conservation bookkeeping).
  [[nodiscard]] double total() const noexcept;

  /// Full payload including {"op":"report_batch"}.
  [[nodiscard]] json::Value to_json() const;

  /// Strict decode; throws std::invalid_argument on a malformed envelope.
  [[nodiscard]] static DeltaBatch from_json(const json::Value& value);
};

}  // namespace aequus::ingest
