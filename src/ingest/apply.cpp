#include "ingest/apply.hpp"

namespace aequus::ingest {

bool BatchApplier::admit(const std::string& source, std::uint64_t seq) {
  if (seq == 0) return false;  // sequences start at 1
  SourceState& state = sources_[source];
  if (seq <= state.floor || state.beyond.count(seq) > 0) {
    ++duplicates_;
    return false;
  }
  state.beyond.insert(seq);
  // Advance the contiguous floor through any gap the arrival just closed.
  auto it = state.beyond.begin();
  while (it != state.beyond.end() && *it == state.floor + 1) {
    ++state.floor;
    it = state.beyond.erase(it);
  }
  ++admitted_;
  return true;
}

std::uint64_t BatchApplier::contiguous_floor(const std::string& source) const {
  const auto it = sources_.find(source);
  return it != sources_.end() ? it->second.floor : 0;
}

EngineSink::EngineSink(core::FairnessBackend& backend, PathResolver path_of)
    : backend_(backend), path_of_(std::move(path_of)) {
  if (!path_of_) {
    path_of_ = [](const std::string& user) { return "/" + user; };
  }
}

core::FairshareSnapshotPtr EngineSink::commit(const DeltaBatch& batch) {
  if (!applier_.admit(batch.source, batch.seq)) {
    ++stats_.duplicate_batches;
    return nullptr;
  }
  std::vector<core::UsageSample> samples;
  samples.reserve(batch.deltas.size());
  for (const UsageDelta& delta : batch.deltas) {
    samples.push_back({path_of_(delta.user), delta.amount, delta.time});
  }
  backend_.apply_usage_batch(samples);
  stats_.applied_records += batch.deltas.size();
  ++stats_.committed_batches;
  // The transaction boundary: one publish per batch, however many
  // records it carried.
  return backend_.publish();
}

}  // namespace aequus::ingest
