// The per-site delta log: bounded queue + coalescing batcher.
//
// RMs (through the client) append usage deltas; a periodic flush task
// drains the queue, coalesces same-(user, bin) records, and ships one
// sequence-numbered batch envelope per `max_batch_records` chunk to the
// sink address (normally the local USS). The flush runs under its own
// span, so the trace analyzer sees one bus hop per batch where the
// per-RPC path produced one hop per job completion.
//
// Backpressure: with kBlockProducer a full queue triggers an immediate
// synchronous flush (the producer stalls until the log drains — no
// record is ever lost); with kDropOldest the queue first coalesces
// same-(user, bin) records in place (lossless, the merge ship() would
// do anyway) and only counts a delta dropped when an eviction cannot
// merge anywhere. Both are accounted in the obs registry:
//   ingest.dropped_deltas            (global, trace.dropped_events style)
//   <site>.ingest.dropped_deltas
//   <site>.ingest.queue_depth        (gauge, sampled per append/flush)
//   <site>.ingest.batches_shipped / records_shipped / backpressure_flushes
#pragma once

#include <cstdint>
#include <string>

#include "ingest/queue.hpp"
#include "net/service_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace aequus::ingest {

/// Knobs for the batched ingestion path; `enabled` false keeps the
/// legacy one-RPC-per-completion behavior byte-identical.
struct IngestConfig {
  bool enabled = false;
  double batch_interval = 5.0;         ///< flush cadence [s]
  std::size_t max_batch_records = 512; ///< coalesced records per envelope
  std::size_t queue_capacity = 4096;   ///< bounded queue size
  OverflowPolicy overflow = OverflowPolicy::kBlockProducer;
  /// Coalescing granularity; must match the receiver's histogram
  /// bin_width so merged records land in the bins their constituents
  /// would have (the testbed plumbs uss_bin_width here).
  double bin_width = 60.0;
};

/// Local accounting mirror of the registry counters (valid without
/// observability attached).
struct DeltaLogStats {
  std::uint64_t appended = 0;            ///< deltas accepted into the queue
  std::uint64_t dropped_deltas = 0;      ///< records actually shed (merge-less evictions)
  std::uint64_t backpressure_flushes = 0;///< synchronous flushes forced by a full queue
  std::uint64_t batches_shipped = 0;     ///< envelopes sent
  std::uint64_t records_shipped = 0;     ///< coalesced records sent
  std::uint64_t coalesced_records = 0;   ///< raw records merged away (at ship or overflow)
};

class DeltaLog {
 public:
  DeltaLog(sim::Simulator& simulator, net::ServiceBus& bus, std::string site,
           std::string sink_address, IngestConfig config, obs::Observability obs = {});
  ~DeltaLog();
  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  /// Append one usage record, stamped with the current simulated time.
  void append(const std::string& user, double amount);

  /// Append with an explicit record time (tests and replays).
  void append_at(const std::string& user, double amount, double time);

  /// Drain the queue now: coalesce and ship every queued record in
  /// `max_batch_records` chunks (zero queued records ships nothing).
  void flush_now();

  [[nodiscard]] std::size_t depth() const noexcept { return queue_.size(); }
  [[nodiscard]] const DeltaLogStats& stats() const noexcept { return stats_; }
  /// Sequence number the next shipped batch will carry.
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  [[nodiscard]] const IngestConfig& config() const noexcept { return config_; }

 private:
  void ship(std::vector<UsageDelta> records);
  void set_depth_gauge();

  sim::Simulator& simulator_;
  net::ServiceBus& bus_;
  std::string site_;
  std::string sink_;
  IngestConfig config_;
  obs::Observability obs_;
  BoundedDeltaQueue queue_;
  DeltaLogStats stats_;
  std::uint64_t next_seq_ = 1;
  sim::EventHandle flush_task_;
  obs::Counter* dropped_global_ = nullptr;
  obs::Counter* dropped_site_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Counter* records_ = nullptr;
  obs::Counter* backpressure_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
};

}  // namespace aequus::ingest
