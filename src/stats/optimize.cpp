#include "stats/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace aequus::stats {

OptimizeResult nelder_mead(const std::function<double(const std::vector<double>&)>& objective,
                           std::vector<double> start, const NelderMeadOptions& options) {
  const std::size_t n = start.size();
  OptimizeResult result;
  if (n == 0) {
    result.x = std::move(start);
    result.value = objective(result.x);
    result.converged = true;
    return result;
  }

  constexpr double alpha = 1.0;   // reflection
  constexpr double gamma = 2.0;   // expansion
  constexpr double rho = 0.5;     // contraction
  constexpr double sigma = 0.5;   // shrink

  // Build the initial simplex around the start point.
  std::vector<std::vector<double>> simplex(n + 1, start);
  for (std::size_t i = 0; i < n; ++i) {
    double step = options.initial_step * std::max(std::fabs(start[i]), 1.0);
    if (step == 0.0) step = options.initial_step;
    simplex[i + 1][i] += step;
  }
  std::vector<double> values(n + 1);
  for (std::size_t i = 0; i <= n; ++i) values[i] = objective(simplex[i]);

  const auto order = [&] {
    std::vector<std::size_t> idx(n + 1);
    for (std::size_t i = 0; i <= n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    std::vector<std::vector<double>> new_simplex(n + 1);
    std::vector<double> new_values(n + 1);
    for (std::size_t i = 0; i <= n; ++i) {
      new_simplex[i] = std::move(simplex[idx[i]]);
      new_values[i] = values[idx[i]];
    }
    simplex = std::move(new_simplex);
    values = std::move(new_values);
  };

  int iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    order();

    // Convergence: spread of function values across the simplex.
    const double spread = std::fabs(values[n] - values[0]);
    const double scale = std::fabs(values[0]) + std::fabs(values[n]) + 1e-30;
    if (std::isfinite(values[0]) && spread <= options.tolerance * scale) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    const auto blend = [&](const std::vector<double>& from, double factor) {
      std::vector<double> out(n);
      for (std::size_t d = 0; d < n; ++d) out[d] = centroid[d] + factor * (from[d] - centroid[d]);
      return out;
    };

    const std::vector<double> reflected = blend(simplex[n], -alpha);
    const double reflected_value = objective(reflected);

    if (reflected_value < values[0]) {
      const std::vector<double> expanded = blend(simplex[n], -alpha * gamma);
      const double expanded_value = objective(expanded);
      if (expanded_value < reflected_value) {
        simplex[n] = expanded;
        values[n] = expanded_value;
      } else {
        simplex[n] = reflected;
        values[n] = reflected_value;
      }
      continue;
    }
    if (reflected_value < values[n - 1]) {
      simplex[n] = reflected;
      values[n] = reflected_value;
      continue;
    }

    // Contraction (outside if reflected is better than worst, else inside).
    const bool outside = reflected_value < values[n];
    const std::vector<double> contracted =
        outside ? blend(reflected, rho) : blend(simplex[n], rho);
    const double contracted_value = objective(contracted);
    if (contracted_value < std::min(reflected_value, values[n])) {
      simplex[n] = contracted;
      values[n] = contracted_value;
      continue;
    }

    // Shrink toward the best vertex.
    for (std::size_t i = 1; i <= n; ++i) {
      for (std::size_t d = 0; d < n; ++d) {
        simplex[i][d] = simplex[0][d] + sigma * (simplex[i][d] - simplex[0][d]);
      }
      values[i] = objective(simplex[i]);
    }
  }

  order();
  result.x = simplex[0];
  result.value = values[0];
  result.iterations = iteration;
  return result;
}

}  // namespace aequus::stats
