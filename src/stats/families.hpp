// The 18 distribution families used for workload model fitting (§IV-2 of
// the paper: "modeling each data set using a set of 18 different
// distributions ... such as normal, Weibull, Generalized Extreme Value
// (GEV), Birnbaum-Saunders (BS), Pareto, Burr, and Log-normal").
//
// Parameterizations follow the Matlab conventions the paper used, so that
// Table II/III entries like GEV(k, sigma, mu) and Burr(alpha, c, k) read
// identically.
//
// All constructors validate parameters and throw std::invalid_argument on
// out-of-domain values.
#pragma once

#include "stats/distribution.hpp"

namespace aequus::stats {

/// Normal(mu, sigma), sigma > 0.
class Normal final : public Distribution {
 public:
  Normal(double mu, double sigma);
  [[nodiscard]] std::string family() const override { return "Normal"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double icdf(double p) const override;
  [[nodiscard]] double sample(util::Rng& rng) const override;
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] double mu() const noexcept { return mu_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  double mu_, sigma_;
};

/// LogNormal(mu, sigma): log X ~ Normal(mu, sigma). Support x > 0.
class LogNormal final : public Distribution {
 public:
  LogNormal(double mu, double sigma);
  [[nodiscard]] std::string family() const override { return "LogNormal"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double icdf(double p) const override;
  [[nodiscard]] double support_lo() const override { return 0.0; }
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double mu_, sigma_;
};

/// Uniform(a, b), a < b.
class Uniform final : public Distribution {
 public:
  Uniform(double a, double b);
  [[nodiscard]] std::string family() const override { return "Uniform"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double icdf(double p) const override;
  [[nodiscard]] double support_lo() const override { return a_; }
  [[nodiscard]] double support_hi() const override { return b_; }
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double a_, b_;
};

/// Exponential(mu): mean mu > 0 (Matlab convention). Support x >= 0.
class Exponential final : public Distribution {
 public:
  explicit Exponential(double mu);
  [[nodiscard]] std::string family() const override { return "Exponential"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double icdf(double p) const override;
  [[nodiscard]] double support_lo() const override { return 0.0; }
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double mu_;
};

/// Logistic(mu, s), s > 0.
class Logistic final : public Distribution {
 public:
  Logistic(double mu, double s);
  [[nodiscard]] std::string family() const override { return "Logistic"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double icdf(double p) const override;
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double mu_, s_;
};

/// HalfNormal(sigma): |Z| * sigma. Support x >= 0.
class HalfNormal final : public Distribution {
 public:
  explicit HalfNormal(double sigma);
  [[nodiscard]] std::string family() const override { return "HalfNormal"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double icdf(double p) const override;
  [[nodiscard]] double support_lo() const override { return 0.0; }
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double sigma_;
};

/// Weibull(lambda, k): scale lambda > 0, shape k > 0. Support x >= 0.
class Weibull final : public Distribution {
 public:
  Weibull(double lambda, double k);
  [[nodiscard]] std::string family() const override { return "Weibull"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double icdf(double p) const override;
  [[nodiscard]] double support_lo() const override { return 0.0; }
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double lambda_, k_;
};

/// Gamma(k, theta): shape k > 0, scale theta > 0. Support x > 0.
class Gamma final : public Distribution {
 public:
  Gamma(double k, double theta);
  [[nodiscard]] std::string family() const override { return "Gamma"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sample(util::Rng& rng) const override;
  [[nodiscard]] double support_lo() const override { return 0.0; }
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double k_, theta_;
};

/// Rayleigh(sigma), sigma > 0. Support x >= 0.
class Rayleigh final : public Distribution {
 public:
  explicit Rayleigh(double sigma);
  [[nodiscard]] std::string family() const override { return "Rayleigh"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double icdf(double p) const override;
  [[nodiscard]] double support_lo() const override { return 0.0; }
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double sigma_;
};

/// Birnbaum-Saunders BS(beta, gamma): scale beta > 0, shape gamma > 0.
/// The family the paper fits to U65 and Uoth job durations (Table III).
class BirnbaumSaunders final : public Distribution {
 public:
  BirnbaumSaunders(double beta, double gamma);
  [[nodiscard]] std::string family() const override { return "BirnbaumSaunders"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double icdf(double p) const override;
  [[nodiscard]] double support_lo() const override { return 0.0; }
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double beta_, gamma_;
};

/// InverseGaussian(mu, lambda), both > 0. Support x > 0.
class InverseGaussian final : public Distribution {
 public:
  InverseGaussian(double mu, double lambda);
  [[nodiscard]] std::string family() const override { return "InverseGaussian"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double support_lo() const override { return 0.0; }
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double mu_, lambda_;
};

/// Nakagami(m, omega): shape m >= 0.5, spread omega > 0. Support x >= 0.
class Nakagami final : public Distribution {
 public:
  Nakagami(double m, double omega);
  [[nodiscard]] std::string family() const override { return "Nakagami"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double support_lo() const override { return 0.0; }
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double m_, omega_;
};

/// LogLogistic(alpha, beta): scale alpha > 0, shape beta > 0. Support x >= 0.
class LogLogistic final : public Distribution {
 public:
  LogLogistic(double alpha, double beta);
  [[nodiscard]] std::string family() const override { return "LogLogistic"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double icdf(double p) const override;
  [[nodiscard]] double support_lo() const override { return 0.0; }
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double alpha_, beta_;
};

/// Generalized Extreme Value GEV(k, sigma, mu): shape k (any sign),
/// scale sigma > 0, location mu. The workhorse family of Table II.
class Gev final : public Distribution {
 public:
  Gev(double k, double sigma, double mu);
  [[nodiscard]] std::string family() const override { return "GEV"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double icdf(double p) const override;
  [[nodiscard]] double support_lo() const override;
  [[nodiscard]] double support_hi() const override;
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] double k() const noexcept { return k_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }
  [[nodiscard]] double mu() const noexcept { return mu_; }

 private:
  double k_, sigma_, mu_;
};

/// Gumbel / Type-I extreme value (mu, beta), beta > 0.
class Gumbel final : public Distribution {
 public:
  Gumbel(double mu, double beta);
  [[nodiscard]] std::string family() const override { return "Gumbel"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double icdf(double p) const override;
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double mu_, beta_;
};

/// Pareto(xm, alpha): scale xm > 0, shape alpha > 0. Support x >= xm.
class Pareto final : public Distribution {
 public:
  Pareto(double xm, double alpha);
  [[nodiscard]] std::string family() const override { return "Pareto"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double icdf(double p) const override;
  [[nodiscard]] double support_lo() const override { return xm_; }
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double xm_, alpha_;
};

/// Generalized Pareto GP(k, sigma, theta): shape k, scale sigma > 0,
/// threshold theta. Support x >= theta (and bounded above for k < 0).
class GeneralizedPareto final : public Distribution {
 public:
  GeneralizedPareto(double k, double sigma, double theta);
  [[nodiscard]] std::string family() const override { return "GeneralizedPareto"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double icdf(double p) const override;
  [[nodiscard]] double support_lo() const override { return theta_; }
  [[nodiscard]] double support_hi() const override;
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double k_, sigma_, theta_;
};

/// Burr Type XII (alpha, c, k): scale alpha > 0, shapes c > 0, k > 0.
/// Fits U30 arrivals and U3 durations in the paper. Support x > 0.
class Burr final : public Distribution {
 public:
  Burr(double alpha, double c, double k);
  [[nodiscard]] std::string family() const override { return "Burr"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double icdf(double p) const override;
  [[nodiscard]] double support_lo() const override { return 0.0; }
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double alpha_, c_, k_;
};

}  // namespace aequus::stats
