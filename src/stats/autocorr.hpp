// Autocorrelation analysis for periodicity detection.
//
// The paper analyzes the national trace "for periodicity using auto
// correlation functions, searching for daily, weekly, and monthly
// patterns" and finds a ~3-month cycle for U65 (§IV-2, Fig. 5). This
// module computes the sample ACF of a binned arrival series and scans it
// for dominant periodic lags.
#pragma once

#include <cstddef>
#include <vector>

namespace aequus::stats {

/// Sample autocorrelation of `series` for lags 0..max_lag (inclusive).
/// acf[0] == 1 by construction; a constant series yields zeros past lag 0.
[[nodiscard]] std::vector<double> autocorrelation(const std::vector<double>& series,
                                                  std::size_t max_lag);

struct PeriodicityResult {
  bool found = false;      ///< a significant periodic lag was detected
  std::size_t lag = 0;     ///< dominant lag (bins)
  double strength = 0.0;   ///< ACF value at that lag
};

/// Scan the ACF for the strongest local maximum above `threshold`
/// (ignoring lag 0 and lags below `min_lag`).
[[nodiscard]] PeriodicityResult detect_periodicity(const std::vector<double>& series,
                                                   std::size_t max_lag,
                                                   std::size_t min_lag = 2,
                                                   double threshold = 0.2);

}  // namespace aequus::stats
