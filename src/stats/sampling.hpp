// Range-rescaled inverse-CDF sampling.
//
// From the paper (§IV-2): "When creating synthetic traces the inverse CDF
// (ICDF) is used to model arrival time as a function of probability ...
// To ensure that all samples are within the intended range, the
// distribution of random values [0,1] is therefore re-scaled to fit within
// the desired time frame. For example, in the case of U65, the effective
// range [7.451e-3, 9.946e-1] is used to ensure all generated values are
// within the same calendar year."
#pragma once

#include "stats/distribution.hpp"
#include "util/rng.hpp"

namespace aequus::stats {

/// Samples a distribution restricted to values in [lo, hi] by drawing the
/// uniform deviate from the effective probability range [cdf(lo), cdf(hi)].
class BoundedSampler {
 public:
  /// Requires lo < hi and cdf(lo) < cdf(hi) (nonzero mass in the window).
  BoundedSampler(const Distribution& dist, double lo, double hi);

  /// Draw one sample, guaranteed inside [lo, hi].
  [[nodiscard]] double sample(util::Rng& rng) const;

  /// Deterministic sample at probability `u` in [0, 1], mapped through the
  /// effective range (u = 0 gives lo, u = 1 gives hi).
  [[nodiscard]] double at(double u) const;

  /// The effective probability range [cdf(lo), cdf(hi)] the paper quotes.
  [[nodiscard]] double effective_lo() const noexcept { return p_lo_; }
  [[nodiscard]] double effective_hi() const noexcept { return p_hi_; }

 private:
  const Distribution& dist_;
  double lo_;
  double hi_;
  double p_lo_;
  double p_hi_;
};

}  // namespace aequus::stats
