// Abstract probability distribution interface.
//
// The workload-modeling pipeline (§IV of the paper) fits a set of 18
// candidate families to each data set and selects the best one by BIC.
// Every family implements this interface: density, log-density (for MLE),
// CDF, inverse CDF (for the ICDF sampling the paper uses to generate
// synthetic traces), and direct sampling.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace aequus::stats {

/// A named distribution parameter, e.g. {"sigma", 19.5}.
struct Param {
  std::string name;
  double value;
};

class Distribution;
using DistributionPtr = std::unique_ptr<Distribution>;

/// Base class for all distribution families.
///
/// Invariants: pdf(x) >= 0; cdf is nondecreasing from 0 to 1 over the
/// support; icdf(cdf(x)) == x up to numeric tolerance inside the support.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Family name, e.g. "GEV", "Burr", "BirnbaumSaunders".
  [[nodiscard]] virtual std::string family() const = 0;

  /// Current parameter values in canonical order.
  [[nodiscard]] virtual std::vector<Param> params() const = 0;

  /// Probability density at x (0 outside the support).
  [[nodiscard]] virtual double pdf(double x) const = 0;

  /// log pdf(x); -inf outside the support. Default takes log of pdf();
  /// families override where a direct form is more stable.
  [[nodiscard]] virtual double log_pdf(double x) const;

  /// Cumulative distribution function.
  [[nodiscard]] virtual double cdf(double x) const = 0;

  /// Inverse CDF (quantile). Default inverts cdf() numerically by bracketed
  /// bisection; families with closed forms override.
  [[nodiscard]] virtual double icdf(double p) const;

  /// Draw one sample. Default is inverse-transform sampling.
  [[nodiscard]] virtual double sample(util::Rng& rng) const;

  /// Support bounds (inclusive where finite).
  [[nodiscard]] virtual double support_lo() const { return -std::numeric_limits<double>::infinity(); }
  [[nodiscard]] virtual double support_hi() const { return std::numeric_limits<double>::infinity(); }

  /// Deep copy.
  [[nodiscard]] virtual DistributionPtr clone() const = 0;

  /// Number of free parameters (used by BIC/AIC).
  [[nodiscard]] std::size_t n_params() const { return params().size(); }

  /// Human-readable form: "GEV(k=-0.386, sigma=19.5, mu=73500)".
  [[nodiscard]] std::string describe() const;

  /// Sum of log_pdf over a data set; -inf if any point is impossible.
  [[nodiscard]] double log_likelihood(const std::vector<double>& data) const;

 protected:
  /// Bracketed bisection inversion of cdf(); used by the default icdf().
  [[nodiscard]] double numeric_icdf(double p) const;
};

}  // namespace aequus::stats
