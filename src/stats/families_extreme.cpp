#include <cmath>
#include <stdexcept>

#include "stats/families.hpp"

namespace aequus::stats {

namespace {
void require(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}
constexpr double kShapeEpsilon = 1e-12;  // treat |k| below this as k == 0
}  // namespace

// ------------------------------------------------------------------- GEV

Gev::Gev(double k, double sigma, double mu) : k_(k), sigma_(sigma), mu_(mu) {
  require(sigma > 0.0, "GEV: sigma must be > 0");
}

std::vector<Param> Gev::params() const {
  return {{"k", k_}, {"sigma", sigma_}, {"mu", mu_}};
}

double Gev::support_lo() const {
  if (k_ > kShapeEpsilon) return mu_ - sigma_ / k_;
  return -std::numeric_limits<double>::infinity();
}

double Gev::support_hi() const {
  if (k_ < -kShapeEpsilon) return mu_ - sigma_ / k_;
  return std::numeric_limits<double>::infinity();
}

double Gev::pdf(double x) const {
  const double lp = log_pdf(x);
  return std::isfinite(lp) ? std::exp(lp) : 0.0;
}

double Gev::log_pdf(double x) const {
  const double z = (x - mu_) / sigma_;
  if (std::fabs(k_) < kShapeEpsilon) {
    // Gumbel limit: log f = -z - e^{-z} - log sigma
    return -z - std::exp(-z) - std::log(sigma_);
  }
  const double base = 1.0 + k_ * z;
  if (base <= 0.0) return -std::numeric_limits<double>::infinity();
  const double t_log = -std::log(base) / k_;  // log t, where t = base^{-1/k}
  // log f = (1/k + 1) * log(base)^{-1} ... expressed via t:
  // f = (1/sigma) * t^{k+1} * exp(-t)
  const double t = std::exp(t_log);
  return (k_ + 1.0) * t_log - t - std::log(sigma_);
}

double Gev::cdf(double x) const {
  const double z = (x - mu_) / sigma_;
  if (std::fabs(k_) < kShapeEpsilon) {
    return std::exp(-std::exp(-z));
  }
  const double base = 1.0 + k_ * z;
  if (base <= 0.0) return k_ > 0.0 ? 0.0 : 1.0;
  return std::exp(-std::pow(base, -1.0 / k_));
}

double Gev::icdf(double p) const {
  if (p <= 0.0) return support_lo();
  if (p >= 1.0) return support_hi();
  const double w = -std::log(p);  // in (0, inf)
  if (std::fabs(k_) < kShapeEpsilon) {
    return mu_ - sigma_ * std::log(w);
  }
  return mu_ + sigma_ * (std::pow(w, -k_) - 1.0) / k_;
}

DistributionPtr Gev::clone() const {
  return std::make_unique<Gev>(*this);
}

// ---------------------------------------------------------------- Gumbel

Gumbel::Gumbel(double mu, double beta) : mu_(mu), beta_(beta) {
  require(beta > 0.0, "Gumbel: beta must be > 0");
}

std::vector<Param> Gumbel::params() const {
  return {{"mu", mu_}, {"beta", beta_}};
}

double Gumbel::pdf(double x) const {
  const double z = (x - mu_) / beta_;
  return std::exp(-z - std::exp(-z)) / beta_;
}

double Gumbel::cdf(double x) const {
  return std::exp(-std::exp(-(x - mu_) / beta_));
}

double Gumbel::icdf(double p) const {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return mu_ - beta_ * std::log(-std::log(p));
}

DistributionPtr Gumbel::clone() const {
  return std::make_unique<Gumbel>(*this);
}

// ---------------------------------------------------------------- Pareto

Pareto::Pareto(double xm, double alpha) : xm_(xm), alpha_(alpha) {
  require(xm > 0.0, "Pareto: xm must be > 0");
  require(alpha > 0.0, "Pareto: alpha must be > 0");
}

std::vector<Param> Pareto::params() const {
  return {{"xm", xm_}, {"alpha", alpha_}};
}

double Pareto::pdf(double x) const {
  if (x < xm_) return 0.0;
  return alpha_ * std::pow(xm_, alpha_) / std::pow(x, alpha_ + 1.0);
}

double Pareto::cdf(double x) const {
  if (x <= xm_) return 0.0;
  return 1.0 - std::pow(xm_ / x, alpha_);
}

double Pareto::icdf(double p) const {
  if (p <= 0.0) return xm_;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return xm_ / std::pow(1.0 - p, 1.0 / alpha_);
}

DistributionPtr Pareto::clone() const {
  return std::make_unique<Pareto>(*this);
}

// ----------------------------------------------------- GeneralizedPareto

GeneralizedPareto::GeneralizedPareto(double k, double sigma, double theta)
    : k_(k), sigma_(sigma), theta_(theta) {
  require(sigma > 0.0, "GeneralizedPareto: sigma must be > 0");
}

std::vector<Param> GeneralizedPareto::params() const {
  return {{"k", k_}, {"sigma", sigma_}, {"theta", theta_}};
}

double GeneralizedPareto::support_hi() const {
  if (k_ < -kShapeEpsilon) return theta_ - sigma_ / k_;
  return std::numeric_limits<double>::infinity();
}

double GeneralizedPareto::pdf(double x) const {
  const double z = (x - theta_) / sigma_;
  if (z < 0.0) return 0.0;
  if (std::fabs(k_) < kShapeEpsilon) return std::exp(-z) / sigma_;
  const double base = 1.0 + k_ * z;
  if (base <= 0.0) return 0.0;
  return std::pow(base, -1.0 / k_ - 1.0) / sigma_;
}

double GeneralizedPareto::cdf(double x) const {
  const double z = (x - theta_) / sigma_;
  if (z <= 0.0) return 0.0;
  if (std::fabs(k_) < kShapeEpsilon) return 1.0 - std::exp(-z);
  const double base = 1.0 + k_ * z;
  if (base <= 0.0) return 1.0;
  return 1.0 - std::pow(base, -1.0 / k_);
}

double GeneralizedPareto::icdf(double p) const {
  if (p <= 0.0) return theta_;
  if (p >= 1.0) return support_hi();
  if (std::fabs(k_) < kShapeEpsilon) return theta_ - sigma_ * std::log1p(-p);
  return theta_ + sigma_ * (std::pow(1.0 - p, -k_) - 1.0) / k_;
}

DistributionPtr GeneralizedPareto::clone() const {
  return std::make_unique<GeneralizedPareto>(*this);
}

// ------------------------------------------------------------------ Burr

Burr::Burr(double alpha, double c, double k) : alpha_(alpha), c_(c), k_(k) {
  require(alpha > 0.0, "Burr: alpha must be > 0");
  require(c > 0.0, "Burr: c must be > 0");
  require(k > 0.0, "Burr: k must be > 0");
}

std::vector<Param> Burr::params() const {
  return {{"alpha", alpha_}, {"c", c_}, {"k", k_}};
}

double Burr::pdf(double x) const {
  const double lp = log_pdf(x);
  return std::isfinite(lp) ? std::exp(lp) : 0.0;
}

double Burr::log_pdf(double x) const {
  if (x <= 0.0) return -std::numeric_limits<double>::infinity();
  const double log_z = c_ * (std::log(x) - std::log(alpha_));
  // softplus(log_z) = log(1 + (x/alpha)^c), computed without overflow
  const double softplus = log_z > 30.0 ? log_z : std::log1p(std::exp(log_z));
  // f = (k c / alpha) (x/alpha)^{c-1} (1 + (x/alpha)^c)^{-(k+1)}
  return std::log(k_ * c_ / alpha_) + (c_ - 1.0) * (std::log(x) - std::log(alpha_)) -
         (k_ + 1.0) * softplus;
}

double Burr::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = std::pow(x / alpha_, c_);
  return 1.0 - std::pow(1.0 + z, -k_);
}

double Burr::icdf(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  const double t = std::pow(1.0 - p, -1.0 / k_) - 1.0;
  return alpha_ * std::pow(t, 1.0 / c_);
}

DistributionPtr Burr::clone() const {
  return std::make_unique<Burr>(*this);
}

}  // namespace aequus::stats
