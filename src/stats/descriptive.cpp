#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace aequus::stats {

double mean(std::span<const double> data) noexcept {
  if (data.empty()) return 0.0;
  double sum = 0.0;
  for (double x : data) sum += x;
  return sum / static_cast<double>(data.size());
}

double variance(std::span<const double> data) noexcept {
  if (data.size() < 2) return 0.0;
  const double m = mean(data);
  double sum = 0.0;
  for (double x : data) sum += (x - m) * (x - m);
  return sum / static_cast<double>(data.size() - 1);
}

double stddev(std::span<const double> data) noexcept {
  return std::sqrt(variance(data));
}

double coefficient_of_variation(std::span<const double> data) noexcept {
  const double m = mean(data);
  if (m == 0.0) return 0.0;
  return stddev(data) / m;
}

double median(std::span<const double> data) {
  return quantile(data, 0.5);
}

double quantile(std::span<const double> data, double q) {
  if (data.empty()) return 0.0;
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double skewness(std::span<const double> data) noexcept {
  const auto n = static_cast<double>(data.size());
  if (data.size() < 3) return 0.0;
  const double m = mean(data);
  double m2 = 0.0;
  double m3 = 0.0;
  for (double x : data) {
    const double d = x - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= n;
  m3 /= n;
  if (m2 <= 0.0) return 0.0;
  const double g1 = m3 / std::pow(m2, 1.5);
  return std::sqrt(n * (n - 1.0)) / (n - 2.0) * g1;
}

double min_value(std::span<const double> data) noexcept {
  if (data.empty()) return 0.0;
  return *std::min_element(data.begin(), data.end());
}

double max_value(std::span<const double> data) noexcept {
  if (data.empty()) return 0.0;
  return *std::max_element(data.begin(), data.end());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0.0) {}

void Histogram::add(double value, double weight) noexcept {
  const double width = bin_width();
  auto bin = static_cast<std::ptrdiff_t>((value - lo_) / width);
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

double Histogram::bin_width() const noexcept {
  return (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * bin_width();
}

std::vector<double> Histogram::density() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ <= 0.0) return out;
  const double scale = 1.0 / (total_ * bin_width());
  for (std::size_t i = 0; i < counts_.size(); ++i) out[i] = counts_[i] * scale;
  return out;
}

std::string Histogram::render(const std::string& title, int height) const {
  const double peak = counts_.empty()
                          ? 0.0
                          : *std::max_element(counts_.begin(), counts_.end());
  std::string out = title + "\n";
  if (peak <= 0.0) return out + "  (empty)\n";
  for (int row = height; row >= 1; --row) {
    const double threshold = peak * static_cast<double>(row) / height;
    std::string line = util::format("%10.1f |", threshold);
    for (double c : counts_) line += c >= threshold ? '#' : ' ';
    out += line + '\n';
  }
  out += "           +";
  out.append(counts_.size(), '-');
  out += '\n';
  out += util::format("            x = [%g, %g], %zu bins, total %.0f\n", lo_, hi_,
                      counts_.size(), total_);
  return out;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> data) : sorted_(std::move(data)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::operator()(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

}  // namespace aequus::stats
