// Maximum-likelihood fitting and information-criterion model selection.
//
// Reproduces the paper's modeling procedure (§IV-2): "the best fit was
// found by modeling each data set using a set of 18 different
// distributions, and choosing the best fit based on the Bayesian
// information criterion". Closed-form MLEs are used where they exist;
// the remaining families are fitted by Nelder–Mead on the negative
// log-likelihood in an unconstrained reparameterization, with multi-start
// for the shape-sensitive families (GEV, Burr).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "stats/distribution.hpp"

namespace aequus::stats {

/// The 18 candidate families.
enum class Family {
  kNormal,
  kLogNormal,
  kUniform,
  kExponential,
  kLogistic,
  kHalfNormal,
  kWeibull,
  kGamma,
  kRayleigh,
  kBirnbaumSaunders,
  kInverseGaussian,
  kNakagami,
  kLogLogistic,
  kGev,
  kGumbel,
  kPareto,
  kGeneralizedPareto,
  kBurr,
};

/// All 18 families, in declaration order.
[[nodiscard]] const std::vector<Family>& all_families();

/// Family display name ("GEV", "Burr", ...).
[[nodiscard]] std::string to_string(Family family);

/// Result of fitting one family to a data set.
struct FitResult {
  Family family{};
  DistributionPtr distribution;     ///< null when the fit failed
  double log_likelihood = -1e300;
  double bic = 1e300;
  double aic = 1e300;
  bool converged = false;

  [[nodiscard]] bool ok() const noexcept { return distribution != nullptr; }
};

/// Bayesian information criterion: k*ln(n) - 2*lnL (lower is better).
[[nodiscard]] double bic_score(double log_likelihood, std::size_t n_params, std::size_t n_samples);

/// Akaike information criterion: 2k - 2*lnL.
[[nodiscard]] double aic_score(double log_likelihood, std::size_t n_params);

/// Fit one family by MLE. Returns a failed result (null distribution) when
/// the family's support cannot contain the data (e.g. zeros with LogNormal)
/// or optimization diverges. Requires data.size() >= 2.
[[nodiscard]] FitResult fit_mle(Family family, const std::vector<double>& data);

/// Outcome of fitting all candidate families.
struct ModelSelection {
  FitResult best;                    ///< lowest-BIC successful fit
  std::vector<FitResult> candidates; ///< every successful fit, sorted by BIC
};

/// Fit each family and select by BIC, mirroring the paper's procedure.
/// Families whose support excludes the data are skipped silently.
[[nodiscard]] ModelSelection fit_best(const std::vector<double>& data,
                                      const std::vector<Family>& families = all_families());

}  // namespace aequus::stats
