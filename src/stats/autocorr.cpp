#include "stats/autocorr.hpp"

#include <algorithm>

#include "stats/descriptive.hpp"

namespace aequus::stats {

std::vector<double> autocorrelation(const std::vector<double>& series, std::size_t max_lag) {
  const std::size_t n = series.size();
  std::vector<double> acf(max_lag + 1, 0.0);
  if (n == 0) return acf;
  const double m = mean(series);
  double denom = 0.0;
  for (double x : series) denom += (x - m) * (x - m);
  acf[0] = 1.0;
  if (denom <= 0.0) return acf;
  for (std::size_t lag = 1; lag <= max_lag && lag < n; ++lag) {
    double num = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      num += (series[i] - m) * (series[i + lag] - m);
    }
    acf[lag] = num / denom;
  }
  return acf;
}

PeriodicityResult detect_periodicity(const std::vector<double>& series, std::size_t max_lag,
                                     std::size_t min_lag, double threshold) {
  PeriodicityResult result;
  const std::vector<double> acf = autocorrelation(series, max_lag);
  for (std::size_t lag = std::max<std::size_t>(min_lag, 1); lag + 1 < acf.size(); ++lag) {
    const bool local_max = acf[lag] >= acf[lag - 1] && acf[lag] >= acf[lag + 1];
    if (local_max && acf[lag] > threshold && acf[lag] > result.strength) {
      result.found = true;
      result.lag = lag;
      result.strength = acf[lag];
    }
  }
  return result;
}

}  // namespace aequus::stats
