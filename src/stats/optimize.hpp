// Derivative-free minimization (Nelder–Mead) used by the MLE fitter.
//
// The fitter transforms constrained distribution parameters (e.g. sigma > 0)
// to an unconstrained space and minimizes the negative log-likelihood; the
// simplex method is robust to the noisy, cliff-edged likelihood surfaces of
// bounded-support families like GEV.
#pragma once

#include <functional>
#include <vector>

namespace aequus::stats {

struct OptimizeResult {
  std::vector<double> x;    ///< best point found
  double value = 0.0;       ///< objective at x
  int iterations = 0;       ///< simplex iterations used
  bool converged = false;   ///< simplex diameter fell below tolerance
};

struct NelderMeadOptions {
  int max_iterations = 2000;
  double tolerance = 1e-9;        ///< relative spread of simplex values
  double initial_step = 0.25;     ///< per-dimension initial simplex offset
};

/// Minimize `objective` starting from `start`. The objective may return
/// +inf for infeasible points; the simplex contracts away from them.
[[nodiscard]] OptimizeResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& objective,
    std::vector<double> start, const NelderMeadOptions& options = {});

}  // namespace aequus::stats
