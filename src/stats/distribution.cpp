#include "stats/distribution.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace aequus::stats {

double Distribution::log_pdf(double x) const {
  const double d = pdf(x);
  if (d <= 0.0) return -std::numeric_limits<double>::infinity();
  return std::log(d);
}

double Distribution::icdf(double p) const {
  return numeric_icdf(p);
}

double Distribution::sample(util::Rng& rng) const {
  // Avoid the exact endpoints where icdf may be infinite.
  double u;
  do {
    u = rng.uniform();
  } while (u <= 0.0);
  return icdf(u);
}

std::string Distribution::describe() const {
  std::string out = family() + "(";
  bool first = true;
  for (const auto& p : params()) {
    if (!first) out += ", ";
    first = false;
    out += util::format("%s=%.4g", p.name.c_str(), p.value);
  }
  out += ")";
  return out;
}

double Distribution::log_likelihood(const std::vector<double>& data) const {
  double total = 0.0;
  for (double x : data) {
    const double lp = log_pdf(x);
    if (!std::isfinite(lp)) return -std::numeric_limits<double>::infinity();
    total += lp;
  }
  return total;
}

double Distribution::numeric_icdf(double p) const {
  if (p <= 0.0) return support_lo();
  if (p >= 1.0) return support_hi();

  // Establish a finite bracket [lo, hi] with cdf(lo) <= p <= cdf(hi).
  double lo = support_lo();
  double hi = support_hi();
  if (!std::isfinite(lo)) {
    lo = -1.0;
    while (cdf(lo) > p && std::isfinite(lo)) lo *= 2.0;
  }
  if (!std::isfinite(hi)) {
    hi = std::fabs(lo) + 1.0;
    while (cdf(hi) < p && std::isfinite(hi)) hi *= 2.0;
  }
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    return std::numeric_limits<double>::quiet_NaN();
  }

  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;  // bracket at machine precision
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace aequus::stats
