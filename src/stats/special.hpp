// Special mathematical functions needed by the distribution families:
// regularized incomplete gamma, inverse normal CDF, and the asymptotic
// Kolmogorov distribution. Implementations follow the classic series /
// continued-fraction formulations (Abramowitz & Stegun; Press et al.).
#pragma once

namespace aequus::stats {

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0, x >= 0.
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double regularized_gamma_q(double a, double x);

/// Standard normal CDF Φ(z).
[[nodiscard]] double normal_cdf(double z);

/// Standard normal PDF φ(z).
[[nodiscard]] double normal_pdf(double z);

/// Inverse of the standard normal CDF. Accepts p in (0, 1); returns ±inf at
/// the boundaries. Acklam's rational approximation refined with one Halley
/// step, giving ~1e-15 relative accuracy.
[[nodiscard]] double normal_icdf(double p);

/// Kolmogorov distribution survival function: P(K > x) for the asymptotic
/// distribution of sqrt(n) * D_n. Used to derive KS test p-values.
[[nodiscard]] double kolmogorov_q(double x);

}  // namespace aequus::stats
