// Weighted mixture (composite) distribution.
//
// Implements Equation (1) of the paper: the U65 job-arrival model is a
// mixture of four per-phase distributions, each weighted by the fraction
// of jobs falling in that phase of the trace:
//
//   PDF_U65(x) = sum_n (phase_n_usage / total_usage) * PDF_pn(x)
#pragma once

#include "stats/distribution.hpp"

namespace aequus::stats {

/// Mixture of component distributions with nonnegative weights.
/// Weights are normalized to sum to 1 at construction.
class Mixture final : public Distribution {
 public:
  struct Component {
    DistributionPtr distribution;
    double weight;
  };

  /// Requires at least one component with positive weight.
  explicit Mixture(std::vector<Component> components);

  [[nodiscard]] std::string family() const override { return "Mixture"; }
  [[nodiscard]] std::vector<Param> params() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sample(util::Rng& rng) const override;
  [[nodiscard]] double support_lo() const override;
  [[nodiscard]] double support_hi() const override;
  [[nodiscard]] DistributionPtr clone() const override;

  [[nodiscard]] std::size_t component_count() const noexcept { return components_.size(); }
  [[nodiscard]] const Distribution& component(std::size_t i) const {
    return *components_.at(i).distribution;
  }
  [[nodiscard]] double weight(std::size_t i) const { return components_.at(i).weight; }

 private:
  std::vector<Component> components_;
};

}  // namespace aequus::stats
