#include "stats/sampling.hpp"

#include <algorithm>
#include <stdexcept>

namespace aequus::stats {

BoundedSampler::BoundedSampler(const Distribution& dist, double lo, double hi)
    : dist_(dist), lo_(lo), hi_(hi), p_lo_(dist.cdf(lo)), p_hi_(dist.cdf(hi)) {
  if (!(lo < hi)) throw std::invalid_argument("BoundedSampler: lo must be < hi");
  if (!(p_lo_ < p_hi_)) {
    throw std::invalid_argument("BoundedSampler: no probability mass in [lo, hi]");
  }
}

double BoundedSampler::sample(util::Rng& rng) const {
  return at(rng.uniform());
}

double BoundedSampler::at(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  const double p = p_lo_ + u * (p_hi_ - p_lo_);
  return std::clamp(dist_.icdf(p), lo_, hi_);
}

}  // namespace aequus::stats
