// Kolmogorov–Smirnov goodness-of-fit testing.
//
// Tables II and III of the paper report the KS statistic of each fitted
// distribution against its data set ("the corresponding Kolmogorov-Smirnov
// goodness of fit values"); this module computes the one-sample statistic
// D_n = sup_x |F_n(x) - F(x)| and its asymptotic p-value.
#pragma once

#include <vector>

#include "stats/distribution.hpp"

namespace aequus::stats {

struct KsResult {
  double statistic = 0.0;  ///< D_n
  double p_value = 1.0;    ///< asymptotic P(K > sqrt(n) * D_n)
};

/// One-sample KS test of `data` against `dist`. Requires non-empty data.
[[nodiscard]] KsResult ks_test(const std::vector<double>& data, const Distribution& dist);

/// Two-sample KS statistic between two samples.
[[nodiscard]] double ks_two_sample(const std::vector<double>& a, const std::vector<double>& b);

/// Anderson–Darling statistic A^2 of `data` against `dist`: a
/// tail-sensitive alternative to KS, useful for the heavy-tailed duration
/// families. Larger is worse; values below ~2.5 indicate a good fit for
/// fully specified distributions. Returns +inf when a sample falls where
/// the model assigns zero probability. Requires non-empty data.
[[nodiscard]] double anderson_darling(const std::vector<double>& data,
                                      const Distribution& dist);

}  // namespace aequus::stats
