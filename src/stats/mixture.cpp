#include "stats/mixture.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace aequus::stats {

Mixture::Mixture(std::vector<Component> components) : components_(std::move(components)) {
  double total = 0.0;
  for (const auto& c : components_) {
    if (!c.distribution) throw std::invalid_argument("Mixture: null component");
    if (c.weight < 0.0) throw std::invalid_argument("Mixture: negative weight");
    total += c.weight;
  }
  if (total <= 0.0) throw std::invalid_argument("Mixture: weights must sum to > 0");
  for (auto& c : components_) c.weight /= total;
}

std::vector<Param> Mixture::params() const {
  std::vector<Param> out;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    out.push_back({util::format("w%zu", i + 1), components_[i].weight});
    for (const auto& p : components_[i].distribution->params()) {
      out.push_back({util::format("%s%zu", p.name.c_str(), i + 1), p.value});
    }
  }
  return out;
}

double Mixture::pdf(double x) const {
  double total = 0.0;
  for (const auto& c : components_) total += c.weight * c.distribution->pdf(x);
  return total;
}

double Mixture::cdf(double x) const {
  double total = 0.0;
  for (const auto& c : components_) total += c.weight * c.distribution->cdf(x);
  return total;
}

double Mixture::sample(util::Rng& rng) const {
  std::vector<double> weights;
  weights.reserve(components_.size());
  for (const auto& c : components_) weights.push_back(c.weight);
  const std::size_t index = rng.weighted_index(weights);
  return components_[index].distribution->sample(rng);
}

double Mixture::support_lo() const {
  double lo = std::numeric_limits<double>::infinity();
  for (const auto& c : components_) lo = std::min(lo, c.distribution->support_lo());
  return lo;
}

double Mixture::support_hi() const {
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& c : components_) hi = std::max(hi, c.distribution->support_hi());
  return hi;
}

DistributionPtr Mixture::clone() const {
  std::vector<Component> copy;
  copy.reserve(components_.size());
  for (const auto& c : components_) {
    copy.push_back({c.distribution->clone(), c.weight});
  }
  return std::make_unique<Mixture>(std::move(copy));
}

}  // namespace aequus::stats
