#include <cmath>
#include <stdexcept>

#include "stats/families.hpp"
#include "stats/special.hpp"

namespace aequus::stats {

namespace {
void require(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}
}  // namespace

// ---------------------------------------------------------------- Normal

Normal::Normal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require(sigma > 0.0, "Normal: sigma must be > 0");
}

std::vector<Param> Normal::params() const {
  return {{"mu", mu_}, {"sigma", sigma_}};
}

double Normal::pdf(double x) const {
  return normal_pdf((x - mu_) / sigma_) / sigma_;
}

double Normal::log_pdf(double x) const {
  const double z = (x - mu_) / sigma_;
  return -0.5 * z * z - std::log(sigma_) - 0.5 * std::log(2.0 * M_PI);
}

double Normal::cdf(double x) const {
  return normal_cdf((x - mu_) / sigma_);
}

double Normal::icdf(double p) const {
  return mu_ + sigma_ * normal_icdf(p);
}

double Normal::sample(util::Rng& rng) const {
  return rng.normal(mu_, sigma_);
}

DistributionPtr Normal::clone() const {
  return std::make_unique<Normal>(*this);
}

// ------------------------------------------------------------- LogNormal

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require(sigma > 0.0, "LogNormal: sigma must be > 0");
}

std::vector<Param> LogNormal::params() const {
  return {{"mu", mu_}, {"sigma", sigma_}};
}

double LogNormal::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return normal_pdf(z) / (x * sigma_);
}

double LogNormal::log_pdf(double x) const {
  if (x <= 0.0) return -std::numeric_limits<double>::infinity();
  const double z = (std::log(x) - mu_) / sigma_;
  return -0.5 * z * z - std::log(x * sigma_) - 0.5 * std::log(2.0 * M_PI);
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::icdf(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return std::exp(mu_ + sigma_ * normal_icdf(p));
}

DistributionPtr LogNormal::clone() const {
  return std::make_unique<LogNormal>(*this);
}

// --------------------------------------------------------------- Uniform

Uniform::Uniform(double a, double b) : a_(a), b_(b) {
  require(a < b, "Uniform: a must be < b");
}

std::vector<Param> Uniform::params() const {
  return {{"a", a_}, {"b", b_}};
}

double Uniform::pdf(double x) const {
  if (x < a_ || x > b_) return 0.0;
  return 1.0 / (b_ - a_);
}

double Uniform::cdf(double x) const {
  if (x <= a_) return 0.0;
  if (x >= b_) return 1.0;
  return (x - a_) / (b_ - a_);
}

double Uniform::icdf(double p) const {
  if (p <= 0.0) return a_;
  if (p >= 1.0) return b_;
  return a_ + p * (b_ - a_);
}

DistributionPtr Uniform::clone() const {
  return std::make_unique<Uniform>(*this);
}

// ----------------------------------------------------------- Exponential

Exponential::Exponential(double mu) : mu_(mu) {
  require(mu > 0.0, "Exponential: mu must be > 0");
}

std::vector<Param> Exponential::params() const {
  return {{"mu", mu_}};
}

double Exponential::pdf(double x) const {
  if (x < 0.0) return 0.0;
  return std::exp(-x / mu_) / mu_;
}

double Exponential::log_pdf(double x) const {
  if (x < 0.0) return -std::numeric_limits<double>::infinity();
  return -x / mu_ - std::log(mu_);
}

double Exponential::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-x / mu_);
}

double Exponential::icdf(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return -mu_ * std::log1p(-p);
}

DistributionPtr Exponential::clone() const {
  return std::make_unique<Exponential>(*this);
}

// -------------------------------------------------------------- Logistic

Logistic::Logistic(double mu, double s) : mu_(mu), s_(s) {
  require(s > 0.0, "Logistic: s must be > 0");
}

std::vector<Param> Logistic::params() const {
  return {{"mu", mu_}, {"s", s_}};
}

double Logistic::pdf(double x) const {
  const double e = std::exp(-(x - mu_) / s_);
  const double denom = s_ * (1.0 + e) * (1.0 + e);
  return e / denom;
}

double Logistic::cdf(double x) const {
  return 1.0 / (1.0 + std::exp(-(x - mu_) / s_));
}

double Logistic::icdf(double p) const {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return mu_ + s_ * std::log(p / (1.0 - p));
}

DistributionPtr Logistic::clone() const {
  return std::make_unique<Logistic>(*this);
}

// ------------------------------------------------------------ HalfNormal

HalfNormal::HalfNormal(double sigma) : sigma_(sigma) {
  require(sigma > 0.0, "HalfNormal: sigma must be > 0");
}

std::vector<Param> HalfNormal::params() const {
  return {{"sigma", sigma_}};
}

double HalfNormal::pdf(double x) const {
  if (x < 0.0) return 0.0;
  return 2.0 * normal_pdf(x / sigma_) / sigma_;
}

double HalfNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return std::erf(x / (sigma_ * M_SQRT2));
}

double HalfNormal::icdf(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return sigma_ * normal_icdf(0.5 * (1.0 + p));
}

DistributionPtr HalfNormal::clone() const {
  return std::make_unique<HalfNormal>(*this);
}

}  // namespace aequus::stats
