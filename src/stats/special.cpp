#include "stats/special.hpp"

#include <cmath>
#include <limits>

namespace aequus::stats {

namespace {

// Series expansion of P(a, x), converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  const double gln = std::lgamma(a);
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - gln);
}

// Continued fraction for Q(a, x), converges quickly for x >= a + 1
// (modified Lentz algorithm).
double gamma_q_cf(double a, double x) {
  const double gln = std::lgamma(a);
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - gln) * h;
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  if (!(a > 0.0) || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double regularized_gamma_q(double a, double x) {
  if (!(a > 0.0) || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z * M_SQRT1_2);
}

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

double normal_icdf(double p) {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();

  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step using the full-precision erfc.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double kolmogorov_q(double x) {
  if (x <= 0.0) return 1.0;
  if (x < 0.2) return 1.0;  // numerically 1 in this regime
  // Q(x) = 2 * sum_{k=1..inf} (-1)^{k-1} exp(-2 k^2 x^2)
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * x * x);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  const double q = 2.0 * sum;
  if (q < 0.0) return 0.0;
  if (q > 1.0) return 1.0;
  return q;
}

}  // namespace aequus::stats
