#include <cmath>
#include <stdexcept>

#include "stats/families.hpp"
#include "stats/special.hpp"

namespace aequus::stats {

namespace {
void require(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}
}  // namespace

// --------------------------------------------------------------- Weibull

Weibull::Weibull(double lambda, double k) : lambda_(lambda), k_(k) {
  require(lambda > 0.0, "Weibull: lambda must be > 0");
  require(k > 0.0, "Weibull: k must be > 0");
}

std::vector<Param> Weibull::params() const {
  return {{"lambda", lambda_}, {"k", k_}};
}

double Weibull::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) return k_ < 1.0 ? std::numeric_limits<double>::infinity()
                                : (k_ == 1.0 ? 1.0 / lambda_ : 0.0);
  const double z = x / lambda_;
  return (k_ / lambda_) * std::pow(z, k_ - 1.0) * std::exp(-std::pow(z, k_));
}

double Weibull::log_pdf(double x) const {
  if (x <= 0.0) return -std::numeric_limits<double>::infinity();
  const double z = x / lambda_;
  return std::log(k_ / lambda_) + (k_ - 1.0) * std::log(z) - std::pow(z, k_);
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / lambda_, k_));
}

double Weibull::icdf(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return lambda_ * std::pow(-std::log1p(-p), 1.0 / k_);
}

DistributionPtr Weibull::clone() const {
  return std::make_unique<Weibull>(*this);
}

// ----------------------------------------------------------------- Gamma

Gamma::Gamma(double k, double theta) : k_(k), theta_(theta) {
  require(k > 0.0, "Gamma: k must be > 0");
  require(theta > 0.0, "Gamma: theta must be > 0");
}

std::vector<Param> Gamma::params() const {
  return {{"k", k_}, {"theta", theta_}};
}

double Gamma::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  return std::exp(log_pdf(x));
}

double Gamma::log_pdf(double x) const {
  if (x <= 0.0) return -std::numeric_limits<double>::infinity();
  return (k_ - 1.0) * std::log(x) - x / theta_ - std::lgamma(k_) - k_ * std::log(theta_);
}

double Gamma::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(k_, x / theta_);
}

double Gamma::sample(util::Rng& rng) const {
  // Marsaglia-Tsang squeeze method; boost for k < 1 via the U^(1/k) trick.
  double k = k_;
  double boost = 1.0;
  if (k < 1.0) {
    double u;
    do {
      u = rng.uniform();
    } while (u <= 0.0);
    boost = std::pow(u, 1.0 / k);
    k += 1.0;
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x;
    double v;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v * theta_;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return boost * d * v * theta_;
    }
  }
}

DistributionPtr Gamma::clone() const {
  return std::make_unique<Gamma>(*this);
}

// -------------------------------------------------------------- Rayleigh

Rayleigh::Rayleigh(double sigma) : sigma_(sigma) {
  require(sigma > 0.0, "Rayleigh: sigma must be > 0");
}

std::vector<Param> Rayleigh::params() const {
  return {{"sigma", sigma_}};
}

double Rayleigh::pdf(double x) const {
  if (x < 0.0) return 0.0;
  const double s2 = sigma_ * sigma_;
  return (x / s2) * std::exp(-x * x / (2.0 * s2));
}

double Rayleigh::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-x * x / (2.0 * sigma_ * sigma_));
}

double Rayleigh::icdf(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return sigma_ * std::sqrt(-2.0 * std::log1p(-p));
}

DistributionPtr Rayleigh::clone() const {
  return std::make_unique<Rayleigh>(*this);
}

// ------------------------------------------------------ BirnbaumSaunders

BirnbaumSaunders::BirnbaumSaunders(double beta, double gamma) : beta_(beta), gamma_(gamma) {
  require(beta > 0.0, "BirnbaumSaunders: beta must be > 0");
  require(gamma > 0.0, "BirnbaumSaunders: gamma must be > 0");
}

std::vector<Param> BirnbaumSaunders::params() const {
  return {{"beta", beta_}, {"gamma", gamma_}};
}

double BirnbaumSaunders::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double sqrt_ratio = std::sqrt(x / beta_);
  const double inv_sqrt_ratio = std::sqrt(beta_ / x);
  const double z = (sqrt_ratio - inv_sqrt_ratio) / gamma_;
  const double dz = (sqrt_ratio + inv_sqrt_ratio) / (2.0 * gamma_ * x);
  return normal_pdf(z) * dz;
}

double BirnbaumSaunders::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::sqrt(x / beta_) - std::sqrt(beta_ / x)) / gamma_;
  return normal_cdf(z);
}

double BirnbaumSaunders::icdf(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  const double z = normal_icdf(p);
  const double t = gamma_ * z;
  const double root = 0.5 * (t + std::sqrt(t * t + 4.0));
  return beta_ * root * root;
}

DistributionPtr BirnbaumSaunders::clone() const {
  return std::make_unique<BirnbaumSaunders>(*this);
}

// ------------------------------------------------------- InverseGaussian

InverseGaussian::InverseGaussian(double mu, double lambda) : mu_(mu), lambda_(lambda) {
  require(mu > 0.0, "InverseGaussian: mu must be > 0");
  require(lambda > 0.0, "InverseGaussian: lambda must be > 0");
}

std::vector<Param> InverseGaussian::params() const {
  return {{"mu", mu_}, {"lambda", lambda_}};
}

double InverseGaussian::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double d = x - mu_;
  return std::sqrt(lambda_ / (2.0 * M_PI * x * x * x)) *
         std::exp(-lambda_ * d * d / (2.0 * mu_ * mu_ * x));
}

double InverseGaussian::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double sqrt_term = std::sqrt(lambda_ / x);
  const double a = sqrt_term * (x / mu_ - 1.0);
  const double b = -sqrt_term * (x / mu_ + 1.0);
  return normal_cdf(a) + std::exp(2.0 * lambda_ / mu_) * normal_cdf(b);
}

DistributionPtr InverseGaussian::clone() const {
  return std::make_unique<InverseGaussian>(*this);
}

// -------------------------------------------------------------- Nakagami

Nakagami::Nakagami(double m, double omega) : m_(m), omega_(omega) {
  require(m >= 0.5, "Nakagami: m must be >= 0.5");
  require(omega > 0.0, "Nakagami: omega must be > 0");
}

std::vector<Param> Nakagami::params() const {
  return {{"m", m_}, {"omega", omega_}};
}

double Nakagami::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double log_pdf_value = std::log(2.0) + m_ * std::log(m_ / omega_) - std::lgamma(m_) +
                               (2.0 * m_ - 1.0) * std::log(x) - m_ * x * x / omega_;
  return std::exp(log_pdf_value);
}

double Nakagami::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(m_, m_ * x * x / omega_);
}

DistributionPtr Nakagami::clone() const {
  return std::make_unique<Nakagami>(*this);
}

// ----------------------------------------------------------- LogLogistic

LogLogistic::LogLogistic(double alpha, double beta) : alpha_(alpha), beta_(beta) {
  require(alpha > 0.0, "LogLogistic: alpha must be > 0");
  require(beta > 0.0, "LogLogistic: beta must be > 0");
}

std::vector<Param> LogLogistic::params() const {
  return {{"alpha", alpha_}, {"beta", beta_}};
}

double LogLogistic::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) return beta_ > 1.0 ? 0.0 : std::numeric_limits<double>::infinity();
  const double z = std::pow(x / alpha_, beta_);
  const double denom = (1.0 + z) * (1.0 + z);
  return (beta_ / alpha_) * std::pow(x / alpha_, beta_ - 1.0) / denom;
}

double LogLogistic::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 / (1.0 + std::pow(x / alpha_, -beta_));
}

double LogLogistic::icdf(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * std::pow(p / (1.0 - p), 1.0 / beta_);
}

DistributionPtr LogLogistic::clone() const {
  return std::make_unique<LogLogistic>(*this);
}

}  // namespace aequus::stats
