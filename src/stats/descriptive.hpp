// Descriptive statistics used throughout the workload-modeling pipeline.
//
// The paper (following Downey & Feitelson) prefers medians over means and
// coefficients of variation because the trace contains outliers of unknown
// legitimacy; both are provided, plus histograms and empirical CDFs used to
// regenerate Figures 4-7.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace aequus::stats {

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double mean(std::span<const double> data) noexcept;

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
[[nodiscard]] double variance(std::span<const double> data) noexcept;

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> data) noexcept;

/// Coefficient of variation (stddev / mean); 0 when the mean is 0.
[[nodiscard]] double coefficient_of_variation(std::span<const double> data) noexcept;

/// Median (average of middle two for even n); 0 for empty input.
[[nodiscard]] double median(std::span<const double> data);

/// Linear-interpolated quantile, q in [0, 1].
[[nodiscard]] double quantile(std::span<const double> data, double q);

/// Sample skewness (adjusted Fisher–Pearson); 0 for n < 3.
[[nodiscard]] double skewness(std::span<const double> data) noexcept;

/// Minimum / maximum; 0 for empty input.
[[nodiscard]] double min_value(std::span<const double> data) noexcept;
[[nodiscard]] double max_value(std::span<const double> data) noexcept;

// Initializer-list conveniences (std::span cannot bind to braced lists).
inline double mean(std::initializer_list<double> data) noexcept {
  return mean(std::span<const double>(data.begin(), data.size()));
}
inline double variance(std::initializer_list<double> data) noexcept {
  return variance(std::span<const double>(data.begin(), data.size()));
}
inline double stddev(std::initializer_list<double> data) noexcept {
  return stddev(std::span<const double>(data.begin(), data.size()));
}
inline double coefficient_of_variation(std::initializer_list<double> data) noexcept {
  return coefficient_of_variation(std::span<const double>(data.begin(), data.size()));
}
inline double median(std::initializer_list<double> data) {
  return median(std::span<const double>(data.begin(), data.size()));
}
inline double quantile(std::initializer_list<double> data, double q) {
  return quantile(std::span<const double>(data.begin(), data.size()), q);
}
inline double skewness(std::initializer_list<double> data) noexcept {
  return skewness(std::span<const double>(data.begin(), data.size()));
}

/// Fixed-width histogram over [lo, hi) with `bins` bins.
///
/// Used both for the figure reproductions (job arrivals per day, Fig. 4-5)
/// and by the USS service, which aggregates per-user usage into interval
/// histograms before exchanging them between sites.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Add one observation; out-of-range values are clamped into the edge bins.
  void add(double value, double weight = 1.0) noexcept;

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] const std::vector<double>& counts() const noexcept { return counts_; }
  [[nodiscard]] double total() const noexcept { return total_; }
  [[nodiscard]] double bin_width() const noexcept;
  [[nodiscard]] double bin_center(std::size_t bin) const;

  /// Normalized density (counts / (total * bin_width)); zeros when empty.
  [[nodiscard]] std::vector<double> density() const;

  /// Render as a vertical-bar ASCII chart for bench output.
  [[nodiscard]] std::string render(const std::string& title, int height = 12) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Empirical cumulative distribution function over a sample.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> data);

  /// Fraction of samples <= x.
  [[nodiscard]] double operator()(double x) const noexcept;

  /// i-th order statistic, 0-based.
  [[nodiscard]] double order_statistic(std::size_t i) const { return sorted_.at(i); }
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const noexcept { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace aequus::stats
