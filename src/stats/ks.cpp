#include "stats/ks.hpp"

#include <algorithm>
#include <cmath>

#include "stats/special.hpp"

namespace aequus::stats {

KsResult ks_test(const std::vector<double>& data, const Distribution& dist) {
  KsResult result;
  if (data.empty()) return result;
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = dist.cdf(sorted[i]);
    const double ecdf_hi = static_cast<double>(i + 1) / n;
    const double ecdf_lo = static_cast<double>(i) / n;
    d = std::max(d, std::max(std::fabs(ecdf_hi - f), std::fabs(f - ecdf_lo)));
  }
  result.statistic = d;
  // Asymptotic p-value with the standard finite-n correction.
  const double sqrt_n = std::sqrt(n);
  result.p_value = kolmogorov_q((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
  return result;
}

double anderson_darling(const std::vector<double>& data, const Distribution& dist) {
  if (data.empty()) return 0.0;
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const auto nd = static_cast<double>(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Clamp away from the exact 0/1 endpoints to keep the logs finite for
    // samples sitting numerically on the support boundary.
    constexpr double kEps = 1e-300;
    const double fi = std::clamp(dist.cdf(sorted[i]), kEps, 1.0 - 1e-16);
    const double fj = std::clamp(dist.cdf(sorted[n - 1 - i]), kEps, 1.0 - 1e-16);
    sum += (2.0 * static_cast<double>(i) + 1.0) * (std::log(fi) + std::log1p(-fj));
  }
  return -nd - sum / nd;
}

double ks_two_sample(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.empty() || b.empty()) return 0.0;
  std::vector<double> sa = a;
  std::vector<double> sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  const auto na = static_cast<double>(sa.size());
  const auto nb = static_cast<double>(sb.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    d = std::max(d, std::fabs(static_cast<double>(ia) / na - static_cast<double>(ib) / nb));
  }
  return d;
}

}  // namespace aequus::stats
