#include "stats/fit.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "stats/descriptive.hpp"
#include "stats/families.hpp"
#include "stats/optimize.hpp"

namespace aequus::stats {

const std::vector<Family>& all_families() {
  static const std::vector<Family> families = {
      Family::kNormal,          Family::kLogNormal,      Family::kUniform,
      Family::kExponential,     Family::kLogistic,       Family::kHalfNormal,
      Family::kWeibull,         Family::kGamma,          Family::kRayleigh,
      Family::kBirnbaumSaunders, Family::kInverseGaussian, Family::kNakagami,
      Family::kLogLogistic,     Family::kGev,            Family::kGumbel,
      Family::kPareto,          Family::kGeneralizedPareto, Family::kBurr,
  };
  return families;
}

std::string to_string(Family family) {
  switch (family) {
    case Family::kNormal: return "Normal";
    case Family::kLogNormal: return "LogNormal";
    case Family::kUniform: return "Uniform";
    case Family::kExponential: return "Exponential";
    case Family::kLogistic: return "Logistic";
    case Family::kHalfNormal: return "HalfNormal";
    case Family::kWeibull: return "Weibull";
    case Family::kGamma: return "Gamma";
    case Family::kRayleigh: return "Rayleigh";
    case Family::kBirnbaumSaunders: return "BirnbaumSaunders";
    case Family::kInverseGaussian: return "InverseGaussian";
    case Family::kNakagami: return "Nakagami";
    case Family::kLogLogistic: return "LogLogistic";
    case Family::kGev: return "GEV";
    case Family::kGumbel: return "Gumbel";
    case Family::kPareto: return "Pareto";
    case Family::kGeneralizedPareto: return "GeneralizedPareto";
    case Family::kBurr: return "Burr";
  }
  return "?";
}

double bic_score(double log_likelihood, std::size_t n_params, std::size_t n_samples) {
  return static_cast<double>(n_params) * std::log(static_cast<double>(n_samples)) -
         2.0 * log_likelihood;
}

double aic_score(double log_likelihood, std::size_t n_params) {
  return 2.0 * static_cast<double>(n_params) - 2.0 * log_likelihood;
}

namespace {

struct DataSummary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  bool all_positive = false;
  bool all_nonnegative = false;
  double log_mean = 0.0;    // mean of ln(x), positive data only
  double log_stddev = 0.0;  // stddev of ln(x), positive data only
};

DataSummary summarize(const std::vector<double>& data) {
  DataSummary s;
  s.n = data.size();
  s.mean = mean(data);
  s.stddev = stddev(data);
  s.min = min_value(data);
  s.max = max_value(data);
  s.median = median(data);
  s.all_positive = s.min > 0.0;
  s.all_nonnegative = s.min >= 0.0;
  if (s.all_positive) {
    std::vector<double> logs;
    logs.reserve(data.size());
    for (double x : data) logs.push_back(std::log(x));
    s.log_mean = mean(logs);
    s.log_stddev = stddev(logs);
  }
  return s;
}

FitResult failed(Family family) {
  FitResult r;
  r.family = family;
  return r;
}

FitResult finish(Family family, DistributionPtr dist, const std::vector<double>& data,
                 std::size_t n_params, bool converged) {
  FitResult r;
  r.family = family;
  const double ll = dist->log_likelihood(data);
  if (!std::isfinite(ll)) return failed(family);
  r.distribution = std::move(dist);
  r.log_likelihood = ll;
  r.bic = bic_score(ll, n_params, data.size());
  r.aic = aic_score(ll, n_params);
  r.converged = converged;
  return r;
}

/// Optimize a family with Nelder–Mead in an unconstrained space.
/// `make` constructs the distribution from the unconstrained vector and may
/// throw; such points are treated as infinitely bad.
FitResult fit_numeric(Family family, const std::vector<double>& data,
                      const std::vector<std::vector<double>>& starts,
                      const std::function<DistributionPtr(const std::vector<double>&)>& make,
                      std::size_t n_params) {
  const auto objective = [&](const std::vector<double>& x) -> double {
    try {
      const DistributionPtr dist = make(x);
      const double ll = dist->log_likelihood(data);
      if (!std::isfinite(ll)) return std::numeric_limits<double>::infinity();
      return -ll;
    } catch (const std::exception&) {
      return std::numeric_limits<double>::infinity();
    }
  };

  double best_value = std::numeric_limits<double>::infinity();
  std::vector<double> best_x;
  bool best_converged = false;
  for (const auto& start : starts) {
    if (!std::isfinite(objective(start))) continue;
    const OptimizeResult r = nelder_mead(objective, start);
    if (std::isfinite(r.value) && r.value < best_value) {
      best_value = r.value;
      best_x = r.x;
      best_converged = r.converged;
    }
  }
  if (best_x.empty()) return failed(family);
  try {
    return finish(family, make(best_x), data, n_params, best_converged);
  } catch (const std::exception&) {
    return failed(family);
  }
}

}  // namespace

FitResult fit_mle(Family family, const std::vector<double>& data) {
  if (data.size() < 2) return failed(family);
  const DataSummary s = summarize(data);
  const double sd = std::max(s.stddev, 1e-12 * (std::fabs(s.mean) + 1.0));

  switch (family) {
    case Family::kNormal: {
      // ML sigma uses the n denominator.
      double ssq = 0.0;
      for (double x : data) ssq += (x - s.mean) * (x - s.mean);
      const double sigma = std::sqrt(std::max(ssq / static_cast<double>(s.n), 1e-300));
      return finish(family, std::make_unique<Normal>(s.mean, sigma), data, 2, true);
    }
    case Family::kLogNormal: {
      if (!s.all_positive) return failed(family);
      std::vector<double> logs;
      logs.reserve(s.n);
      for (double x : data) logs.push_back(std::log(x));
      const double mu = mean(logs);
      double ssq = 0.0;
      for (double lx : logs) ssq += (lx - mu) * (lx - mu);
      const double sigma = std::sqrt(std::max(ssq / static_cast<double>(s.n), 1e-300));
      return finish(family, std::make_unique<LogNormal>(mu, sigma), data, 2, true);
    }
    case Family::kUniform: {
      if (s.max <= s.min) return failed(family);
      // Widen a hair so the extreme order statistics have positive density.
      const double pad = (s.max - s.min) * 1e-9;
      return finish(family, std::make_unique<Uniform>(s.min - pad, s.max + pad), data, 2, true);
    }
    case Family::kExponential: {
      if (!s.all_nonnegative || s.mean <= 0.0) return failed(family);
      return finish(family, std::make_unique<Exponential>(s.mean), data, 1, true);
    }
    case Family::kLogistic: {
      const double s0 = sd * std::sqrt(3.0) / M_PI;
      return fit_numeric(
          family, data, {{s.mean, std::log(s0)}},
          [](const std::vector<double>& x) -> DistributionPtr {
            return std::make_unique<Logistic>(x[0], std::exp(x[1]));
          },
          2);
    }
    case Family::kHalfNormal: {
      if (!s.all_nonnegative) return failed(family);
      double ssq = 0.0;
      for (double x : data) ssq += x * x;
      const double sigma = std::sqrt(std::max(ssq / static_cast<double>(s.n), 1e-300));
      return finish(family, std::make_unique<HalfNormal>(sigma), data, 1, true);
    }
    case Family::kWeibull: {
      if (!s.all_positive) return failed(family);
      const double k0 = std::clamp(1.283 / std::max(s.log_stddev, 1e-6), 0.05, 50.0);
      const double lambda0 = std::exp(s.log_mean + 0.5772 / k0);
      return fit_numeric(
          family, data, {{std::log(lambda0), std::log(k0)}},
          [](const std::vector<double>& x) -> DistributionPtr {
            return std::make_unique<Weibull>(std::exp(x[0]), std::exp(x[1]));
          },
          2);
    }
    case Family::kGamma: {
      if (!s.all_positive) return failed(family);
      const double k0 = std::clamp((s.mean / sd) * (s.mean / sd), 1e-3, 1e6);
      const double theta0 = std::max(s.mean / k0, 1e-300);
      return fit_numeric(
          family, data, {{std::log(k0), std::log(theta0)}},
          [](const std::vector<double>& x) -> DistributionPtr {
            return std::make_unique<Gamma>(std::exp(x[0]), std::exp(x[1]));
          },
          2);
    }
    case Family::kRayleigh: {
      if (!s.all_nonnegative) return failed(family);
      double ssq = 0.0;
      for (double x : data) ssq += x * x;
      const double sigma = std::sqrt(std::max(ssq / (2.0 * static_cast<double>(s.n)), 1e-300));
      return finish(family, std::make_unique<Rayleigh>(sigma), data, 1, true);
    }
    case Family::kBirnbaumSaunders: {
      if (!s.all_positive) return failed(family);
      double harmonic_sum = 0.0;
      for (double x : data) harmonic_sum += 1.0 / x;
      const double r = static_cast<double>(s.n) / harmonic_sum;  // harmonic mean
      const double beta0 = std::sqrt(s.mean * r);
      const double gamma0 =
          std::sqrt(std::max(2.0 * (std::sqrt(s.mean / r) - 1.0), 1e-4));
      return fit_numeric(
          family, data, {{std::log(beta0), std::log(gamma0)}},
          [](const std::vector<double>& x) -> DistributionPtr {
            return std::make_unique<BirnbaumSaunders>(std::exp(x[0]), std::exp(x[1]));
          },
          2);
    }
    case Family::kInverseGaussian: {
      if (!s.all_positive) return failed(family);
      double inv_sum = 0.0;
      for (double x : data) inv_sum += 1.0 / x - 1.0 / s.mean;
      if (inv_sum <= 0.0) return failed(family);
      const double lambda = static_cast<double>(s.n) / inv_sum;
      return finish(family, std::make_unique<InverseGaussian>(s.mean, lambda), data, 2, true);
    }
    case Family::kNakagami: {
      if (!s.all_positive) return failed(family);
      std::vector<double> squares;
      squares.reserve(s.n);
      for (double x : data) squares.push_back(x * x);
      const double omega0 = mean(squares);
      const double var_sq = variance(squares);
      const double m0 = std::clamp(var_sq > 0.0 ? omega0 * omega0 / var_sq : 1.0, 0.5, 1e4);
      return fit_numeric(
          family, data, {{std::log(m0), std::log(omega0)}},
          [](const std::vector<double>& x) -> DistributionPtr {
            return std::make_unique<Nakagami>(std::max(std::exp(x[0]), 0.5), std::exp(x[1]));
          },
          2);
    }
    case Family::kLogLogistic: {
      if (!s.all_positive) return failed(family);
      const double beta0 = std::clamp(M_PI / (std::sqrt(3.0) * std::max(s.log_stddev, 1e-6)),
                                      0.05, 100.0);
      return fit_numeric(
          family, data, {{s.log_mean, std::log(beta0)}},
          [](const std::vector<double>& x) -> DistributionPtr {
            return std::make_unique<LogLogistic>(std::exp(x[0]), std::exp(x[1]));
          },
          2);
    }
    case Family::kGev: {
      const double sigma0 = sd * std::sqrt(6.0) / M_PI;
      const double mu0 = s.mean - 0.5772 * sigma0;
      std::vector<std::vector<double>> starts;
      for (double k0 : {-0.4, -0.15, 0.01, 0.2, 0.5}) {
        starts.push_back({k0, std::log(sigma0), mu0});
      }
      return fit_numeric(
          family, data, starts,
          [](const std::vector<double>& x) -> DistributionPtr {
            // k <= -1 makes the MLE degenerate (unbounded likelihood at the
            // support boundary); restrict to the regular region, as Matlab's
            // gevfit does.
            if (x[0] <= -0.99) throw std::invalid_argument("GEV: k out of range");
            return std::make_unique<Gev>(x[0], std::exp(x[1]), x[2]);
          },
          3);
    }
    case Family::kGumbel: {
      const double beta0 = sd * std::sqrt(6.0) / M_PI;
      const double mu0 = s.mean - 0.5772 * beta0;
      return fit_numeric(
          family, data, {{mu0, std::log(beta0)}},
          [](const std::vector<double>& x) -> DistributionPtr {
            return std::make_unique<Gumbel>(x[0], std::exp(x[1]));
          },
          2);
    }
    case Family::kPareto: {
      if (!s.all_positive) return failed(family);
      const double xm = s.min;
      double log_ratio_sum = 0.0;
      for (double x : data) log_ratio_sum += std::log(x / xm);
      if (log_ratio_sum <= 0.0) return failed(family);
      const double alpha = static_cast<double>(s.n) / log_ratio_sum;
      // Shrink xm slightly so the minimum sample has positive density.
      return finish(family, std::make_unique<Pareto>(xm * (1.0 - 1e-9), alpha), data, 2, true);
    }
    case Family::kGeneralizedPareto: {
      // Threshold pinned just below the sample minimum (Matlab fixes it at
      // 0); fit shape and scale.
      const double theta = s.min - 1e-9 * (std::fabs(s.min) + 1.0);
      const double excess_mean = s.mean - theta;
      std::vector<std::vector<double>> starts;
      for (double k0 : {-0.3, 0.01, 0.5}) {
        starts.push_back({k0, std::log(std::max(excess_mean, 1e-12))});
      }
      return fit_numeric(
          family, data, starts,
          [theta](const std::vector<double>& x) -> DistributionPtr {
            // Same regularity restriction as GEV: k <= -1 is degenerate.
            if (x[0] <= -0.99) throw std::invalid_argument("GP: k out of range");
            return std::make_unique<GeneralizedPareto>(x[0], std::exp(x[1]), theta);
          },
          2);
    }
    case Family::kBurr: {
      if (!s.all_positive) return failed(family);
      std::vector<std::vector<double>> starts;
      for (double c0 : {0.5, 2.0, 8.0}) {
        starts.push_back({std::log(std::max(s.median, 1e-12)), std::log(c0), 0.0});
      }
      return fit_numeric(
          family, data, starts,
          [](const std::vector<double>& x) -> DistributionPtr {
            return std::make_unique<Burr>(std::exp(x[0]), std::exp(x[1]), std::exp(x[2]));
          },
          3);
    }
  }
  return failed(family);
}

ModelSelection fit_best(const std::vector<double>& data, const std::vector<Family>& families) {
  ModelSelection selection;
  for (Family family : families) {
    FitResult r = fit_mle(family, data);
    if (r.ok()) selection.candidates.push_back(std::move(r));
  }
  std::sort(selection.candidates.begin(), selection.candidates.end(),
            [](const FitResult& a, const FitResult& b) { return a.bic < b.bic; });
  if (!selection.candidates.empty()) {
    selection.best.family = selection.candidates.front().family;
    selection.best.distribution = selection.candidates.front().distribution->clone();
    selection.best.log_likelihood = selection.candidates.front().log_likelihood;
    selection.best.bic = selection.candidates.front().bic;
    selection.best.aic = selection.candidates.front().aic;
    selection.best.converged = selection.candidates.front().converged;
  }
  return selection;
}

}  // namespace aequus::stats
