#include "net/service_bus.hpp"

#include <algorithm>

#include <stdexcept>

#include "util/logging.hpp"

namespace aequus::net {

ServiceBus::ServiceBus(sim::Simulator& simulator) : simulator_(simulator) {}

void ServiceBus::bind(const std::string& address, Handler handler) {
  endpoints_[address] = std::move(handler);
}

void ServiceBus::unbind(const std::string& address) {
  endpoints_.erase(address);
}

bool ServiceBus::bound(const std::string& address) const {
  return endpoints_.count(address) > 0;
}

std::string ServiceBus::site_of(std::string_view address) {
  const std::size_t dot = address.find('.');
  if (dot == std::string_view::npos) return std::string(address);
  return std::string(address.substr(0, dot));
}

void ServiceBus::set_site_contributes(const std::string& site, bool contributes) {
  contributes_[site] = contributes;
}

void ServiceBus::set_site_receives(const std::string& site, bool receives) {
  receives_[site] = receives;
}

bool ServiceBus::site_contributes(const std::string& site) const {
  const auto it = contributes_.find(site);
  return it == contributes_.end() || it->second;
}

bool ServiceBus::site_receives(const std::string& site) const {
  const auto it = receives_.find(site);
  return it == receives_.end() || it->second;
}

bool ServiceBus::allowed(const std::string& from_site, const std::string& to_site) const {
  if (from_site == to_site) return true;  // intra-site traffic always flows
  return site_contributes(from_site) && site_receives(to_site);
}

void ServiceBus::set_loss_rate(double rate, std::uint64_t seed) {
  loss_rate_ = std::clamp(rate, 0.0, 1.0);
  loss_rng_ = util::Rng(seed);
}

bool ServiceBus::lose(const std::string& from_site, const std::string& to_site) {
  if (loss_rate_ <= 0.0 || from_site == to_site) return false;
  if (!loss_rng_.bernoulli(loss_rate_)) return false;
  ++stats_.dropped_loss;
  return true;
}

double ServiceBus::latency(const std::string& from_site, const std::string& to_site) const {
  return from_site == to_site ? local_latency_ : remote_latency_;
}

void ServiceBus::request(const std::string& from_site, const std::string& address,
                         json::Value payload, ReplyCallback on_reply) {
  ++stats_.requests;
  stats_.payload_bytes += payload.dump().size();
  const std::string to_site = site_of(address);
  // The forward leg is a query (metadata), not data: it always flows, so a
  // non-contributing site can still *read* global state (§IV-A-4). The
  // reply leg carries the responder's data and is gated below.
  const auto it = endpoints_.find(address);
  if (it == endpoints_.end()) {
    ++stats_.dropped_unbound;
    AEQ_DEBUG("bus") << "request to unbound address " << address;
    return;
  }
  if (lose(from_site, to_site)) return;  // query leg lost
  const double hop = latency(from_site, to_site);
  // Copy the handler so a later re-bind does not affect in-flight traffic.
  simulator_.schedule_after(
      hop, [this, handler = it->second, payload = std::move(payload), hop, from_site,
            to_site, on_reply = std::move(on_reply)]() mutable {
        json::Value reply = handler(payload);
        // The reply carries the responder's data: it is subject to the
        // responder's contribution flag (a non-contributing site answers
        // local requests but its data never leaves the site, §IV-A-4).
        if (!allowed(to_site, from_site)) {
          ++stats_.dropped_participation;
          return;
        }
        if (lose(to_site, from_site)) return;  // reply leg lost
        stats_.payload_bytes += reply.dump().size();
        simulator_.schedule_after(
            hop, [reply = std::move(reply), on_reply = std::move(on_reply)] {
              if (on_reply) on_reply(reply);
            });
      });
}

void ServiceBus::send(const std::string& from_site, const std::string& address,
                      json::Value payload) {
  ++stats_.one_way;
  stats_.payload_bytes += payload.dump().size();
  const std::string to_site = site_of(address);
  if (!allowed(from_site, to_site)) {
    ++stats_.dropped_participation;
    return;
  }
  const auto it = endpoints_.find(address);
  if (it == endpoints_.end()) {
    ++stats_.dropped_unbound;
    AEQ_DEBUG("bus") << "send to unbound address " << address;
    return;
  }
  if (lose(from_site, to_site)) return;
  simulator_.schedule_after(latency(from_site, to_site),
                            [handler = it->second, payload = std::move(payload)] {
                              (void)handler(payload);
                            });
}

json::Value ServiceBus::call(const std::string& address, const json::Value& payload) {
  const auto it = endpoints_.find(address);
  if (it == endpoints_.end()) {
    throw std::runtime_error("ServiceBus::call: unbound address " + address);
  }
  return it->second(payload);
}

}  // namespace aequus::net
