#include "net/service_bus.hpp"

#include <algorithm>

#include <stdexcept>

#include "util/logging.hpp"

namespace aequus::net {

const char* to_string(SendVerdict verdict) noexcept {
  switch (verdict) {
    case SendVerdict::kDelivered: return "delivered";
    case SendVerdict::kDroppedParticipation: return "dropped_participation";
    case SendVerdict::kDroppedUnbound: return "dropped_unbound";
    case SendVerdict::kDroppedOutage: return "dropped_outage";
    case SendVerdict::kDroppedLoss: return "dropped_loss";
  }
  return "unknown";
}

bool send_verdict_from_string(std::string_view name, SendVerdict& out) noexcept {
  for (const SendVerdict verdict :
       {SendVerdict::kDelivered, SendVerdict::kDroppedParticipation,
        SendVerdict::kDroppedUnbound, SendVerdict::kDroppedOutage, SendVerdict::kDroppedLoss}) {
    if (name == to_string(verdict)) {
      out = verdict;
      return true;
    }
  }
  return false;
}

bool FaultPlan::active() const noexcept {
  return loss_rate > 0.0 || duplicate_rate > 0.0 || latency_jitter > 0.0 ||
         !link_loss.empty() || !outages.empty();
}

bool FaultPlan::site_down(const std::string& site, double now) const noexcept {
  for (const auto& window : outages) {
    if (window.site == site && now >= window.start && now < window.end) return true;
  }
  return false;
}

double FaultPlan::last_outage_end() const noexcept {
  double latest = 0.0;
  for (const auto& window : outages) latest = std::max(latest, window.end);
  return latest;
}

double FaultPlan::loss_for(const std::string& from_site,
                           const std::string& to_site) const noexcept {
  const auto it = link_loss.find({from_site, to_site});
  return it != link_loss.end() ? it->second : loss_rate;
}

ServiceBus::ServiceBus(sim::Simulator& simulator) : simulator_(simulator) {
  register_metrics();
}

void ServiceBus::register_metrics() {
  metrics_.requests = &registry_->counter("bus.requests");
  metrics_.one_way = &registry_->counter("bus.one_way");
  metrics_.dropped_participation = &registry_->counter("bus.dropped_participation");
  metrics_.dropped_unbound = &registry_->counter("bus.dropped_unbound");
  metrics_.dropped_loss = &registry_->counter("bus.dropped_loss");
  metrics_.dropped_outage = &registry_->counter("bus.dropped_outage");
  metrics_.duplicated = &registry_->counter("bus.duplicated");
  metrics_.unbound_bounces = &registry_->counter("bus.unbound_bounces");
  metrics_.payload_bytes = &registry_->counter("bus.payload_bytes");
  metrics_.batches = &registry_->counter("bus.batches");
  metrics_.batch_records = &registry_->counter("bus.batch_records");
}

void ServiceBus::attach_observability(obs::Observability obs) {
  if (obs.registry != nullptr && obs.registry != registry_) {
    registry_ = obs.registry;
    register_metrics();
    for (auto& [address, metrics] : endpoint_metrics_) {
      metrics.requests = &registry_->counter("rpc." + address + ".requests");
      metrics.latency = &registry_->histogram("rpc." + address + ".latency_s");
    }
  }
  tracer_ = obs.tracer;
}

ServiceBus::EndpointMetrics& ServiceBus::endpoint_metrics(const std::string& address) {
  const auto it = endpoint_metrics_.find(address);
  if (it != endpoint_metrics_.end()) return it->second;
  EndpointMetrics metrics;
  metrics.requests = &registry_->counter("rpc." + address + ".requests");
  metrics.latency = &registry_->histogram("rpc." + address + ".latency_s");
  return endpoint_metrics_.emplace(address, metrics).first->second;
}

void ServiceBus::trace(obs::EventKind kind, const std::string& site,
                       const std::string& component, std::string detail, double value,
                       std::uint64_t id) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  tracer_->record(simulator_.now(), kind, site, component, std::move(detail), value, id);
}

BusStats ServiceBus::stats() const noexcept {
  BusStats stats;
  stats.requests = metrics_.requests->value();
  stats.one_way = metrics_.one_way->value();
  stats.dropped_participation = metrics_.dropped_participation->value();
  stats.dropped_unbound = metrics_.dropped_unbound->value();
  stats.dropped_loss = metrics_.dropped_loss->value();
  stats.dropped_outage = metrics_.dropped_outage->value();
  stats.duplicated = metrics_.duplicated->value();
  stats.unbound_bounces = metrics_.unbound_bounces->value();
  stats.payload_bytes = metrics_.payload_bytes->value();
  stats.batches = metrics_.batches->value();
  stats.batch_records = metrics_.batch_records->value();
  return stats;
}

void ServiceBus::bind(const std::string& address, Handler handler) {
  endpoints_[address] = std::move(handler);
  (void)endpoint_metrics(address);  // register rpc.<address>.* up front
}

void ServiceBus::unbind(const std::string& address) {
  endpoints_.erase(address);
}

bool ServiceBus::bound(const std::string& address) const {
  return endpoints_.count(address) > 0;
}

std::string ServiceBus::site_of(std::string_view address) {
  const std::size_t dot = address.find('.');
  if (dot == std::string_view::npos) return std::string(address);
  return std::string(address.substr(0, dot));
}

std::string ServiceBus::service_of(std::string_view address) {
  const std::size_t dot = address.find('.');
  if (dot == std::string_view::npos) return std::string(address);
  return std::string(address.substr(dot + 1));
}

void ServiceBus::set_site_contributes(const std::string& site, bool contributes) {
  contributes_[site] = contributes;
}

void ServiceBus::set_site_receives(const std::string& site, bool receives) {
  receives_[site] = receives;
}

bool ServiceBus::site_contributes(const std::string& site) const {
  const auto it = contributes_.find(site);
  return it == contributes_.end() || it->second;
}

bool ServiceBus::site_receives(const std::string& site) const {
  const auto it = receives_.find(site);
  return it == receives_.end() || it->second;
}

bool ServiceBus::allowed(const std::string& from_site, const std::string& to_site) const {
  if (from_site == to_site) return true;  // intra-site traffic always flows
  return site_contributes(from_site) && site_receives(to_site);
}

void ServiceBus::set_fault_plan(FaultPlan plan) {
  plan.loss_rate = std::clamp(plan.loss_rate, 0.0, 1.0);
  plan.duplicate_rate = std::clamp(plan.duplicate_rate, 0.0, 1.0);
  plan.latency_jitter = std::max(plan.latency_jitter, 0.0);
  for (auto& [link, rate] : plan.link_loss) {
    (void)link;
    rate = std::clamp(rate, 0.0, 1.0);
  }
  plan_ = std::move(plan);
  fault_rng_ = util::Rng(plan_.seed);
}

void ServiceBus::set_loss_rate(double rate, std::uint64_t seed) {
  FaultPlan plan;
  plan.loss_rate = rate;
  plan.seed = seed;
  set_fault_plan(std::move(plan));
}

bool ServiceBus::lose(const std::string& from_site, const std::string& to_site) {
  if (from_site == to_site) return false;
  const double rate = plan_.loss_for(from_site, to_site);
  if (rate <= 0.0) return false;
  if (!fault_rng_.bernoulli(rate)) return false;
  metrics_.dropped_loss->inc();
  return true;
}

bool ServiceBus::outage(const std::string& from_site, const std::string& to_site) {
  if (plan_.outages.empty()) return false;
  const double now = simulator_.now();
  return plan_.site_down(from_site, now) || plan_.site_down(to_site, now);
}

bool ServiceBus::duplicate(const std::string& from_site, const std::string& to_site) {
  if (from_site == to_site || plan_.duplicate_rate <= 0.0) return false;
  return fault_rng_.bernoulli(plan_.duplicate_rate);
}

double ServiceBus::latency(const std::string& from_site, const std::string& to_site) const {
  return from_site == to_site ? local_latency_ : remote_latency_;
}

double ServiceBus::leg_latency(const std::string& from_site, const std::string& to_site) {
  double hop = latency(from_site, to_site);
  if (from_site != to_site && plan_.latency_jitter > 0.0) {
    hop += fault_rng_.uniform(0.0, plan_.latency_jitter);
  }
  return hop;
}

void ServiceBus::drop_leg(const obs::SpanContext& leg, const std::string& site,
                          std::string reason) {
  obs::SpanScope scope(tracer_, leg);
  trace(obs::EventKind::kMessageDrop, site, "bus", std::move(reason));
  if (tracing() && leg.valid()) {
    tracer_->end_span(simulator_.now(), leg, site, "bus", "dropped");
  }
}

ServiceBus::Delivery ServiceBus::deliver(const std::string& from_site,
                                         const std::string& to_site, const std::string& what,
                                         const obs::SpanContext& leg,
                                         std::function<void()> action) {
  Delivery outcome;
  if (outage(from_site, to_site)) {
    metrics_.dropped_outage->inc();
    drop_leg(leg, from_site, "outage:" + what);
    outcome.verdict = SendVerdict::kDroppedOutage;
    return outcome;
  }
  if (lose(from_site, to_site)) {
    drop_leg(leg, from_site, "loss:" + what);
    outcome.verdict = SendVerdict::kDroppedLoss;
    return outcome;
  }
  const bool twice = duplicate(from_site, to_site);
  // Close the leg span on arrival: leg duration is pure wire time, so the
  // analyzer can split every chain into queueing (bus legs) vs handling.
  // A duplicated leg ends its span twice; the analyzer counts the second
  // end as `duplicate_ends` and keeps the first.
  auto arrive = [this, leg, to_site, action = std::move(action)] {
    if (tracing() && leg.valid()) {
      tracer_->end_span(simulator_.now(), leg, to_site, "bus");
    }
    action();
  };
  outcome.delivered = true;
  outcome.latency = leg_latency(from_site, to_site);
  simulator_.schedule_after(outcome.latency, arrive);
  if (twice) {
    metrics_.duplicated->inc();
    outcome.duplicated = true;
    outcome.dup_latency = leg_latency(from_site, to_site);
    simulator_.schedule_after(outcome.dup_latency, std::move(arrive));
  }
  return outcome;
}

void ServiceBus::bounce_unbound(const std::string& address, const std::string& from_site,
                                const std::string& to_site, ErrorCallback on_error,
                                const obs::SpanContext& rpc_span,
                                const obs::SpanContext& caller) {
  metrics_.dropped_unbound->inc();
  AEQ_DEBUG("bus") << "request to unbound address " << address;
  {
    obs::SpanScope scope(tracer_, rpc_span);
    trace(obs::EventKind::kMessageDrop, to_site, "bus", "unbound:" + address);
  }
  // Structural failures bounce reliably (the transport knows nobody
  // listens); injected loss and outages stay silent so callers can only
  // detect them by timeout.
  if (on_error) {
    metrics_.unbound_bounces->inc();
    json::Object envelope;
    envelope["error"] = "unbound";
    envelope["address"] = address;
    simulator_.schedule_after(
        latency(to_site, from_site),
        [this, from_site, rpc_span, caller, error = json::Value(std::move(envelope)),
         on_error = std::move(on_error)] {
          if (tracing() && rpc_span.valid()) {
            tracer_->end_span(simulator_.now(), rpc_span, from_site, "bus", "unbound");
          }
          obs::SpanScope scope(tracer_, caller);
          on_error(error);
        });
  }
  // Without an error callback the rpc span stays open: the caller can only
  // notice by timeout, which the analyzer reports as a broken chain.
}

void ServiceBus::request(const std::string& from_site, const std::string& address,
                         json::Value payload, ReplyCallback on_reply, ErrorCallback on_error) {
  metrics_.requests->inc();
  metrics_.payload_bytes->inc(payload.dump().size());
  EndpointMetrics& rpc = endpoint_metrics(address);
  rpc.requests->inc();
  const std::string to_site = site_of(address);
  // Causal context: the rpc span is a child of whatever span was ambient
  // at the call site; the caller's context is restored around the
  // continuations so work triggered by the reply stays in the caller's
  // tree. The span context travels in the envelope only — never in the
  // JSON payload — so payload_bytes is identical with tracing on or off.
  const obs::SpanContext caller = tracing() ? tracer_->current() : obs::SpanContext{};
  const obs::SpanContext rpc_span =
      tracing() ? tracer_->begin_child(simulator_.now(), caller, from_site, "bus",
                                       "rpc:" + address)
                : obs::SpanContext{};
  // The forward leg is a query (metadata), not data: it always flows, so a
  // non-contributing site can still *read* global state (§IV-A-4). The
  // reply leg carries the responder's data and is gated below.
  if (endpoints_.find(address) == endpoints_.end()) {
    // Unbound at send time: the transport rejects immediately, so the
    // bounce costs one hop instead of a round trip.
    bounce_unbound(address, from_site, to_site, std::move(on_error), rpc_span, caller);
    return;
  }
  const double sent_at = simulator_.now();
  const obs::SpanContext query_leg =
      tracing() ? tracer_->begin_child(sent_at, rpc_span, from_site, "bus",
                                       "query:" + address)
                : obs::SpanContext{};
  // The handler is resolved on arrival: an unbind while the query is in
  // flight bounces, a re-bind routes to the new handler.
  deliver(from_site, to_site, address, query_leg,
          [this, address, latency = rpc.latency, payload = std::move(payload), from_site,
           to_site, sent_at, rpc_span, caller, on_reply = std::move(on_reply),
           on_error = std::move(on_error)]() mutable {
            const auto it = endpoints_.find(address);
            if (it == endpoints_.end()) {
              bounce_unbound(address, from_site, to_site, std::move(on_error), rpc_span,
                             caller);
              return;
            }
            json::Value reply;
            {
              const obs::SpanContext handle =
                  tracing() ? tracer_->begin_child(simulator_.now(), rpc_span, to_site,
                                                   service_of(address), "handle:" + address)
                            : obs::SpanContext{};
              obs::SpanScope scope(tracer_, handle);
              trace(obs::EventKind::kMessageDeliver, to_site, "bus", address);
              reply = it->second(payload);
              if (tracing() && handle.valid()) {
                tracer_->end_span(simulator_.now(), handle, to_site, service_of(address));
              }
            }
            // The reply carries the responder's data: it is subject to the
            // responder's contribution flag (a non-contributing site answers
            // local requests but its data never leaves the site, §IV-A-4).
            if (!allowed(to_site, from_site)) {
              metrics_.dropped_participation->inc();
              // The rpc span stays open: the caller never hears back, and
              // the analyzer flags the chain as broken.
              obs::SpanScope scope(tracer_, rpc_span);
              trace(obs::EventKind::kMessageDrop, to_site, "bus",
                    "participation:" + address);
              return;
            }
            metrics_.payload_bytes->inc(reply.dump().size());
            const obs::SpanContext reply_leg =
                tracing() ? tracer_->begin_child(simulator_.now(), rpc_span, to_site,
                                                 "bus", "reply:" + address)
                          : obs::SpanContext{};
            deliver(to_site, from_site, address + ":reply", reply_leg,
                    [this, latency, address, from_site, sent_at, rpc_span, caller,
                     reply = std::move(reply), on_reply = std::move(on_reply)] {
                      const double elapsed = simulator_.now() - sent_at;
                      latency->record(elapsed);
                      if (tracing() && rpc_span.valid()) {
                        tracer_->end_span(simulator_.now(), rpc_span, from_site, "bus",
                                          address, elapsed);
                      }
                      obs::SpanScope scope(tracer_, caller);
                      if (on_reply) on_reply(reply);
                    });
          });
}

void ServiceBus::send(const std::string& from_site, const std::string& address,
                      json::Value payload) {
  send_impl(from_site, address, std::move(payload), 0, false);
}

void ServiceBus::send_impl(const std::string& from_site, const std::string& address,
                           json::Value payload, std::size_t record_count, bool batch) {
  metrics_.one_way->inc();
  const std::string wire = payload.dump();
  metrics_.payload_bytes->inc(wire.size());
  const std::string to_site = site_of(address);
  const obs::SpanContext send_span =
      tracing() ? tracer_->begin_span(simulator_.now(), from_site, "bus",
                                      "send:" + address)
                : obs::SpanContext{};
  obs::SpanScope scope(tracer_, send_span);
  trace(obs::EventKind::kMessageSend, from_site, "bus", address);
  // Report the transport verdict to the attached tap. Purely observational:
  // no randomness is consumed and no state is touched, so attaching a tap
  // cannot perturb a run (the replay golden tests pin this).
  const auto observe = [&](SendVerdict verdict, double latency, double dup_latency,
                           bool duplicated) {
    if (tap_ == nullptr) return;
    SendObservation observation;
    observation.sent_at = simulator_.now();
    observation.delivered_at = simulator_.now() + latency;
    observation.duplicate_delivered_at =
        duplicated ? simulator_.now() + dup_latency : 0.0;
    observation.from_site = from_site;
    observation.address = address;
    observation.payload = wire;
    observation.record_count = record_count;
    observation.batch = batch;
    observation.duplicated = duplicated;
    observation.verdict = verdict;
    observation.span = send_span;
    tap_->on_send(observation);
  };
  // Drops leave the send span open: the data never arrived, and the
  // analyzer reports the enclosing chain as broken.
  if (!allowed(from_site, to_site)) {
    metrics_.dropped_participation->inc();
    trace(obs::EventKind::kMessageDrop, from_site, "bus", "participation:" + address);
    observe(SendVerdict::kDroppedParticipation, 0.0, 0.0, false);
    return;
  }
  if (endpoints_.find(address) == endpoints_.end()) {
    metrics_.dropped_unbound->inc();
    AEQ_DEBUG("bus") << "send to unbound address " << address;
    trace(obs::EventKind::kMessageDrop, to_site, "bus", "unbound:" + address);
    observe(SendVerdict::kDroppedUnbound, 0.0, 0.0, false);
    return;
  }
  const obs::SpanContext data_leg =
      tracing() ? tracer_->begin_child(simulator_.now(), send_span, from_site, "bus",
                                       "data:" + address)
                : obs::SpanContext{};
  const Delivery outcome = deliver(
      from_site, to_site, address, data_leg,
      [this, address, to_site, send_span, payload = std::move(payload)] {
            const auto it = endpoints_.find(address);
            if (it == endpoints_.end()) {
              // Unbound while in flight: one-way data has no reply channel,
              // so the message just counts as dropped.
              metrics_.dropped_unbound->inc();
              AEQ_DEBUG("bus") << "in-flight send to unbound address " << address;
              obs::SpanScope scope(tracer_, send_span);
              trace(obs::EventKind::kMessageDrop, to_site, "bus", "unbound:" + address);
              return;
            }
            {
              const obs::SpanContext handle =
                  tracing() ? tracer_->begin_child(simulator_.now(), send_span, to_site,
                                                   service_of(address), "handle:" + address)
                            : obs::SpanContext{};
              obs::SpanScope scope(tracer_, handle);
              trace(obs::EventKind::kMessageDeliver, to_site, "bus", address);
              (void)it->second(payload);
              if (tracing() && handle.valid()) {
                tracer_->end_span(simulator_.now(), handle, to_site, service_of(address));
              }
            }
            if (tracing() && send_span.valid()) {
              tracer_->end_span(simulator_.now(), send_span, to_site, "bus");
            }
          });
  observe(outcome.verdict, outcome.latency, outcome.dup_latency, outcome.duplicated);
}

void ServiceBus::send_batch(const std::string& from_site, const std::string& address,
                            json::Value payload, std::size_t record_count) {
  // A batch is one data message on the wire; the extra counters record
  // how many usage records it stands for. Delivery (participation,
  // outage, loss, duplication, jitter) is exactly send()'s.
  metrics_.batches->inc();
  metrics_.batch_records->inc(record_count);
  send_impl(from_site, address, std::move(payload), record_count, true);
}

json::Value ServiceBus::call(const std::string& address, const json::Value& payload) {
  const auto it = endpoints_.find(address);
  if (it == endpoints_.end()) {
    throw std::runtime_error("ServiceBus::call: unbound address " + address);
  }
  const std::string to_site = site_of(address);
  const obs::SpanContext span =
      tracing() ? tracer_->begin_span(simulator_.now(), to_site,
                                      service_of(address), "call:" + address)
                : obs::SpanContext{};
  obs::SpanScope scope(tracer_, span);
  json::Value reply = it->second(payload);
  if (tracing() && span.valid()) {
    tracer_->end_span(simulator_.now(), span, to_site, service_of(address));
  }
  return reply;
}

}  // namespace aequus::net
