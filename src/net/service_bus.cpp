#include "net/service_bus.hpp"

#include <algorithm>

#include <stdexcept>

#include "util/logging.hpp"

namespace aequus::net {

bool FaultPlan::active() const noexcept {
  return loss_rate > 0.0 || duplicate_rate > 0.0 || latency_jitter > 0.0 ||
         !link_loss.empty() || !outages.empty();
}

bool FaultPlan::site_down(const std::string& site, double now) const noexcept {
  for (const auto& window : outages) {
    if (window.site == site && now >= window.start && now < window.end) return true;
  }
  return false;
}

double FaultPlan::last_outage_end() const noexcept {
  double latest = 0.0;
  for (const auto& window : outages) latest = std::max(latest, window.end);
  return latest;
}

double FaultPlan::loss_for(const std::string& from_site,
                           const std::string& to_site) const noexcept {
  const auto it = link_loss.find({from_site, to_site});
  return it != link_loss.end() ? it->second : loss_rate;
}

ServiceBus::ServiceBus(sim::Simulator& simulator) : simulator_(simulator) {
  register_metrics();
}

void ServiceBus::register_metrics() {
  metrics_.requests = &registry_->counter("bus.requests");
  metrics_.one_way = &registry_->counter("bus.one_way");
  metrics_.dropped_participation = &registry_->counter("bus.dropped_participation");
  metrics_.dropped_unbound = &registry_->counter("bus.dropped_unbound");
  metrics_.dropped_loss = &registry_->counter("bus.dropped_loss");
  metrics_.dropped_outage = &registry_->counter("bus.dropped_outage");
  metrics_.duplicated = &registry_->counter("bus.duplicated");
  metrics_.unbound_bounces = &registry_->counter("bus.unbound_bounces");
  metrics_.payload_bytes = &registry_->counter("bus.payload_bytes");
}

void ServiceBus::attach_observability(obs::Observability obs) {
  if (obs.registry != nullptr && obs.registry != registry_) {
    registry_ = obs.registry;
    register_metrics();
    for (auto& [address, metrics] : endpoint_metrics_) {
      metrics.requests = &registry_->counter("rpc." + address + ".requests");
      metrics.latency = &registry_->histogram("rpc." + address + ".latency_s");
    }
  }
  tracer_ = obs.tracer;
}

ServiceBus::EndpointMetrics& ServiceBus::endpoint_metrics(const std::string& address) {
  const auto it = endpoint_metrics_.find(address);
  if (it != endpoint_metrics_.end()) return it->second;
  EndpointMetrics metrics;
  metrics.requests = &registry_->counter("rpc." + address + ".requests");
  metrics.latency = &registry_->histogram("rpc." + address + ".latency_s");
  return endpoint_metrics_.emplace(address, metrics).first->second;
}

void ServiceBus::trace(obs::EventKind kind, const std::string& site,
                       const std::string& component, std::string detail, double value,
                       std::uint64_t id) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  tracer_->record(simulator_.now(), kind, site, component, std::move(detail), value, id);
}

BusStats ServiceBus::stats() const noexcept {
  BusStats stats;
  stats.requests = metrics_.requests->value();
  stats.one_way = metrics_.one_way->value();
  stats.dropped_participation = metrics_.dropped_participation->value();
  stats.dropped_unbound = metrics_.dropped_unbound->value();
  stats.dropped_loss = metrics_.dropped_loss->value();
  stats.dropped_outage = metrics_.dropped_outage->value();
  stats.duplicated = metrics_.duplicated->value();
  stats.unbound_bounces = metrics_.unbound_bounces->value();
  stats.payload_bytes = metrics_.payload_bytes->value();
  return stats;
}

void ServiceBus::bind(const std::string& address, Handler handler) {
  endpoints_[address] = std::move(handler);
  (void)endpoint_metrics(address);  // register rpc.<address>.* up front
}

void ServiceBus::unbind(const std::string& address) {
  endpoints_.erase(address);
}

bool ServiceBus::bound(const std::string& address) const {
  return endpoints_.count(address) > 0;
}

std::string ServiceBus::site_of(std::string_view address) {
  const std::size_t dot = address.find('.');
  if (dot == std::string_view::npos) return std::string(address);
  return std::string(address.substr(0, dot));
}

void ServiceBus::set_site_contributes(const std::string& site, bool contributes) {
  contributes_[site] = contributes;
}

void ServiceBus::set_site_receives(const std::string& site, bool receives) {
  receives_[site] = receives;
}

bool ServiceBus::site_contributes(const std::string& site) const {
  const auto it = contributes_.find(site);
  return it == contributes_.end() || it->second;
}

bool ServiceBus::site_receives(const std::string& site) const {
  const auto it = receives_.find(site);
  return it == receives_.end() || it->second;
}

bool ServiceBus::allowed(const std::string& from_site, const std::string& to_site) const {
  if (from_site == to_site) return true;  // intra-site traffic always flows
  return site_contributes(from_site) && site_receives(to_site);
}

void ServiceBus::set_fault_plan(FaultPlan plan) {
  plan.loss_rate = std::clamp(plan.loss_rate, 0.0, 1.0);
  plan.duplicate_rate = std::clamp(plan.duplicate_rate, 0.0, 1.0);
  plan.latency_jitter = std::max(plan.latency_jitter, 0.0);
  for (auto& [link, rate] : plan.link_loss) {
    (void)link;
    rate = std::clamp(rate, 0.0, 1.0);
  }
  plan_ = std::move(plan);
  fault_rng_ = util::Rng(plan_.seed);
}

void ServiceBus::set_loss_rate(double rate, std::uint64_t seed) {
  FaultPlan plan;
  plan.loss_rate = rate;
  plan.seed = seed;
  set_fault_plan(std::move(plan));
}

bool ServiceBus::lose(const std::string& from_site, const std::string& to_site) {
  if (from_site == to_site) return false;
  const double rate = plan_.loss_for(from_site, to_site);
  if (rate <= 0.0) return false;
  if (!fault_rng_.bernoulli(rate)) return false;
  metrics_.dropped_loss->inc();
  return true;
}

bool ServiceBus::outage(const std::string& from_site, const std::string& to_site) {
  if (plan_.outages.empty()) return false;
  const double now = simulator_.now();
  return plan_.site_down(from_site, now) || plan_.site_down(to_site, now);
}

bool ServiceBus::duplicate(const std::string& from_site, const std::string& to_site) {
  if (from_site == to_site || plan_.duplicate_rate <= 0.0) return false;
  return fault_rng_.bernoulli(plan_.duplicate_rate);
}

double ServiceBus::latency(const std::string& from_site, const std::string& to_site) const {
  return from_site == to_site ? local_latency_ : remote_latency_;
}

double ServiceBus::leg_latency(const std::string& from_site, const std::string& to_site) {
  double hop = latency(from_site, to_site);
  if (from_site != to_site && plan_.latency_jitter > 0.0) {
    hop += fault_rng_.uniform(0.0, plan_.latency_jitter);
  }
  return hop;
}

bool ServiceBus::deliver(const std::string& from_site, const std::string& to_site,
                         const std::string& what, std::function<void()> action) {
  if (outage(from_site, to_site)) {
    metrics_.dropped_outage->inc();
    trace(obs::EventKind::kMessageDrop, from_site, "bus", "outage:" + what);
    return false;
  }
  if (lose(from_site, to_site)) {
    trace(obs::EventKind::kMessageDrop, from_site, "bus", "loss:" + what);
    return false;
  }
  const bool twice = duplicate(from_site, to_site);
  simulator_.schedule_after(leg_latency(from_site, to_site), action);
  if (twice) {
    metrics_.duplicated->inc();
    simulator_.schedule_after(leg_latency(from_site, to_site), std::move(action));
  }
  return true;
}

void ServiceBus::bounce_unbound(const std::string& address, const std::string& from_site,
                                const std::string& to_site, ErrorCallback on_error) {
  metrics_.dropped_unbound->inc();
  AEQ_DEBUG("bus") << "request to unbound address " << address;
  trace(obs::EventKind::kMessageDrop, to_site, "bus", "unbound:" + address);
  // Structural failures bounce reliably (the transport knows nobody
  // listens); injected loss and outages stay silent so callers can only
  // detect them by timeout.
  if (on_error) {
    metrics_.unbound_bounces->inc();
    json::Object envelope;
    envelope["error"] = "unbound";
    envelope["address"] = address;
    simulator_.schedule_after(
        latency(to_site, from_site),
        [error = json::Value(std::move(envelope)), on_error = std::move(on_error)] {
          on_error(error);
        });
  }
}

void ServiceBus::request(const std::string& from_site, const std::string& address,
                         json::Value payload, ReplyCallback on_reply, ErrorCallback on_error) {
  metrics_.requests->inc();
  metrics_.payload_bytes->inc(payload.dump().size());
  EndpointMetrics& rpc = endpoint_metrics(address);
  rpc.requests->inc();
  const std::string to_site = site_of(address);
  const std::uint64_t rpc_id =
      tracer_ != nullptr && tracer_->enabled() ? tracer_->next_id() : 0;
  trace(obs::EventKind::kRpcBegin, from_site, "bus", address, 0.0, rpc_id);
  // The forward leg is a query (metadata), not data: it always flows, so a
  // non-contributing site can still *read* global state (§IV-A-4). The
  // reply leg carries the responder's data and is gated below.
  if (endpoints_.find(address) == endpoints_.end()) {
    // Unbound at send time: the transport rejects immediately, so the
    // bounce costs one hop instead of a round trip.
    bounce_unbound(address, from_site, to_site, std::move(on_error));
    return;
  }
  const double sent_at = simulator_.now();
  // The handler is resolved on arrival: an unbind while the query is in
  // flight bounces, a re-bind routes to the new handler.
  deliver(from_site, to_site, address,
          [this, address, latency = rpc.latency, payload = std::move(payload), from_site,
           to_site, sent_at, rpc_id, on_reply = std::move(on_reply),
           on_error = std::move(on_error)]() mutable {
            const auto it = endpoints_.find(address);
            if (it == endpoints_.end()) {
              bounce_unbound(address, from_site, to_site, std::move(on_error));
              return;
            }
            trace(obs::EventKind::kMessageDeliver, to_site, "bus", address, 0.0, rpc_id);
            json::Value reply = it->second(payload);
            // The reply carries the responder's data: it is subject to the
            // responder's contribution flag (a non-contributing site answers
            // local requests but its data never leaves the site, §IV-A-4).
            if (!allowed(to_site, from_site)) {
              metrics_.dropped_participation->inc();
              trace(obs::EventKind::kMessageDrop, to_site, "bus",
                    "participation:" + address, 0.0, rpc_id);
              return;
            }
            metrics_.payload_bytes->inc(reply.dump().size());
            deliver(to_site, from_site, address + ":reply",
                    [this, latency, address, from_site, sent_at, rpc_id,
                     reply = std::move(reply), on_reply = std::move(on_reply)] {
                      latency->record(simulator_.now() - sent_at);
                      trace(obs::EventKind::kRpcEnd, from_site, "bus", address,
                            simulator_.now() - sent_at, rpc_id);
                      if (on_reply) on_reply(reply);
                    });
          });
}

void ServiceBus::send(const std::string& from_site, const std::string& address,
                      json::Value payload) {
  metrics_.one_way->inc();
  metrics_.payload_bytes->inc(payload.dump().size());
  const std::string to_site = site_of(address);
  trace(obs::EventKind::kMessageSend, from_site, "bus", address);
  if (!allowed(from_site, to_site)) {
    metrics_.dropped_participation->inc();
    trace(obs::EventKind::kMessageDrop, from_site, "bus", "participation:" + address);
    return;
  }
  if (endpoints_.find(address) == endpoints_.end()) {
    metrics_.dropped_unbound->inc();
    AEQ_DEBUG("bus") << "send to unbound address " << address;
    trace(obs::EventKind::kMessageDrop, to_site, "bus", "unbound:" + address);
    return;
  }
  deliver(from_site, to_site, address,
          [this, address, to_site, payload = std::move(payload)] {
            const auto it = endpoints_.find(address);
            if (it == endpoints_.end()) {
              // Unbound while in flight: one-way data has no reply channel,
              // so the message just counts as dropped.
              metrics_.dropped_unbound->inc();
              AEQ_DEBUG("bus") << "in-flight send to unbound address " << address;
              trace(obs::EventKind::kMessageDrop, to_site, "bus", "unbound:" + address);
              return;
            }
            trace(obs::EventKind::kMessageDeliver, to_site, "bus", address);
            (void)it->second(payload);
          });
}

json::Value ServiceBus::call(const std::string& address, const json::Value& payload) {
  const auto it = endpoints_.find(address);
  if (it == endpoints_.end()) {
    throw std::runtime_error("ServiceBus::call: unbound address " + address);
  }
  return it->second(payload);
}

}  // namespace aequus::net
