#include "net/service_bus.hpp"

#include <algorithm>

#include <stdexcept>

#include "util/logging.hpp"

namespace aequus::net {

bool FaultPlan::active() const noexcept {
  return loss_rate > 0.0 || duplicate_rate > 0.0 || latency_jitter > 0.0 ||
         !link_loss.empty() || !outages.empty();
}

bool FaultPlan::site_down(const std::string& site, double now) const noexcept {
  for (const auto& window : outages) {
    if (window.site == site && now >= window.start && now < window.end) return true;
  }
  return false;
}

double FaultPlan::last_outage_end() const noexcept {
  double latest = 0.0;
  for (const auto& window : outages) latest = std::max(latest, window.end);
  return latest;
}

double FaultPlan::loss_for(const std::string& from_site,
                           const std::string& to_site) const noexcept {
  const auto it = link_loss.find({from_site, to_site});
  return it != link_loss.end() ? it->second : loss_rate;
}

ServiceBus::ServiceBus(sim::Simulator& simulator) : simulator_(simulator) {}

void ServiceBus::bind(const std::string& address, Handler handler) {
  endpoints_[address] = std::move(handler);
}

void ServiceBus::unbind(const std::string& address) {
  endpoints_.erase(address);
}

bool ServiceBus::bound(const std::string& address) const {
  return endpoints_.count(address) > 0;
}

std::string ServiceBus::site_of(std::string_view address) {
  const std::size_t dot = address.find('.');
  if (dot == std::string_view::npos) return std::string(address);
  return std::string(address.substr(0, dot));
}

void ServiceBus::set_site_contributes(const std::string& site, bool contributes) {
  contributes_[site] = contributes;
}

void ServiceBus::set_site_receives(const std::string& site, bool receives) {
  receives_[site] = receives;
}

bool ServiceBus::site_contributes(const std::string& site) const {
  const auto it = contributes_.find(site);
  return it == contributes_.end() || it->second;
}

bool ServiceBus::site_receives(const std::string& site) const {
  const auto it = receives_.find(site);
  return it == receives_.end() || it->second;
}

bool ServiceBus::allowed(const std::string& from_site, const std::string& to_site) const {
  if (from_site == to_site) return true;  // intra-site traffic always flows
  return site_contributes(from_site) && site_receives(to_site);
}

void ServiceBus::set_fault_plan(FaultPlan plan) {
  plan.loss_rate = std::clamp(plan.loss_rate, 0.0, 1.0);
  plan.duplicate_rate = std::clamp(plan.duplicate_rate, 0.0, 1.0);
  plan.latency_jitter = std::max(plan.latency_jitter, 0.0);
  for (auto& [link, rate] : plan.link_loss) {
    (void)link;
    rate = std::clamp(rate, 0.0, 1.0);
  }
  plan_ = std::move(plan);
  fault_rng_ = util::Rng(plan_.seed);
}

void ServiceBus::set_loss_rate(double rate, std::uint64_t seed) {
  FaultPlan plan;
  plan.loss_rate = rate;
  plan.seed = seed;
  set_fault_plan(std::move(plan));
}

bool ServiceBus::lose(const std::string& from_site, const std::string& to_site) {
  if (from_site == to_site) return false;
  const double rate = plan_.loss_for(from_site, to_site);
  if (rate <= 0.0) return false;
  if (!fault_rng_.bernoulli(rate)) return false;
  ++stats_.dropped_loss;
  return true;
}

bool ServiceBus::outage(const std::string& from_site, const std::string& to_site) {
  if (plan_.outages.empty()) return false;
  const double now = simulator_.now();
  return plan_.site_down(from_site, now) || plan_.site_down(to_site, now);
}

bool ServiceBus::duplicate(const std::string& from_site, const std::string& to_site) {
  if (from_site == to_site || plan_.duplicate_rate <= 0.0) return false;
  return fault_rng_.bernoulli(plan_.duplicate_rate);
}

double ServiceBus::latency(const std::string& from_site, const std::string& to_site) const {
  return from_site == to_site ? local_latency_ : remote_latency_;
}

double ServiceBus::leg_latency(const std::string& from_site, const std::string& to_site) {
  double hop = latency(from_site, to_site);
  if (from_site != to_site && plan_.latency_jitter > 0.0) {
    hop += fault_rng_.uniform(0.0, plan_.latency_jitter);
  }
  return hop;
}

bool ServiceBus::deliver(const std::string& from_site, const std::string& to_site,
                         std::function<void()> action) {
  if (outage(from_site, to_site)) {
    ++stats_.dropped_outage;
    return false;
  }
  if (lose(from_site, to_site)) return false;
  const bool twice = duplicate(from_site, to_site);
  simulator_.schedule_after(leg_latency(from_site, to_site), action);
  if (twice) {
    ++stats_.duplicated;
    simulator_.schedule_after(leg_latency(from_site, to_site), std::move(action));
  }
  return true;
}

void ServiceBus::request(const std::string& from_site, const std::string& address,
                         json::Value payload, ReplyCallback on_reply, ErrorCallback on_error) {
  ++stats_.requests;
  stats_.payload_bytes += payload.dump().size();
  const std::string to_site = site_of(address);
  // The forward leg is a query (metadata), not data: it always flows, so a
  // non-contributing site can still *read* global state (§IV-A-4). The
  // reply leg carries the responder's data and is gated below.
  const auto it = endpoints_.find(address);
  if (it == endpoints_.end()) {
    ++stats_.dropped_unbound;
    AEQ_DEBUG("bus") << "request to unbound address " << address;
    // Structural failures bounce reliably (the transport knows nobody
    // listens); injected loss and outages stay silent so callers can only
    // detect them by timeout.
    if (on_error) {
      ++stats_.unbound_bounces;
      json::Object envelope;
      envelope["error"] = "unbound";
      envelope["address"] = address;
      simulator_.schedule_after(
          latency(from_site, to_site),
          [error = json::Value(std::move(envelope)), on_error = std::move(on_error)] {
            on_error(error);
          });
    }
    return;
  }
  // Copy the handler so a later re-bind does not affect in-flight traffic.
  deliver(from_site, to_site,
          [this, handler = it->second, payload = std::move(payload), from_site, to_site,
           on_reply = std::move(on_reply)]() mutable {
            json::Value reply = handler(payload);
            // The reply carries the responder's data: it is subject to the
            // responder's contribution flag (a non-contributing site answers
            // local requests but its data never leaves the site, §IV-A-4).
            if (!allowed(to_site, from_site)) {
              ++stats_.dropped_participation;
              return;
            }
            stats_.payload_bytes += reply.dump().size();
            deliver(to_site, from_site,
                    [reply = std::move(reply), on_reply = std::move(on_reply)] {
                      if (on_reply) on_reply(reply);
                    });
          });
}

void ServiceBus::send(const std::string& from_site, const std::string& address,
                      json::Value payload) {
  ++stats_.one_way;
  stats_.payload_bytes += payload.dump().size();
  const std::string to_site = site_of(address);
  if (!allowed(from_site, to_site)) {
    ++stats_.dropped_participation;
    return;
  }
  const auto it = endpoints_.find(address);
  if (it == endpoints_.end()) {
    ++stats_.dropped_unbound;
    AEQ_DEBUG("bus") << "send to unbound address " << address;
    return;
  }
  deliver(from_site, to_site, [handler = it->second, payload = std::move(payload)] {
    (void)handler(payload);
  });
}

json::Value ServiceBus::call(const std::string& address, const json::Value& payload) {
  const auto it = endpoints_.find(address);
  if (it == endpoints_.end()) {
    throw std::runtime_error("ServiceBus::call: unbound address " + address);
  }
  return it->second(payload);
}

}  // namespace aequus::net
