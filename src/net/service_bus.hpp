// Simulated service bus: the stand-in for the Java Web-service transport
// between Aequus installations.
//
// Endpoints have addresses of the form "<site>.<service>" (e.g.
// "hpc2n.uss"). Messages are JSON payloads delivered with configurable
// latency: `local_latency` within a site and `remote_latency` between
// sites. The paper's partial-participation experiment (§IV-A-4) is modeled
// with per-site flags: a site that does not *contribute* has its outbound
// inter-site traffic dropped; a site that does not *receive* has inbound
// inter-site traffic dropped. Intra-site traffic always flows.
//
// Message volume counters support evaluating the "compact form" usage
// exchange (bytes on the wire per experiment).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "json/json.hpp"
#include "util/rng.hpp"
#include "sim/simulator.hpp"

namespace aequus::net {

/// Traffic counters, exposed for experiments.
struct BusStats {
  std::uint64_t requests = 0;
  std::uint64_t one_way = 0;
  std::uint64_t dropped_participation = 0;  ///< blocked by participation flags
  std::uint64_t dropped_unbound = 0;        ///< no endpoint at address
  std::uint64_t dropped_loss = 0;           ///< lost to injected failures
  std::uint64_t payload_bytes = 0;          ///< serialized payload volume
};

/// In-process message fabric running on the shared Simulator.
class ServiceBus {
 public:
  using Handler = std::function<json::Value(const json::Value&)>;
  using ReplyCallback = std::function<void(const json::Value&)>;

  explicit ServiceBus(sim::Simulator& simulator);

  /// Register the handler for `address` ("<site>.<service>"). Re-binding
  /// replaces the previous handler.
  void bind(const std::string& address, Handler handler);

  void unbind(const std::string& address);

  /// Asynchronous request/response. The handler runs after the forward
  /// latency; `on_reply` runs after the return latency. The query leg
  /// always flows; the *reply* carries the responder's data and is
  /// dropped when the responder does not contribute or the requester does
  /// not receive. If dropped (or the address is unbound) `on_reply` never
  /// fires.
  void request(const std::string& from_site, const std::string& address, json::Value payload,
               ReplyCallback on_reply);

  /// Fire-and-forget data message (e.g. a usage report): dropped across
  /// sites when the sender does not contribute or the receiver does not
  /// receive.
  void send(const std::string& from_site, const std::string& address, json::Value payload);

  /// Immediate local call, bypassing latency and participation (used for
  /// co-located services inside one installation). Throws if unbound.
  [[nodiscard]] json::Value call(const std::string& address, const json::Value& payload);

  [[nodiscard]] bool bound(const std::string& address) const;

  /// Latency configuration (seconds).
  void set_local_latency(double seconds) noexcept { local_latency_ = seconds; }
  void set_remote_latency(double seconds) noexcept { remote_latency_ = seconds; }
  [[nodiscard]] double remote_latency() const noexcept { return remote_latency_; }

  /// Participation flags (default: full participation).
  void set_site_contributes(const std::string& site, bool contributes);
  void set_site_receives(const std::string& site, bool receives);
  [[nodiscard]] bool site_contributes(const std::string& site) const;
  [[nodiscard]] bool site_receives(const std::string& site) const;

  /// Failure injection: drop each *inter-site* message leg independently
  /// with probability `rate` (deterministic given `seed`). Intra-site
  /// traffic is unaffected. rate = 0 disables (default).
  void set_loss_rate(double rate, std::uint64_t seed = 0x10ad);

  [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }

  /// Site prefix of an address ("siteA.uss" -> "siteA").
  [[nodiscard]] static std::string site_of(std::string_view address);

 private:
  [[nodiscard]] bool allowed(const std::string& from_site, const std::string& to_site) const;
  [[nodiscard]] double latency(const std::string& from_site, const std::string& to_site) const;
  /// True when an inter-site leg should be dropped by failure injection.
  [[nodiscard]] bool lose(const std::string& from_site, const std::string& to_site);

  sim::Simulator& simulator_;
  std::map<std::string, Handler> endpoints_;
  std::map<std::string, bool> contributes_;
  std::map<std::string, bool> receives_;
  double local_latency_ = 0.01;
  double remote_latency_ = 0.10;
  double loss_rate_ = 0.0;
  util::Rng loss_rng_{0x10ad};
  BusStats stats_;
};

}  // namespace aequus::net
