// Simulated service bus: the stand-in for the Java Web-service transport
// between Aequus installations.
//
// Endpoints have addresses of the form "<site>.<service>" (e.g.
// "hpc2n.uss"). Messages are JSON payloads delivered with configurable
// latency: `local_latency` within a site and `remote_latency` between
// sites. The paper's partial-participation experiment (§IV-A-4) is modeled
// with per-site flags: a site that does not *contribute* has its outbound
// inter-site traffic dropped; a site that does not *receive* has inbound
// inter-site traffic dropped. Intra-site traffic always flows.
//
// On top of the participation model sits a deterministic fault-injection
// layer (FaultPlan): per-link message loss, message duplication, latency
// jitter, and scheduled site outage windows during which every message leg
// touching the site (including intra-site traffic — the site is down, not
// merely partitioned) is dropped. All randomness is drawn from one seeded
// stream, so a faulty run replays bit-identically from its seed.
//
// The destination handler is resolved when a message *arrives*, not when
// it is sent: unbinding an address while traffic is in flight counts the
// arrival as `dropped_unbound` (requests additionally bounce an error
// envelope), and re-binding routes in-flight traffic to the new handler —
// matching a real transport, where the sender cannot pin the remote
// implementation it observed at send time.
//
// Traffic counters are backed by an obs::Registry (the bus owns a private
// one until an experiment attaches its own via attach_observability);
// BusStats remains as a plain-struct façade assembled from the registry
// so existing call sites keep working. Message volume counters support
// evaluating the "compact form" usage exchange (bytes on the wire per
// experiment).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "sim/simulator.hpp"

namespace aequus::net {

/// Traffic counters, exposed for experiments. Assembled on demand from
/// the bus's metrics registry (see ServiceBus::stats).
struct BusStats {
  std::uint64_t requests = 0;
  std::uint64_t one_way = 0;
  std::uint64_t dropped_participation = 0;  ///< blocked by participation flags
  std::uint64_t dropped_unbound = 0;        ///< no endpoint at address
  std::uint64_t dropped_loss = 0;           ///< lost to injected failures
  std::uint64_t dropped_outage = 0;         ///< blocked by a site outage window
  std::uint64_t duplicated = 0;             ///< extra deliveries injected
  std::uint64_t unbound_bounces = 0;        ///< error envelopes delivered
  std::uint64_t payload_bytes = 0;          ///< serialized payload volume
  std::uint64_t batches = 0;                ///< coalesced batch envelopes sent
  std::uint64_t batch_records = 0;          ///< usage records carried in batches
};

/// One scheduled site failure: the site is unreachable (and its services
/// are down) for simulated times in [start, end).
struct OutageWindow {
  std::string site;
  double start = 0.0;
  double end = 0.0;
};

/// Deterministic fault-injection schedule for a whole experiment. All
/// probabilities apply per message *leg* (the query and reply of a request
/// roll independently). Loss, duplication, and jitter affect inter-site
/// legs only; outages take the whole site down, intra-site traffic
/// included.
struct FaultPlan {
  double loss_rate = 0.0;       ///< default per-leg inter-site loss probability
  double duplicate_rate = 0.0;  ///< per delivered inter-site leg
  double latency_jitter = 0.0;  ///< max uniform extra latency per inter-site leg [s]
  /// Per-link loss overrides keyed by (from_site, to_site); fall back to
  /// `loss_rate` when a link has no entry.
  std::map<std::pair<std::string, std::string>, double> link_loss;
  std::vector<OutageWindow> outages;
  std::uint64_t seed = 0x10ad;

  [[nodiscard]] bool active() const noexcept;

  /// True when `site` is inside one of its outage windows at `now`.
  [[nodiscard]] bool site_down(const std::string& site, double now) const noexcept;

  /// End of the latest outage window (0 when there are none). Useful for
  /// judging reconvergence "once faults clear"; note that loss/duplication
  /// rates never clear — only outages do.
  [[nodiscard]] double last_outage_end() const noexcept;

  /// Loss probability for one directed inter-site link.
  [[nodiscard]] double loss_for(const std::string& from_site,
                                const std::string& to_site) const noexcept;
};

/// Transport-layer outcome of one one-way envelope, decided at send time.
/// The numeric values are stable: they are written into flight-recorder
/// logs (src/replay/log.hpp), so reordering them would corrupt old logs.
enum class SendVerdict : std::uint8_t {
  kDelivered = 0,             ///< scheduled for arrival (handler may still be unbound)
  kDroppedParticipation = 1,  ///< blocked by participation flags
  kDroppedUnbound = 2,        ///< no endpoint bound at send time
  kDroppedOutage = 3,         ///< a site outage window swallowed the leg
  kDroppedLoss = 4,           ///< injected per-link loss
};

[[nodiscard]] const char* to_string(SendVerdict verdict) noexcept;
[[nodiscard]] bool send_verdict_from_string(std::string_view name, SendVerdict& out) noexcept;

/// Everything the bus knows about one one-way envelope at the moment the
/// transport decision is made. Passed to an attached BusTap; the
/// string_views alias send-scope storage and must be copied to outlive
/// the callback. `verdict` reflects the wire decision: a kDelivered
/// envelope whose address unbinds while in flight still reads kDelivered
/// (handler resolution happens on arrival, after the tap has fired).
struct SendObservation {
  double sent_at = 0.0;
  double delivered_at = 0.0;            ///< == sent_at when dropped
  double duplicate_delivered_at = 0.0;  ///< second arrival; 0 unless duplicated
  std::string_view from_site;
  std::string_view address;
  std::string_view payload;      ///< compact JSON wire form (payload.dump())
  std::size_t record_count = 0;  ///< coalesced records (send_batch), else 0
  bool batch = false;            ///< came in via send_batch
  bool duplicated = false;       ///< fault plan injected a second delivery
  SendVerdict verdict = SendVerdict::kDelivered;
  obs::SpanContext span;  ///< the send span (invalid when tracing is off)
};

/// Observer of every one-way envelope (send / send_batch). Passive by
/// contract: on_send must not mutate the bus and must not consume
/// randomness — attaching a tap leaves the run's determinism fingerprint
/// untouched (pinned by the replay golden tests). request/reply traffic
/// is not tapped: only one-way sends mutate remote state, so they are
/// exactly the traffic a replay needs.
class BusTap {
 public:
  virtual ~BusTap() = default;
  virtual void on_send(const SendObservation& observation) = 0;
};

/// In-process message fabric running on the shared Simulator.
class ServiceBus {
 public:
  using Handler = std::function<json::Value(const json::Value&)>;
  using ReplyCallback = std::function<void(const json::Value&)>;
  /// Receives a JSON error envelope ({"error":"unbound","address":...})
  /// when a request cannot be delivered for a *structural* reason the
  /// network would report (no endpoint bound). Injected loss and outages
  /// are silent — distinguishing the two is the caller's job (timeouts).
  using ErrorCallback = std::function<void(const json::Value&)>;

  explicit ServiceBus(sim::Simulator& simulator);

  /// Route counters/traces into an experiment-owned registry/tracer.
  /// Replaces the bus-private registry for *subsequent* recording; attach
  /// before traffic flows (pre-attach counts stay in the private
  /// registry). Null members fall back to the private registry / no
  /// tracing.
  void attach_observability(obs::Observability obs);

  /// The registry currently backing the counters (private one by default).
  [[nodiscard]] obs::Registry& registry() noexcept { return *registry_; }

  /// Register the handler for `address` ("<site>.<service>"). Re-binding
  /// replaces the previous handler — including for traffic already in
  /// flight, which resolves its handler on arrival.
  void bind(const std::string& address, Handler handler);

  /// Remove the handler. Traffic already in flight to `address` arrives
  /// at an empty slot: it counts as dropped_unbound, and requests bounce
  /// an error envelope back to the caller.
  void unbind(const std::string& address);

  /// Asynchronous request/response. The handler runs after the forward
  /// latency; `on_reply` runs after the return latency. The query leg
  /// always flows; the *reply* carries the responder's data and is
  /// dropped when the responder does not contribute or the requester does
  /// not receive. If the address is unbound, `on_error` (when provided)
  /// receives an error envelope — after one hop when unbound at send
  /// time, after the full round trip when unbound in flight; if a leg is
  /// lost or a site is down, neither callback ever fires.
  void request(const std::string& from_site, const std::string& address, json::Value payload,
               ReplyCallback on_reply, ErrorCallback on_error = nullptr);

  /// Fire-and-forget data message (e.g. a usage report): dropped across
  /// sites when the sender does not contribute or the receiver does not
  /// receive.
  void send(const std::string& from_site, const std::string& address, json::Value payload);

  /// Batch envelope: a one-way data message known to carry
  /// `record_count` coalesced records (the ingest delta-log path).
  /// Delivery semantics are identical to send(); the extra counters
  /// (`bus.batches`, `bus.batch_records`) expose the coalescing ratio —
  /// envelopes on the wire vs usage records represented.
  void send_batch(const std::string& from_site, const std::string& address,
                  json::Value payload, std::size_t record_count);

  /// Immediate local call, bypassing latency and participation (used for
  /// co-located services inside one installation). Throws if unbound.
  [[nodiscard]] json::Value call(const std::string& address, const json::Value& payload);

  [[nodiscard]] bool bound(const std::string& address) const;

  /// Latency configuration (seconds).
  void set_local_latency(double seconds) noexcept { local_latency_ = seconds; }
  void set_remote_latency(double seconds) noexcept { remote_latency_ = seconds; }
  [[nodiscard]] double remote_latency() const noexcept { return remote_latency_; }

  /// Participation flags (default: full participation).
  void set_site_contributes(const std::string& site, bool contributes);
  void set_site_receives(const std::string& site, bool receives);
  [[nodiscard]] bool site_contributes(const std::string& site) const;
  [[nodiscard]] bool site_receives(const std::string& site) const;

  /// Install a fault-injection schedule (replaces any previous plan and
  /// reseeds the fault stream from plan.seed).
  void set_fault_plan(FaultPlan plan);
  [[nodiscard]] const FaultPlan& fault_plan() const noexcept { return plan_; }

  /// Failure injection shorthand kept for existing call sites: drop each
  /// *inter-site* message leg independently with probability `rate`
  /// (deterministic given `seed`). Intra-site traffic is unaffected.
  /// rate = 0 disables (default). Resets any per-link overrides.
  void set_loss_rate(double rate, std::uint64_t seed = 0x10ad);

  /// Attach (or detach, with nullptr) the single envelope tap. The tap
  /// observes every send/send_batch with its transport verdict; it is
  /// not an owner and must outlive the traffic it observes.
  void set_tap(BusTap* tap) noexcept { tap_ = tap; }
  [[nodiscard]] BusTap* tap() const noexcept { return tap_; }

  /// Counter façade assembled from the metrics registry.
  [[nodiscard]] BusStats stats() const noexcept;

  /// Site prefix of an address ("siteA.uss" -> "siteA").
  [[nodiscard]] static std::string site_of(std::string_view address);

  /// Service suffix of an address ("siteA.uss" -> "uss").
  [[nodiscard]] static std::string service_of(std::string_view address);

 private:
  /// Registry-backed bus counters, cached as stable pointers so the hot
  /// path is a single increment.
  struct Metrics {
    obs::Counter* requests = nullptr;
    obs::Counter* one_way = nullptr;
    obs::Counter* dropped_participation = nullptr;
    obs::Counter* dropped_unbound = nullptr;
    obs::Counter* dropped_loss = nullptr;
    obs::Counter* dropped_outage = nullptr;
    obs::Counter* duplicated = nullptr;
    obs::Counter* unbound_bounces = nullptr;
    obs::Counter* payload_bytes = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* batch_records = nullptr;
  };
  /// Per-endpoint RPC metrics ("rpc.<address>.*"), registered on first
  /// bind/request of the address.
  struct EndpointMetrics {
    obs::Counter* requests = nullptr;
    obs::Histogram* latency = nullptr;
  };

  void register_metrics();
  [[nodiscard]] EndpointMetrics& endpoint_metrics(const std::string& address);
  [[nodiscard]] bool tracing() const noexcept {
    return tracer_ != nullptr && tracer_->enabled();
  }
  void trace(obs::EventKind kind, const std::string& site, const std::string& component,
             std::string detail = {}, double value = 0.0, std::uint64_t id = 0);
  /// Record a drop event under `leg` and close the leg span ("dropped").
  void drop_leg(const obs::SpanContext& leg, const std::string& site, std::string reason);
  /// Count an unbound arrival and, for requests, bounce the error
  /// envelope back over the return leg. Closes `rpc_span` ("unbound")
  /// when the bounce is delivered; leaves it open otherwise (the caller
  /// can only detect the loss by timeout — a broken chain).
  void bounce_unbound(const std::string& address, const std::string& from_site,
                      const std::string& to_site, ErrorCallback on_error,
                      const obs::SpanContext& rpc_span, const obs::SpanContext& caller);

  [[nodiscard]] bool allowed(const std::string& from_site, const std::string& to_site) const;
  [[nodiscard]] double latency(const std::string& from_site, const std::string& to_site) const;
  /// True when an inter-site leg should be dropped by failure injection.
  [[nodiscard]] bool lose(const std::string& from_site, const std::string& to_site);
  /// True when either endpoint site is inside an outage window now.
  [[nodiscard]] bool outage(const std::string& from_site, const std::string& to_site);
  /// True when a delivered inter-site leg should also be duplicated.
  [[nodiscard]] bool duplicate(const std::string& from_site, const std::string& to_site);
  /// Per-leg latency including jitter (consumes randomness when jitter on).
  [[nodiscard]] double leg_latency(const std::string& from_site, const std::string& to_site);
  /// Transport outcome of one leg, reported by deliver() so send paths can
  /// surface it to an attached BusTap. Latencies are relative to now().
  struct Delivery {
    bool delivered = false;
    SendVerdict verdict = SendVerdict::kDelivered;
    double latency = 0.0;      ///< primary arrival delay (0 when dropped)
    double dup_latency = 0.0;  ///< second arrival delay; 0 unless duplicated
    bool duplicated = false;
  };
  /// Deliver `action` over one leg, applying outage/loss/duplication/jitter.
  /// `what` labels the leg in trace output; `leg` is the leg's span (the
  /// invalid context when tracing is off), closed on arrival or drop.
  Delivery deliver(const std::string& from_site, const std::string& to_site,
                   const std::string& what, const obs::SpanContext& leg,
                   std::function<void()> action);
  /// Shared body of send()/send_batch(): batch metadata rides along so the
  /// tap observes one coherent record per envelope.
  void send_impl(const std::string& from_site, const std::string& address, json::Value payload,
                 std::size_t record_count, bool batch);

  sim::Simulator& simulator_;
  std::map<std::string, Handler> endpoints_;
  std::map<std::string, bool> contributes_;
  std::map<std::string, bool> receives_;
  double local_latency_ = 0.01;
  double remote_latency_ = 0.10;
  FaultPlan plan_;
  util::Rng fault_rng_{0x10ad};
  obs::Registry own_registry_;
  obs::Registry* registry_ = &own_registry_;
  obs::Tracer* tracer_ = nullptr;
  BusTap* tap_ = nullptr;
  Metrics metrics_;
  std::map<std::string, EndpointMetrics> endpoint_metrics_;
};

}  // namespace aequus::net
