// The Maui-like scheduler (§III-A).
//
// "Maui has no inherent plug-in system, and therefore the integration is
// done by applying patches to the Maui source code. Similarly to SLURM,
// the local calculation of the fairshare priority factor is replaced with
// a call to the libaequus system library, and another call for supplying
// usage information to Aequus is injected into Maui for execution when
// jobs are completed."
//
// Priority follows Maui's weighted component model:
//   priority = SERVICEWEIGHT * QUEUETIME + FSWEIGHT * FAIRSHARE
//            + RESWEIGHT * PROC + CREDWEIGHT * USERCRED
// (each component normalized to [0, 1] here). The fairshare component is
// computed by `fairshare_component()` — the exact function the Aequus
// patch replaces via patch_fairshare(); completion-time usage recording
// goes through the injected completion hook via patch_completion().
#pragma once

#include <functional>
#include <map>
#include <string>

#include "rms/scheduler.hpp"
#include "slurm/local_fairshare.hpp"

namespace aequus::maui {

struct MauiWeights {
  double service = 0.0;    ///< SERVICEWEIGHT (queue-time component)
  double fairshare = 1.0;  ///< FSWEIGHT
  double resources = 0.0;  ///< RESWEIGHT (requested processors)
  double credential = 0.0; ///< CREDWEIGHT (per-user static priority)
  double max_queue_time = 7.0 * 86400.0;  ///< queue-time saturation [s]
  int max_procs = 1024;                   ///< processor normalization
};

class MauiScheduler final : public rms::SchedulerBase {
 public:
  /// The patch points. The fairshare hook receives the scheduler's
  /// PriorityContext (job, time, per-pass fairshare snapshot); the
  /// completion hook receives the job and the current time.
  using FairshareHook = std::function<double(const rms::PriorityContext& context)>;
  using CompletionHook = std::function<void(const rms::Job&, double now)>;

  MauiScheduler(sim::Simulator& simulator, rms::Cluster cluster, MauiWeights weights = {},
                rms::SchedulerConfig config = {},
                core::DecayConfig local_decay = {});

  /// Replace the local fairshare component calculation (the Aequus patch).
  void patch_fairshare(FairshareHook hook) { fairshare_hook_ = std::move(hook); }

  /// Inject a completion-time call-out (the Aequus usage-reporting patch).
  void patch_completion(CompletionHook hook) { completion_hook_ = std::move(hook); }

  /// Configure local fairshare target shares (used when unpatched).
  void set_local_share(const std::string& system_user, double share);

  /// Per-user static credential priority in [0, 1] (USERCFG PRIORITY=).
  void set_user_credential(const std::string& system_user, double priority);

  [[nodiscard]] const MauiWeights& weights() const noexcept { return weights_; }

  /// Individual components, exposed for tests.
  [[nodiscard]] double queue_time_component(const rms::Job& job, double now) const;
  [[nodiscard]] double resource_component(const rms::Job& job) const;
  [[nodiscard]] double credential_component(const rms::Job& job) const;
  [[nodiscard]] double fairshare_component(const rms::PriorityContext& context) const;

 protected:
  double compute_priority(const rms::PriorityContext& context) override;
  void on_job_completed(const rms::Job& job) override;

 private:
  MauiWeights weights_;
  FairshareHook fairshare_hook_;      ///< empty = local calculation
  CompletionHook completion_hook_;    ///< empty = no call-out
  slurm::LocalFairshare local_fairshare_;
  std::map<std::string, double> credentials_;
};

}  // namespace aequus::maui
