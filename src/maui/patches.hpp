// The "Aequus patches" for Maui: minimal source-level injections wiring a
// MauiScheduler to libaequus, mirroring §III-A's description of patching
// Maui rather than using a plugin system.
#pragma once

#include "libaequus/client.hpp"
#include "maui/maui_scheduler.hpp"

namespace aequus::maui {

/// Apply both patches: replace the fairshare component with a libaequus
/// call (resolving system users through the IRS) and inject the
/// completion-time usage report.
void apply_aequus_patches(MauiScheduler& scheduler, client::AequusClient& client);

}  // namespace aequus::maui
