#include "maui/patches.hpp"

namespace aequus::maui {

void apply_aequus_patches(MauiScheduler& scheduler, client::AequusClient& client) {
  scheduler.patch_fairshare([&client](const rms::Job& job, double now) -> double {
    (void)now;
    if (!job.grid_user.empty()) return client.fairshare_factor(job.grid_user);
    const auto grid_user = client.resolve_identity(job.system_user);
    if (!grid_user) return 0.5;
    return client.fairshare_factor(*grid_user);
  });
  scheduler.patch_completion([&client](const rms::Job& job, double now) {
    // Patch hop of the jobcomp chain (Maui's completion callback).
    obs::Tracer* tracer = client.observability().tracer;
    obs::SpanContext span;
    if (tracer != nullptr && tracer->enabled()) {
      span = tracer->begin_span(now, client.config().site, "maui", "jobcomp_patch");
    }
    obs::SpanScope scope(tracer, span);
    if (!job.grid_user.empty()) {
      client.report_usage(job.grid_user, job.usage());
    } else {
      (void)client.report_system_usage(job.system_user, job.usage());
    }
    if (span.valid() && tracer != nullptr) {
      tracer->end_span(now, span, client.config().site, "maui");
    }
  });
}

}  // namespace aequus::maui
