#include "maui/patches.hpp"

namespace aequus::maui {

void apply_aequus_patches(MauiScheduler& scheduler, client::AequusClient& client) {
  scheduler.patch_fairshare([&client](const rms::PriorityContext& context) -> double {
    std::string grid_user = context.job.grid_user;
    if (grid_user.empty()) {
      const auto resolved = client.resolve_identity(context.job.system_user);
      if (!resolved) return core::kNeutralFactor;
      grid_user = *resolved;
    }
    // Same preference order as the SLURM source: per-pass snapshot first,
    // client cache fallback — identical values either way.
    if (context.fairshare != nullptr) return context.fairshare->factor_for(grid_user);
    return client.fairshare_factor(grid_user);
  });
  scheduler.patch_completion([&client](const rms::Job& job, double now) {
    // Patch hop of the jobcomp chain (Maui's completion callback).
    obs::Tracer* tracer = client.observability().tracer;
    obs::SpanContext span;
    if (tracer != nullptr && tracer->enabled()) {
      span = tracer->begin_span(now, client.config().site, "maui", "jobcomp_patch");
    }
    obs::SpanScope scope(tracer, span);
    if (!job.grid_user.empty()) {
      client.report_usage(job.grid_user, job.usage());
    } else {
      (void)client.report_system_usage(job.system_user, job.usage());
    }
    if (span.valid() && tracer != nullptr) {
      tracer->end_span(now, span, client.config().site, "maui");
    }
  });
}

}  // namespace aequus::maui
