#include "maui/patches.hpp"

#include "slurm/aequus_plugins.hpp"

namespace aequus::maui {

void apply_aequus_patches(MauiScheduler& scheduler, client::AequusClient& client) {
  // Same identity resolution and snapshot preference order as the SLURM
  // plugin — literally the same source, so the two RM flavours cannot
  // drift: PriorityContext::priority_of is the one priority fetch.
  scheduler.patch_fairshare(slurm::aequus_fairshare_source(client));
  scheduler.patch_completion([&client](const rms::Job& job, double now) {
    // Patch hop of the jobcomp chain (Maui's completion callback).
    obs::Tracer* tracer = client.observability().tracer;
    obs::SpanContext span;
    if (tracer != nullptr && tracer->enabled()) {
      span = tracer->begin_span(now, client.config().site, "maui", "jobcomp_patch");
    }
    obs::SpanScope scope(tracer, span);
    if (!job.grid_user.empty()) {
      client.report_usage(job.grid_user, job.usage());
    } else {
      (void)client.report_system_usage(job.system_user, job.usage());
    }
    if (span.valid() && tracer != nullptr) {
      tracer->end_span(now, span, client.config().site, "maui");
    }
  });
}

}  // namespace aequus::maui
