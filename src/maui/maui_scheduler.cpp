#include "maui/maui_scheduler.hpp"

#include <algorithm>

namespace aequus::maui {

MauiScheduler::MauiScheduler(sim::Simulator& simulator, rms::Cluster cluster,
                             MauiWeights weights, rms::SchedulerConfig config,
                             core::DecayConfig local_decay)
    : rms::SchedulerBase(simulator, std::move(cluster), config),
      weights_(weights),
      local_fairshare_(local_decay) {}

void MauiScheduler::set_local_share(const std::string& system_user, double share) {
  local_fairshare_.set_share(system_user, share);
}

void MauiScheduler::set_user_credential(const std::string& system_user, double priority) {
  credentials_[system_user] = std::clamp(priority, 0.0, 1.0);
}

double MauiScheduler::queue_time_component(const rms::Job& job, double now) const {
  if (weights_.max_queue_time <= 0.0) return 0.0;
  return std::clamp(job.wait_time(now) / weights_.max_queue_time, 0.0, 1.0);
}

double MauiScheduler::resource_component(const rms::Job& job) const {
  if (weights_.max_procs <= 0) return 0.0;
  return std::clamp(static_cast<double>(job.cores) / weights_.max_procs, 0.0, 1.0);
}

double MauiScheduler::credential_component(const rms::Job& job) const {
  const auto it = credentials_.find(job.system_user);
  return it == credentials_.end() ? 0.0 : it->second;
}

double MauiScheduler::fairshare_component(const rms::PriorityContext& context) const {
  if (fairshare_hook_) return std::clamp(fairshare_hook_(context), 0.0, 1.0);
  return local_fairshare_.factor(context.job.system_user, context.now);
}

double MauiScheduler::compute_priority(const rms::PriorityContext& context) {
  const rms::Job& job = context.job;
  const double now = context.now;
  double priority = 0.0;
  priority += weights_.service * queue_time_component(job, now);
  priority += weights_.fairshare * fairshare_component(context);
  priority += weights_.resources * resource_component(job);
  priority += weights_.credential * credential_component(job);
  return priority;
}

void MauiScheduler::on_job_completed(const rms::Job& job) {
  const double now = simulator().now();
  local_fairshare_.record_usage(job.system_user, job.usage(), now);
  if (completion_hook_) completion_hook_(job, now);
}

}  // namespace aequus::maui
