// Deterministic discrete-event simulation engine.
//
// The paper's testbed ran seven physical machines hosting 240 virtual
// hosts with idle-wait jobs; we substitute virtual time. Every component
// of the integrated system (schedulers, Aequus services, the service bus,
// the submission host) runs on one Simulator instance, so an experiment
// is a single-threaded, perfectly reproducible event program.
//
// Ordering guarantee: events fire in (time, insertion sequence) order, so
// two events at the same timestamp run in the order they were scheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

namespace aequus::sim {

/// Simulated time in seconds.
using Time = double;

/// Cancellation token for scheduled events. Destroying the handle does not
/// cancel; call cancel() explicitly.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event (or the next firing of a periodic task) from running.
  void cancel() noexcept {
    if (alive_) *alive_ = false;
  }

  [[nodiscard]] bool active() const noexcept { return alive_ && *alive_; }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// Single-threaded event-driven virtual-time executor.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `action` at absolute time `at` (clamped to now for past times).
  EventHandle schedule_at(Time at, std::function<void()> action);

  /// Schedule `action` after `delay` seconds (delay < 0 treated as 0).
  EventHandle schedule_after(Time delay, std::function<void()> action);

  /// Schedule `action` every `period` seconds, first firing at
  /// `first_at`. The action keeps firing until the handle is cancelled or
  /// the simulation ends. Requires period > 0.
  EventHandle schedule_periodic(Time first_at, Time period, std::function<void()> action);

  /// Execute the next pending event. Returns false when the queue is empty.
  bool step();

  /// Run events until the queue is empty or the next event is later than
  /// `limit`; afterwards now() == min(limit, last event time fired) is
  /// advanced to `limit` exactly.
  void run_until(Time limit);

  /// Run until the event queue drains completely.
  void run_all();

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    Time at = 0;
    std::uint64_t sequence = 0;
    std::function<void()> action;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  EventHandle push(Time at, std::function<void()> action);
  void push_periodic(Time at, Time period, std::shared_ptr<std::function<void()>> action,
                     std::shared_ptr<bool> alive);

  Time now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace aequus::sim
