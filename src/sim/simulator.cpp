#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace aequus::sim {

EventHandle Simulator::push(Time at, std::function<void()> action) {
  Event event;
  event.at = std::max(at, now_);
  event.sequence = next_sequence_++;
  event.action = std::move(action);
  event.alive = std::make_shared<bool>(true);
  EventHandle handle(event.alive);
  queue_.push(std::move(event));
  return handle;
}

EventHandle Simulator::schedule_at(Time at, std::function<void()> action) {
  return push(at, std::move(action));
}

EventHandle Simulator::schedule_after(Time delay, std::function<void()> action) {
  return push(now_ + std::max(delay, 0.0), std::move(action));
}

EventHandle Simulator::schedule_periodic(Time first_at, Time period,
                                         std::function<void()> action) {
  if (period <= 0.0) throw std::invalid_argument("schedule_periodic: period must be > 0");
  auto alive = std::make_shared<bool>(true);
  push_periodic(first_at, period,
                std::make_shared<std::function<void()>>(std::move(action)), alive);
  return EventHandle(alive);
}

void Simulator::push_periodic(Time at, Time period,
                              std::shared_ptr<std::function<void()>> action,
                              std::shared_ptr<bool> alive) {
  Event event;
  event.at = std::max(at, now_);
  event.sequence = next_sequence_++;
  event.alive = alive;
  const Time scheduled_at = event.at;
  event.action = [this, scheduled_at, period, action, alive] {
    (*action)();
    if (*alive) push_periodic(scheduled_at + period, period, action, alive);
  };
  queue_.push(std::move(event));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    if (!*event.alive) continue;  // cancelled
    now_ = event.at;
    ++executed_;
    event.action();
    return true;
  }
  return false;
}

void Simulator::run_until(Time limit) {
  while (!queue_.empty()) {
    const Event& next = queue_.top();
    if (!*next.alive) {
      queue_.pop();
      continue;
    }
    if (next.at > limit) break;
    step();
  }
  now_ = std::max(now_, limit);
}

void Simulator::run_all() {
  while (step()) {
  }
}

}  // namespace aequus::sim
