// Identity Resolution Service (IRS).
//
// §III-B: grid user identities are mapped to local system users when jobs
// arrive; global fairshare needs the *reverse* mapping. "The revert
// mapping can be obtained in two ways; either by actively making a call
// to IRS to store the reverse mapping in a look-up table, or by
// implementing a small custom mapping resolution end point and
// configuring the IRS to call the end point with name resolution queries
// using a minimalist JSON based protocol."
//
// Both paths are implemented: add_mapping() feeds the look-up table, and
// set_endpoint() registers the bus address of a custom resolution
// endpoint, queried (and cached) on table misses.
//
// Bus protocol (address "<site>.irs"):
//   {"op":"resolve", "system_user":.., "cluster":..} -> {"grid_user":..}
//                                                  or -> {"unknown":true}
//   {"op":"store", "system_user":.., "cluster":.., "grid_user":..}
// Custom endpoint protocol (the paper's "minimalist JSON based protocol"):
//   {"system_user":.., "cluster":..} -> {"grid_user":..} / {"unknown":true}
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "net/service_bus.hpp"
#include "services/telemetry.hpp"
#include "sim/simulator.hpp"

namespace aequus::services {

class Irs {
 public:
  Irs(sim::Simulator& simulator, net::ServiceBus& bus, std::string site,
      obs::Observability obs = {});
  ~Irs();
  Irs(const Irs&) = delete;
  Irs& operator=(const Irs&) = delete;

  /// Store a reverse mapping in the look-up table.
  void add_mapping(const std::string& cluster, const std::string& system_user,
                   const std::string& grid_user);

  /// Configure a custom resolution endpoint address, consulted on misses.
  void set_endpoint(std::string endpoint_address);

  /// Resolve a system user back to a grid identity. Look-up table first,
  /// then the custom endpoint (synchronous local call), caching hits.
  [[nodiscard]] std::optional<std::string> resolve(const std::string& cluster,
                                                   const std::string& system_user);

  [[nodiscard]] const std::string& address() const noexcept { return address_; }
  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }
  [[nodiscard]] std::uint64_t endpoint_queries() const noexcept { return endpoint_queries_; }

 private:
  json::Value handle(const json::Value& request);
  [[nodiscard]] static std::string key(const std::string& cluster,
                                       const std::string& system_user);

  sim::Simulator& simulator_;
  net::ServiceBus& bus_;
  std::string site_;
  std::string address_;
  ServiceTelemetry telemetry_;
  std::string endpoint_address_;
  std::map<std::string, std::string> table_;
  std::uint64_t lookups_ = 0;
  std::uint64_t endpoint_queries_ = 0;
};

}  // namespace aequus::services
