#include "services/installation.hpp"

namespace aequus::services {

Installation::Installation(sim::Simulator& simulator, net::ServiceBus& bus, std::string site,
                           InstallationConfig config)
    : site_(std::move(site)) {
  uss_ = std::make_unique<Uss>(simulator, bus, site_, config.uss);
  ums_ = std::make_unique<Ums>(simulator, bus, site_, config.ums);
  pds_ = std::make_unique<Pds>(simulator, bus, site_);
  fcs_ = std::make_unique<Fcs>(simulator, bus, site_, config.fcs);
  irs_ = std::make_unique<Irs>(simulator, bus, site_);
}

void Installation::set_peer_sites(const std::vector<std::string>& sites) {
  std::vector<std::string> addresses;
  for (const auto& peer : sites) {
    if (peer != site_) addresses.push_back(peer + ".uss");
  }
  ums_->set_peers(std::move(addresses));
}

}  // namespace aequus::services
