#include "services/installation.hpp"

namespace aequus::services {

Installation::Installation(sim::Simulator& simulator, net::ServiceBus& bus, std::string site,
                           InstallationConfig config, obs::Observability obs)
    : site_(std::move(site)) {
  uss_ = std::make_unique<Uss>(simulator, bus, site_, config.uss, obs);
  ums_ = std::make_unique<Ums>(simulator, bus, site_, config.ums, obs);
  pds_ = std::make_unique<Pds>(simulator, bus, site_, obs);
  fcs_ = std::make_unique<Fcs>(simulator, bus, site_, config.fcs, obs);
  irs_ = std::make_unique<Irs>(simulator, bus, site_, obs);
}

void Installation::set_peer_sites(const std::vector<std::string>& sites) {
  std::vector<std::string> addresses;
  for (const auto& peer : sites) {
    if (peer != site_) addresses.push_back(peer + ".uss");
  }
  ums_->set_peers(std::move(addresses));
}

}  // namespace aequus::services
