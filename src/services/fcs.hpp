// Fairshare Calculation Service (FCS).
//
// §II-A: "The Fairshare Calculation Service (FCS) fetches usage trees from
// the UMS and policy trees from the PDS periodically, and pre-calculates
// fairshare trees with the current fairshare values for all users. This
// way, no real-time calculations need to take place when new jobs arrive,
// as pre-calculated values already exist."
//
// The FCS holds the configured FairshareAlgorithm (distance weight k,
// vector resolution) and projection; queries are served from the latest
// pre-computed table.
//
// §III-C: "The approach to use is configurable and can be changed during
// run-time" — reconfigure() swaps the projection and/or algorithm live
// and takes effect on the immediate recalculation.
//
// Bus protocol (address "<site>.fcs"):
//   {"op":"fairshare", "user":<grid id>} -> {"value":f, "vector":"...."}
//   {"op":"table"} -> {"users": {"<user>": value, ...}}
//   {"op":"table", "if_generation":g} -> {"generation":g, "unchanged":true}
//       when nothing changed since generation g, else
//       {"generation":g', "users":{...}} (opt-in extension; the plain
//       "table" reply stays byte-identical for existing clients)
//   {"op":"snapshot", "tree":bool} -> generation-stamped snapshot JSON
//   {"op":"tree"}  -> full fairshare tree JSON
//   {"op":"configure", "projection":{...}, "algorithm":{...}} -> {"ok":true}
//   {"op":"report_batch", ...}  -> {"ok":true, "applied":k, "generation":g}
//       push-mode ingestion seam (DESIGN.md §6g): a delta-log batch is
//       committed as ONE engine transaction — N apply_usage() calls,
//       one snapshot publish — idempotently per (source, seq). Push and
//       poll modes are alternatives: a UMS usage poll reply replaces the
//       usage state wholesale (set_usage drops binned deltas), so
//       deployments feed an FCS batches *or* poll cycles, not both.
//
// Since the incremental-engine rework the FCS no longer recomputes the
// whole tree per update: it feeds the fetched policy/usage trees into a
// core::FairnessBackend (the arena FairshareEngine by default, selected
// by FcsConfig::backend from the string-keyed factory — DESIGN.md §6j),
// which recomputes what the mutation can have changed and publishes an
// immutable generation-stamped FairshareSnapshot. Projection and table
// rebuilds are skipped entirely when the generation did not move.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/backend.hpp"
#include "core/fairshare.hpp"
#include "core/projection.hpp"
#include "core/snapshot.hpp"
#include "ingest/apply.hpp"
#include "net/service_bus.hpp"
#include "services/telemetry.hpp"
#include "sim/simulator.hpp"

namespace aequus::services {

struct FcsConfig {
  double update_interval = 30.0;          ///< pre-calculation period [s]
  core::FairshareConfig algorithm{};      ///< distance weight k, resolution
  core::ProjectionConfig projection{};    ///< projection for scalar factors
  core::FairnessBackendConfig backend{};  ///< fairness policy selection
};

class Fcs {
 public:
  Fcs(sim::Simulator& simulator, net::ServiceBus& bus, std::string site, FcsConfig config = {},
      obs::Observability obs = {});
  ~Fcs();
  Fcs(const Fcs&) = delete;
  Fcs& operator=(const Fcs&) = delete;

  /// Latest published snapshot (annotated tree + projected factors);
  /// null until the first calculation completes. Immutable: safe to hand
  /// to plugins and sweep workers.
  [[nodiscard]] core::FairshareSnapshotPtr snapshot() const noexcept { return snapshot_; }

  /// Generation of the latest snapshot (0 before the first calculation).
  [[nodiscard]] std::uint64_t generation() const noexcept { return backend_->generation(); }

  /// Latest projected per-user factors (policy leaf path -> [0, 1]).
  [[nodiscard]] const std::map<std::string, double>& table() const noexcept { return table_; }

  /// Projected factor for a grid user (leaf name); 0.5 (balance) when the
  /// user is unknown or no calculation has completed yet.
  [[nodiscard]] double factor_for(const std::string& grid_user) const;

  [[nodiscard]] const std::string& address() const noexcept { return address_; }
  [[nodiscard]] std::uint64_t calculations() const noexcept { return calculations_; }
  [[nodiscard]] const FcsConfig& config() const noexcept { return config_; }

  /// The fairness policy computing this site's priorities.
  [[nodiscard]] const core::FairnessBackend& backend() const noexcept { return *backend_; }

  /// Force an immediate fetch + recalculation.
  void update_now();

  /// Run-time reconfiguration: swap the projection and recompute from the
  /// already-fetched state.
  void set_projection(core::ProjectionConfig projection);

  /// Run-time reconfiguration of the distance algorithm (k, resolution).
  void set_algorithm(core::FairshareConfig algorithm);

  /// Push-mode ingestion: commit one delta-log batch as a single engine
  /// transaction and republish the projected table. Returns false for
  /// duplicate (source, seq) deliveries. Users are mapped to policy leaf
  /// paths (falling back to "/<user>" before a policy is known).
  bool ingest_batch(const ingest::DeltaBatch& batch);

  [[nodiscard]] const ingest::EngineSinkStats& ingest_stats() const noexcept {
    return ingest_sink_->stats();
  }

 private:
  json::Value handle(const json::Value& request);
  void recalculate();
  /// Project + publish from a freshly published engine snapshot (shared
  /// by the poll-driven recalculate() and the push-driven batch commit).
  void republish(const core::FairshareSnapshotPtr& base);
  /// Rebuild the grid-user -> policy-leaf-path map the ingest seam
  /// resolves through (called whenever a new policy lands).
  void refresh_ingest_paths();
  /// Count one reply of update cycle `cycle`; closes the cycle's span when
  /// both the policy and usage replies have landed.
  void update_reply_done(std::uint64_t cycle);

  sim::Simulator& simulator_;
  net::ServiceBus& bus_;
  std::string site_;
  std::string address_;
  FcsConfig config_;
  ServiceTelemetry telemetry_;
  obs::Counter* recalculations_ = nullptr;
  std::unique_ptr<core::FairnessBackend> backend_;  ///< never null
  core::PolicyTree policy_;
  core::UsageTree usage_;
  bool have_policy_ = false;
  bool have_usage_ = false;  ///< a UMS poll reply landed (enables wholesale set_usage)
  bool reproject_ = false;  ///< projection changed: factors stale even at same generation
  core::FairshareSnapshotPtr snapshot_;        ///< latest tree + factors
  std::map<std::string, double> table_;        ///< leaf path -> factor
  std::map<std::string, double> user_table_;   ///< leaf name -> factor
  std::map<std::string, std::string> ingest_paths_;  ///< user -> policy leaf path
  std::unique_ptr<ingest::EngineSink> ingest_sink_;  ///< idempotent batch commits
  std::uint64_t calculations_ = 0;
  sim::EventHandle update_task_;
  /// Span of the in-flight update cycle; closed "complete" when both
  /// replies landed, or "superseded" when the next cycle starts first.
  obs::SpanContext update_span_;
  std::uint64_t update_cycles_ = 0;
  std::size_t update_pending_ = 0;
};

}  // namespace aequus::services
