// Policy Distribution Service (PDS).
//
// §II-A: "The Policy Distribution Service (PDS) is responsible for
// managing user policies both locally and globally by mounting
// sub-policies from other sources (which may be other PDS services)."
//
// A local administration sets the root policy; globally managed
// sub-policies can be mounted at a path and are refreshed periodically
// from the remote PDS, so a site can delegate, e.g., the subdivision of
// its grid allocation while retaining control of the coarse split.
//
// Bus protocol (address "<site>.pds"):
//   {"op":"policy"} -> policy tree JSON
//   {"op":"policy", "if_version":v} -> {"version":v, "unchanged":true}
//       when the policy has not changed since version v, else the policy
//       tree JSON with a "version" field added (opt-in extension; the
//       plain "policy" reply stays byte-identical)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "net/service_bus.hpp"
#include "services/telemetry.hpp"
#include "sim/simulator.hpp"

namespace aequus::services {

class Pds {
 public:
  Pds(sim::Simulator& simulator, net::ServiceBus& bus, std::string site,
      obs::Observability obs = {});
  ~Pds();
  Pds(const Pds&) = delete;
  Pds& operator=(const Pds&) = delete;

  /// Replace the locally administered policy. Mounted subtrees are
  /// re-applied on their next refresh.
  void set_policy(core::PolicyTree policy);

  /// Mount the policy served by `remote_pds_address` under `path` with
  /// `share` weight, refreshing every `refresh_interval` seconds. The
  /// first fetch is issued immediately.
  void mount_remote(const std::string& path, const std::string& remote_pds_address,
                    double share, double refresh_interval = 300.0);

  [[nodiscard]] const core::PolicyTree& policy() const noexcept { return policy_; }
  [[nodiscard]] const std::string& address() const noexcept { return address_; }

  /// Number of successful remote mounts applied so far.
  [[nodiscard]] int mounts_applied() const noexcept { return mounts_applied_; }

  /// Monotonic policy version; bumped by set_policy() and every applied
  /// remote mount. Lets pollers (and the FCS) skip unchanged fetches.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  struct Mount {
    std::string path;
    std::string remote_address;
    double share;
  };

  json::Value handle(const json::Value& request);
  void refresh_mount(const Mount& mount);

  sim::Simulator& simulator_;
  net::ServiceBus& bus_;
  std::string site_;
  std::string address_;
  ServiceTelemetry telemetry_;
  core::PolicyTree policy_;
  std::vector<Mount> mounts_;
  std::vector<sim::EventHandle> refresh_tasks_;
  int mounts_applied_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace aequus::services
