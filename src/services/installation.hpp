// A complete Aequus installation: the five services of one site wired to
// the shared bus and simulator (Fig. 2).
//
// "Each of the simulated clusters hosts its own Aequus installation, and
// they communicate only by exchanging data through the USS services, just
// like a full scale deployment is likely to be." (§IV-A)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "services/fcs.hpp"
#include "services/irs.hpp"
#include "services/pds.hpp"
#include "services/ums.hpp"
#include "services/uss.hpp"

namespace aequus::services {

struct InstallationConfig {
  UssConfig uss{};
  UmsConfig ums{};
  FcsConfig fcs{};
};

class Installation {
 public:
  Installation(sim::Simulator& simulator, net::ServiceBus& bus, std::string site,
               InstallationConfig config = {}, obs::Observability obs = {});

  [[nodiscard]] const std::string& site() const noexcept { return site_; }
  [[nodiscard]] Uss& uss() noexcept { return *uss_; }
  [[nodiscard]] Ums& ums() noexcept { return *ums_; }
  [[nodiscard]] Pds& pds() noexcept { return *pds_; }
  [[nodiscard]] Fcs& fcs() noexcept { return *fcs_; }
  [[nodiscard]] Irs& irs() noexcept { return *irs_; }

  /// Configure the peer USS addresses this site exchanges usage with.
  void set_peer_sites(const std::vector<std::string>& sites);

  /// Shorthand: set the local policy through the PDS.
  void set_policy(core::PolicyTree policy) { pds_->set_policy(std::move(policy)); }

 private:
  std::string site_;
  std::unique_ptr<Uss> uss_;
  std::unique_ptr<Ums> ums_;
  std::unique_ptr<Pds> pds_;
  std::unique_ptr<Fcs> fcs_;
  std::unique_ptr<Irs> irs_;
};

}  // namespace aequus::services
