// Usage Statistics Service (USS).
//
// §II-A: "The Usage Statistics Service (USS) gathers per-job usage results
// of the local site, and produces per-user histograms for configurable
// time intervals." The histograms are the compact exchange format: other
// sites' UMS instances fetch them instead of individual job records,
// "relaying the combined usage of each user on each site while omitting
// the details of individual jobs".
//
// Bus protocol (address "<site>.uss"):
//   {"op":"report", "user":<grid id>, "usage":<core-seconds>}  -> {"ok":true}
//   {"op":"report_batch", "source":<site>, "seq":n,
//    "deltas":[[user, time, amount], ...]}
//       -> {"ok":true, "applied":k} | {"ok":true, "duplicate":true}
//   {"op":"histograms"} -> {"users": {"<user>": [[bin_time, amount], ...]}}
//
// Batch envelopes come from the ingest delta log (DESIGN.md §6g). They
// are applied transactionally — all records of an admitted batch, none
// of a duplicate — and idempotently: the bus may duplicate inter-site
// legs, so each (source, seq) pair is admitted exactly once. Batched
// records carry their *record* time and are binned by it, not by
// arrival, so cadence-delayed delivery lands in the same histogram bins
// the per-delta path would have used.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ingest/apply.hpp"
#include "ingest/delta.hpp"
#include "net/service_bus.hpp"
#include "services/telemetry.hpp"
#include "sim/simulator.hpp"

namespace aequus::services {

struct UssConfig {
  double bin_width = 60.0;  ///< histogram interval length [s]
  /// Drop bins older than this many seconds (0 = keep everything). With
  /// exponential decay downstream, bins past ~6 half-lives carry <2 % of
  /// their mass, so pruning bounds the exchanged histogram size on long
  /// runs without noticeably changing the fairshare values.
  double retention = 0.0;
};

class Uss {
 public:
  Uss(sim::Simulator& simulator, net::ServiceBus& bus, std::string site, UssConfig config = {},
      obs::Observability obs = {});
  ~Uss();
  Uss(const Uss&) = delete;
  Uss& operator=(const Uss&) = delete;

  /// Record `usage` core-seconds for `grid_user` at the current time.
  void report(const std::string& grid_user, double usage);

  /// Record `usage` core-seconds binned by an explicit record time (the
  /// batched path: a delta delayed by its cadence still lands in the bin
  /// it was produced in).
  void report_at(const std::string& grid_user, double usage, double time);

  /// Apply one decoded batch envelope: admitted exactly once per
  /// (source, seq), all records or none. Returns false for duplicates.
  bool apply_batch(const ingest::DeltaBatch& batch);

  /// Per-user histograms: user -> ordered (bin start time, amount) pairs.
  [[nodiscard]] const std::map<std::string, std::vector<std::pair<double, double>>>& histograms()
      const noexcept {
    return histograms_;
  }

  /// Total recorded usage for one user (un-decayed).
  [[nodiscard]] double total_for(const std::string& grid_user) const;

  [[nodiscard]] const std::string& address() const noexcept { return address_; }
  [[nodiscard]] std::uint64_t reports_received() const noexcept { return reports_; }
  [[nodiscard]] std::uint64_t batches_applied() const noexcept { return batches_applied_; }
  [[nodiscard]] std::uint64_t batch_duplicates() const noexcept { return batch_duplicates_; }

  /// Serialize histograms into the wire format.
  [[nodiscard]] json::Value histograms_json() const;

 private:
  json::Value handle(const json::Value& request);

  sim::Simulator& simulator_;
  net::ServiceBus& bus_;
  std::string site_;
  std::string address_;
  UssConfig config_;
  ServiceTelemetry telemetry_;
  std::map<std::string, std::vector<std::pair<double, double>>> histograms_;
  std::uint64_t reports_ = 0;
  ingest::BatchApplier applier_;
  std::uint64_t batches_applied_ = 0;
  std::uint64_t batch_duplicates_ = 0;
  obs::Counter* batch_counter_ = nullptr;
  obs::Counter* batch_duplicate_counter_ = nullptr;
};

}  // namespace aequus::services
