// Usage Statistics Service (USS).
//
// §II-A: "The Usage Statistics Service (USS) gathers per-job usage results
// of the local site, and produces per-user histograms for configurable
// time intervals." The histograms are the compact exchange format: other
// sites' UMS instances fetch them instead of individual job records,
// "relaying the combined usage of each user on each site while omitting
// the details of individual jobs".
//
// Bus protocol (address "<site>.uss"):
//   {"op":"report", "user":<grid id>, "usage":<core-seconds>}  -> {"ok":true}
//   {"op":"histograms"} -> {"users": {"<user>": [[bin_time, amount], ...]}}
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/service_bus.hpp"
#include "services/telemetry.hpp"
#include "sim/simulator.hpp"

namespace aequus::services {

struct UssConfig {
  double bin_width = 60.0;  ///< histogram interval length [s]
  /// Drop bins older than this many seconds (0 = keep everything). With
  /// exponential decay downstream, bins past ~6 half-lives carry <2 % of
  /// their mass, so pruning bounds the exchanged histogram size on long
  /// runs without noticeably changing the fairshare values.
  double retention = 0.0;
};

class Uss {
 public:
  Uss(sim::Simulator& simulator, net::ServiceBus& bus, std::string site, UssConfig config = {},
      obs::Observability obs = {});
  ~Uss();
  Uss(const Uss&) = delete;
  Uss& operator=(const Uss&) = delete;

  /// Record `usage` core-seconds for `grid_user` at the current time.
  void report(const std::string& grid_user, double usage);

  /// Per-user histograms: user -> ordered (bin start time, amount) pairs.
  [[nodiscard]] const std::map<std::string, std::vector<std::pair<double, double>>>& histograms()
      const noexcept {
    return histograms_;
  }

  /// Total recorded usage for one user (un-decayed).
  [[nodiscard]] double total_for(const std::string& grid_user) const;

  [[nodiscard]] const std::string& address() const noexcept { return address_; }
  [[nodiscard]] std::uint64_t reports_received() const noexcept { return reports_; }

  /// Serialize histograms into the wire format.
  [[nodiscard]] json::Value histograms_json() const;

 private:
  json::Value handle(const json::Value& request);

  sim::Simulator& simulator_;
  net::ServiceBus& bus_;
  std::string site_;
  std::string address_;
  UssConfig config_;
  ServiceTelemetry telemetry_;
  std::map<std::string, std::vector<std::pair<double, double>>> histograms_;
  std::uint64_t reports_ = 0;
};

}  // namespace aequus::services
