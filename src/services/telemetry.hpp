// Shared per-service observability hookup (§ DESIGN.md 6d).
//
// Each service owns one ServiceTelemetry constructed with the op names it
// serves. Counters live under "<site>.<service>." in the experiment's
// obs::Registry: a total `requests` count plus one `ops.<op>` counter per
// declared op (`ops.other` catches protocol errors). Registration happens
// once at construction; the request hot path is two pointer increments
// and a binary search over a flat sorted (op, counter) vector — no
// allocation, no node-based map hops. Default-constructed (no registry
// attached) every call is a cheap no-op, so services record
// unconditionally.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace aequus::services {

class ServiceTelemetry {
 public:
  ServiceTelemetry() = default;
  ServiceTelemetry(obs::Observability obs, sim::Simulator& simulator, std::string site,
                   std::string service, std::initializer_list<const char*> ops)
      : obs_(obs), simulator_(&simulator), site_(std::move(site)), service_(std::move(service)) {
    if (obs_.registry == nullptr) return;
    const std::string prefix = site_ + "." + service_;
    requests_ = &obs_.registry->counter(prefix + ".requests");
    other_ = &obs_.registry->counter(prefix + ".ops.other");
    ops_.reserve(ops.size());
    for (const char* op : ops) {
      ops_.emplace_back(op, &obs_.registry->counter(prefix + ".ops." + op));
    }
    std::sort(ops_.begin(), ops_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  /// Count one handled request, attributed to `op`.
  void hit(const std::string& op) {
    if (requests_ == nullptr) return;
    requests_->inc();
    const auto it = std::lower_bound(
        ops_.begin(), ops_.end(), op,
        [](const auto& entry, const std::string& key) { return entry.first < key; });
    (it != ops_.end() && it->first == op ? it->second : other_)->inc();
  }

  /// Extra service-specific counter under the service prefix, registered
  /// on first use (call once at setup, then cache, for hot paths).
  [[nodiscard]] obs::Counter* counter(const std::string& name) {
    if (obs_.registry == nullptr) return nullptr;
    return &obs_.registry->counter(site_ + "." + service_ + "." + name);
  }

  /// Emit a trace event attributed to this service (no-op when tracing
  /// is off).
  void trace(obs::EventKind kind, std::string detail, double value = 0.0) {
    if (!tracing()) return;
    obs_.tracer->record(simulator_->now(), kind, site_, service_, std::move(detail), value);
  }

  /// The tracer behind this telemetry (null when none is attached); used
  /// with obs::SpanScope to make a service span ambient.
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return obs_.tracer; }

  [[nodiscard]] bool tracing() const noexcept {
    return obs_.tracer != nullptr && obs_.tracer->enabled() && simulator_ != nullptr;
  }

  /// Open a span attributed to this service, child of the ambient span
  /// (root when none). Invalid context when tracing is off.
  [[nodiscard]] obs::SpanContext begin_span(std::string name) {
    if (!tracing()) return {};
    return obs_.tracer->begin_span(simulator_->now(), site_, service_, std::move(name));
  }

  /// Close a span opened by begin_span (no-op for the invalid context).
  void end_span(const obs::SpanContext& span, std::string detail = {}, double value = 0.0) {
    if (!tracing()) return;
    obs_.tracer->end_span(simulator_->now(), span, site_, service_, std::move(detail), value);
  }

 private:
  obs::Observability obs_;
  sim::Simulator* simulator_ = nullptr;
  std::string site_;
  std::string service_;
  obs::Counter* requests_ = nullptr;
  obs::Counter* other_ = nullptr;
  /// Pre-resolved op counters, sorted by op name at construction.
  std::vector<std::pair<std::string, obs::Counter*>> ops_;
};

}  // namespace aequus::services
