#include "services/uss.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace aequus::services {

Uss::Uss(sim::Simulator& simulator, net::ServiceBus& bus, std::string site, UssConfig config,
         obs::Observability obs)
    : simulator_(simulator),
      bus_(bus),
      site_(std::move(site)),
      address_(site_ + ".uss"),
      config_(config),
      telemetry_(obs, simulator, site_, "uss", {"report", "report_batch", "histograms"}) {
  batch_counter_ = telemetry_.counter("batches_applied");
  batch_duplicate_counter_ = telemetry_.counter("batch_duplicates");
  bus_.bind(address_, [this](const json::Value& request) { return handle(request); });
}

Uss::~Uss() {
  bus_.unbind(address_);
}

void Uss::report(const std::string& grid_user, double usage) {
  report_at(grid_user, usage, simulator_.now());
}

void Uss::report_at(const std::string& grid_user, double usage, double time) {
  if (usage <= 0.0) return;
  ++reports_;
  const double bin_start = std::floor(time / config_.bin_width) * config_.bin_width;
  auto& bins = histograms_[grid_user];
  if (bins.empty() || bins.back().first < bin_start) {
    bins.emplace_back(bin_start, usage);
  } else if (bins.back().first == bin_start) {
    bins.back().second += usage;
  } else {
    // A batch delayed past newer per-delta reports can target an older
    // bin; keep the histogram sorted so downstream decay sums stay in
    // bin order.
    const auto it = std::lower_bound(
        bins.begin(), bins.end(), bin_start,
        [](const std::pair<double, double>& bin, double start) { return bin.first < start; });
    if (it != bins.end() && it->first == bin_start) {
      it->second += usage;
    } else {
      bins.insert(it, {bin_start, usage});
    }
  }
  if (config_.retention > 0.0) {
    const double horizon = simulator_.now() - config_.retention;
    std::size_t stale = 0;
    while (stale < bins.size() && bins[stale].first < horizon) ++stale;
    if (stale > 0) bins.erase(bins.begin(), bins.begin() + static_cast<std::ptrdiff_t>(stale));
  }
}

bool Uss::apply_batch(const ingest::DeltaBatch& batch) {
  if (!applier_.admit(batch.source, batch.seq)) {
    ++batch_duplicates_;
    obs::bump(batch_duplicate_counter_);
    telemetry_.trace(obs::EventKind::kMessageDrop, "duplicate_batch:" + batch.source,
                     static_cast<double>(batch.seq));
    return false;
  }
  for (const ingest::UsageDelta& delta : batch.deltas) {
    report_at(delta.user, delta.amount, delta.time);
  }
  ++batches_applied_;
  obs::bump(batch_counter_);
  telemetry_.trace(obs::EventKind::kUsageUpdateApplied, "batch:" + batch.source,
                   static_cast<double>(batch.deltas.size()));
  return true;
}

double Uss::total_for(const std::string& grid_user) const {
  const auto it = histograms_.find(grid_user);
  if (it == histograms_.end()) return 0.0;
  double total = 0.0;
  for (const auto& [time, amount] : it->second) {
    (void)time;
    total += amount;
  }
  return total;
}

json::Value Uss::histograms_json() const {
  json::Object users;
  for (const auto& [user, bins] : histograms_) {
    json::Array entries;
    for (const auto& [time, amount] : bins) {
      entries.push_back(json::Array{json::Value(time), json::Value(amount)});
    }
    users[user] = std::move(entries);
  }
  json::Object reply;
  reply["users"] = std::move(users);
  return json::Value(std::move(reply));
}

json::Value Uss::handle(const json::Value& request) {
  const std::string op = request.get_string("op");
  telemetry_.hit(op);
  if (op == "report") {
    const std::string user = request.get_string("user");
    const double usage = request.get_number("usage");
    report(user, usage);
    // Point event inside the bus's handle span: marks where a usage record
    // entered the store on the propagation chain.
    telemetry_.trace(obs::EventKind::kUsageUpdateApplied, "report:" + user, usage);
    return json::Value(json::Object{{"ok", json::Value(true)}});
  }
  if (op == ingest::kBatchOp) {
    try {
      const ingest::DeltaBatch batch = ingest::DeltaBatch::from_json(request);
      json::Object reply;
      reply["ok"] = true;
      if (apply_batch(batch)) {
        reply["applied"] = static_cast<double>(batch.deltas.size());
      } else {
        reply["duplicate"] = true;
      }
      return json::Value(std::move(reply));
    } catch (const std::exception& e) {
      AEQ_WARN("uss") << site_ << ": malformed batch envelope: " << e.what();
      return json::Value(json::Object{{"error", json::Value(std::string(e.what()))}});
    }
  }
  if (op == "histograms") {
    return histograms_json();
  }
  return json::Value(json::Object{{"error", json::Value("unknown op: " + op)}});
}

}  // namespace aequus::services
