#include "services/uss.hpp"

#include <cmath>

namespace aequus::services {

Uss::Uss(sim::Simulator& simulator, net::ServiceBus& bus, std::string site, UssConfig config,
         obs::Observability obs)
    : simulator_(simulator),
      bus_(bus),
      site_(std::move(site)),
      address_(site_ + ".uss"),
      config_(config),
      telemetry_(obs, simulator, site_, "uss", {"report", "histograms"}) {
  bus_.bind(address_, [this](const json::Value& request) { return handle(request); });
}

Uss::~Uss() {
  bus_.unbind(address_);
}

void Uss::report(const std::string& grid_user, double usage) {
  if (usage <= 0.0) return;
  ++reports_;
  const double now = simulator_.now();
  const double bin_start = std::floor(now / config_.bin_width) * config_.bin_width;
  auto& bins = histograms_[grid_user];
  if (!bins.empty() && bins.back().first == bin_start) {
    bins.back().second += usage;
  } else {
    bins.emplace_back(bin_start, usage);
  }
  if (config_.retention > 0.0) {
    const double horizon = now - config_.retention;
    std::size_t stale = 0;
    while (stale < bins.size() && bins[stale].first < horizon) ++stale;
    if (stale > 0) bins.erase(bins.begin(), bins.begin() + static_cast<std::ptrdiff_t>(stale));
  }
}

double Uss::total_for(const std::string& grid_user) const {
  const auto it = histograms_.find(grid_user);
  if (it == histograms_.end()) return 0.0;
  double total = 0.0;
  for (const auto& [time, amount] : it->second) {
    (void)time;
    total += amount;
  }
  return total;
}

json::Value Uss::histograms_json() const {
  json::Object users;
  for (const auto& [user, bins] : histograms_) {
    json::Array entries;
    for (const auto& [time, amount] : bins) {
      entries.push_back(json::Array{json::Value(time), json::Value(amount)});
    }
    users[user] = std::move(entries);
  }
  json::Object reply;
  reply["users"] = std::move(users);
  return json::Value(std::move(reply));
}

json::Value Uss::handle(const json::Value& request) {
  const std::string op = request.get_string("op");
  telemetry_.hit(op);
  if (op == "report") {
    const std::string user = request.get_string("user");
    const double usage = request.get_number("usage");
    report(user, usage);
    // Point event inside the bus's handle span: marks where a usage record
    // entered the store on the propagation chain.
    telemetry_.trace(obs::EventKind::kUsageUpdateApplied, "report:" + user, usage);
    return json::Value(json::Object{{"ok", json::Value(true)}});
  }
  if (op == "histograms") {
    return histograms_json();
  }
  return json::Value(json::Object{{"error", json::Value("unknown op: " + op)}});
}

}  // namespace aequus::services
