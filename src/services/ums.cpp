#include "services/ums.hpp"

#include "util/logging.hpp"

namespace aequus::services {

Ums::Ums(sim::Simulator& simulator, net::ServiceBus& bus, std::string site, UmsConfig config,
         obs::Observability obs)
    : simulator_(simulator),
      bus_(bus),
      site_(std::move(site)),
      address_(site_ + ".ums"),
      config_(config),
      telemetry_(obs, simulator, site_, "ums", {"usage"}),
      rebuilds_(telemetry_.counter("rebuilds")),
      decay_(config.decay) {
  bus_.bind(address_, [this](const json::Value& request) { return handle(request); });
  poll_task_ = simulator_.schedule_periodic(config_.update_interval, config_.update_interval,
                                            [this] { update_now(); });
}

Ums::~Ums() {
  poll_task_.cancel();
  bus_.unbind(address_);
}

void Ums::set_peers(std::vector<std::string> uss_addresses) {
  peers_ = std::move(uss_addresses);
}

void Ums::poll_reply_done(std::uint64_t cycle) {
  if (cycle != polls_ || poll_pending_ == 0) return;  // superseded (or duplicate)
  if (--poll_pending_ == 0) {
    telemetry_.end_span(poll_span_, "complete");
    poll_span_ = obs::SpanContext{};
  }
}

void Ums::update_now() {
  ++polls_;
  if (poll_span_.valid()) {
    telemetry_.end_span(poll_span_, "superseded");
  }
  poll_span_ = telemetry_.begin_span("update");
  obs::SpanScope span_scope(telemetry_.tracer(), poll_span_);
  const std::uint64_t cycle = polls_;

  // Poll the local USS plus (optionally) remote peers.
  std::vector<std::string> targets = {site_ + ".uss"};
  if (config_.read_remote) {
    for (const auto& peer : peers_) {
      if (peer != targets.front()) targets.push_back(peer);
    }
  }
  poll_pending_ = 1 + targets.size();  // policy reply + one per target

  // Refresh the site policy (user -> leaf path mapping).
  json::Object policy_request;
  policy_request["op"] = "policy";
  bus_.request(site_, site_ + ".pds", json::Value(std::move(policy_request)),
               [this, cycle](const json::Value& reply) {
                 try {
                   site_policy_ = core::PolicyTree::from_json(reply);
                   have_policy_ = true;
                   rebuild();
                 } catch (const std::exception& e) {
                   AEQ_WARN("ums") << site_ << ": bad policy reply: " << e.what();
                 }
                 poll_reply_done(cycle);
               });

  for (const auto& target : targets) {
    json::Object request;
    request["op"] = "histograms";
    bus_.request(site_, target, json::Value(std::move(request)),
                 [this, cycle, target](const json::Value& reply) {
                   ingest(target, reply);
                   rebuild();
                   poll_reply_done(cycle);
                 });
  }
}

void Ums::ingest(const std::string& source, const json::Value& histograms) {
  try {
    auto& per_user = sources_[source];
    per_user.clear();
    for (const auto& [user, bins] : histograms.at("users").as_object()) {
      auto& entries = per_user[user];
      for (const auto& bin : bins.as_array()) {
        entries.emplace_back(bin.at(0).as_number(), bin.at(1).as_number());
      }
    }
  } catch (const std::exception& e) {
    AEQ_WARN("ums") << site_ << ": bad histogram reply from " << source << ": " << e.what();
  }
}

void Ums::rebuild() {
  const double now = simulator_.now();
  // Map grid users to policy leaf paths; users missing from the policy are
  // accounted directly under the root.
  std::map<std::string, std::string> path_of;
  if (have_policy_) {
    for (const auto& path : site_policy_.leaf_paths()) {
      const auto segments = core::split_path(path);
      if (!segments.empty()) path_of[segments.back()] = path;
    }
  }
  core::UsageTree tree;
  for (const auto& [source, per_user] : sources_) {
    (void)source;
    for (const auto& [user, bins] : per_user) {
      const double amount = decay_.decayed_total(bins, now);
      if (amount <= 0.0) continue;
      const auto it = path_of.find(user);
      tree.add(it != path_of.end() ? it->second : "/" + user, amount);
    }
  }
  tree_ = std::move(tree);
  bump(rebuilds_);
  telemetry_.trace(obs::EventKind::kUsageUpdateApplied, "rebuild",
                   static_cast<double>(tree_.total()));
}

json::Value Ums::handle(const json::Value& request) {
  const std::string op = request.get_string("op");
  telemetry_.hit(op);
  if (op == "usage") {
    return tree_.to_json();
  }
  return json::Value(json::Object{{"error", json::Value("unknown op: " + op)}});
}

}  // namespace aequus::services
