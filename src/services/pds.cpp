#include "services/pds.hpp"

#include "util/logging.hpp"

namespace aequus::services {

Pds::Pds(sim::Simulator& simulator, net::ServiceBus& bus, std::string site,
         obs::Observability obs)
    : simulator_(simulator),
      bus_(bus),
      site_(std::move(site)),
      address_(site_ + ".pds"),
      telemetry_(obs, simulator, site_, "pds", {"policy"}) {
  bus_.bind(address_, [this](const json::Value& request) { return handle(request); });
}

Pds::~Pds() {
  for (auto& task : refresh_tasks_) task.cancel();
  bus_.unbind(address_);
}

void Pds::set_policy(core::PolicyTree policy) {
  policy_ = std::move(policy);
  ++version_;
}

void Pds::mount_remote(const std::string& path, const std::string& remote_pds_address,
                       double share, double refresh_interval) {
  mounts_.push_back(Mount{path, remote_pds_address, share});
  const Mount mount = mounts_.back();
  refresh_mount(mount);
  refresh_tasks_.push_back(simulator_.schedule_periodic(
      simulator_.now() + refresh_interval, refresh_interval,
      [this, mount] { refresh_mount(mount); }));
}

void Pds::refresh_mount(const Mount& mount) {
  const obs::SpanContext span =
      telemetry_.begin_span("mount_refresh:" + mount.remote_address);
  obs::SpanScope span_scope(telemetry_.tracer(), span);
  json::Object request;
  request["op"] = "policy";
  bus_.request(site_, mount.remote_address, json::Value(std::move(request)),
               [this, mount, span](const json::Value& reply) {
                 try {
                   const core::PolicyTree remote = core::PolicyTree::from_json(reply);
                   policy_.mount(mount.path, remote, mount.share);
                   ++mounts_applied_;
                   ++version_;
                   telemetry_.end_span(span, "complete");
                 } catch (const std::exception& e) {
                   AEQ_WARN("pds") << site_ << ": bad remote policy from "
                                   << mount.remote_address << ": " << e.what();
                   telemetry_.end_span(span, "bad_reply");
                 }
               });
}

json::Value Pds::handle(const json::Value& request) {
  const std::string op = request.get_string("op");
  telemetry_.hit(op);
  if (op == "policy") {
    // Opt-in version short-circuit; the plain reply stays byte-identical.
    if (const auto if_version = request.find("if_version")) {
      const auto version = static_cast<std::uint64_t>(if_version->get().as_number());
      json::Object reply;
      reply["version"] = static_cast<double>(version_);
      if (version == version_) {
        reply["unchanged"] = true;
        return json::Value(std::move(reply));
      }
      json::Value tree = policy_.to_json();
      for (auto& [key, value] : tree.as_object()) reply[key] = value;
      return json::Value(std::move(reply));
    }
    return policy_.to_json();
  }
  return json::Value(json::Object{{"error", json::Value("unknown op: " + op)}});
}

}  // namespace aequus::services
