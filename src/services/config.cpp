#include "services/config.hpp"

aequus::services::InstallationConfig
aequus::json::Decoder<aequus::services::InstallationConfig>::decode(const Value& value) {
  namespace core = aequus::core;
  namespace json = aequus::json;
  aequus::services::InstallationConfig config;
  if (const auto uss = value.find("uss")) {
    config.uss.bin_width = uss->get().get_number("bin_width", config.uss.bin_width);
    config.uss.retention = uss->get().get_number("retention", config.uss.retention);
  }
  if (const auto ums = value.find("ums")) {
    config.ums.update_interval =
        ums->get().get_number("update_interval", config.ums.update_interval);
    config.ums.read_remote = ums->get().get_bool("read_remote", config.ums.read_remote);
    if (const auto decay = ums->get().find("decay")) {
      config.ums.decay = core::Decay::from_json(decay->get()).config();
    }
  }
  if (const auto fcs = value.find("fcs")) {
    config.fcs.update_interval =
        fcs->get().get_number("update_interval", config.fcs.update_interval);
    if (const auto algorithm = fcs->get().find("algorithm")) {
      config.fcs.algorithm = json::decode<core::FairshareConfig>(algorithm->get());
    }
    if (const auto projection = fcs->get().find("projection")) {
      config.fcs.projection = json::decode<core::ProjectionConfig>(projection->get());
    }
  }
  return config;
}

namespace aequus::services {

json::Value to_json(const InstallationConfig& config) {
  json::Object uss;
  uss["bin_width"] = config.uss.bin_width;
  uss["retention"] = config.uss.retention;

  json::Object ums;
  ums["update_interval"] = config.ums.update_interval;
  ums["read_remote"] = config.ums.read_remote;
  ums["decay"] = core::Decay(config.ums.decay).to_json();

  json::Object fcs;
  fcs["update_interval"] = config.fcs.update_interval;
  fcs["algorithm"] = core::to_json(config.fcs.algorithm);
  fcs["projection"] = core::to_json(config.fcs.projection);

  json::Object root;
  root["uss"] = std::move(uss);
  root["ums"] = std::move(ums);
  root["fcs"] = std::move(fcs);
  return json::Value(std::move(root));
}

}  // namespace aequus::services
