// JSON configuration for an Aequus installation.
//
// Deployments configure the service stack from a single document:
//
//   {
//     "uss": {"bin_width": 60, "retention": 0},
//     "ums": {"update_interval": 30, "read_remote": true,
//             "decay": {"kind": "half-life", "half_life": 86400}},
//     "fcs": {"update_interval": 30,
//             "algorithm": {"k": 0.5, "resolution": 10000},
//             "projection": {"kind": "percental", "bits_per_level": 8}}
//   }
//
// Unknown keys are ignored; missing keys keep their defaults, so configs
// stay forward- and backward-compatible.
#pragma once

#include "json/decode.hpp"
#include "json/json.hpp"
#include "services/installation.hpp"

namespace aequus::services {

[[nodiscard]] json::Value to_json(const InstallationConfig& config);

}  // namespace aequus::services

/// json::decode<services::InstallationConfig> support.
template <>
struct aequus::json::Decoder<aequus::services::InstallationConfig> {
  [[nodiscard]] static aequus::services::InstallationConfig decode(const Value& value);
};

namespace aequus::services {

/// Deprecated spelling of json::decode<InstallationConfig>().
[[deprecated("use json::decode<services::InstallationConfig>()")]] [[nodiscard]] inline InstallationConfig
installation_config_from_json(const json::Value& value) {
  return json::decode<InstallationConfig>(value);
}

}  // namespace aequus::services
