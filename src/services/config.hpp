// JSON configuration for an Aequus installation.
//
// Deployments configure the service stack from a single document:
//
//   {
//     "uss": {"bin_width": 60, "retention": 0},
//     "ums": {"update_interval": 30, "read_remote": true,
//             "decay": {"kind": "half-life", "half_life": 86400}},
//     "fcs": {"update_interval": 30,
//             "algorithm": {"k": 0.5, "resolution": 10000},
//             "projection": {"kind": "percental", "bits_per_level": 8}}
//   }
//
// Unknown keys are ignored; missing keys keep their defaults, so configs
// stay forward- and backward-compatible.
#pragma once

#include "json/json.hpp"
#include "services/installation.hpp"

namespace aequus::services {

[[nodiscard]] InstallationConfig installation_config_from_json(const json::Value& value);
[[nodiscard]] json::Value to_json(const InstallationConfig& config);

}  // namespace aequus::services
