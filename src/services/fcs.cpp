#include "services/fcs.hpp"

#include "util/logging.hpp"

namespace aequus::services {

Fcs::Fcs(sim::Simulator& simulator, net::ServiceBus& bus, std::string site, FcsConfig config,
         obs::Observability obs)
    : simulator_(simulator),
      bus_(bus),
      site_(std::move(site)),
      address_(site_ + ".fcs"),
      config_(config),
      telemetry_(obs, simulator, site_, "fcs", {"fairshare", "table", "tree", "configure"}),
      recalculations_(telemetry_.counter("recalculations")),
      algorithm_(config.algorithm) {
  bus_.bind(address_, [this](const json::Value& request) { return handle(request); });
  update_task_ = simulator_.schedule_periodic(config_.update_interval, config_.update_interval,
                                              [this] { update_now(); });
}

Fcs::~Fcs() {
  update_task_.cancel();
  bus_.unbind(address_);
}

void Fcs::update_reply_done(std::uint64_t cycle) {
  if (cycle != update_cycles_ || update_pending_ == 0) return;  // superseded (or duplicate)
  if (--update_pending_ == 0) {
    telemetry_.end_span(update_span_, "complete");
    update_span_ = obs::SpanContext{};
  }
}

void Fcs::update_now() {
  ++update_cycles_;
  if (update_span_.valid()) {
    telemetry_.end_span(update_span_, "superseded");
  }
  update_span_ = telemetry_.begin_span("update");
  obs::SpanScope span_scope(telemetry_.tracer(), update_span_);
  const std::uint64_t cycle = update_cycles_;
  update_pending_ = 2;  // policy reply + usage reply

  json::Object policy_request;
  policy_request["op"] = "policy";
  bus_.request(site_, site_ + ".pds", json::Value(std::move(policy_request)),
               [this, cycle](const json::Value& reply) {
                 try {
                   policy_ = core::PolicyTree::from_json(reply);
                   have_policy_ = true;
                   recalculate();
                 } catch (const std::exception& e) {
                   AEQ_WARN("fcs") << site_ << ": bad policy reply: " << e.what();
                 }
                 update_reply_done(cycle);
               });
  json::Object usage_request;
  usage_request["op"] = "usage";
  bus_.request(site_, site_ + ".ums", json::Value(std::move(usage_request)),
               [this, cycle](const json::Value& reply) {
                 try {
                   usage_ = core::UsageTree::from_json(reply);
                   recalculate();
                 } catch (const std::exception& e) {
                   AEQ_WARN("fcs") << site_ << ": bad usage reply: " << e.what();
                 }
                 update_reply_done(cycle);
               });
}

void Fcs::recalculate() {
  if (!have_policy_) return;
  tree_ = algorithm_.compute(policy_, usage_);
  table_ = core::project(tree_, config_.projection);
  user_table_.clear();
  for (const auto& [path, value] : table_) {
    const auto segments = core::split_path(path);
    if (!segments.empty()) user_table_[segments.back()] = value;
  }
  ++calculations_;
  bump(recalculations_);
  telemetry_.trace(obs::EventKind::kUsageUpdateApplied, "recalculate",
                   static_cast<double>(table_.size()));
}

void Fcs::set_projection(core::ProjectionConfig projection) {
  config_.projection = projection;
  recalculate();
}

void Fcs::set_algorithm(core::FairshareConfig algorithm) {
  config_.algorithm = algorithm;
  algorithm_ = core::FairshareAlgorithm(algorithm);
  recalculate();
}

double Fcs::factor_for(const std::string& grid_user) const {
  const auto it = user_table_.find(grid_user);
  return it != user_table_.end() ? it->second : 0.5;
}

json::Value Fcs::handle(const json::Value& request) {
  const std::string op = request.get_string("op");
  telemetry_.hit(op);
  if (op == "fairshare") {
    const std::string user = request.get_string("user");
    json::Object reply;
    reply["value"] = factor_for(user);
    // Attach the vector when the user exists in the tree.
    for (const auto& path : tree_.user_paths()) {
      const auto segments = core::split_path(path);
      if (!segments.empty() && segments.back() == user) {
        if (const auto vector = tree_.vector_for(path)) {
          reply["vector"] = vector->to_string();
        }
        break;
      }
    }
    return json::Value(std::move(reply));
  }
  if (op == "table") {
    json::Object users;
    for (const auto& [user, value] : user_table_) users[user] = value;
    json::Object reply;
    reply["users"] = std::move(users);
    return json::Value(std::move(reply));
  }
  if (op == "tree") {
    return tree_.to_json();
  }
  if (op == "configure") {
    try {
      if (const auto projection = request.find("projection")) {
        set_projection(core::projection_config_from_json(projection->get()));
      }
      if (const auto algorithm = request.find("algorithm")) {
        set_algorithm(core::fairshare_config_from_json(algorithm->get()));
      }
      return json::Value(json::Object{{"ok", json::Value(true)}});
    } catch (const std::exception& e) {
      return json::Value(json::Object{{"error", json::Value(std::string(e.what()))}});
    }
  }
  return json::Value(json::Object{{"error", json::Value("unknown op: " + op)}});
}

}  // namespace aequus::services
