#include "services/fcs.hpp"

#include "util/logging.hpp"

namespace aequus::services {

Fcs::Fcs(sim::Simulator& simulator, net::ServiceBus& bus, std::string site, FcsConfig config,
         obs::Observability obs)
    : simulator_(simulator),
      bus_(bus),
      site_(std::move(site)),
      address_(site_ + ".fcs"),
      config_(config),
      telemetry_(obs, simulator, site_, "fcs",
                 {"fairshare", "table", "tree", "snapshot", "configure", "report_batch"}),
      recalculations_(telemetry_.counter("recalculations")),
      backend_(core::make_fairness_backend(config.backend, config.algorithm)) {
  ingest_sink_ = std::make_unique<ingest::EngineSink>(*backend_, [this](const std::string& user) {
    const auto it = ingest_paths_.find(user);
    return it != ingest_paths_.end() ? it->second : "/" + user;
  });
  bus_.bind(address_, [this](const json::Value& request) { return handle(request); });
  update_task_ = simulator_.schedule_periodic(config_.update_interval, config_.update_interval,
                                              [this] { update_now(); });
}

Fcs::~Fcs() {
  update_task_.cancel();
  bus_.unbind(address_);
}

void Fcs::update_reply_done(std::uint64_t cycle) {
  if (cycle != update_cycles_ || update_pending_ == 0) return;  // superseded (or duplicate)
  if (--update_pending_ == 0) {
    telemetry_.end_span(update_span_, "complete");
    update_span_ = obs::SpanContext{};
  }
}

void Fcs::update_now() {
  ++update_cycles_;
  if (update_span_.valid()) {
    telemetry_.end_span(update_span_, "superseded");
  }
  update_span_ = telemetry_.begin_span("update");
  obs::SpanScope span_scope(telemetry_.tracer(), update_span_);
  const std::uint64_t cycle = update_cycles_;
  update_pending_ = 2;  // policy reply + usage reply

  json::Object policy_request;
  policy_request["op"] = "policy";
  bus_.request(site_, site_ + ".pds", json::Value(std::move(policy_request)),
               [this, cycle](const json::Value& reply) {
                 try {
                   policy_ = core::PolicyTree::from_json(reply);
                   have_policy_ = true;
                   refresh_ingest_paths();
                   recalculate();
                 } catch (const std::exception& e) {
                   AEQ_WARN("fcs") << site_ << ": bad policy reply: " << e.what();
                 }
                 update_reply_done(cycle);
               });
  json::Object usage_request;
  usage_request["op"] = "usage";
  bus_.request(site_, site_ + ".ums", json::Value(std::move(usage_request)),
               [this, cycle](const json::Value& reply) {
                 try {
                   usage_ = core::UsageTree::from_json(reply);
                   have_usage_ = true;
                   recalculate();
                 } catch (const std::exception& e) {
                   AEQ_WARN("fcs") << site_ << ": bad usage reply: " << e.what();
                 }
                 update_reply_done(cycle);
               });
}

void Fcs::recalculate() {
  if (!have_policy_) return;
  // The engine diffs the fetched trees against its working state and
  // recomputes only dirty paths; an update that changed nothing keeps the
  // generation, and then the projection/table rebuild is skipped too.
  backend_->set_policy(policy_);
  // Wholesale usage replacement drops push-mode binned state, so it only
  // happens once a UMS poll reply has actually landed (poll mode wins).
  // Before that the re-applied default tree would be an empty-vs-empty
  // no-op for poll deployments anyway.
  if (have_usage_) backend_->set_usage(usage_);
  // Time-dependent backends (credit accrual) integrate up to the
  // current simulation time on this publish; aequus ignores it.
  backend_->advance_time(simulator_.now());
  republish(backend_->publish());
}

void Fcs::republish(const core::FairshareSnapshotPtr& base) {
  if (base == nullptr) return;
  if (snapshot_ == nullptr || base->generation() != snapshot_->generation() || reproject_) {
    table_ = backend_->project_factors(*base, config_.projection);
    user_table_.clear();
    for (const auto& [path, value] : table_) {
      const auto segments = core::split_path(path);
      if (!segments.empty()) user_table_[segments.back()] = value;
    }
    snapshot_ = core::FairshareSnapshot::with_factors(base, table_, user_table_);
    reproject_ = false;
  }
  ++calculations_;
  bump(recalculations_);
  telemetry_.trace(obs::EventKind::kUsageUpdateApplied, "recalculate",
                   static_cast<double>(table_.size()));
}

void Fcs::refresh_ingest_paths() {
  ingest_paths_.clear();
  for (const auto& path : policy_.leaf_paths()) {
    const auto segments = core::split_path(path);
    if (!segments.empty()) ingest_paths_[segments.back()] = path;
  }
}

bool Fcs::ingest_batch(const ingest::DeltaBatch& batch) {
  backend_->advance_time(simulator_.now());
  const core::FairshareSnapshotPtr snap = ingest_sink_->commit(batch);
  if (snap == nullptr) return false;  // duplicate delivery
  republish(snap);
  return true;
}

void Fcs::set_projection(core::ProjectionConfig projection) {
  config_.projection = projection;
  reproject_ = true;
  recalculate();
}

void Fcs::set_algorithm(core::FairshareConfig algorithm) {
  config_.algorithm = algorithm;
  backend_->set_config(algorithm);  // validates; forces a republish
  recalculate();
}

double Fcs::factor_for(const std::string& grid_user) const {
  const auto it = user_table_.find(grid_user);
  return it != user_table_.end() ? it->second : core::kNeutralFactor;
}

json::Value Fcs::handle(const json::Value& request) {
  const std::string op = request.get_string("op");
  telemetry_.hit(op);
  if (op == "fairshare") {
    const std::string user = request.get_string("user");
    json::Object reply;
    reply["value"] = factor_for(user);
    if (snapshot_ != nullptr) {
      // Attach the vector when the user exists in the tree.
      for (const auto& path : snapshot_->user_paths()) {
        const auto segments = core::split_path(path);
        if (!segments.empty() && segments.back() == user) {
          if (const auto vector = snapshot_->vector_for(path)) {
            reply["vector"] = vector->to_string();
          }
          break;
        }
      }
    }
    return json::Value(std::move(reply));
  }
  if (op == "table") {
    // Opt-in generation short-circuit; the plain reply stays exactly
    // {"users":{...}} so existing clients see byte-identical traffic.
    if (const auto if_generation = request.find("if_generation")) {
      const auto generation = static_cast<std::uint64_t>(if_generation->get().as_number());
      json::Object reply;
      reply["generation"] = static_cast<double>(backend_->generation());
      if (snapshot_ != nullptr && generation == snapshot_->generation()) {
        reply["unchanged"] = true;
        return json::Value(std::move(reply));
      }
      json::Object users;
      for (const auto& [user, value] : user_table_) users[user] = value;
      reply["users"] = std::move(users);
      return json::Value(std::move(reply));
    }
    json::Object users;
    for (const auto& [user, value] : user_table_) users[user] = value;
    json::Object reply;
    reply["users"] = std::move(users);
    return json::Value(std::move(reply));
  }
  if (op == "snapshot") {
    if (snapshot_ == nullptr) return core::FairshareSnapshot{}.to_json(false);
    return snapshot_->to_json(request.get_bool("tree", false));
  }
  if (op == "tree") {
    // Byte-compatible with the pre-engine reply, including the
    // default-constructed tree served before the first calculation.
    if (snapshot_ == nullptr) return core::FairshareTree{}.to_json();
    return snapshot_->tree_to_json();
  }
  if (op == ingest::kBatchOp) {
    try {
      const ingest::DeltaBatch batch = ingest::DeltaBatch::from_json(request);
      json::Object reply;
      reply["ok"] = true;
      if (ingest_batch(batch)) {
        reply["applied"] = static_cast<double>(batch.deltas.size());
      } else {
        reply["duplicate"] = true;
      }
      reply["generation"] = static_cast<double>(backend_->generation());
      return json::Value(std::move(reply));
    } catch (const std::exception& e) {
      AEQ_WARN("fcs") << site_ << ": malformed batch envelope: " << e.what();
      return json::Value(json::Object{{"error", json::Value(std::string(e.what()))}});
    }
  }
  if (op == "configure") {
    try {
      if (const auto projection = request.find("projection")) {
        set_projection(json::decode<core::ProjectionConfig>(projection->get()));
      }
      if (const auto algorithm = request.find("algorithm")) {
        set_algorithm(json::decode<core::FairshareConfig>(algorithm->get()));
      }
      return json::Value(json::Object{{"ok", json::Value(true)}});
    } catch (const std::exception& e) {
      return json::Value(json::Object{{"error", json::Value(std::string(e.what()))}});
    }
  }
  return json::Value(json::Object{{"error", json::Value("unknown op: " + op)}});
}

}  // namespace aequus::services
