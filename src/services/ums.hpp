// Usage Monitoring Service (UMS).
//
// §II-A: "The Usage Monitoring Service (UMS) of each site gathers usage
// histograms from one or more USSs and pre-computes usage trees based on
// the site-specific policies."
//
// Every `update_interval` seconds the UMS polls its configured USS
// addresses (the local one plus peers at remote sites), stores the latest
// per-site histograms, and rebuilds a usage tree: grid users are mapped to
// policy leaf paths via the site policy (fetched from the local PDS) and
// bin amounts are weighted by the configured decay function.
//
// Partial participation (§IV-A-4): a site that should only consider local
// usage sets `read_remote = false`; a site that must not contribute keeps
// polling and serving locally, but its data is dropped on the wire by the
// ServiceBus participation flags.
//
// Bus protocol (address "<site>.ums"):
//   {"op":"usage"} -> usage tree JSON ({"<path>": decayed core-seconds})
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/decay.hpp"
#include "core/policy.hpp"
#include "core/usage.hpp"
#include "net/service_bus.hpp"
#include "services/telemetry.hpp"
#include "sim/simulator.hpp"

namespace aequus::services {

struct UmsConfig {
  double update_interval = 30.0;  ///< USS polling / tree rebuild period [s]
  core::DecayConfig decay{};      ///< historical usage decay
  bool read_remote = true;        ///< consider remote sites' usage
};

class Ums {
 public:
  Ums(sim::Simulator& simulator, net::ServiceBus& bus, std::string site, UmsConfig config = {},
      obs::Observability obs = {});
  ~Ums();
  Ums(const Ums&) = delete;
  Ums& operator=(const Ums&) = delete;

  /// USS addresses to poll. The local "<site>.uss" is always polled;
  /// remote peers are polled only when `read_remote` is set.
  void set_peers(std::vector<std::string> uss_addresses);

  /// Current pre-computed usage tree (decayed, path-keyed).
  [[nodiscard]] const core::UsageTree& usage_tree() const noexcept { return tree_; }

  [[nodiscard]] const std::string& address() const noexcept { return address_; }
  [[nodiscard]] std::uint64_t polls_completed() const noexcept { return polls_; }

  /// Force an immediate poll + rebuild (normally driven by the timer).
  void update_now();

 private:
  json::Value handle(const json::Value& request);
  void ingest(const std::string& source, const json::Value& histograms);
  void rebuild();
  /// Count one reply of poll cycle `cycle`; closes the cycle's span when
  /// the last expected reply (or its duplicate-filtered first copy) lands.
  void poll_reply_done(std::uint64_t cycle);

  sim::Simulator& simulator_;
  net::ServiceBus& bus_;
  std::string site_;
  std::string address_;
  UmsConfig config_;
  ServiceTelemetry telemetry_;
  obs::Counter* rebuilds_ = nullptr;
  core::Decay decay_;
  std::vector<std::string> peers_;
  /// source USS address -> user -> (bin time, amount) pairs
  std::map<std::string, std::map<std::string, std::vector<std::pair<double, double>>>> sources_;
  core::PolicyTree site_policy_;
  bool have_policy_ = false;
  core::UsageTree tree_;
  std::uint64_t polls_ = 0;
  sim::EventHandle poll_task_;
  /// Span of the in-flight poll cycle; closed "complete" when all replies
  /// landed, or "superseded" when the next cycle starts first (lost
  /// replies then surface as the cycle's open rpc children).
  obs::SpanContext poll_span_;
  std::size_t poll_pending_ = 0;
};

}  // namespace aequus::services
