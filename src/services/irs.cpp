#include "services/irs.hpp"

#include "util/logging.hpp"

namespace aequus::services {

Irs::Irs(sim::Simulator& simulator, net::ServiceBus& bus, std::string site,
         obs::Observability obs)
    : simulator_(simulator),
      bus_(bus),
      site_(std::move(site)),
      address_(site_ + ".irs"),
      telemetry_(obs, simulator, site_, "irs", {"resolve", "store"}) {
  bus_.bind(address_, [this](const json::Value& request) { return handle(request); });
}

Irs::~Irs() {
  bus_.unbind(address_);
}

std::string Irs::key(const std::string& cluster, const std::string& system_user) {
  return cluster + ":" + system_user;
}

void Irs::add_mapping(const std::string& cluster, const std::string& system_user,
                      const std::string& grid_user) {
  table_[key(cluster, system_user)] = grid_user;
}

void Irs::set_endpoint(std::string endpoint_address) {
  endpoint_address_ = std::move(endpoint_address);
}

std::optional<std::string> Irs::resolve(const std::string& cluster,
                                        const std::string& system_user) {
  ++lookups_;
  const auto it = table_.find(key(cluster, system_user));
  if (it != table_.end()) return it->second;
  if (endpoint_address_.empty() || !bus_.bound(endpoint_address_)) return std::nullopt;

  // Custom endpoint: the paper's minimalist JSON protocol.
  ++endpoint_queries_;
  json::Object query;
  query["system_user"] = system_user;
  query["cluster"] = cluster;
  const json::Value reply = bus_.call(endpoint_address_, json::Value(std::move(query)));
  if (reply.is_object() && !reply.get_bool("unknown", false)) {
    const std::string grid_user = reply.get_string("grid_user");
    if (!grid_user.empty()) {
      table_[key(cluster, system_user)] = grid_user;  // cache the hit
      return grid_user;
    }
  }
  return std::nullopt;
}

json::Value Irs::handle(const json::Value& request) {
  const std::string op = request.get_string("op");
  telemetry_.hit(op);
  if (op == "resolve") {
    const auto grid_user =
        resolve(request.get_string("cluster"), request.get_string("system_user"));
    json::Object reply;
    if (grid_user) {
      reply["grid_user"] = *grid_user;
    } else {
      reply["unknown"] = true;
    }
    return json::Value(std::move(reply));
  }
  if (op == "store") {
    add_mapping(request.get_string("cluster"), request.get_string("system_user"),
                request.get_string("grid_user"));
    return json::Value(json::Object{{"ok", json::Value(true)}});
  }
  return json::Value(json::Object{{"error", json::Value("unknown op: " + op)}});
}

}  // namespace aequus::services
