// Alternative fairness policies behind the FairnessBackend seam
// (DESIGN.md §6j). Both subclass the arena FairshareEngine: they reuse
// its SoA storage, dirty-path tracking, decay memoization, and
// copy-on-publish snapshots, and replace only the per-sibling-group
// annotation (annotate_group) plus, for credit, the time integration
// and the percental projection.
//
//   balanced — balanced-fairness share allocation (Bonald & Comte): a
//       sibling group's capacity is split among its *active* members
//       (subtree usage > 0) in proportion to their configured weights;
//       idle members are entitled to nothing while idle. The published
//       policy_share is that entitlement, and the distance reuses the
//       Aequus node_distance over (entitlement, usage_share), so the
//       existing projections and priority plumbing apply unchanged. A
//       fully idle group falls back to the nominal weights, which makes
//       the backend coincide with aequus exactly when every sibling is
//       active (or none is).
//
//   credit — credit-based online fairness (Zahedi & Freeman): every
//       node carries a bank that accrues credit at rate
//       (policy_share - usage_share) / refresh_s as simulation time
//       advances (advance_time), clamped to [-cap, cap]. Underserved
//       subtrees bank credit they later spend by consuming above their
//       share; persistent over-consumers sit pinned at -cap. The bank
//       (normalized by the cap) is published through the distance
//       channel, so dictionary/bitwise projections consume it directly;
//       the percental projection — which only looks at share products —
//       is overridden to read the mean per-level bank instead. Banks
//       reset on structural policy changes. Publishing re-annotates the
//       whole tree (O(n) per publish, accepted for an evaluation
//       backend).
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.hpp"

namespace aequus::core {

/// Balanced-fairness backend: weights split among active siblings only.
class BalancedBackend : public FairshareEngine {
 public:
  explicit BalancedBackend(FairshareConfig config = {}, DecayConfig decay = {})
      : FairshareEngine(config, decay) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "balanced"; }

 protected:
  void annotate_group(NodeId node, double share_total, double usage_total) override;
};

struct CreditConfig {
  /// Seconds of sustained full-share imbalance to accrue one unit of
  /// (clamped) credit distance.
  double refresh_s = 3600.0;
  /// Bank clamp: banks live in [-cap, cap], published as bank / cap.
  double cap = 1.0;
};

/// Credit-based online fairness backend: banked (share - usage) credit
/// published through the distance channel.
class CreditBackend : public FairshareEngine {
 public:
  explicit CreditBackend(CreditConfig credit = {}, FairshareConfig config = {},
                         DecayConfig decay = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "credit"; }

  /// Record backend-local time; credit accrues over the elapsed span on
  /// the next publish(). Time never runs backwards (clamped).
  void advance_time(double now) override;

  /// Accrue banks over the time elapsed since the last publish, then
  /// re-annotate and publish. Forces a whole-tree re-annotation because
  /// every bank drifts with time, not only the dirty paths.
  [[nodiscard]] FairshareSnapshotPtr publish() override;

  /// Percental reads the mean per-level bank; other kinds consume the
  /// distance channel already and use the default projection.
  [[nodiscard]] std::map<std::string, double> project_factors(
      const FairshareSnapshot& snapshot, const ProjectionConfig& config) const override;

  [[nodiscard]] const CreditConfig& credit_config() const noexcept { return credit_; }

 protected:
  void annotate_group(NodeId node, double share_total, double usage_total) override;

 private:
  CreditConfig credit_;
  std::vector<double> bank_;          ///< per-NodeId credit bank
  double now_ = 0.0;                  ///< latest advance_time()
  double accrual_epoch_ = 0.0;        ///< time banks were last integrated to
  double pending_dt_ = 0.0;           ///< span being integrated by this publish
  bool have_time_ = false;            ///< first publish pins the epoch, no accrual
  std::uint64_t bank_structure_epoch_ = 0;  ///< banks reset when structure moves
};

}  // namespace aequus::core
