#include "core/policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace aequus::core {

std::vector<std::string> split_path(const std::string& path) {
  return util::split_nonempty(path, '/');
}

std::string join_path(const std::vector<std::string>& segments) {
  return "/" + util::join(segments, "/");
}

const PolicyTree::Node* PolicyTree::Node::find_child(const std::string& child_name) const {
  for (const auto& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

PolicyTree::Node* PolicyTree::Node::find_child(const std::string& child_name) {
  for (auto& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

PolicyTree::PolicyTree() {
  root_.name = "/";
  root_.share = 1.0;
}

void PolicyTree::set_share(const std::string& path, double share) {
  if (!std::isfinite(share)) {
    throw std::invalid_argument("PolicyTree::set_share: share must be finite");
  }
  const auto segments = split_path(path);
  if (segments.empty()) throw std::invalid_argument("PolicyTree::set_share: empty path");
  Node* node = &root_;
  for (const auto& segment : segments) {
    Node* child = node->find_child(segment);
    if (child == nullptr) {
      node->children.push_back(Node{segment, 1.0, false, {}});
      child = &node->children.back();
    }
    node = child;
  }
  node->share = share;
}

void PolicyTree::remove(const std::string& path) {
  const auto segments = split_path(path);
  if (segments.empty()) return;
  Node* node = &root_;
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    node = node->find_child(segments[i]);
    if (node == nullptr) return;
  }
  auto& children = node->children;
  children.erase(std::remove_if(children.begin(), children.end(),
                                [&](const Node& c) { return c.name == segments.back(); }),
                 children.end());
}

void PolicyTree::mount(const std::string& path, const PolicyTree& sub_policy, double share) {
  set_share(path, share);
  const auto segments = split_path(path);
  Node* node = &root_;
  for (const auto& segment : segments) node = node->find_child(segment);
  node->children = sub_policy.root().children;
  node->mounted = true;
}

const PolicyTree::Node* PolicyTree::find(const std::string& path) const {
  const auto segments = split_path(path);
  const Node* node = &root_;
  for (const auto& segment : segments) {
    node = node->find_child(segment);
    if (node == nullptr) return nullptr;
  }
  return node;
}

std::optional<double> PolicyTree::normalized_share(const std::string& path) const {
  const auto segments = split_path(path);
  if (segments.empty()) return 1.0;
  const Node* parent = &root_;
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    parent = parent->find_child(segments[i]);
    if (parent == nullptr) return std::nullopt;
  }
  const Node* node = parent->find_child(segments.back());
  if (node == nullptr) return std::nullopt;
  double sibling_total = 0.0;
  for (const auto& sibling : parent->children) sibling_total += std::max(sibling.share, 0.0);
  if (sibling_total <= 0.0) return 0.0;
  return std::max(node->share, 0.0) / sibling_total;
}

namespace {
void collect_leaves(const PolicyTree::Node& node, std::vector<std::string>& prefix,
                    std::vector<std::string>& out) {
  if (node.leaf()) {
    out.push_back(join_path(prefix));
    return;
  }
  for (const auto& child : node.children) {
    prefix.push_back(child.name);
    collect_leaves(child, prefix, out);
    prefix.pop_back();
  }
}

int node_depth(const PolicyTree::Node& node) {
  int deepest = 0;
  for (const auto& child : node.children) deepest = std::max(deepest, 1 + node_depth(child));
  return deepest;
}

std::size_t count_nodes(const PolicyTree::Node& node) {
  std::size_t total = node.children.size();
  for (const auto& child : node.children) total += count_nodes(child);
  return total;
}

json::Value node_to_json(const PolicyTree::Node& node) {
  json::Object obj;
  obj["name"] = node.name;
  obj["share"] = node.share;
  if (node.mounted) obj["mounted"] = true;
  if (!node.children.empty()) {
    json::Array children;
    for (const auto& child : node.children) children.push_back(node_to_json(child));
    obj["children"] = std::move(children);
  }
  return json::Value(std::move(obj));
}

PolicyTree::Node node_from_json(const json::Value& value) {
  PolicyTree::Node node;
  node.name = value.get_string("name");
  node.share = value.get_number("share", 1.0);
  node.mounted = value.get_bool("mounted", false);
  if (const auto children = value.find("children")) {
    for (const auto& child : children->get().as_array()) {
      node.children.push_back(node_from_json(child));
    }
  }
  return node;
}
}  // namespace

std::vector<std::string> PolicyTree::leaf_paths() const {
  std::vector<std::string> out;
  std::vector<std::string> prefix;
  if (root_.leaf()) return out;  // empty tree has no users
  collect_leaves(root_, prefix, out);
  return out;
}

int PolicyTree::depth() const {
  return node_depth(root_);
}

std::size_t PolicyTree::node_count() const {
  return count_nodes(root_);
}

json::Value PolicyTree::to_json() const {
  return node_to_json(root_);
}

PolicyTree PolicyTree::from_json(const json::Value& value) {
  PolicyTree tree;
  PolicyTree::Node root = node_from_json(value);
  root.name = "/";
  tree.root_ = std::move(root);
  return tree;
}

}  // namespace aequus::core
