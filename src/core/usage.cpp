#include "core/usage.hpp"

#include <cmath>
#include <stdexcept>

#include "core/policy.hpp"

namespace aequus::core {

namespace {
/// Canonicalize a path: "/a//b/" -> "/a/b".
std::string canonical(const std::string& path) {
  return join_path(split_path(path));
}

/// True when `path` equals `prefix` or lies inside it.
bool in_subtree(const std::string& path, const std::string& prefix) {
  if (prefix == "/") return true;
  if (path == prefix) return true;
  return path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
         path[prefix.size()] == '/';
}
}  // namespace

void UsageTree::add(const std::string& path, double amount) {
  // NaN/inf would poison subtree sums (and NaN even slips past the
  // negative check), so reject both alongside negatives.
  if (!std::isfinite(amount) || amount < 0.0) {
    throw std::invalid_argument("UsageTree::add: amount must be finite and >= 0");
  }
  if (amount == 0.0) return;
  leaves_[canonical(path)] += amount;
}

void UsageTree::merge(const UsageTree& other) {
  for (const auto& [path, amount] : other.leaves_) leaves_[path] += amount;
}

void UsageTree::scale(double factor) {
  if (factor < 0.0) throw std::invalid_argument("UsageTree::scale: negative factor");
  for (auto& [path, amount] : leaves_) {
    (void)path;
    amount *= factor;
  }
}

double UsageTree::usage(const std::string& path) const {
  const std::string prefix = canonical(path);
  double total = 0.0;
  for (const auto& [leaf, amount] : leaves_) {
    if (in_subtree(leaf, prefix)) total += amount;
  }
  return total;
}

double UsageTree::normalized_usage(const std::string& path) const {
  const auto segments = split_path(path);
  if (segments.empty()) return leaves_.empty() ? 0.0 : 1.0;
  auto parent_segments = segments;
  parent_segments.pop_back();
  const double own = usage(path);
  const double parent = usage(join_path(parent_segments));
  if (parent <= 0.0) return 0.0;
  return own / parent;
}

double UsageTree::total() const {
  double sum = 0.0;
  for (const auto& [path, amount] : leaves_) {
    (void)path;
    sum += amount;
  }
  return sum;
}

json::Value UsageTree::to_json() const {
  json::Object obj;
  for (const auto& [path, amount] : leaves_) obj[path] = amount;
  return json::Value(std::move(obj));
}

UsageTree UsageTree::from_json(const json::Value& value) {
  UsageTree tree;
  for (const auto& [path, amount] : value.as_object()) {
    tree.add(path, amount.as_number());
  }
  return tree;
}

}  // namespace aequus::core
