#include "core/fairshare.hpp"

#include <algorithm>
#include <stdexcept>

namespace aequus::core {

const FairshareTree::Node* FairshareTree::Node::find_child(const std::string& child_name) const {
  for (const auto& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

const FairshareTree::Node* FairshareTree::find(const std::string& path) const {
  const auto segments = split_path(path);
  const Node* node = &root_;
  for (const auto& segment : segments) {
    node = node->find_child(segment);
    if (node == nullptr) return nullptr;
  }
  return node;
}

std::optional<FairshareVector> FairshareTree::vector_for(const std::string& path) const {
  const auto segments = split_path(path);
  std::vector<double> values;
  const Node* node = &root_;
  for (const auto& segment : segments) {
    node = node->find_child(segment);
    if (node == nullptr) return std::nullopt;
    values.push_back(node->distance);
  }
  FairshareVector vector(std::move(values), resolution_);
  return vector.padded_to(static_cast<std::size_t>(depth()));
}

namespace {
void collect_leaves(const FairshareTree::Node& node, std::vector<std::string>& prefix,
                    std::vector<std::string>& out) {
  if (node.leaf()) {
    out.push_back(join_path(prefix));
    return;
  }
  for (const auto& child : node.children) {
    prefix.push_back(child.name);
    collect_leaves(child, prefix, out);
    prefix.pop_back();
  }
}

int node_depth(const FairshareTree::Node& node) {
  int deepest = 0;
  for (const auto& child : node.children) deepest = std::max(deepest, 1 + node_depth(child));
  return deepest;
}

json::Value node_to_json(const FairshareTree::Node& node) {
  json::Object obj;
  obj["name"] = node.name;
  obj["policy"] = node.policy_share;
  obj["usage"] = node.usage_share;
  obj["distance"] = node.distance;
  if (!node.children.empty()) {
    json::Array children;
    for (const auto& child : node.children) children.push_back(node_to_json(child));
    obj["children"] = std::move(children);
  }
  return json::Value(std::move(obj));
}

FairshareTree::Node node_from_json(const json::Value& value) {
  FairshareTree::Node node;
  node.name = value.get_string("name");
  node.policy_share = value.get_number("policy");
  node.usage_share = value.get_number("usage");
  node.distance = value.get_number("distance");
  if (const auto children = value.find("children")) {
    for (const auto& child : children->get().as_array()) {
      node.children.push_back(node_from_json(child));
    }
  }
  return node;
}
}  // namespace

std::vector<std::string> FairshareTree::user_paths() const {
  std::vector<std::string> out;
  std::vector<std::string> prefix;
  if (root_.leaf()) return out;
  collect_leaves(root_, prefix, out);
  return out;
}

int FairshareTree::depth() const {
  return node_depth(root_);
}

json::Value FairshareTree::to_json() const {
  json::Object obj;
  obj["resolution"] = resolution_;
  obj["tree"] = node_to_json(root_);
  return json::Value(std::move(obj));
}

FairshareTree FairshareTree::from_json(const json::Value& value) {
  FairshareTree tree;
  tree.resolution_ = static_cast<int>(value.get_number("resolution", kDefaultResolution));
  tree.root_ = node_from_json(value.at("tree"));
  return tree;
}

json::Value to_json(const FairshareConfig& config) {
  json::Object obj;
  obj["k"] = config.distance_weight_k;
  obj["resolution"] = config.resolution;
  return json::Value(std::move(obj));
}


FairshareAlgorithm::FairshareAlgorithm(FairshareConfig config) : config_(config) {
  if (config_.distance_weight_k < 0.0 || config_.distance_weight_k > 1.0) {
    throw std::invalid_argument("FairshareAlgorithm: k must be in [0, 1]");
  }
  if (config_.resolution < 2) {
    throw std::invalid_argument("FairshareAlgorithm: resolution must be >= 2");
  }
}

namespace {
/// Clamp a share into [0, 1]. NaN and negatives become 0 so that a
/// corrupt share can never divide the relative distance into NaN (which
/// the json serializer rejects); valid shares pass through with their
/// exact bits.
double canonical_share(double share) noexcept {
  if (!(share > 0.0)) return 0.0;
  return std::min(share, 1.0);
}
}  // namespace

double FairshareAlgorithm::node_distance(double policy_share, double usage_share) const noexcept {
  const double k = config_.distance_weight_k;
  const double p = canonical_share(policy_share);
  const double u = canonical_share(usage_share);
  const double absolute = p - u;
  double relative = 0.0;
  if (p > 0.0) {
    relative = std::clamp((p - u) / p, -1.0, 1.0);
  } else if (u > 0.0) {
    relative = -1.0;  // consuming with no allocation: maximal over-use
  }
  return k * relative + (1.0 - k) * absolute;
}

}  // namespace aequus::core

aequus::core::FairshareConfig aequus::json::Decoder<aequus::core::FairshareConfig>::decode(
    const Value& value) {
  aequus::core::FairshareConfig config;
  config.distance_weight_k = value.get_number("k", config.distance_weight_k);
  config.resolution = static_cast<int>(value.get_number("resolution", config.resolution));
  return config;
}
