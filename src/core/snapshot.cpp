#include "core/snapshot.hpp"

#include <algorithm>

namespace aequus::core {

namespace {

const FairshareSnapshot::Node& empty_root() {
  static const FairshareSnapshot::Node node{std::string(1, '/'), 1.0, 0.0, 0.0, {}};
  return node;
}

void collect_leaves(const FairshareSnapshot::Node& node, std::vector<std::string>& prefix,
                    std::vector<std::string>& out) {
  if (node.leaf()) {
    out.push_back(join_path(prefix));
    return;
  }
  for (const auto& child : node.children) {
    prefix.push_back(child->name);
    collect_leaves(*child, prefix, out);
    prefix.pop_back();
  }
}

json::Value node_to_json(const FairshareSnapshot::Node& node) {
  json::Object obj;
  obj["name"] = node.name;
  obj["policy"] = node.policy_share;
  obj["usage"] = node.usage_share;
  obj["distance"] = node.distance;
  if (!node.children.empty()) {
    json::Array children;
    for (const auto& child : node.children) children.push_back(node_to_json(*child));
    obj["children"] = std::move(children);
  }
  return json::Value(std::move(obj));
}

std::shared_ptr<const FairshareSnapshot::Node> node_from_json(const json::Value& value) {
  auto node = std::make_shared<FairshareSnapshot::Node>();
  node->name = value.get_string("name");
  node->policy_share = value.get_number("policy");
  node->usage_share = value.get_number("usage");
  node->distance = value.get_number("distance");
  if (const auto children = value.find("children")) {
    for (const auto& child : children->get().as_array()) {
      node->children.push_back(node_from_json(child));
    }
  }
  return node;
}

int node_depth(const FairshareSnapshot::Node& node) {
  int deepest = 0;
  for (const auto& child : node.children) {
    deepest = std::max(deepest, 1 + node_depth(*child));
  }
  return deepest;
}

void copy_to_tree(const FairshareSnapshot::Node& from, FairshareTree::Node& to) {
  to.name = from.name;
  to.policy_share = from.policy_share;
  to.usage_share = from.usage_share;
  to.distance = from.distance;
  to.children.resize(from.children.size());
  for (std::size_t i = 0; i < from.children.size(); ++i) {
    copy_to_tree(*from.children[i], to.children[i]);
  }
}

}  // namespace

const FairshareSnapshot::Node* FairshareSnapshot::Node::find_child(
    const std::string& child_name) const {
  for (const auto& child : children) {
    if (child->name == child_name) return child.get();
  }
  return nullptr;
}

FairshareSnapshot::FairshareSnapshot(std::shared_ptr<const Node> root, std::uint64_t generation,
                                     int resolution, int depth)
    : root_(std::move(root)), generation_(generation), resolution_(resolution), depth_(depth) {}

FairshareSnapshotPtr FairshareSnapshot::with_factors(const FairshareSnapshotPtr& base,
                                                     std::map<std::string, double> path_factors,
                                                     std::map<std::string, double> user_factors) {
  auto enriched = std::make_shared<FairshareSnapshot>(*base);
  enriched->path_factors_ = std::move(path_factors);
  enriched->user_factors_ = std::move(user_factors);
  return enriched;
}

const FairshareSnapshot::Node& FairshareSnapshot::root() const noexcept {
  return root_ != nullptr ? *root_ : empty_root();
}

const FairshareSnapshot::Node* FairshareSnapshot::find(const std::string& path) const {
  const auto segments = split_path(path);
  const Node* node = &root();
  for (const auto& segment : segments) {
    node = node->find_child(segment);
    if (node == nullptr) return nullptr;
  }
  return node;
}

std::optional<FairshareVector> FairshareSnapshot::vector_for(const std::string& path) const {
  const auto segments = split_path(path);
  std::vector<double> values;
  const Node* node = &root();
  for (const auto& segment : segments) {
    node = node->find_child(segment);
    if (node == nullptr) return std::nullopt;
    values.push_back(node->distance);
  }
  FairshareVector vector(std::move(values), resolution_);
  return vector.padded_to(static_cast<std::size_t>(depth_));
}

std::vector<std::string> FairshareSnapshot::user_paths() const {
  std::vector<std::string> out;
  std::vector<std::string> prefix;
  if (root().leaf()) return out;
  collect_leaves(root(), prefix, out);
  return out;
}

double FairshareSnapshot::factor_for(const std::string& user) const {
  if (const auto it = user_factors_.find(user); it != user_factors_.end()) return it->second;
  if (const auto it = path_factors_.find(user); it != path_factors_.end()) return it->second;
  // Absent leaf (e.g. a user churned in after this generation was cut):
  // the documented neutral resolution, never a priority-zeroing 0.0.
  return kNeutralFactor;
}

FairshareTree FairshareSnapshot::to_tree() const {
  FairshareTree tree;
  tree.resolution_ = resolution_;
  copy_to_tree(root(), tree.root_);
  return tree;
}

json::Value FairshareSnapshot::tree_to_json() const {
  json::Object obj;
  obj["resolution"] = resolution_;
  obj["tree"] = node_to_json(root());
  return json::Value(std::move(obj));
}

json::Value FairshareSnapshot::to_json(bool include_tree) const {
  json::Object obj;
  obj["generation"] = static_cast<double>(generation_);
  obj["resolution"] = resolution_;
  json::Object users;
  for (const auto& [user, factor] : user_factors_) users[user] = factor;
  obj["users"] = std::move(users);
  if (!path_factors_.empty()) {
    json::Object paths;
    for (const auto& [path, factor] : path_factors_) paths[path] = factor;
    obj["paths"] = std::move(paths);
  }
  if (include_tree && root_ != nullptr) {
    obj["tree"] = node_to_json(*root_);
  }
  return json::Value(std::move(obj));
}

FairshareSnapshotPtr FairshareSnapshot::from_json(const json::Value& value) {
  auto snapshot = std::make_shared<FairshareSnapshot>();
  snapshot->generation_ = static_cast<std::uint64_t>(value.get_number("generation", 0.0));
  snapshot->resolution_ =
      static_cast<int>(value.get_number("resolution", kDefaultResolution));
  if (const auto users = value.find("users")) {
    for (const auto& [user, factor] : users->get().as_object()) {
      snapshot->user_factors_[user] = factor.as_number();
    }
  }
  if (const auto paths = value.find("paths")) {
    for (const auto& [path, factor] : paths->get().as_object()) {
      snapshot->path_factors_[path] = factor.as_number();
    }
  }
  if (const auto tree = value.find("tree")) {
    snapshot->root_ = node_from_json(tree->get());
    snapshot->depth_ = node_depth(*snapshot->root_);
  }
  return snapshot;
}

}  // namespace aequus::core
