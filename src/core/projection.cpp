#include "core/projection.hpp"

#include <algorithm>
#include <stdexcept>
#include <cmath>
#include <vector>

namespace aequus::core {

std::string to_string(ProjectionKind kind) {
  switch (kind) {
    case ProjectionKind::kDictionaryOrdering: return "dictionary";
    case ProjectionKind::kBitwiseVector: return "bitwise";
    case ProjectionKind::kPercental: return "percental";
  }
  return "?";
}

ProjectionKind projection_kind_from_string(const std::string& name) {
  if (name == "dictionary") return ProjectionKind::kDictionaryOrdering;
  if (name == "bitwise") return ProjectionKind::kBitwiseVector;
  if (name == "percental") return ProjectionKind::kPercental;
  throw std::invalid_argument("unknown projection kind: " + name);
}

json::Value to_json(const ProjectionConfig& config) {
  json::Object obj;
  obj["kind"] = to_string(config.kind);
  obj["bits_per_level"] = config.bits_per_level;
  return json::Value(std::move(obj));
}

namespace {

// The projections only need user_paths()/vector_for()/depth()/root() and
// a find_child()-capable node, so one template body serves both the batch
// FairshareTree and the engine's FairshareSnapshot — identical arithmetic,
// identical factors.

template <typename Tree>
std::map<std::string, double> project_dictionary(const Tree& tree) {
  struct Entry {
    std::string path;
    FairshareVector vector;
  };
  std::vector<Entry> entries;
  for (const auto& path : tree.user_paths()) {
    entries.push_back({path, *tree.vector_for(path)});
  }
  // Descending sort: best vector first. Stable order for equal vectors.
  std::stable_sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.vector.compare(b.vector) == std::strong_ordering::greater;
  });
  std::map<std::string, double> out;
  const double n = static_cast<double>(entries.size());
  for (std::size_t rank = 0; rank < entries.size(); ++rank) {
    out[entries[rank].path] = (n - static_cast<double>(rank)) / (n + 1.0);
  }
  return out;
}

template <typename Tree>
std::map<std::string, double> project_bitwise(const Tree& tree, int bits_per_level) {
  // A double's 52-bit mantissa bounds the usable depth: extra levels are
  // truncated (the "finite depth" trade-off of Table I).
  const int max_levels = std::max(1, 52 / std::max(bits_per_level, 1));
  const auto level_count = static_cast<std::size_t>(std::min(tree.depth(), max_levels));
  const double bucket_count = std::exp2(bits_per_level);
  double scale = 1.0;
  for (std::size_t i = 0; i < level_count; ++i) scale *= bucket_count;

  std::map<std::string, double> out;
  for (const auto& path : tree.user_paths()) {
    const FairshareVector vector = *tree.vector_for(path);
    double merged = 0.0;
    for (std::size_t level = 0; level < level_count; ++level) {
      const double raw = level < vector.depth() ? vector.values()[level] : 0.0;
      // Quantize [-1, 1] into [0, 2^bits - 1].
      double bucket = std::floor((raw + 1.0) / 2.0 * bucket_count);
      bucket = std::clamp(bucket, 0.0, bucket_count - 1.0);
      merged = merged * bucket_count + bucket;
    }
    out[path] = scale > 1.0 ? merged / (scale - 1.0) : 0.0;
  }
  return out;
}

template <typename Tree>
double percental_value_impl(const Tree& tree, const std::string& path) {
  const auto segments = split_path(path);
  const auto* node = &tree.root();
  double target = 1.0;
  double usage = 1.0;
  for (const auto& segment : segments) {
    node = node->find_child(segment);
    if (node == nullptr) return 0.5;
    target *= node->policy_share;
    usage *= node->usage_share;
  }
  return std::clamp((target - usage + 1.0) / 2.0, 0.0, 1.0);
}

template <typename Tree>
std::map<std::string, double> project_percental(const Tree& tree) {
  std::map<std::string, double> out;
  for (const auto& path : tree.user_paths()) {
    out[path] = percental_value_impl(tree, path);
  }
  return out;
}

template <typename Tree>
std::map<std::string, double> project_impl(const Tree& tree, const ProjectionConfig& config) {
  switch (config.kind) {
    case ProjectionKind::kDictionaryOrdering: return project_dictionary(tree);
    case ProjectionKind::kBitwiseVector: return project_bitwise(tree, config.bits_per_level);
    case ProjectionKind::kPercental: return project_percental(tree);
  }
  return {};
}

}  // namespace

double percental_value(const FairshareTree& tree, const std::string& path) {
  return percental_value_impl(tree, path);
}

double percental_value(const FairshareSnapshot& snapshot, const std::string& path) {
  return percental_value_impl(snapshot, path);
}

std::map<std::string, double> project(const FairshareTree& tree,
                                      const ProjectionConfig& config) {
  return project_impl(tree, config);
}

std::map<std::string, double> project(const FairshareSnapshot& snapshot,
                                      const ProjectionConfig& config) {
  return project_impl(snapshot, config);
}

}  // namespace aequus::core

aequus::core::ProjectionConfig aequus::json::Decoder<aequus::core::ProjectionConfig>::decode(
    const Value& value) {
  aequus::core::ProjectionConfig config;
  config.kind = aequus::core::projection_kind_from_string(
      value.get_string("kind", aequus::core::to_string(config.kind)));
  config.bits_per_level =
      static_cast<int>(value.get_number("bits_per_level", config.bits_per_level));
  return config;
}
