#include "core/projection.hpp"

#include <algorithm>
#include <stdexcept>
#include <cmath>
#include <vector>

namespace aequus::core {

std::string to_string(ProjectionKind kind) {
  switch (kind) {
    case ProjectionKind::kDictionaryOrdering: return "dictionary";
    case ProjectionKind::kBitwiseVector: return "bitwise";
    case ProjectionKind::kPercental: return "percental";
  }
  return "?";
}

ProjectionKind projection_kind_from_string(const std::string& name) {
  if (name == "dictionary") return ProjectionKind::kDictionaryOrdering;
  if (name == "bitwise") return ProjectionKind::kBitwiseVector;
  if (name == "percental") return ProjectionKind::kPercental;
  throw std::invalid_argument("unknown projection kind: " + name);
}

json::Value to_json(const ProjectionConfig& config) {
  json::Object obj;
  obj["kind"] = to_string(config.kind);
  obj["bits_per_level"] = config.bits_per_level;
  return json::Value(std::move(obj));
}

namespace {

// The projections only need user_paths()/vector_for()/depth()/root() and
// a find_child()-capable node, so one template body serves both the batch
// FairshareTree and the engine's FairshareSnapshot — identical arithmetic,
// identical factors.

template <typename Tree>
std::map<std::string, double> project_dictionary(const Tree& tree) {
  struct Entry {
    std::string path;
    FairshareVector vector;
  };
  std::vector<Entry> entries;
  for (const auto& path : tree.user_paths()) {
    entries.push_back({path, *tree.vector_for(path)});
  }
  // Descending sort: best vector first. Stable order for equal vectors.
  std::stable_sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.vector.compare(b.vector) == std::strong_ordering::greater;
  });
  std::map<std::string, double> out;
  const double n = static_cast<double>(entries.size());
  for (std::size_t rank = 0; rank < entries.size(); ++rank) {
    out[entries[rank].path] = (n - static_cast<double>(rank)) / (n + 1.0);
  }
  return out;
}

template <typename Tree>
std::map<std::string, double> project_bitwise(const Tree& tree, int bits_per_level) {
  // A double's 52-bit mantissa bounds the usable depth: extra levels are
  // truncated (the "finite depth" trade-off of Table I).
  const int max_levels = std::max(1, 52 / std::max(bits_per_level, 1));
  const auto level_count = static_cast<std::size_t>(std::min(tree.depth(), max_levels));
  const double bucket_count = std::exp2(bits_per_level);
  double scale = 1.0;
  for (std::size_t i = 0; i < level_count; ++i) scale *= bucket_count;

  struct Entry {
    std::string path;
    FairshareVector vector;
    double merged = 0.0;
  };
  std::vector<Entry> entries;
  for (const auto& path : tree.user_paths()) {
    Entry entry{path, *tree.vector_for(path)};
    for (std::size_t level = 0; level < level_count; ++level) {
      const double raw = level < entry.vector.depth() ? entry.vector.values()[level] : 0.0;
      // Quantize [-1, 1] into [0, 2^bits - 1].
      double bucket = std::floor((raw + 1.0) / 2.0 * bucket_count);
      bucket = std::clamp(bucket, 0.0, bucket_count - 1.0);
      entry.merged = entry.merged * bucket_count + bucket;
    }
    entries.push_back(std::move(entry));
  }

  // Quantization can map *distinct* vectors to the same merged code
  // (coarse bits_per_level, or levels truncated past the mantissa),
  // which used to silently merge their factors. Group by code and
  // disambiguate collisions with sub-code fractions: the best collider
  // of a non-zero code keeps the undisturbed factor and the rest shift
  // down within (merged - 1, merged], so ordering across non-zero codes
  // is untouched. Code 0 spreads up instead (factors stay in [0, 1]),
  // bounded strictly below the smallest fraction handed out in the next
  // occupied code's group so the two spreads can never meet or invert
  // even when adjacent codes both collide. Equal vectors still get equal
  // factors, and a collision-free code keeps the exact old factor.
  std::map<double, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    groups[entries[i].merged].push_back(i);
  }

  // Pass 1: per group, rank the distinct vectors ascending (worst first).
  struct Group {
    double merged = 0.0;
    std::vector<std::size_t> members;
    std::vector<std::size_t> rank;
    std::size_t distinct = 1;
  };
  std::vector<Group> ordered;
  ordered.reserve(groups.size());
  for (auto& [merged, members] : groups) {
    Group group;
    group.merged = merged;
    group.members = std::move(members);
    std::stable_sort(group.members.begin(), group.members.end(),
                     [&](std::size_t a, std::size_t b) {
                       return entries[a].vector.compare(entries[b].vector) ==
                              std::strong_ordering::less;
                     });
    group.rank.assign(group.members.size(), 0);
    for (std::size_t i = 1; i < group.members.size(); ++i) {
      if (entries[group.members[i]].vector.compare(entries[group.members[i - 1]].vector) !=
          std::strong_ordering::equal) {
        ++group.distinct;
      }
      group.rank[i] = group.distinct - 1;
    }
    ordered.push_back(std::move(group));
  }

  // Pass 2: assign factors. Groups are in ascending code order, so the
  // code-0 group (if present) is first and can see its successor.
  std::map<std::string, double> out;
  for (std::size_t g = 0; g < ordered.size(); ++g) {
    const Group& group = ordered[g];
    const double merged = group.merged;
    const double share = static_cast<double>(group.distinct);
    // Ceiling for code 0's up-spread, in merged units: the smallest
    // fraction the next occupied code's group will receive. That group
    // spreads down within (next - 1, next], bottoming out at
    // next - (next_distinct - 1) / next_distinct > next - 1 >= 0, so the
    // ceiling is positive and the up-spread below it stays ordered
    // under the successor even when both groups collide. The arithmetic
    // lives near magnitude 0..1 where doubles have precision to spare.
    double ceiling = 1.0;
    if (merged == 0.0 && group.distinct > 1 && g + 1 < ordered.size()) {
      const Group& next = ordered[g + 1];
      const double next_share = static_cast<double>(next.distinct);
      ceiling = std::min(1.0, next.merged - (next_share - 1.0) / next_share);
    }
    for (std::size_t i = 0; i < group.members.size(); ++i) {
      const Entry& entry = entries[group.members[i]];
      double factor;
      if (scale <= 1.0) {
        factor = 0.0;  // zero usable levels: nothing to disambiguate with
      } else if (group.distinct == 1) {
        factor = merged / (scale - 1.0);  // no collision: bit-identical to before
      } else if (merged > 0.0) {
        const double frac = (static_cast<double>(group.rank[i]) - (share - 1.0)) / share;
        factor = (merged + frac) / (scale - 1.0);
      } else {
        const double frac = static_cast<double>(group.rank[i]) / share * ceiling;
        factor = frac / (scale - 1.0);
      }
      out[entry.path] = factor;
    }
  }
  return out;
}

template <typename Tree>
double percental_value_impl(const Tree& tree, const std::string& path) {
  const auto segments = split_path(path);
  const auto* node = &tree.root();
  double target = 1.0;
  double usage = 1.0;
  for (const auto& segment : segments) {
    node = node->find_child(segment);
    if (node == nullptr) return kNeutralFactor;
    target *= node->policy_share;
    usage *= node->usage_share;
  }
  return std::clamp((target - usage + 1.0) / 2.0, 0.0, 1.0);
}

template <typename Tree>
std::map<std::string, double> project_percental(const Tree& tree) {
  std::map<std::string, double> out;
  for (const auto& path : tree.user_paths()) {
    out[path] = percental_value_impl(tree, path);
  }
  return out;
}

template <typename Tree>
std::map<std::string, double> project_impl(const Tree& tree, const ProjectionConfig& config) {
  switch (config.kind) {
    case ProjectionKind::kDictionaryOrdering: return project_dictionary(tree);
    case ProjectionKind::kBitwiseVector: return project_bitwise(tree, config.bits_per_level);
    case ProjectionKind::kPercental: return project_percental(tree);
  }
  return {};
}

}  // namespace

double percental_value(const FairshareTree& tree, const std::string& path) {
  return percental_value_impl(tree, path);
}

double percental_value(const FairshareSnapshot& snapshot, const std::string& path) {
  return percental_value_impl(snapshot, path);
}

std::map<std::string, double> project(const FairshareTree& tree,
                                      const ProjectionConfig& config) {
  return project_impl(tree, config);
}

std::map<std::string, double> project(const FairshareSnapshot& snapshot,
                                      const ProjectionConfig& config) {
  return project_impl(snapshot, config);
}

}  // namespace aequus::core

aequus::core::ProjectionConfig aequus::json::Decoder<aequus::core::ProjectionConfig>::decode(
    const Value& value) {
  aequus::core::ProjectionConfig config;
  config.kind = aequus::core::projection_kind_from_string(
      value.get_string("kind", aequus::core::to_string(config.kind)));
  config.bits_per_level =
      static_cast<int>(value.get_number("bits_per_level", config.bits_per_level));
  return config;
}
