// Dense string interning for the engine hot paths.
//
// An IdTable maps strings (leaf paths, node name segments) to dense
// uint32_t ids in first-insertion order and back. Ids are stable for the
// table's lifetime and index straight into structure-of-arrays storage
// (see arena.hpp), so everything past the API boundary works on integers
// and contiguous arrays instead of string-keyed maps — the same
// discipline as the obs tracer's site/component interning, but with an
// open-addressing index so a hot-path lookup is one hash, one probe
// chain over a flat uint32 slot array, and at most one string compare
// per probe. Insertion order is deterministic, which keeps every
// consumer (snapshots, fingerprints, iteration) replayable.
//
// Single-writer like the engine that owns it; lookups are const.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aequus::core {

class IdTable {
 public:
  static constexpr std::uint32_t kNoId = 0xffffffffu;

  IdTable() { rehash(16); }

  /// Id of `text`, inserting it on first sight. Ids are dense and
  /// assigned in insertion order: the n-th distinct string gets id n.
  std::uint32_t intern(std::string_view text) {
    const std::uint64_t h = hash(text);
    std::size_t slot = probe(h, text);
    if (slots_[slot] != kNoId) return slots_[slot];
    const auto id = static_cast<std::uint32_t>(strings_.size());
    strings_.emplace_back(text);
    slots_[slot] = id;
    if (strings_.size() * 10 >= slots_.size() * 7) {  // load factor 0.7
      rehash(slots_.size() * 2);
    }
    return id;
  }

  /// Id of `text`, or kNoId when it was never interned. Allocation-free.
  [[nodiscard]] std::uint32_t find(std::string_view text) const noexcept {
    return slots_[probe(hash(text), text)];
  }

  [[nodiscard]] const std::string& operator[](std::uint32_t id) const noexcept {
    return strings_[id];
  }
  [[nodiscard]] std::size_t size() const noexcept { return strings_.size(); }

  void reserve(std::size_t count) {
    strings_.reserve(count);
    std::size_t want = 16;
    while (want * 7 < count * 10) want *= 2;
    if (want > slots_.size()) rehash(want);
  }

 private:
  [[nodiscard]] static std::uint64_t hash(std::string_view text) noexcept {
    // FNV-1a: no seeding, so table layout is a pure function of the
    // insertion sequence (determinism contract).
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : text) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return h;
  }

  /// First slot that holds `text`'s id or is empty (linear probing over a
  /// power-of-two table).
  [[nodiscard]] std::size_t probe(std::uint64_t h, std::string_view text) const noexcept {
    std::size_t slot = static_cast<std::size_t>(h) & mask_;
    while (slots_[slot] != kNoId && strings_[slots_[slot]] != text) {
      slot = (slot + 1) & mask_;
    }
    return slot;
  }

  void rehash(std::size_t slot_count) {
    slots_.assign(slot_count, kNoId);
    mask_ = slot_count - 1;
    for (std::uint32_t id = 0; id < strings_.size(); ++id) {
      std::size_t slot = static_cast<std::size_t>(hash(strings_[id])) & mask_;
      while (slots_[slot] != kNoId) slot = (slot + 1) & mask_;
      slots_[slot] = id;
    }
  }

  std::vector<std::string> strings_;   ///< id -> text, insertion order
  std::vector<std::uint32_t> slots_;   ///< open-addressing index into strings_
  std::size_t mask_ = 0;
};

}  // namespace aequus::core
