// The pluggable fairness-backend seam (DESIGN.md §6j).
//
// A FairnessBackend owns the priority computation behind the FCS: it
// consumes policy trees and (decayed) usage, and publishes immutable,
// generation-stamped FairshareSnapshots that schedulers read through
// rms::PriorityContext. The arena FairshareEngine is the default
// `aequus` backend and keeps its bit-identity contract; alternative
// policies from the related work — balanced fairness (Bonald & Comte)
// and credit-based online fairness (Zahedi & Freeman) — implement the
// same interface on the same arena/SoA storage (see backends.hpp), so
// the whole scenario catalog, invariant gates, and bench baselines can
// compare fairness policies under identical workloads.
//
// Backends are registered in a string-keyed factory; selection threads
// through services::FcsConfig, the testbed ExperimentConfig, and the
// scenario `fairness:` key.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/decay.hpp"
#include "core/fairshare.hpp"
#include "core/policy.hpp"
#include "core/projection.hpp"
#include "core/snapshot.hpp"
#include "core/usage.hpp"

namespace aequus::core {

/// One usage report: `amount` (>= 0) core-seconds for the user leaf at
/// `user_path`, recorded in the time bin at `bin_time`.
struct UsageSample {
  std::string user_path;
  double amount = 0.0;
  double bin_time = 0.0;
};

/// Snapshot-producing fairness computation. Single writer / many
/// readers, exactly like FairshareEngine: all mutators and publish()
/// belong to one thread; current() is safe from any thread.
class FairnessBackend {
 public:
  virtual ~FairnessBackend() = default;

  /// Registry key of this backend ("aequus", "balanced", "credit").
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Swap the policy tree (structurally diffed where the backend can).
  virtual void set_policy(const PolicyTree& policy) = 0;

  /// Replace the usage state wholesale with externally decayed per-leaf
  /// values (the poll-mode FCS path: the UMS already applied decay).
  virtual void set_usage(const UsageTree& decayed) = 0;

  /// Add one usage delta; the backend applies its own decay at the
  /// current decay epoch (the push-mode ingest path).
  virtual void apply_usage(const std::string& user_path, double amount,
                           double bin_time) = 0;

  /// Apply a batch of deltas as one logical transaction. The default
  /// loops apply_usage in order.
  virtual void apply_usage_batch(const std::vector<UsageSample>& samples);

  /// Re-evaluate decayed usage at epoch `now` (push-mode path).
  virtual void set_decay_epoch(double now) = 0;
  virtual void set_decay(DecayConfig decay) = 0;

  /// Swap the distance algorithm parameters (k, resolution).
  virtual void set_config(FairshareConfig config) = 0;

  /// Advance backend-local time to `now`. Time-dependent policies
  /// (credit accrual) integrate their state here; stateless backends
  /// ignore it. Default: no-op.
  virtual void advance_time(double now);

  /// Recompute what the mutations since the last publish can have
  /// changed and return the latest snapshot, bumping the generation
  /// only when a published value changed. Writer-side only.
  [[nodiscard]] virtual FairshareSnapshotPtr publish() = 0;

  /// Latest published snapshot (null before the first publish); safe
  /// from any thread concurrently with the single writer.
  [[nodiscard]] virtual FairshareSnapshotPtr current() const = 0;

  /// Generation of the latest published snapshot (0 before the first).
  [[nodiscard]] virtual std::uint64_t generation() const noexcept = 0;

  /// Project a published snapshot to per-user priority factors
  /// (policy leaf path -> factor in [0, 1]). The default applies
  /// core::project(); backends whose signal lives outside the
  /// policy/usage share products (credit banks ride in the distance
  /// channel) override the percental case.
  [[nodiscard]] virtual std::map<std::string, double> project_factors(
      const FairshareSnapshot& snapshot, const ProjectionConfig& config) const;
};

/// Backend selection + per-policy tuning, as carried by FcsConfig and
/// the experiment/scenario `fairness:` key.
struct FairnessBackendConfig {
  std::string name = "aequus";
  /// credit: seconds of sustained full-share imbalance to accrue one
  /// unit of (clamped) credit distance.
  double credit_refresh_s = 3600.0;
  /// credit: bank clamp, in units of fairshare distance ([-cap, cap]).
  double credit_cap = 1.0;
};

/// Wire format: {"backend": "credit", "credit_refresh_s": 3600,
/// "credit_cap": 1}.
[[nodiscard]] json::Value to_json(const FairnessBackendConfig& config);

using FairnessBackendFactory = std::function<std::unique_ptr<FairnessBackend>(
    const FairnessBackendConfig& config, FairshareConfig fairshare, DecayConfig decay)>;

/// Register (or replace) a backend under `name`.
void register_fairness_backend(const std::string& name, FairnessBackendFactory factory);

/// Registered backend names, sorted. Always contains the built-ins
/// ("aequus", "balanced", "credit").
[[nodiscard]] std::vector<std::string> fairness_backend_names();

[[nodiscard]] bool fairness_backend_known(const std::string& name);

/// Instantiate the backend `config.name` refers to; throws
/// std::invalid_argument naming the unknown backend otherwise.
[[nodiscard]] std::unique_ptr<FairnessBackend> make_fairness_backend(
    const FairnessBackendConfig& config, FairshareConfig fairshare = {},
    DecayConfig decay = {});

}  // namespace aequus::core

/// json::decode<core::FairnessBackendConfig> support. Accepts either a
/// bare backend-name string or the object wire format; unknown backend
/// names are rejected here so every decode path gets the same error.
template <>
struct aequus::json::Decoder<aequus::core::FairnessBackendConfig> {
  [[nodiscard]] static aequus::core::FairnessBackendConfig decode(const Value& value);
};
