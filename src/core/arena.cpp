#include "core/arena.hpp"

#include <algorithm>

namespace aequus::core {

NodeArena::NodeArena() {
  // Root occupies id 0 with path "/". (assign() instead of a "/" literal
  // sidesteps GCC 12's -Wrestrict false positive, PR105651.)
  parent.push_back(kNoIndex);
  name.push_back(names.intern(std::string_view("/", 1)));
  path.emplace_back(1, '/');
  raw_share.push_back(0.0);
  policy_share.push_back(0.0);
  usage_share.push_back(0.0);
  distance.push_back(0.0);
  subtree_usage.push_back(0.0);
  flags.push_back(kSumStale | kChildrenDirty | kValueChanged);
  published.emplace_back();
  first_child_.push_back(0);
  child_count_.push_back(0);
}

NodeId NodeArena::create(NodeId parent_id, std::uint32_t name_id) {
  NodeId id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    id = static_cast<NodeId>(parent.size());
    parent.emplace_back();
    name.emplace_back();
    path.emplace_back();
    raw_share.emplace_back();
    policy_share.emplace_back();
    usage_share.emplace_back();
    distance.emplace_back();
    subtree_usage.emplace_back();
    flags.emplace_back();
    published.emplace_back();
    first_child_.emplace_back();
    child_count_.emplace_back();
  }
  parent[id] = parent_id;
  name[id] = name_id;
  const std::string& parent_path = path[parent_id];
  std::string& node_path = path[id];
  node_path.clear();
  if (parent_path.size() > 1) node_path = parent_path;
  node_path += '/';
  node_path += names[name_id];
  raw_share[id] = 0.0;
  policy_share[id] = 0.0;
  usage_share[id] = 0.0;
  distance[id] = 0.0;
  subtree_usage[id] = 0.0;
  // Same defaults as a fresh working-tree node: stale sum, dirty group,
  // value never published.
  flags[id] = kSumStale | kChildrenDirty | kValueChanged;
  published[id] = nullptr;
  first_child_[id] = 0;
  child_count_[id] = 0;
  return id;
}

void NodeArena::release_subtree(NodeId id) {
  const std::uint32_t first = first_child_[id];
  const std::uint32_t count = child_count_[id];
  for (std::uint32_t i = 0; i < count; ++i) {
    release_subtree(child_slots_[first + i]);
  }
  live_child_slots_ -= count;
  child_count_[id] = 0;
  published[id] = nullptr;
  free_.push_back(id);
}

void NodeArena::set_children(NodeId parent_id, const std::vector<NodeId>& children) {
  const auto count = static_cast<std::uint32_t>(children.size());
  live_child_slots_ -= child_count_[parent_id];
  if (count <= child_count_[parent_id]) {
    // Shrinking (or equal-size) groups rewrite their span in place.
    std::copy(children.begin(), children.end(),
              child_slots_.begin() + first_child_[parent_id]);
  } else {
    first_child_[parent_id] = static_cast<std::uint32_t>(child_slots_.size());
    child_slots_.insert(child_slots_.end(), children.begin(), children.end());
  }
  child_count_[parent_id] = count;
  live_child_slots_ += count;
  if (child_slots_.size() > 2 * live_child_slots_ + 1024) compact_children();
}

void NodeArena::compact_children() {
  std::vector<NodeId> next;
  next.reserve(live_child_slots_);
  for (NodeId id = 0; id < parent.size(); ++id) {
    const std::uint32_t first = first_child_[id];
    const std::uint32_t count = child_count_[id];
    first_child_[id] = static_cast<std::uint32_t>(next.size());
    next.insert(next.end(), child_slots_.begin() + first, child_slots_.begin() + first + count);
  }
  child_slots_ = std::move(next);
}

NodeId NodeArena::find_child(NodeId parent_id, std::uint32_t name_id) const noexcept {
  const NodeId* begin = children_begin(parent_id);
  const NodeId* end = begin + child_count_[parent_id];
  for (const NodeId* it = begin; it != end; ++it) {
    if (name[*it] == name_id) return *it;
  }
  return kNoIndex;
}

void NodeArena::mark_all_groups_dirty() {
  // Recycled ids are unreachable from the root, so flagging them too is
  // harmless (create() resets flags) and keeps this a flat sweep.
  for (auto& f : flags) f |= kChildrenDirty | kNeedsVisit;
}

LeafId LeafStore::intern(std::string_view canonical_path) {
  const LeafId id = paths_.intern(canonical_path);
  if (id == active_.size()) {  // first sight: grow every parallel array
    value_.push_back(0.0);
    active_.push_back(0);
    pos_.push_back(kNoIndex);
    bins.emplace_back();
    bin_epoch.push_back(0.0);
    bin_value.push_back(0.0);
    bin_cached.push_back(0);
    attach.push_back(kNoIndex);
    attach_epoch.push_back(0);
  }
  return id;
}

// activate/deactivate keep order_/order_value_ sorted and rewrite pos_
// for every element past the splice point, so mid-array churn costs
// O(active_count) per event. Benchmarks show this is dwarfed by the
// recompute it triggers; if churn-heavy workloads (decay-to-zero leaves
// reappearing) surface in profiles, a gap buffer or deferred reindex is
// the follow-up.
void LeafStore::activate(LeafId id, double leaf_value) {
  const std::string& leaf_path = paths_[id];
  const auto it = std::lower_bound(
      order_.begin(), order_.end(), leaf_path,
      [this](LeafId a, const std::string& p) { return paths_[a] < p; });
  const auto at = static_cast<std::size_t>(it - order_.begin());
  order_.insert(it, id);
  order_value_.insert(order_value_.begin() + static_cast<std::ptrdiff_t>(at), leaf_value);
  value_[id] = leaf_value;
  active_[id] = 1;
  for (std::size_t i = at; i < order_.size(); ++i) {
    pos_[order_[i]] = static_cast<std::uint32_t>(i);
  }
}

void LeafStore::deactivate(LeafId id) {
  const std::size_t at = pos_[id];
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(at));
  order_value_.erase(order_value_.begin() + static_cast<std::ptrdiff_t>(at));
  for (std::size_t i = at; i < order_.size(); ++i) {
    pos_[order_[i]] = static_cast<std::uint32_t>(i);
  }
  pos_[id] = kNoIndex;
  active_[id] = 0;
  value_[id] = 0.0;
}

double LeafStore::subtree_sum(const std::string& subtree_path) const {
  // Same matches in the same order as the old leaf_values_ map scan:
  // lower_bound to the first path >= the prefix, then a linear walk of
  // the prefix block with the '/'-boundary filter. The walk is over a
  // contiguous double array here instead of tree nodes.
  const auto it = std::lower_bound(
      order_.begin(), order_.end(), subtree_path,
      [this](LeafId a, const std::string& p) { return paths_[a] < p; });
  double total = 0.0;
  for (auto i = static_cast<std::size_t>(it - order_.begin()); i < order_.size(); ++i) {
    const std::string& leaf = paths_[order_[i]];
    if (leaf.compare(0, subtree_path.size(), subtree_path) != 0) break;
    if (leaf.size() == subtree_path.size() || leaf[subtree_path.size()] == '/') {
      total += order_value_[i];
    }
  }
  return total;
}

}  // namespace aequus::core
