#include "core/vector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace aequus::core {

FairshareVector::FairshareVector(std::vector<double> values, int resolution)
    : values_(std::move(values)), resolution_(resolution) {
  if (resolution < 2) throw std::invalid_argument("FairshareVector: resolution must be >= 2");
}

int FairshareVector::encode(double value, int resolution) {
  const double clamped = std::clamp(value, -1.0, 1.0);
  const double scaled = (clamped + 1.0) / 2.0 * static_cast<double>(resolution - 1);
  return static_cast<int>(std::lround(scaled));
}

int FairshareVector::balance_point(int resolution) {
  return encode(0.0, resolution);
}

std::vector<int> FairshareVector::encoded() const {
  std::vector<int> out;
  out.reserve(values_.size());
  for (double v : values_) out.push_back(encode(v, resolution_));
  return out;
}

FairshareVector FairshareVector::padded_to(std::size_t target_depth) const {
  FairshareVector padded = *this;
  while (padded.values_.size() < target_depth) padded.values_.push_back(0.0);
  return padded;
}

std::strong_ordering FairshareVector::compare(const FairshareVector& other) const {
  // Raw (full-precision) element comparison: the vectors' "unlimited
  // precision" property (Table I). The encoded form is for display and
  // wire transfer only. Missing levels compare as the balance value 0.
  const std::size_t depth = std::max(values_.size(), other.values_.size());
  for (std::size_t i = 0; i < depth; ++i) {
    const double a = i < values_.size() ? values_[i] : 0.0;
    const double b = i < other.values_.size() ? other.values_[i] : 0.0;
    if (a < b) return std::strong_ordering::less;
    if (a > b) return std::strong_ordering::greater;
  }
  return std::strong_ordering::equal;
}

std::string FairshareVector::to_string() const {
  std::string out;
  for (const int e : encoded()) {
    if (!out.empty()) out += '.';
    out += util::format("%04d", e);
  }
  return out;
}

}  // namespace aequus::core
