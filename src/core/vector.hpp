// Fairshare vectors (§III-C, Fig. 3).
//
// The fairshare value of a user is the vector of per-level fairshare
// distances along the path from the root to the user's leaf. Elements are
// encoded with a configurable resolution (the paper's example uses the
// range [0, 9999]); paths shorter than the tree depth are padded with the
// *balance point*, the center of the value range.
//
// Properties (Table I): arbitrary depth, unlimited precision, subgroup
// isolation (an element is affected only by its own sibling group), and
// proportionality.
#pragma once

#include <compare>
#include <string>
#include <vector>

namespace aequus::core {

/// Default element resolution: values encode into [0, 9999].
inline constexpr int kDefaultResolution = 10000;

/// Ordered per-level fairshare values for one user.
class FairshareVector {
 public:
  FairshareVector() = default;

  /// `values` are raw per-level distances in [-1, 1], root level first.
  explicit FairshareVector(std::vector<double> values, int resolution = kDefaultResolution);

  /// Raw distances, one per hierarchy level.
  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }

  [[nodiscard]] std::size_t depth() const noexcept { return values_.size(); }
  [[nodiscard]] int resolution() const noexcept { return resolution_; }

  /// Encoded elements in [0, resolution): e = round((v+1)/2 * (res-1)).
  [[nodiscard]] std::vector<int> encoded() const;

  /// Encode a single raw value.
  [[nodiscard]] static int encode(double value, int resolution = kDefaultResolution);

  /// The balance-point element (center of the range, raw value 0).
  [[nodiscard]] static int balance_point(int resolution = kDefaultResolution);

  /// Copy padded with balance-point levels up to `target_depth` (like /LQ
  /// in the paper's Figure 3 example).
  [[nodiscard]] FairshareVector padded_to(std::size_t target_depth) const;

  /// Lexicographic comparison of encoded elements, leftmost (top level)
  /// first. Greater compares as "higher priority".
  [[nodiscard]] std::strong_ordering compare(const FairshareVector& other) const;

  /// Dotted string of encoded elements, e.g. "7812.5000.6413".
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<double> values_;
  int resolution_ = kDefaultResolution;
};

}  // namespace aequus::core
