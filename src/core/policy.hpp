// Hierarchical, tree-based usage policies (§II-A).
//
// A policy tree defines the target usage share of every user, project, or
// VO. Shares are raw weights relative to siblings; the normalized share of
// a node is its weight divided by the sum of its siblings' weights.
// Sub-policies can be *mounted* into a locally administered root: "globally
// managed sub-policies can be dynamically mounted into a locally
// administered root node", letting a site hand, say, 30 % of its resources
// to a grid whose internal subdivision is managed elsewhere.
//
// Paths are '/'-separated, e.g. "/grid/projA/alice"; leaves are users.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace aequus::core {

/// Policy tree with named nodes and sibling-relative share weights.
class PolicyTree {
 public:
  struct Node {
    std::string name;
    double share = 1.0;          ///< raw weight relative to siblings
    bool mounted = false;        ///< root of a mounted sub-policy
    std::vector<Node> children;

    [[nodiscard]] const Node* find_child(const std::string& child_name) const;
    [[nodiscard]] Node* find_child(const std::string& child_name);
    [[nodiscard]] bool leaf() const noexcept { return children.empty(); }
  };

  PolicyTree();

  /// Set (or create) the node at `path` with the given share weight.
  /// Intermediate nodes are created with weight 1. Throws on empty path.
  void set_share(const std::string& path, double share);

  /// Remove the subtree at `path`. No-op when absent; root not removable.
  void remove(const std::string& path);

  /// Mount `sub_policy`'s children under a (new or existing) node at
  /// `path` carrying `share` weight among its siblings. Replaces any
  /// previous subtree at that path and marks the node as mounted.
  void mount(const std::string& path, const PolicyTree& sub_policy, double share);

  [[nodiscard]] const Node& root() const noexcept { return root_; }
  [[nodiscard]] const Node* find(const std::string& path) const;
  [[nodiscard]] bool contains(const std::string& path) const { return find(path) != nullptr; }

  /// Share of the node at `path` normalized among its siblings; nullopt
  /// when the path does not exist. The root's normalized share is 1.
  [[nodiscard]] std::optional<double> normalized_share(const std::string& path) const;

  /// All leaf paths (users), depth-first order.
  [[nodiscard]] std::vector<std::string> leaf_paths() const;

  /// Maximum depth in levels below the root (a flat user list is depth 1).
  [[nodiscard]] int depth() const;

  /// Total node count excluding the root.
  [[nodiscard]] std::size_t node_count() const;

  /// Wire format used by the PDS: {"name":..,"share":..,"children":[...]}.
  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static PolicyTree from_json(const json::Value& value);

 private:
  Node root_;
};

/// Split "/a/b/c" into {"a","b","c"}. Empty segments are dropped.
[[nodiscard]] std::vector<std::string> split_path(const std::string& path);

/// Join segments into "/a/b/c".
[[nodiscard]] std::string join_path(const std::vector<std::string>& segments);

}  // namespace aequus::core
