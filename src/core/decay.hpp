// Usage decay functions (§II-A): "configured with, e.g., different usage
// decay functions to control how the impact of previous usage is
// decreased over time".
//
// Usage arrives as time-binned histograms (from the USS). A decay
// function assigns each bin a weight based on its age; the effective
// usage is the weighted sum. Three families are provided:
//   - exponential half-life: weight = 2^(-age / half_life)
//   - sliding window:        weight = 1 inside the window, 0 outside
//   - linear:                weight = max(0, 1 - age / window)
// plus no decay (weight = 1 everywhere).
#pragma once

#include <utility>
#include <vector>

#include "json/json.hpp"

namespace aequus::core {

enum class DecayKind { kNone, kExponentialHalfLife, kSlidingWindow, kLinear };

struct DecayConfig {
  DecayKind kind = DecayKind::kExponentialHalfLife;
  double half_life = 3600.0;  ///< seconds; used by kExponentialHalfLife
  double window = 7200.0;     ///< seconds; used by kSlidingWindow / kLinear
};

/// Weighting of historical usage by age.
class Decay {
 public:
  Decay() = default;
  explicit Decay(DecayConfig config);

  /// Weight for usage `age` seconds in the past. Ages <= 0 weigh 1.
  [[nodiscard]] double weight(double age) const noexcept;

  /// Weighted sum of (bin_time, amount) pairs evaluated at time `now`.
  /// Order-independent: unsorted bins are summed in (time, amount) order
  /// (already-sorted input takes an allocation-free fast path).
  [[nodiscard]] double decayed_total(const std::vector<std::pair<double, double>>& bins,
                                     double now) const;

  [[nodiscard]] const DecayConfig& config() const noexcept { return config_; }

  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static Decay from_json(const json::Value& value);

 private:
  DecayConfig config_;
};

}  // namespace aequus::core
