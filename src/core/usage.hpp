// Usage trees: per-entity resource consumption organized to mirror the
// policy hierarchy (§II-A).
//
// Leaf usage is added per user path; interior nodes aggregate their
// subtree. Cross-site merging is additive: each Aequus installation keeps
// its local usage tree and adds the "compact form" per-user totals
// relayed by remote installations.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace aequus::core {

/// Additive usage accounting over '/'-separated paths.
class UsageTree {
 public:
  UsageTree() = default;

  /// Add `amount` core-seconds to the leaf at `path` (creates the path).
  /// Negative amounts are rejected.
  void add(const std::string& path, double amount);

  /// Merge another tree (adds every leaf).
  void merge(const UsageTree& other);

  /// Multiply every recorded amount by `factor` (used by decay-on-merge).
  void scale(double factor);

  /// Total usage in the subtree rooted at `path` (the whole tree for "/").
  [[nodiscard]] double usage(const std::string& path) const;

  /// Subtree usage at `path` divided by the sum over its siblings.
  /// Returns 0 when the node is unknown or the sibling group is idle.
  [[nodiscard]] double normalized_usage(const std::string& path) const;

  /// Direct leaf contributions, path -> amount.
  [[nodiscard]] const std::map<std::string, double>& leaves() const noexcept { return leaves_; }

  [[nodiscard]] double total() const;
  [[nodiscard]] bool empty() const noexcept { return leaves_.empty(); }
  void clear() noexcept { leaves_.clear(); }

  /// Wire format: {"<path>": amount, ...}.
  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static UsageTree from_json(const json::Value& value);

 private:
  // Leaf-map representation: interior aggregates are computed by prefix
  // scans, which keeps merge/scale trivially correct.
  std::map<std::string, double> leaves_;
};

}  // namespace aequus::core
