#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace aequus::core {

FairshareEngine::FairshareEngine(FairshareConfig config, DecayConfig decay)
    : algorithm_(config), decay_(decay) {}

void FairshareEngine::set_policy(const PolicyTree& policy) {
  structure_changed_ = false;
  sync_policy(kRootNode, policy.root());
  // A structural change (membership/order) may move a leaf's deepest
  // policy ancestor, so the memoized attach nodes must be recomputed.
  // Pure share-weight edits keep the memo valid.
  if (structure_changed_) ++structure_epoch_;
  depth_ = policy.depth();
}

bool FairshareEngine::sync_policy(NodeId node, const PolicyTree::Node& policy_node) {
  // Fast path: same children, same order. Only share weights can differ.
  const std::uint32_t count = nodes_.child_count(node);
  bool same_structure = count == policy_node.children.size();
  if (same_structure) {
    const NodeId* kids = nodes_.children_begin(node);
    for (std::uint32_t i = 0; i < count; ++i) {
      if (nodes_.names[nodes_.name[kids[i]]] != policy_node.children[i].name) {
        same_structure = false;
        break;
      }
    }
  }
  bool group_changed = false;
  if (!same_structure) {
    // Rebuild the child span, stealing matching nodes by interned name so
    // their annotations and cached sums survive reorders and unrelated
    // edits. Unclaimed old subtrees are recycled.
    structure_changed_ = true;
    std::vector<NodeId> old(nodes_.children_begin(node), nodes_.children_begin(node) + count);
    std::vector<NodeId> next;
    next.reserve(policy_node.children.size());
    for (const auto& policy_child : policy_node.children) {
      const std::uint32_t name_id = nodes_.names.intern(policy_child.name);
      NodeId child = kNoIndex;
      for (NodeId& candidate : old) {
        if (candidate != kNoIndex && nodes_.name[candidate] == name_id) {
          child = candidate;
          candidate = kNoIndex;
          break;
        }
      }
      if (child == kNoIndex) child = nodes_.create(node, name_id);
      next.push_back(child);
    }
    for (const NodeId candidate : old) {
      if (candidate != kNoIndex) nodes_.release_subtree(candidate);
    }
    nodes_.set_children(node, next);
    group_changed = true;
  }
  {
    const NodeId* kids = nodes_.children_begin(node);
    const std::uint32_t n = nodes_.child_count(node);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (nodes_.raw_share[kids[i]] != policy_node.children[i].share) {
        nodes_.raw_share[kids[i]] = policy_node.children[i].share;
        group_changed = true;
      }
    }
  }
  if (group_changed) nodes_.flags[node] |= NodeArena::kChildrenDirty;
  bool any = group_changed;
  // Recursion can rebuild deeper spans (reallocating the slot vector), so
  // iterate over a copy of this group's ids.
  const std::vector<NodeId> children(nodes_.children_begin(node),
                                     nodes_.children_begin(node) + nodes_.child_count(node));
  for (std::uint32_t i = 0; i < children.size(); ++i) {
    any |= sync_policy(children[i], policy_node.children[i]);
  }
  if (any) nodes_.flags[node] |= NodeArena::kNeedsVisit;
  return any;
}

LeafId FairshareEngine::leaf_for(const std::string& user_path) {
  // join_path(split_path(p)) is the identity exactly when p already looks
  // canonical — leading '/', no empty segments, no trailing '/'. The fast
  // path skips the two temporary allocations for the common case of
  // already-canonical wire paths.
  const bool canonical = !user_path.empty() && user_path.front() == '/' &&
                         user_path.back() != '/' &&
                         user_path.find("//") == std::string::npos;
  if (canonical) return leaves_.intern(user_path);
  return leaves_.intern(join_path(split_path(user_path)));
}

NodeId FairshareEngine::attach_node(LeafId leaf) {
  if (leaves_.attach_epoch[leaf] == structure_epoch_) return leaves_.attach[leaf];
  // Walk the canonical path's segments down the policy tree; the deepest
  // match is where the leaf's dirty path tops out. Unlisted leaves attach
  // to the root (they only contribute to whole-tree sums).
  const std::string& path = leaves_.path(leaf);
  NodeId node = kRootNode;
  std::size_t start = 1;  // skip the leading '/'
  while (start < path.size()) {
    std::size_t end = path.find('/', start);
    if (end == std::string::npos) end = path.size();
    const std::string_view segment(path.data() + start, end - start);
    const std::uint32_t name_id = nodes_.names.find(segment);
    const NodeId child =
        name_id == IdTable::kNoId ? kNoIndex : nodes_.find_child(node, name_id);
    if (child == kNoIndex) break;
    node = child;
    start = end + 1;
  }
  leaves_.attach[leaf] = node;
  leaves_.attach_epoch[leaf] = structure_epoch_;
  return node;
}

void FairshareEngine::mark_leaf_dirty(LeafId leaf) {
  // Upward walk from the attach node: equivalent to the old downward
  // segment walk — needs_visit on the whole matched chain plus the root,
  // children_dirty on every ancestor group, sum_stale on every matched
  // node below the root.
  nodes_.flags[kRootNode] |= NodeArena::kNeedsVisit;
  for (NodeId node = attach_node(leaf); node != kRootNode; node = nodes_.parent[node]) {
    nodes_.flags[node] |= NodeArena::kSumStale | NodeArena::kNeedsVisit;
    nodes_.flags[nodes_.parent[node]] |= NodeArena::kChildrenDirty;
  }
}

void FairshareEngine::set_leaf_value(LeafId leaf, double value) {
  if (value > 0.0) {
    if (leaves_.active(leaf)) {
      if (leaves_.value(leaf) == value) return;
      leaves_.set_value(leaf, value);
    } else {
      leaves_.activate(leaf, value);
    }
  } else {
    // Mirror UsageTree semantics: zero usage means "not present".
    if (!leaves_.active(leaf)) return;
    leaves_.deactivate(leaf);
  }
  mark_leaf_dirty(leaf);
}

void FairshareEngine::apply_usage(const std::string& user_path, double amount,
                                  double bin_time) {
  if (!std::isfinite(amount) || amount < 0.0) {
    throw std::invalid_argument("FairshareEngine::apply_usage: bad amount");
  }
  if (amount == 0.0) return;
  const LeafId leaf = leaf_for(user_path);
  auto& bins = leaves_.bins[leaf];
  bins.emplace_back(bin_time, amount);
  leaves_.bin_value[leaf] = decay_.decayed_total(bins, epoch_);
  leaves_.bin_epoch[leaf] = epoch_;
  leaves_.bin_cached[leaf] = 1;
  set_leaf_value(leaf, leaves_.bin_value[leaf]);
}

void FairshareEngine::set_usage(const UsageTree& decayed) {
  // Wholesale replace retires the binned accounting.
  for (LeafId leaf = 0; leaf < leaves_.slot_count(); ++leaf) {
    leaves_.bins[leaf].clear();
    leaves_.bin_cached[leaf] = 0;
  }
  // Diff the active set (path-sorted) against the incoming leaves (a
  // path-sorted map): removed and added leaves dirty their paths, kept
  // leaves dirty only on a bitwise value change. The active set ends up
  // mirroring `next` verbatim — including any non-positive values it
  // carries, exactly like the old map assignment did.
  const auto& next = decayed.leaves();
  const std::vector<LeafId> old_active = leaves_.order();
  auto it = old_active.begin();
  auto jt = next.begin();
  while (it != old_active.end() || jt != next.end()) {
    if (jt == next.end() || (it != old_active.end() && leaves_.path(*it) < jt->first)) {
      const LeafId leaf = *it;  // removed
      leaves_.deactivate(leaf);
      mark_leaf_dirty(leaf);
      ++it;
    } else if (it == old_active.end() || jt->first < leaves_.path(*it)) {
      const LeafId leaf = leaves_.intern(jt->first);  // added
      leaves_.activate(leaf, jt->second);
      mark_leaf_dirty(leaf);
      ++jt;
    } else {
      const LeafId leaf = *it;
      if (leaves_.value(leaf) != jt->second) {
        leaves_.set_value(leaf, jt->second);
        mark_leaf_dirty(leaf);
      }
      ++it;
      ++jt;
    }
  }
}

void FairshareEngine::set_decay_epoch(double now) {
  epoch_ = now;
  for (LeafId leaf = 0; leaf < leaves_.slot_count(); ++leaf) {
    if (leaves_.bins[leaf].empty()) continue;  // not binned (or retired by set_usage)
    if (leaves_.bin_cached[leaf] != 0 && leaves_.bin_epoch[leaf] == now) continue;  // memo hit
    const double value = decay_.decayed_total(leaves_.bins[leaf], now);
    leaves_.bin_epoch[leaf] = now;
    leaves_.bin_cached[leaf] = 1;
    leaves_.bin_value[leaf] = value;
    set_leaf_value(leaf, value);  // no-op (nothing dirtied) when bit-identical
  }
}

void FairshareEngine::set_decay(DecayConfig decay) {
  decay_ = Decay(decay);
  for (LeafId leaf = 0; leaf < leaves_.slot_count(); ++leaf) leaves_.bin_cached[leaf] = 0;
  set_decay_epoch(epoch_);
}

void FairshareEngine::set_config(FairshareConfig config) {
  algorithm_ = FairshareAlgorithm(config);  // validates k and resolution
  nodes_.mark_all_groups_dirty();
  force_republish_ = true;
}

void FairshareEngine::refresh(NodeId node) {
  const NodeId* kids = nodes_.children_begin(node);
  const std::uint32_t count = nodes_.child_count(node);
  if ((nodes_.flags[node] & NodeArena::kChildrenDirty) != 0) {
    double share_total = 0.0;
    for (std::uint32_t i = 0; i < count; ++i) {
      share_total += std::max(nodes_.raw_share[kids[i]], 0.0);
    }
    double usage_total = 0.0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const NodeId child = kids[i];
      if ((nodes_.flags[child] & NodeArena::kSumStale) != 0) {
        nodes_.subtree_usage[child] = leaves_.subtree_sum(nodes_.path[child]);
        nodes_.flags[child] &= static_cast<std::uint8_t>(~NodeArena::kSumStale);
      }
      usage_total += nodes_.subtree_usage[child];
    }
    annotate_group(node, share_total, usage_total);
    nodes_.flags[node] &= static_cast<std::uint8_t>(~NodeArena::kChildrenDirty);
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const NodeId child = kids[i];
    if ((nodes_.flags[child] & (NodeArena::kNeedsVisit | NodeArena::kChildrenDirty)) != 0) {
      refresh(child);
    }
  }
}

void FairshareEngine::annotate_group(NodeId node, double share_total, double usage_total) {
  const NodeId* kids = nodes_.children_begin(node);
  const std::uint32_t count = nodes_.child_count(node);
  for (std::uint32_t i = 0; i < count; ++i) {
    const NodeId child = kids[i];
    const double policy_share =
        share_total > 0.0 ? std::max(nodes_.raw_share[child], 0.0) / share_total : 0.0;
    const double usage_share =
        usage_total > 0.0 ? nodes_.subtree_usage[child] / usage_total : 0.0;
    const double distance = algorithm_.node_distance(policy_share, usage_share);
    if (policy_share != nodes_.policy_share[child] ||
        usage_share != nodes_.usage_share[child] || distance != nodes_.distance[child]) {
      nodes_.policy_share[child] = policy_share;
      nodes_.usage_share[child] = usage_share;
      nodes_.distance[child] = distance;
      nodes_.flags[child] |= NodeArena::kValueChanged;
    }
  }
}

bool FairshareEngine::publish_node(NodeId node) {
  const NodeId* kids = nodes_.children_begin(node);
  const std::uint32_t count = nodes_.child_count(node);
  bool child_republished = false;
  for (std::uint32_t i = 0; i < count; ++i) {
    const NodeId child = kids[i];
    if ((nodes_.flags[child] & (NodeArena::kNeedsVisit | NodeArena::kValueChanged)) != 0 ||
        nodes_.published[child] == nullptr) {
      child_republished |= publish_node(child);
    }
  }
  nodes_.flags[node] &= static_cast<std::uint8_t>(~NodeArena::kNeedsVisit);
  const bool rebuild = (nodes_.flags[node] & NodeArena::kValueChanged) != 0 ||
                       nodes_.published[node] == nullptr || child_republished;
  nodes_.flags[node] &= static_cast<std::uint8_t>(~NodeArena::kValueChanged);
  if (!rebuild) return false;
  auto snapshot_node = std::make_shared<FairshareSnapshot::Node>();
  snapshot_node->name = nodes_.names[nodes_.name[node]];
  snapshot_node->policy_share = nodes_.policy_share[node];
  snapshot_node->usage_share = nodes_.usage_share[node];
  snapshot_node->distance = nodes_.distance[node];
  snapshot_node->children.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    snapshot_node->children.push_back(nodes_.published[kids[i]]);
  }
  nodes_.published[node] = std::move(snapshot_node);
  return true;
}

FairshareSnapshotPtr FairshareEngine::snapshot() {
  // The root's published values are fixed by definition, except the
  // usage flag that mirrors the batch path's `usage.empty()` check.
  const double root_usage = leaves_.active_count() == 0 ? 0.0 : 1.0;
  if (nodes_.policy_share[kRootNode] != 1.0 ||
      nodes_.usage_share[kRootNode] != root_usage || nodes_.distance[kRootNode] != 0.0) {
    nodes_.policy_share[kRootNode] = 1.0;
    nodes_.usage_share[kRootNode] = root_usage;
    nodes_.distance[kRootNode] = 0.0;
    nodes_.flags[kRootNode] |= NodeArena::kValueChanged;
  }
  const bool dirty =
      (nodes_.flags[kRootNode] & (NodeArena::kNeedsVisit | NodeArena::kChildrenDirty |
                                  NodeArena::kValueChanged)) != 0 ||
      force_republish_;
  if (dirty || current() == nullptr) {
    refresh(kRootNode);
    const bool changed = publish_node(kRootNode);
    if (changed || force_republish_ || current() == nullptr) {
      ++generation_;
      auto next = std::make_shared<const FairshareSnapshot>(
          nodes_.published[kRootNode], generation_, algorithm_.config().resolution, depth_);
      const std::lock_guard<std::mutex> guard(publish_mutex_);
      published_ = std::move(next);
    }
    force_republish_ = false;
  }
  return current();
}

FairshareTree FairshareEngine::compute_once(const FairshareConfig& config,
                                            const PolicyTree& policy, const UsageTree& usage) {
  FairshareEngine engine(config);
  engine.set_policy(policy);
  engine.set_usage(usage);
  return engine.snapshot()->to_tree();
}

}  // namespace aequus::core
