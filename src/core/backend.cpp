#include "core/backend.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/backends.hpp"
#include "core/engine.hpp"

namespace aequus::core {

void FairnessBackend::apply_usage_batch(const std::vector<UsageSample>& samples) {
  for (const auto& sample : samples) {
    apply_usage(sample.user_path, sample.amount, sample.bin_time);
  }
}

void FairnessBackend::advance_time(double) {}

std::map<std::string, double> FairnessBackend::project_factors(
    const FairshareSnapshot& snapshot, const ProjectionConfig& config) const {
  return project(snapshot, config);
}

namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, FairnessBackendFactory> factories;
};

Registry& registry() {
  static Registry* instance = [] {
    auto* r = new Registry;
    r->factories["aequus"] = [](const FairnessBackendConfig&, FairshareConfig fairshare,
                                DecayConfig decay) -> std::unique_ptr<FairnessBackend> {
      return std::make_unique<FairshareEngine>(fairshare, decay);
    };
    r->factories["balanced"] = [](const FairnessBackendConfig&, FairshareConfig fairshare,
                                  DecayConfig decay) -> std::unique_ptr<FairnessBackend> {
      return std::make_unique<BalancedBackend>(fairshare, decay);
    };
    r->factories["credit"] = [](const FairnessBackendConfig& config, FairshareConfig fairshare,
                                DecayConfig decay) -> std::unique_ptr<FairnessBackend> {
      return std::make_unique<CreditBackend>(
          CreditConfig{config.credit_refresh_s, config.credit_cap}, fairshare, decay);
    };
    return r;  // leaked intentionally: factories may be used at exit
  }();
  return *instance;
}

}  // namespace

void register_fairness_backend(const std::string& name, FairnessBackendFactory factory) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> guard(r.mutex);
  r.factories[name] = std::move(factory);
}

std::vector<std::string> fairness_backend_names() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> guard(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, factory] : r.factories) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

bool fairness_backend_known(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> guard(r.mutex);
  return r.factories.find(name) != r.factories.end();
}

std::unique_ptr<FairnessBackend> make_fairness_backend(const FairnessBackendConfig& config,
                                                       FairshareConfig fairshare,
                                                       DecayConfig decay) {
  FairnessBackendFactory factory;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> guard(r.mutex);
    const auto it = r.factories.find(config.name);
    if (it == r.factories.end()) {
      std::string known;
      for (const auto& [name, fn] : r.factories) {
        if (!known.empty()) known += " | ";
        known += name;
      }
      throw std::invalid_argument("unknown fairness backend '" + config.name +
                                  "' (expected " + known + ")");
    }
    factory = it->second;
  }
  return factory(config, fairshare, decay);
}

json::Value to_json(const FairnessBackendConfig& config) {
  json::Object obj;
  obj["backend"] = config.name;
  obj["credit_refresh_s"] = config.credit_refresh_s;
  obj["credit_cap"] = config.credit_cap;
  return json::Value(std::move(obj));
}

}  // namespace aequus::core

aequus::core::FairnessBackendConfig
aequus::json::Decoder<aequus::core::FairnessBackendConfig>::decode(const Value& value) {
  aequus::core::FairnessBackendConfig config;
  if (value.is_string()) {
    config.name = value.as_string();
  } else {
    config.name = value.get_string("backend", config.name);
    config.credit_refresh_s = value.get_number("credit_refresh_s", config.credit_refresh_s);
    config.credit_cap = value.get_number("credit_cap", config.credit_cap);
  }
  if (!aequus::core::fairness_backend_known(config.name)) {
    std::string known;
    for (const auto& name : aequus::core::fairness_backend_names()) {
      if (!known.empty()) known += " | ";
      known += name;
    }
    throw std::invalid_argument("unknown fairness backend '" + config.name + "' (expected " +
                                known + ")");
  }
  if (!(config.credit_refresh_s > 0.0)) {
    throw std::invalid_argument("fairness backend: credit_refresh_s must be > 0");
  }
  if (!(config.credit_cap > 0.0)) {
    throw std::invalid_argument("fairness backend: credit_cap must be > 0");
  }
  return config;
}
