// Incremental fairshare engine: dirty-path recompute behind immutable
// snapshots.
//
// The batch FairshareAlgorithm::compute() rebuilds the whole annotated
// tree from scratch on every usage delta — the dominant cost of the FCS
// pre-calculation loop once sweeps run in parallel. The engine keeps the
// annotated tree *stateful* and recomputes only what a mutation can have
// changed:
//
//   - a usage delta for one leaf marks exactly the root-to-leaf path
//     dirty: the subtree sums along the path are stale, and every sibling
//     group on the path renormalizes (a group's usage_total changed, so
//     all its members' usage shares move) — but clean siblings' subtrees
//     are never re-entered;
//   - a policy swap diffs the new tree against the working tree and
//     dirties only sibling groups whose membership, order, or raw shares
//     changed;
//   - decayed usage is memoized per leaf keyed by the decay epoch:
//     advancing the epoch re-values only binned leaves, and leaves whose
//     decayed value is bit-identical (idle users, kNone/sliding-window
//     plateaus) stay clean, so an idle subtree costs zero.
//
// Reads never touch the working tree: snapshot() publishes an immutable,
// generation-stamped FairshareSnapshot with copy-on-publish structural
// sharing (unchanged subtrees are the *same* nodes as the previous
// generation), and current() hands the latest one out as a shared_ptr
// copy under a handoff mutex whose critical section is two refcount ops.
// (std::atomic<std::shared_ptr> would make the handoff lock-free, but
// GCC 12's _Sp_atomic spinlock trips ThreadSanitizer; readers grab one
// snapshot per scheduling pass, so the mutex is never contended in
// practice.) The engine is single-writer / many-reader.
//
// Bit-identity contract: for any sequence of mutations, the published
// tree is bit-identical to FairshareAlgorithm::compute() over the
// equivalent policy and (decayed) usage trees — the engine reproduces the
// batch path's exact floating-point summation orders. compute() itself is
// now a thin one-shot wrapper over this engine.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/decay.hpp"
#include "core/fairshare.hpp"
#include "core/policy.hpp"
#include "core/snapshot.hpp"
#include "core/usage.hpp"

namespace aequus::core {

class FairshareEngine {
 public:
  explicit FairshareEngine(FairshareConfig config = {}, DecayConfig decay = {});

  /// Swap the policy tree; structurally diffed against the working tree
  /// so unchanged sibling groups keep their annotations.
  void set_policy(const PolicyTree& policy);

  /// Add `amount` (> 0) core-seconds for the user leaf at `user_path`,
  /// recorded in the time bin at `bin_time`. The leaf's effective value
  /// is the decay-weighted sum of its bins at the current epoch.
  /// Rejects negative or non-finite amounts; zero is a no-op.
  void apply_usage(const std::string& user_path, double amount, double bin_time);

  /// Replace the usage state wholesale with externally decayed per-leaf
  /// values (the FCS path: the UMS has already applied decay). Leaves are
  /// diffed bitwise, so a refresh that changes nothing dirties nothing.
  /// Drops any binned state previously built via apply_usage().
  void set_usage(const UsageTree& decayed);

  /// Re-evaluate every binned leaf at decay epoch `now`. Leaves whose
  /// decayed value is bit-identical stay clean.
  void set_decay_epoch(double now);
  [[nodiscard]] double decay_epoch() const noexcept { return epoch_; }

  /// Swap the decay function; re-values all binned leaves at the current
  /// epoch.
  void set_decay(DecayConfig decay);

  /// Swap the distance algorithm (k, resolution); the full tree is
  /// re-annotated on the next publish. Throws like FairshareAlgorithm on
  /// invalid configs.
  void set_config(FairshareConfig config);
  [[nodiscard]] const FairshareConfig& config() const noexcept {
    return algorithm_.config();
  }

  /// Recompute everything marked dirty, publish a new generation if any
  /// published value changed, and return the latest snapshot. Writer-side
  /// only (not thread-safe against other mutators).
  FairshareSnapshotPtr snapshot();

  /// Latest published snapshot; safe from any thread concurrently with
  /// the single writer. Null before the first snapshot() call.
  [[nodiscard]] FairshareSnapshotPtr current() const {
    const std::lock_guard<std::mutex> guard(publish_mutex_);
    return published_;
  }

  /// Generation of the latest published snapshot (0 before the first).
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

  /// One-shot batch computation through a throwaway engine; the
  /// implementation behind FairshareAlgorithm::compute().
  [[nodiscard]] static FairshareTree compute_once(const FairshareConfig& config,
                                                  const PolicyTree& policy,
                                                  const UsageTree& usage);

 private:
  /// Working-tree node. `subtree_usage` caches the decayed leaf sum of the
  /// node's subtree in the batch path's exact summation order.
  struct Node {
    std::string name;
    std::string path;  ///< canonical "/a/b"
    double raw_share = 0.0;
    double policy_share = 0.0;
    double usage_share = 0.0;
    double distance = 0.0;
    double subtree_usage = 0.0;
    bool sum_stale = true;       ///< cached subtree_usage is invalid
    bool children_dirty = true;  ///< this node's child group must renormalize
    bool needs_visit = false;    ///< some descendant group is dirty
    bool value_changed = true;   ///< published values differ -> republish
    std::vector<std::unique_ptr<Node>> children;
    std::shared_ptr<const FairshareSnapshot::Node> published;

    [[nodiscard]] Node* find_child(const std::string& child_name);
  };

  /// Decayed-total memo for one binned leaf.
  struct BinnedLeaf {
    std::vector<std::pair<double, double>> bins;  ///< (bin_time, amount)
    double cached_epoch = 0.0;
    double cached_value = 0.0;
    bool cached = false;
  };

  /// Diff one policy sibling group; returns true when anything below
  /// `node` (inclusive) was dirtied.
  bool sync_policy(Node& node, const PolicyTree::Node& policy_node);
  /// Mark the root-to-leaf path of `leaf_path` dirty.
  void mark_leaf_dirty(const std::string& leaf_path);
  /// Set a leaf's effective decayed value, dirtying its path on change.
  void set_leaf_value(const std::string& leaf_path, double value);
  /// Renormalize dirty sibling groups and refresh stale sums below `node`.
  void refresh(Node& node);
  /// Sum of leaf values inside `path`, in the batch path's scan order.
  [[nodiscard]] double subtree_sum(const std::string& path) const;
  /// Rebuild the published node for `node` where values changed, sharing
  /// every untouched child. Returns true when the pointer changed.
  bool publish_node(Node& node);

  FairshareAlgorithm algorithm_;
  Decay decay_;
  double epoch_ = 0.0;
  Node root_;
  int depth_ = 0;
  std::map<std::string, double> leaf_values_;    ///< decayed leaf usage (> 0 only)
  std::map<std::string, BinnedLeaf> leaf_bins_;  ///< binned accounting + memo
  std::uint64_t generation_ = 0;
  bool force_republish_ = true;  ///< config change or first publish
  mutable std::mutex publish_mutex_;  ///< guards only the published_ handoff
  FairshareSnapshotPtr published_;
};

}  // namespace aequus::core
