// Incremental fairshare engine: dirty-path recompute over SoA arenas,
// behind immutable snapshots.
//
// A batch recompute rebuilds the whole annotated tree from scratch on
// every usage delta — the dominant cost of the FCS
// pre-calculation loop once sweeps run in parallel. The engine keeps the
// annotated tree *stateful* and recomputes only what a mutation can have
// changed:
//
//   - a usage delta for one leaf marks exactly the root-to-leaf path
//     dirty: the subtree sums along the path are stale, and every sibling
//     group on the path renormalizes (a group's usage_total changed, so
//     all its members' usage shares move) — but clean siblings' subtrees
//     are never re-entered;
//   - a policy swap diffs the new tree against the working state and
//     dirties only sibling groups whose membership, order, or raw shares
//     changed;
//   - decayed usage is memoized per leaf keyed by the decay epoch:
//     advancing the epoch re-values only binned leaves, and leaves whose
//     decayed value is bit-identical (idle users, kNone/sliding-window
//     plateaus) stay clean, so an idle subtree costs zero.
//
// Since the arena rework (DESIGN.md §6h) the working state lives in
// cache-conscious structure-of-arrays arenas keyed by dense interned ids
// (core::IdTable, core::NodeArena, core::LeafStore): a delta resolves its
// leaf with one id lookup, marks the dirty path by walking parent links,
// and the renormalize/subtree-sum hot loops stream contiguous double
// arrays. Strings appear only at the API boundary — wire-format user
// paths coming in, published FairshareSnapshot nodes going out.
//
// Reads never touch the working state: snapshot() publishes an immutable,
// generation-stamped FairshareSnapshot with copy-on-publish structural
// sharing (unchanged subtrees are the *same* nodes as the previous
// generation), and current() hands the latest one out as a shared_ptr
// copy under a handoff mutex whose critical section is two refcount ops.
// (std::atomic<std::shared_ptr> would make the handoff lock-free, but
// GCC 12's _Sp_atomic spinlock trips ThreadSanitizer; readers grab one
// snapshot per scheduling pass, so the mutex is never contended in
// practice.) The engine is single-writer / many-reader.
//
// Bit-identity contract: for any sequence of mutations, the published
// tree is bit-identical to a batch computation (compute_once) over the
// equivalent policy and (decayed) usage trees — the engine reproduces the
// batch path's exact floating-point summation orders (the leaf order
// index in LeafStore preserves the old full-map scan order).
//
// The engine is also the default "aequus" core::FairnessBackend; the
// alternative fairness policies in backends.hpp subclass it, reusing the
// arenas and dirty tracking and overriding only annotate_group() (plus
// projection/time hooks where their math needs it).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/arena.hpp"
#include "core/backend.hpp"
#include "core/decay.hpp"
#include "core/fairshare.hpp"
#include "core/id_table.hpp"
#include "core/policy.hpp"
#include "core/snapshot.hpp"
#include "core/usage.hpp"

namespace aequus::core {

class FairshareEngine : public FairnessBackend {
 public:
  explicit FairshareEngine(FairshareConfig config = {}, DecayConfig decay = {});

  /// Registry key; derived backends reuse the engine's storage and
  /// override this along with annotate_group().
  [[nodiscard]] std::string_view name() const noexcept override { return "aequus"; }

  /// Swap the policy tree; structurally diffed against the working state
  /// so unchanged sibling groups keep their annotations.
  void set_policy(const PolicyTree& policy) override;

  /// Add `amount` (> 0) core-seconds for the user leaf at `user_path`,
  /// recorded in the time bin at `bin_time`. The leaf's effective value
  /// is the decay-weighted sum of its bins at the current epoch.
  /// Rejects negative or non-finite amounts; zero is a no-op.
  void apply_usage(const std::string& user_path, double amount, double bin_time) override;

  /// Replace the usage state wholesale with externally decayed per-leaf
  /// values (the FCS path: the UMS has already applied decay). Leaves are
  /// diffed bitwise, so a refresh that changes nothing dirties nothing.
  /// Drops any binned state previously built via apply_usage().
  void set_usage(const UsageTree& decayed) override;

  /// Re-evaluate every binned leaf at decay epoch `now`. Leaves whose
  /// decayed value is bit-identical stay clean.
  void set_decay_epoch(double now) override;
  [[nodiscard]] double decay_epoch() const noexcept { return epoch_; }

  /// Swap the decay function; re-values all binned leaves at the current
  /// epoch.
  void set_decay(DecayConfig decay) override;

  /// Swap the distance algorithm (k, resolution); the full tree is
  /// re-annotated on the next publish. Throws like FairshareAlgorithm on
  /// invalid configs.
  void set_config(FairshareConfig config) override;
  [[nodiscard]] const FairshareConfig& config() const noexcept {
    return algorithm_.config();
  }

  /// Recompute everything marked dirty, publish a new generation if any
  /// published value changed, and return the latest snapshot. Writer-side
  /// only (not thread-safe against other mutators).
  FairshareSnapshotPtr snapshot();

  /// FairnessBackend spelling of snapshot().
  [[nodiscard]] FairshareSnapshotPtr publish() override { return snapshot(); }

  /// Latest published snapshot; safe from any thread concurrently with
  /// the single writer. Null before the first snapshot() call.
  [[nodiscard]] FairshareSnapshotPtr current() const override {
    const std::lock_guard<std::mutex> guard(publish_mutex_);
    return published_;
  }

  /// Generation of the latest published snapshot (0 before the first).
  [[nodiscard]] std::uint64_t generation() const noexcept override { return generation_; }

  /// Active usage leaves in the working state (present, value retained).
  [[nodiscard]] std::size_t leaf_count() const noexcept { return leaves_.active_count(); }

  /// One-shot batch computation through a throwaway engine (the
  /// historical FairshareAlgorithm::compute() semantics).
  [[nodiscard]] static FairshareTree compute_once(const FairshareConfig& config,
                                                  const PolicyTree& policy,
                                                  const UsageTree& usage);

 protected:
  /// Re-annotate one dirty sibling group: derive every child's published
  /// (policy_share, usage_share, distance) triple from the group-local
  /// state — `share_total` is the group's positive raw-share sum and
  /// `usage_total` its refreshed subtree-usage sum — and set
  /// kValueChanged on any child whose triple moved. This is the policy
  /// seam: the default body is the Aequus annotation (sibling-normalized
  /// shares, FairshareAlgorithm::node_distance) and alternative backends
  /// (backends.hpp) override only this.
  virtual void annotate_group(NodeId node, double share_total, double usage_total);

  FairshareAlgorithm algorithm_;
  Decay decay_;
  double epoch_ = 0.0;
  NodeArena nodes_;
  LeafStore leaves_;
  /// Bumped whenever a policy swap changes tree *structure*; invalidates
  /// the leaves' memoized attach nodes.
  std::uint64_t structure_epoch_ = 1;

 private:
  /// Diff one policy sibling group; returns true when anything below
  /// `node` (inclusive) was dirtied.
  bool sync_policy(NodeId node, const PolicyTree::Node& policy_node);
  /// Leaf slot for a wire-format user path (canonicalized, interned).
  LeafId leaf_for(const std::string& user_path);
  /// Deepest policy node prefixing the leaf's path (memoized per policy
  /// structure epoch).
  NodeId attach_node(LeafId leaf);
  /// Mark the root-to-leaf path of `leaf` dirty.
  void mark_leaf_dirty(LeafId leaf);
  /// Set a leaf's effective decayed value, dirtying its path on change.
  void set_leaf_value(LeafId leaf, double value);
  /// Renormalize dirty sibling groups and refresh stale sums below `node`.
  void refresh(NodeId node);
  /// Rebuild the published node for `node` where values changed, sharing
  /// every untouched child. Returns true when the pointer changed.
  bool publish_node(NodeId node);

  bool structure_changed_ = false;  ///< set by sync_policy during one swap
  int depth_ = 0;
  std::uint64_t generation_ = 0;
  bool force_republish_ = true;  ///< config change or first publish
  mutable std::mutex publish_mutex_;  ///< guards only the published_ handoff
  FairshareSnapshotPtr published_;
};

}  // namespace aequus::core
