#include "core/backends.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aequus::core {

void BalancedBackend::annotate_group(NodeId node, double share_total, double usage_total) {
  const NodeId* kids = nodes_.children_begin(node);
  const std::uint32_t count = nodes_.child_count(node);
  // Balanced fairness splits the group's capacity among the members that
  // are actually consuming; the weight mass of idle members is
  // redistributed instead of reserved.
  double active_share_total = 0.0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const NodeId child = kids[i];
    if (nodes_.subtree_usage[child] > 0.0) {
      active_share_total += std::max(nodes_.raw_share[child], 0.0);
    }
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const NodeId child = kids[i];
    const double raw = std::max(nodes_.raw_share[child], 0.0);
    double entitlement = 0.0;
    if (usage_total > 0.0) {
      const bool active = nodes_.subtree_usage[child] > 0.0;
      entitlement = active && active_share_total > 0.0 ? raw / active_share_total : 0.0;
    } else {
      // Fully idle group: nominal weights, coinciding with aequus.
      entitlement = share_total > 0.0 ? raw / share_total : 0.0;
    }
    const double usage_share =
        usage_total > 0.0 ? nodes_.subtree_usage[child] / usage_total : 0.0;
    const double distance = algorithm_.node_distance(entitlement, usage_share);
    if (entitlement != nodes_.policy_share[child] ||
        usage_share != nodes_.usage_share[child] || distance != nodes_.distance[child]) {
      nodes_.policy_share[child] = entitlement;
      nodes_.usage_share[child] = usage_share;
      nodes_.distance[child] = distance;
      nodes_.flags[child] |= NodeArena::kValueChanged;
    }
  }
}

CreditBackend::CreditBackend(CreditConfig credit, FairshareConfig config, DecayConfig decay)
    : FairshareEngine(config, decay), credit_(credit) {
  if (!(credit_.refresh_s > 0.0) || !std::isfinite(credit_.refresh_s)) {
    throw std::invalid_argument("CreditBackend: refresh_s must be finite and > 0");
  }
  if (!(credit_.cap > 0.0) || !std::isfinite(credit_.cap)) {
    throw std::invalid_argument("CreditBackend: cap must be finite and > 0");
  }
}

void CreditBackend::advance_time(double now) {
  if (std::isfinite(now) && now > now_) now_ = now;
}

FairshareSnapshotPtr CreditBackend::publish() {
  // Structural policy changes recycle node ids, so stale banks could
  // attach to unrelated nodes; reset the whole ledger instead.
  if (bank_structure_epoch_ != structure_epoch_) {
    bank_.assign(nodes_.size(), 0.0);
    bank_structure_epoch_ = structure_epoch_;
  }
  if (bank_.size() < nodes_.size()) bank_.resize(nodes_.size(), 0.0);
  pending_dt_ = have_time_ ? std::max(0.0, now_ - accrual_epoch_) : 0.0;
  // Every bank drifts with elapsed time, not only the dirty paths, so a
  // publish must re-annotate every sibling group.
  if (pending_dt_ > 0.0) nodes_.mark_all_groups_dirty();
  FairshareSnapshotPtr snap = snapshot();
  accrual_epoch_ = now_;
  have_time_ = true;
  pending_dt_ = 0.0;
  return snap;
}

void CreditBackend::annotate_group(NodeId node, double share_total, double usage_total) {
  if (bank_.size() < nodes_.size()) bank_.resize(nodes_.size(), 0.0);
  const NodeId* kids = nodes_.children_begin(node);
  const std::uint32_t count = nodes_.child_count(node);
  for (std::uint32_t i = 0; i < count; ++i) {
    const NodeId child = kids[i];
    const double policy_share =
        share_total > 0.0 ? std::max(nodes_.raw_share[child], 0.0) / share_total : 0.0;
    const double usage_share =
        usage_total > 0.0 ? nodes_.subtree_usage[child] / usage_total : 0.0;
    if (pending_dt_ > 0.0) {
      const double accrued =
          bank_[child] + (policy_share - usage_share) * pending_dt_ / credit_.refresh_s;
      bank_[child] = std::clamp(accrued, -credit_.cap, credit_.cap);
    }
    const double distance = bank_[child] / credit_.cap;
    if (policy_share != nodes_.policy_share[child] ||
        usage_share != nodes_.usage_share[child] || distance != nodes_.distance[child]) {
      nodes_.policy_share[child] = policy_share;
      nodes_.usage_share[child] = usage_share;
      nodes_.distance[child] = distance;
      nodes_.flags[child] |= NodeArena::kValueChanged;
    }
  }
}

namespace {
void collect_credit_factors(const FairshareSnapshot::Node& node, std::string& path,
                            double distance_sum, int depth,
                            std::map<std::string, double>& out) {
  if (node.leaf()) {
    const double mean = depth > 0 ? distance_sum / depth : 0.0;
    out[path] = std::clamp(kNeutralFactor + kNeutralFactor * mean, 0.0, 1.0);
    return;
  }
  for (const auto& child : node.children) {
    const std::size_t mark = path.size();
    path += '/';
    path += child->name;
    collect_credit_factors(*child, path, distance_sum + child->distance, depth + 1, out);
    path.resize(mark);
  }
}
}  // namespace

std::map<std::string, double> CreditBackend::project_factors(
    const FairshareSnapshot& snapshot, const ProjectionConfig& config) const {
  if (config.kind != ProjectionKind::kPercental) {
    return FairnessBackend::project_factors(snapshot, config);
  }
  // The percental projection multiplies share products and never reads
  // the distance channel the banks live in; project the mean per-level
  // bank around the neutral point instead.
  std::map<std::string, double> out;
  if (!snapshot.has_tree() || snapshot.root().leaf()) return out;
  std::string path;
  collect_credit_factors(snapshot.root(), path, 0.0, 0, out);
  return out;
}

}  // namespace aequus::core
