#include "core/combined.hpp"

#include <algorithm>
#include <numeric>

namespace aequus::core {

VectorFactor age_factor(double max_age) {
  return {"age", [max_age](const JobAttributes& job) {
            if (max_age <= 0.0) return 0.0;
            const double fraction = std::clamp(job.wait_time / max_age, 0.0, 1.0);
            return 2.0 * fraction - 1.0;
          }};
}

VectorFactor small_job_factor(int max_cores) {
  return {"small-job", [max_cores](const JobAttributes& job) {
            if (max_cores <= 1) return 0.0;
            const double fraction = std::clamp(
                static_cast<double>(job.cores - 1) / (max_cores - 1), 0.0, 1.0);
            return 1.0 - 2.0 * fraction;
          }};
}

VectorFactor qos_factor() {
  return {"qos", [](const JobAttributes& job) {
            return std::clamp(2.0 * job.qos - 1.0, -1.0, 1.0);
          }};
}

CombinedVectorPriority::CombinedVectorPriority(std::vector<VectorFactor> factors,
                                               MergeOrder order)
    : factors_(std::move(factors)), order_(order) {}

FairshareVector CombinedVectorPriority::combine(const FairshareVector& fairshare,
                                                const JobAttributes& job) const {
  std::vector<double> elements;
  elements.reserve(fairshare.depth() + factors_.size());
  const auto push_factors = [&] {
    for (const auto& factor : factors_) {
      elements.push_back(std::clamp(factor.value(job), -1.0, 1.0));
    }
  };
  if (order_ == MergeOrder::kPrepend) push_factors();
  elements.insert(elements.end(), fairshare.values().begin(), fairshare.values().end());
  if (order_ == MergeOrder::kAppend) push_factors();
  return FairshareVector(std::move(elements), fairshare.resolution());
}

std::vector<double> CombinedVectorPriority::rank(
    const std::vector<std::pair<JobAttributes, FairshareVector>>& jobs) const {
  std::vector<FairshareVector> combined;
  combined.reserve(jobs.size());
  for (const auto& [job, fairshare] : jobs) {
    combined.push_back(combine(fairshare, job));
  }
  std::vector<std::size_t> order_index(jobs.size());
  std::iota(order_index.begin(), order_index.end(), 0);
  // Descending: best vector gets the highest scalar.
  std::stable_sort(order_index.begin(), order_index.end(), [&](std::size_t a, std::size_t b) {
    return combined[a].compare(combined[b]) == std::strong_ordering::greater;
  });
  std::vector<double> ranks(jobs.size(), 0.0);
  const double n = static_cast<double>(jobs.size());
  for (std::size_t position = 0; position < order_index.size(); ++position) {
    ranks[order_index[position]] = (n - static_cast<double>(position)) / (n + 1.0);
  }
  return ranks;
}

}  // namespace aequus::core
