// Structure-of-arrays arenas backing the incremental FairshareEngine.
//
// The engine's working state used to be a pointer-linked node tree plus
// two string-keyed std::maps (leaf values, leaf bins). Every hot
// operation — a usage delta, a dirty-path renormalize, a subtree sum —
// paid string hashing/comparison and pointer chasing per node. The
// arenas flatten that state into dense uint32-indexed parallel arrays
// (ids from core::IdTable), so:
//
//   - a sibling-group renormalize walks one contiguous id span and reads
//     raw/policy/usage/distance from parallel double arrays (a few cache
//     lines per group, independent of tree size);
//   - a subtree sum is a scan over one contiguous, path-sorted value
//     array — the same matches in the same lexicographic order as the
//     old full-map scan, so the floating-point summation stays
//     bit-identical to the batch path;
//   - a usage delta resolves its leaf with one interned-id lookup and
//     marks its root-to-leaf path dirty by walking parent links, with no
//     string splitting or per-segment child scans.
//
// Strings survive only at the edges: the per-node canonical path (cold
// array, read by dirty-path subtree sums), the name table (copied into
// published FairshareSnapshot nodes, which remain the string-keyed API
// boundary), and the leaf-path table that interns wire-format user
// paths. Publication is unchanged: copy-on-write FairshareSnapshot nodes
// with structural sharing across generations; the arenas are purely the
// writer's working representation.
//
// Single-writer, like the engine that owns them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/id_table.hpp"
#include "core/snapshot.hpp"

namespace aequus::core {

using NodeId = std::uint32_t;
using LeafId = std::uint32_t;
inline constexpr std::uint32_t kNoIndex = 0xffffffffu;
inline constexpr NodeId kRootNode = 0;

/// SoA arena for the annotated policy-tree nodes. Child lists are spans
/// into one shared slot vector; structural policy changes append a new
/// span for the changed group (the arena compacts itself when the slack
/// grows past twice the live size). Released node ids are recycled.
class NodeArena {
 public:
  // Dirty flags, one byte per node.
  static constexpr std::uint8_t kSumStale = 1u << 0;      ///< cached subtree_usage invalid
  static constexpr std::uint8_t kChildrenDirty = 1u << 1; ///< child group must renormalize
  static constexpr std::uint8_t kNeedsVisit = 1u << 2;    ///< some descendant group is dirty
  static constexpr std::uint8_t kValueChanged = 1u << 3;  ///< published values differ

  NodeArena();

  /// Allocate (or recycle) a node under `parent` named by `name_id`,
  /// with default annotations and dirty flags. Does not link it into the
  /// parent's child span — the caller rebuilds the span via set_children.
  NodeId create(NodeId parent_id, std::uint32_t name_id);

  /// Recycle `id` and its whole subtree (published nodes released).
  void release_subtree(NodeId id);

  /// Replace `parent`'s child span with `children` (policy order).
  void set_children(NodeId parent_id, const std::vector<NodeId>& children);

  [[nodiscard]] const NodeId* children_begin(NodeId id) const noexcept {
    return child_slots_.data() + first_child_[id];
  }
  [[nodiscard]] std::uint32_t child_count(NodeId id) const noexcept {
    return child_count_[id];
  }

  /// Child of `parent` named `name_id`, or kNoIndex. Compares interned
  /// ids, not strings.
  [[nodiscard]] NodeId find_child(NodeId parent_id, std::uint32_t name_id) const noexcept;

  /// Mark every node's sibling group dirty (config swap: all values must
  /// be re-derived; cached subtree sums stay valid).
  void mark_all_groups_dirty();

  [[nodiscard]] std::size_t size() const noexcept { return parent.size(); }
  [[nodiscard]] std::size_t live() const noexcept { return parent.size() - free_.size(); }

  IdTable names;  ///< interned node name segments

  // Parallel per-node arrays, indexed by NodeId.
  std::vector<NodeId> parent;
  std::vector<std::uint32_t> name;      ///< id into `names`
  std::vector<std::string> path;        ///< canonical "/a/b" (cold; subtree-sum bounds)
  std::vector<double> raw_share;
  std::vector<double> policy_share;
  std::vector<double> usage_share;
  std::vector<double> distance;
  std::vector<double> subtree_usage;
  std::vector<std::uint8_t> flags;
  std::vector<std::shared_ptr<const FairshareSnapshot::Node>> published;

 private:
  void compact_children();

  std::vector<std::uint32_t> first_child_;
  std::vector<std::uint32_t> child_count_;
  std::vector<NodeId> child_slots_;   ///< all child spans, slack compacted lazily
  std::size_t live_child_slots_ = 0;  ///< slots referenced by some span
  std::vector<NodeId> free_;          ///< recycled node ids
};

/// SoA store for usage leaves. A leaf slot exists for every distinct
/// canonical path ever reported (slots are never recycled — binned decay
/// memos outlive a decayed-to-zero value, exactly like the old
/// leaf_bins_ map outlived leaf_values_ entries). The *active* leaves
/// (present in the current usage state) additionally appear in a
/// path-sorted order index with their values mirrored in a contiguous
/// array: subtree sums scan that array in the old full-map scan's exact
/// lexicographic order, so summation stays bit-identical while touching
/// sequential cache lines instead of a red-black tree.
class LeafStore {
 public:
  /// Slot for `canonical_path`, creating it inactive on first sight.
  LeafId intern(std::string_view canonical_path);

  /// Slot for `canonical_path`, or kNoIndex when never seen.
  [[nodiscard]] LeafId find(std::string_view canonical_path) const noexcept {
    return paths_.find(canonical_path);
  }

  [[nodiscard]] const std::string& path(LeafId id) const noexcept { return paths_[id]; }
  [[nodiscard]] std::size_t slot_count() const noexcept { return active_.size(); }

  [[nodiscard]] bool active(LeafId id) const noexcept { return active_[id] != 0; }
  [[nodiscard]] double value(LeafId id) const noexcept { return value_[id]; }

  /// Insert `id` into the active order (binary-searched splice; appends
  /// are O(1), which makes a sorted bulk load linear).
  void activate(LeafId id, double leaf_value);
  /// Remove `id` from the active order.
  void deactivate(LeafId id);
  /// Update an active leaf's value in place.
  void set_value(LeafId id, double leaf_value) noexcept {
    value_[id] = leaf_value;
    order_value_[pos_[id]] = leaf_value;
  }

  /// Active leaves in lexicographic path order (the summation order).
  [[nodiscard]] const std::vector<LeafId>& order() const noexcept { return order_; }
  [[nodiscard]] std::size_t active_count() const noexcept { return order_.size(); }

  /// Sum of active leaf values inside `subtree_path`, scanning the
  /// contiguous ordered array with the same prefix/boundary filter (and
  /// therefore the same matches, in the same order) as the old
  /// std::map lower_bound scan — bit-identical to the batch path.
  [[nodiscard]] double subtree_sum(const std::string& subtree_path) const;

  // Per-slot binned accounting + decayed-total memo (apply_usage path).
  std::vector<std::vector<std::pair<double, double>>> bins;  ///< (bin_time, amount)
  std::vector<double> bin_epoch;
  std::vector<double> bin_value;
  std::vector<std::uint8_t> bin_cached;

  // Deepest policy node whose path prefixes the leaf path, memoized
  // against the engine's policy-structure epoch (dirty-path marking).
  std::vector<NodeId> attach;
  std::vector<std::uint64_t> attach_epoch;

 private:
  IdTable paths_;                      ///< canonical leaf paths; LeafId == path id
  std::vector<double> value_;          ///< current decayed value (active slots)
  std::vector<std::uint8_t> active_;   ///< present in the usage state
  std::vector<std::uint32_t> pos_;     ///< position in order_, kNoIndex if inactive
  std::vector<LeafId> order_;          ///< active slots, path-sorted
  std::vector<double> order_value_;    ///< values parallel to order_ (summation array)
};

}  // namespace aequus::core
