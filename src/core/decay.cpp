#include "core/decay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aequus::core {

Decay::Decay(DecayConfig config) : config_(config) {
  if (config_.kind == DecayKind::kExponentialHalfLife && config_.half_life <= 0.0) {
    throw std::invalid_argument("Decay: half_life must be > 0");
  }
  if ((config_.kind == DecayKind::kSlidingWindow || config_.kind == DecayKind::kLinear) &&
      config_.window <= 0.0) {
    throw std::invalid_argument("Decay: window must be > 0");
  }
}

double Decay::weight(double age) const noexcept {
  if (age <= 0.0) return 1.0;
  switch (config_.kind) {
    case DecayKind::kNone:
      return 1.0;
    case DecayKind::kExponentialHalfLife:
      return std::exp2(-age / config_.half_life);
    case DecayKind::kSlidingWindow:
      return age <= config_.window ? 1.0 : 0.0;
    case DecayKind::kLinear:
      return age >= config_.window ? 0.0 : 1.0 - age / config_.window;
  }
  return 1.0;
}

double Decay::decayed_total(const std::vector<std::pair<double, double>>& bins,
                            double now) const {
  // Weights clamp at 1 for future-dated bins (age <= 0, e.g. clock skew
  // between sites), and the sum is evaluated in (time, amount) order so
  // the result is independent of the order bins arrive in: floating-point
  // addition does not commute across orderings, and callers merge
  // histograms from several sources.
  const auto sorted_sum = [this, now](const std::vector<std::pair<double, double>>& sorted) {
    double total = 0.0;
    for (const auto& [time, amount] : sorted) total += amount * weight(now - time);
    return total;
  };
  if (std::is_sorted(bins.begin(), bins.end())) return sorted_sum(bins);
  std::vector<std::pair<double, double>> sorted = bins;
  std::sort(sorted.begin(), sorted.end());
  return sorted_sum(sorted);
}

json::Value Decay::to_json() const {
  json::Object obj;
  switch (config_.kind) {
    case DecayKind::kNone: obj["kind"] = "none"; break;
    case DecayKind::kExponentialHalfLife: obj["kind"] = "half-life"; break;
    case DecayKind::kSlidingWindow: obj["kind"] = "window"; break;
    case DecayKind::kLinear: obj["kind"] = "linear"; break;
  }
  obj["half_life"] = config_.half_life;
  obj["window"] = config_.window;
  return json::Value(std::move(obj));
}

Decay Decay::from_json(const json::Value& value) {
  DecayConfig config;
  const std::string kind = value.get_string("kind", "half-life");
  if (kind == "none") config.kind = DecayKind::kNone;
  else if (kind == "half-life") config.kind = DecayKind::kExponentialHalfLife;
  else if (kind == "window") config.kind = DecayKind::kSlidingWindow;
  else if (kind == "linear") config.kind = DecayKind::kLinear;
  else throw std::invalid_argument("Decay::from_json: unknown kind " + kind);
  config.half_life = value.get_number("half_life", config.half_life);
  config.window = value.get_number("window", config.window);
  return Decay(config);
}

}  // namespace aequus::core
