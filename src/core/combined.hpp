// Combined vector priorities — the paper's stated future-work direction.
//
// §III-C: "More work on finding alternative approaches is also ongoing,
// where one interesting alternative is to reverse the problem and instead
// investigate modeling other factors, such as job age, using a
// representation combinable with the fairshare vectors."
//
// This module implements that idea: non-fairshare factors (job age, job
// size, QoS) are quantized into vector *elements* and merged with the
// user's fairshare vector, so the final scheduling order is a single
// lexicographic comparison over an extended vector instead of a weighted
// scalar sum. Two merge strategies are provided:
//
//   kAppend   - factor elements are appended after the fairshare levels:
//               fairshare strictly dominates; other factors only break
//               fairshare ties. Keeps full subgroup isolation.
//   kPrepend  - factor elements come first: factors dominate and
//               fairshare breaks their ties (e.g. hard aging guarantees).
//
// Because the combined representation is still a vector, it retains the
// arbitrary-depth / unlimited-precision properties of Table I that every
// scalar projection has to give up.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/vector.hpp"

namespace aequus::core {

/// RM-neutral job attributes consumed by vector factors (core stays below
/// the RM substrates in the layering; adapters fill this from their own
/// job types).
struct JobAttributes {
  double wait_time = 0.0;  ///< seconds in the queue
  int cores = 1;           ///< processors requested
  double qos = 0.0;        ///< site-defined quality-of-service in [0, 1]
};

/// A named factor producing a raw value in [-1, 1] for a job (encoded
/// like a fairshare level: -1 worst, 0 neutral, +1 best).
struct VectorFactor {
  std::string name;
  std::function<double(const JobAttributes& job)> value;
};

/// Standard factors, pre-normalized to [-1, 1].
/// Age: -1 at zero wait, +1 at max_age (linear ramp, saturating).
[[nodiscard]] VectorFactor age_factor(double max_age);
/// Size: +1 for single-core jobs, -1 at max_cores (favors small jobs).
[[nodiscard]] VectorFactor small_job_factor(int max_cores);
/// QoS: passes the site-defined [0, 1] level through as [-1, 1].
[[nodiscard]] VectorFactor qos_factor();

enum class MergeOrder { kAppend, kPrepend };

/// Builds combined vectors for jobs from fairshare vectors plus factors.
class CombinedVectorPriority {
 public:
  CombinedVectorPriority(std::vector<VectorFactor> factors,
                         MergeOrder order = MergeOrder::kAppend);

  /// The combined vector for a job, given its user's fairshare vector.
  [[nodiscard]] FairshareVector combine(const FairshareVector& fairshare,
                                        const JobAttributes& job) const;

  /// Scalar ranks in [0, 1] for a batch of jobs (rank-spaced like
  /// dictionary ordering, since RM queues ultimately need scalars).
  /// Output aligns with the input order.
  [[nodiscard]] std::vector<double> rank(
      const std::vector<std::pair<JobAttributes, FairshareVector>>& jobs) const;

  [[nodiscard]] const std::vector<VectorFactor>& factors() const noexcept { return factors_; }
  [[nodiscard]] MergeOrder order() const noexcept { return order_; }

 private:
  std::vector<VectorFactor> factors_;
  MergeOrder order_;
};

}  // namespace aequus::core
