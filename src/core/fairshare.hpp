// The fairshare calculation algorithm (§II-A and [10]).
//
// For every tree node with sibling-normalized policy share p and
// sibling-normalized (decayed) usage share u, the fairshare distance is a
// weighted combination of two metrics:
//
//   absolute distance  d_abs = p - u                      (range [-1, p])
//   relative distance  d_rel = clamp((p - u) / p, -1, 1)  (1 when idle)
//   distance           d     = k * d_rel + (1 - k) * d_abs
//
// with configurable weight k, default 0.5 ("a default weight of 0.5
// indicating that the absolute and relative components have equal
// weight"). A user below its share gets d > 0, an over-consumer d < 0,
// and perfect balance gives d = 0 — the balance point of the vector
// encoding. With k = 0.5 the maximum distance of a user with share s is
// 0.5 * (1 + s), reproducing the paper's §IV-A-5 check (0.56 for s=0.12).
//
// FairshareEngine::compute_once() walks policy and usage trees together
// and produces a FairshareTree holding per-node distances, from which
// per-user fairshare vectors are extracted (§III-C) and projections
// computed; the incremental engine maintains the same annotation
// statefully.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "core/usage.hpp"
#include "core/vector.hpp"
#include "json/decode.hpp"

namespace aequus::core {

/// The neutral priority factor (the percental balance point): a user at
/// perfect policy/usage balance projects here. This is also the documented
/// resolution for *missing* leaves — a user absent from a factor table
/// (churned in between snapshot generations, unresolvable identity, no
/// data yet) must read as kNeutralFactor, never as a default-constructed
/// 0.0 that would zero the job's whole priority.
inline constexpr double kNeutralFactor = 0.5;

struct FairshareConfig {
  double distance_weight_k = 0.5;       ///< weight of the relative component
  int resolution = kDefaultResolution;  ///< vector element range
};

/// Config wire format: {"k": 0.5, "resolution": 10000}.
[[nodiscard]] json::Value to_json(const FairshareConfig& config);

/// Result of the fairshare calculation: the policy tree annotated with
/// normalized shares, normalized usage, and per-node distances.
class FairshareTree {
 public:
  struct Node {
    std::string name;
    double policy_share = 0.0;  ///< normalized among siblings
    double usage_share = 0.0;   ///< normalized among siblings
    double distance = 0.0;      ///< the per-node fairshare value
    std::vector<Node> children;

    [[nodiscard]] const Node* find_child(const std::string& child_name) const;
    [[nodiscard]] bool leaf() const noexcept { return children.empty(); }
  };

  [[nodiscard]] const Node& root() const noexcept { return root_; }
  [[nodiscard]] const Node* find(const std::string& path) const;

  /// Per-level distances from root to `path`, padded to the tree depth
  /// with the balance point. Nullopt for unknown paths.
  [[nodiscard]] std::optional<FairshareVector> vector_for(const std::string& path) const;

  /// Leaf (user) paths, depth-first.
  [[nodiscard]] std::vector<std::string> user_paths() const;

  /// Maximum levels below the root.
  [[nodiscard]] int depth() const;

  [[nodiscard]] int resolution() const noexcept { return resolution_; }

  /// Wire format used by the FCS when serving pre-calculated trees.
  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static FairshareTree from_json(const json::Value& value);

 private:
  friend class FairshareAlgorithm;
  friend class FairshareSnapshot;  // FairshareSnapshot::to_tree()
  Node root_;
  int resolution_ = kDefaultResolution;
};

/// The parameterized algorithm; stateless apart from its configuration.
class FairshareAlgorithm {
 public:
  FairshareAlgorithm() = default;
  explicit FairshareAlgorithm(FairshareConfig config);

  [[nodiscard]] const FairshareConfig& config() const noexcept { return config_; }

  /// Distance for a single node given normalized shares.
  [[nodiscard]] double node_distance(double policy_share, double usage_share) const noexcept;

  // The legacy batch compute() wrapper is gone: one-shot annotations go
  // through FairshareEngine::compute_once(config, policy, usage), and
  // schedulers read published snapshots via rms::PriorityContext.

 private:
  FairshareConfig config_{};
};

}  // namespace aequus::core

/// json::decode<core::FairshareConfig> support.
template <>
struct aequus::json::Decoder<aequus::core::FairshareConfig> {
  [[nodiscard]] static aequus::core::FairshareConfig decode(const Value& value);
};

namespace aequus::core {

/// Deprecated spelling of json::decode<FairshareConfig>().
[[deprecated("use json::decode<core::FairshareConfig>()")]] [[nodiscard]] inline FairshareConfig
fairshare_config_from_json(const json::Value& value) {
  return json::decode<FairshareConfig>(value);
}

}  // namespace aequus::core
