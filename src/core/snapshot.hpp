// Immutable, generation-stamped fairshare state (the read side of the
// incremental FairshareEngine).
//
// A FairshareSnapshot is a persistent (structurally shared) copy of the
// annotated fairshare tree plus the projected per-user factors layered on
// top of it. Snapshots are published behind
// `std::shared_ptr<const FairshareSnapshot>` handles: once published they
// never change, so scheduler plugins, libaequus clients, and parallel
// sweep workers read them lock-free while the engine keeps mutating its
// private working tree. Consecutive generations share every subtree the
// update did not touch.
//
// The generation counter orders snapshots from one engine: a reader can
// cheaply detect "nothing changed" by comparing generations instead of
// trees. Client-side snapshots decoded from the wire may carry factors
// only (no tree) — factor_for() still works, tree queries report an
// empty tree.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/fairshare.hpp"

namespace aequus::core {

class FairshareSnapshot;
using FairshareSnapshotPtr = std::shared_ptr<const FairshareSnapshot>;

class FairshareSnapshot {
 public:
  /// One annotated node; children are shared with other generations when
  /// their subtree did not change.
  struct Node {
    std::string name;
    double policy_share = 0.0;  ///< normalized among siblings
    double usage_share = 0.0;   ///< normalized among siblings
    double distance = 0.0;      ///< the per-node fairshare value
    std::vector<std::shared_ptr<const Node>> children;

    [[nodiscard]] const Node* find_child(const std::string& child_name) const;
    [[nodiscard]] bool leaf() const noexcept { return children.empty(); }
  };

  FairshareSnapshot() = default;
  FairshareSnapshot(std::shared_ptr<const Node> root, std::uint64_t generation, int resolution,
                    int depth);

  /// Derive a snapshot that shares `base`'s tree (same generation) but
  /// carries projected factors: leaf path -> factor and leaf name ->
  /// factor. This is how the FCS layers its projection on the engine's
  /// published tree without copying it.
  [[nodiscard]] static FairshareSnapshotPtr with_factors(
      const FairshareSnapshotPtr& base, std::map<std::string, double> path_factors,
      std::map<std::string, double> user_factors);

  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }
  [[nodiscard]] int resolution() const noexcept { return resolution_; }
  [[nodiscard]] bool has_tree() const noexcept { return root_ != nullptr; }

  /// Root of the annotated tree; a leaf-only placeholder when the
  /// snapshot carries factors without a tree.
  [[nodiscard]] const Node& root() const noexcept;
  [[nodiscard]] const Node* find(const std::string& path) const;

  /// Per-level distances from root to `path`, padded to the tree depth
  /// with the balance point. Nullopt for unknown paths.
  [[nodiscard]] std::optional<FairshareVector> vector_for(const std::string& path) const;

  /// Leaf (user) paths, depth-first.
  [[nodiscard]] std::vector<std::string> user_paths() const;

  /// Maximum levels below the root (cached at publish time).
  [[nodiscard]] int depth() const noexcept { return depth_; }

  /// Projected factor for a leaf name or path; kNeutralFactor (the
  /// balance point) when the user is unknown — including one churned in
  /// after this generation was cut — or when the snapshot carries no
  /// factors. Never a priority-zeroing 0.0.
  [[nodiscard]] double factor_for(const std::string& user) const;

  /// Projected factors, when present: policy leaf path -> factor and leaf
  /// name -> factor.
  [[nodiscard]] const std::map<std::string, double>& path_factors() const noexcept {
    return path_factors_;
  }
  [[nodiscard]] const std::map<std::string, double>& user_factors() const noexcept {
    return user_factors_;
  }

  /// Deep-copy into the mutable batch representation (compatibility with
  /// pre-engine call sites).
  [[nodiscard]] FairshareTree to_tree() const;

  /// Tree portion in the exact wire format of FairshareTree::to_json().
  [[nodiscard]] json::Value tree_to_json() const;

  /// Full wire format: {"generation":g,"resolution":r,"users":{...}} plus
  /// "tree" when a tree is present and `include_tree` is set.
  [[nodiscard]] json::Value to_json(bool include_tree = true) const;
  [[nodiscard]] static FairshareSnapshotPtr from_json(const json::Value& value);

 private:
  std::shared_ptr<const Node> root_;
  std::uint64_t generation_ = 0;
  int resolution_ = kDefaultResolution;
  int depth_ = 0;
  std::map<std::string, double> path_factors_;  ///< leaf path -> factor
  std::map<std::string, double> user_factors_;  ///< leaf name -> factor
};

}  // namespace aequus::core
