// Projections of fairshare vectors to scalar priority factors (§III-C,
// Table I).
//
// SLURM and Maui combine priority factors linearly, each factor being a
// value in [0, 1]. The fairshare vector must therefore be projected down
// to one float, and no projection can preserve all vector properties:
//
//   Dictionary Ordering - vectors sorted descending (lexicographically on
//       the encoded elements); rank r of n maps to (n - r) / (n + 1),
//       e.g. three vectors give 0.75, 0.50, 0.25. Keeps depth, precision,
//       and isolation; loses proportionality.
//   Bitwise Vector - each level contributes N bits, merged most
//       significant first into a double and rescaled to [0, 1]. Keeps
//       isolation and proportionality within its finite depth/precision.
//   Percental - the user's total target share (product of policy shares
//       along the path) minus the total usage share (product of usage
//       shares), rescaled from [-1, 1] to [0, 1]. Keeps depth, precision,
//       and proportionality; loses subgroup isolation. This is the
//       approach used in production and all testbed experiments, and is
//       similar to SLURM's pre-2.5 fairshare.
#pragma once

#include <map>
#include <string>

#include "core/fairshare.hpp"
#include "core/snapshot.hpp"

namespace aequus::core {

enum class ProjectionKind { kDictionaryOrdering, kBitwiseVector, kPercental };

[[nodiscard]] std::string to_string(ProjectionKind kind);

/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] ProjectionKind projection_kind_from_string(const std::string& name);

struct ProjectionConfig {
  ProjectionKind kind = ProjectionKind::kPercental;
  int bits_per_level = 8;  ///< bitwise vector: entropy per hierarchy level
};

/// Config wire format: {"kind": "percental", "bits_per_level": 8}.
[[nodiscard]] json::Value to_json(const ProjectionConfig& config);

/// Project every user (leaf) of `tree` to a priority factor in [0, 1].
[[nodiscard]] std::map<std::string, double> project(const FairshareTree& tree,
                                                    const ProjectionConfig& config = {});

/// Same projection over an engine-published snapshot; identical factors
/// for an identical annotated tree (both overloads share one
/// implementation).
[[nodiscard]] std::map<std::string, double> project(const FairshareSnapshot& snapshot,
                                                    const ProjectionConfig& config = {});

/// Percental projection for a single user path (the other projections are
/// inherently whole-population operations). Returns 0.5 at perfect
/// balance; nullopt-free: unknown paths map to the balance point.
[[nodiscard]] double percental_value(const FairshareTree& tree, const std::string& path);
[[nodiscard]] double percental_value(const FairshareSnapshot& snapshot, const std::string& path);

}  // namespace aequus::core

/// json::decode<core::ProjectionConfig> support.
template <>
struct aequus::json::Decoder<aequus::core::ProjectionConfig> {
  [[nodiscard]] static aequus::core::ProjectionConfig decode(const Value& value);
};

namespace aequus::core {

/// Deprecated spelling of json::decode<ProjectionConfig>().
[[deprecated("use json::decode<core::ProjectionConfig>()")]] [[nodiscard]] inline ProjectionConfig
projection_config_from_json(const json::Value& value) {
  return json::decode<ProjectionConfig>(value);
}

}  // namespace aequus::core
