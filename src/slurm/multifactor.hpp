// The multifactor priority plugin (priority/multifactor).
//
// SLURM's multifactor plugin combines normalized factors linearly:
//   priority = w_age * age + w_fairshare * fairshare + w_jobsize * size
//            + w_partition * partition + w_qos * qos
// with every factor in [0, 1] (§III-C: "Both SLURM and Maui employ a
// linear combination of several factors ... Each factor is represented by
// a value in the [0,1] range, and configurable weights are applied").
//
// The fairshare factor comes from a pluggable FairshareSource — the exact
// line the paper replaces: "the normal fairshare priority calculation
// code replaced with a call to libaequus".
#pragma once

#include <functional>
#include <string>

#include "slurm/plugin.hpp"

namespace aequus::slurm {

/// Produces the [0, 1] fairshare factor for a job; sources that integrate
/// Aequus read context.fairshare (the per-pass snapshot) and fall back to
/// the client cache when it is null.
using FairshareSource = std::function<double(const rms::PriorityContext& context)>;

struct MultifactorWeights {
  double age = 0.0;
  double fairshare = 1.0;
  double job_size = 0.0;
  double partition = 0.0;
  double qos = 0.0;
  /// Age factor saturates at this queue wait (PriorityMaxAge).
  double max_age = 7.0 * 86400.0;
  /// Job-size normalization: cores of the largest possible job.
  int max_cores = 1024;
};

class MultifactorPriorityPlugin final : public PriorityPlugin {
 public:
  MultifactorPriorityPlugin(MultifactorWeights weights, FairshareSource fairshare);

  [[nodiscard]] std::string name() const override { return "priority/multifactor"; }
  [[nodiscard]] double priority(const rms::PriorityContext& context) override;

  /// Individual factors, exposed for tests and for the smoothing study
  /// ("other factors have a smoothing effect ... on the fluctuating
  /// behavior natural to fairshare").
  [[nodiscard]] double age_factor(const rms::Job& job, double now) const;
  [[nodiscard]] double job_size_factor(const rms::Job& job) const;
  [[nodiscard]] double fairshare_factor(const rms::PriorityContext& context) const;

  [[nodiscard]] const MultifactorWeights& weights() const noexcept { return weights_; }

 private:
  MultifactorWeights weights_;
  FairshareSource fairshare_;
};

}  // namespace aequus::slurm
