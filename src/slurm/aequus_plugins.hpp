// The Aequus integration plugins (§III-A).
//
// "The priority plug-in is based on the existing multifactor priority
// plugin, with the normal fairshare priority calculation code replaced
// with a call to libaequus. A job completion plug-in supplies usage
// information to Aequus by calling libaequus."
//
// Both plugins work on *system users*: the priority plugin resolves the
// grid identity through libaequus (IRS + cache) before asking for the
// global factor, falling back to the balance value for unresolvable
// accounts; the jobcomp plugin resolves and reports completed usage.
#pragma once

#include "libaequus/client.hpp"
#include "slurm/multifactor.hpp"

namespace aequus::slurm {

/// FairshareSource backed by libaequus: the drop-in replacement for the
/// local fairshare calculation inside the multifactor plugin.
[[nodiscard]] FairshareSource aequus_fairshare_source(client::AequusClient& client);

/// jobcomp/aequus: reports completed jobs' usage to Aequus.
class AequusJobCompPlugin final : public JobCompPlugin {
 public:
  explicit AequusJobCompPlugin(client::AequusClient& client);

  [[nodiscard]] std::string name() const override { return "jobcomp/aequus"; }
  void job_complete(const rms::Job& job, double now) override;

  [[nodiscard]] std::uint64_t reported() const noexcept { return reported_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  client::AequusClient& client_;
  std::uint64_t reported_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Build the full Aequus priority plugin: multifactor with the fairshare
/// factor redirected to libaequus ("priority/aequus").
[[nodiscard]] std::unique_ptr<PriorityPlugin> make_aequus_priority_plugin(
    client::AequusClient& client, MultifactorWeights weights = {});

}  // namespace aequus::slurm
