// Local (single-cluster) fairshare calculation — the mechanism Aequus
// replaces, kept as the comparison baseline.
//
// Mirrors SLURM's pre-2.5 fairshare (which the paper notes is similar to
// the percental projection): each system user has a configured normalized
// share; the factor is the difference between share and the user's
// half-life-decayed fraction of local usage, rescaled to [0, 1]:
//   factor = clamp((share - usage_share + 1) / 2)
// Only local history is considered — this is exactly the "each site an
// independent fairshare prioritization system" situation of §I.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/decay.hpp"

namespace aequus::slurm {

class LocalFairshare {
 public:
  explicit LocalFairshare(core::DecayConfig decay = {});

  /// Configure a user's target share (raw weight; normalized over users).
  void set_share(const std::string& system_user, double share);

  /// Record completed usage (core-seconds) at time `now`.
  void record_usage(const std::string& system_user, double usage, double now);

  /// Fairshare factor in [0, 1] at time `now`. Unknown users get the
  /// balance value 0.5 when idle.
  [[nodiscard]] double factor(const std::string& system_user, double now) const;

  /// Decayed usage share of a user among all users at time `now`.
  [[nodiscard]] double usage_share(const std::string& system_user, double now) const;

  /// Normalized configured share (0 for unknown users).
  [[nodiscard]] double normalized_share(const std::string& system_user) const;

 private:
  core::Decay decay_;
  std::map<std::string, double> shares_;
  std::map<std::string, std::vector<std::pair<double, double>>> usage_bins_;
};

}  // namespace aequus::slurm
