#include "slurm/aequus_plugins.hpp"

namespace aequus::slurm {

FairshareSource aequus_fairshare_source(client::AequusClient& client) {
  return [&client](const rms::PriorityContext& context) -> double {
    // Prefer an already-known grid identity; otherwise resolve the system
    // account through the IRS.
    std::string grid_user = context.job.grid_user;
    if (grid_user.empty()) {
      const auto resolved = client.resolve_identity(context.job.system_user);
      if (!resolved) return core::kNeutralFactor;  // unresolvable accounts stay neutral
      grid_user = *resolved;
    }
    // One fetch path for every scheduler flavour: the pass's pinned
    // snapshot when the scheduler supplied one — the same values as the
    // client cache (the client publishes it), but one consistent
    // generation for the whole sweep — with the client's cached snapshot
    // as the no-provider fallback. PriorityContext::priority_of owns the
    // missing-leaf kNeutralFactor convention.
    return context.priority_of(grid_user, client.snapshot());
  };
}

AequusJobCompPlugin::AequusJobCompPlugin(client::AequusClient& client) : client_(client) {}

void AequusJobCompPlugin::job_complete(const rms::Job& job, double now) {
  // Plugin hop of the jobcomp chain: separates time spent in the RM's
  // completion hook from the client/bus hops below it.
  obs::Tracer* tracer = client_.observability().tracer;
  obs::SpanContext span;
  if (tracer != nullptr && tracer->enabled()) {
    span = tracer->begin_span(now, client_.config().site, "slurm", "jobcomp_plugin");
  }
  obs::SpanScope scope(tracer, span);
  bool ok = false;
  if (!job.grid_user.empty()) {
    client_.report_usage(job.grid_user, job.usage());
    ok = true;
  } else {
    ok = client_.report_system_usage(job.system_user, job.usage());
  }
  if (ok) {
    ++reported_;
  } else {
    ++dropped_;
  }
  if (span.valid() && tracer != nullptr) {
    tracer->end_span(now, span, client_.config().site, "slurm", ok ? "reported" : "dropped");
  }
}

namespace {
class AequusPriorityPlugin final : public PriorityPlugin {
 public:
  AequusPriorityPlugin(client::AequusClient& client, MultifactorWeights weights)
      : inner_(weights, aequus_fairshare_source(client)) {}

  [[nodiscard]] std::string name() const override { return "priority/aequus"; }
  [[nodiscard]] double priority(const rms::PriorityContext& context) override {
    return inner_.priority(context);
  }

 private:
  MultifactorPriorityPlugin inner_;
};
}  // namespace

std::unique_ptr<PriorityPlugin> make_aequus_priority_plugin(client::AequusClient& client,
                                                            MultifactorWeights weights) {
  return std::make_unique<AequusPriorityPlugin>(client, weights);
}

}  // namespace aequus::slurm
