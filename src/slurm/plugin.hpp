// The SLURM-like plugin system (§III-A).
//
// Real SLURM loads priority and job-completion plugins by name at
// run-time; integration with Aequus is "done by implementing custom
// Aequus priority and job completion plugins for use in the SLURM plug-in
// system". This module reproduces that seam: typed plugin interfaces plus
// a name-keyed registry, so the controller is configured with plugin
// *names* exactly like slurm.conf's PriorityType / JobCompType.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rms/job.hpp"
#include "rms/scheduler.hpp"

namespace aequus::slurm {

/// Computes the scheduling priority of a pending job (PriorityType=...).
/// Receives the scheduler's PriorityContext, which carries the job, the
/// decision time, and the per-pass fairshare snapshot.
class PriorityPlugin {
 public:
  virtual ~PriorityPlugin() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual double priority(const rms::PriorityContext& context) = 0;
};

/// Notified when a job completes (JobCompType=...).
class JobCompPlugin {
 public:
  virtual ~JobCompPlugin() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void job_complete(const rms::Job& job, double now) = 0;
};

/// Name-keyed plugin factories, mirroring SLURM's dynamic plugin loading.
class PluginRegistry {
 public:
  using PriorityFactory = std::function<std::unique_ptr<PriorityPlugin>()>;
  using JobCompFactory = std::function<std::unique_ptr<JobCompPlugin>()>;

  void register_priority(const std::string& name, PriorityFactory factory);
  void register_jobcomp(const std::string& name, JobCompFactory factory);

  /// Instantiate a registered plugin; throws std::out_of_range on unknown
  /// names (SLURM would fail to start in the same situation).
  [[nodiscard]] std::unique_ptr<PriorityPlugin> create_priority(const std::string& name) const;
  [[nodiscard]] std::unique_ptr<JobCompPlugin> create_jobcomp(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> priority_plugin_names() const;
  [[nodiscard]] std::vector<std::string> jobcomp_plugin_names() const;

 private:
  std::map<std::string, PriorityFactory> priority_factories_;
  std::map<std::string, JobCompFactory> jobcomp_factories_;
};

}  // namespace aequus::slurm
