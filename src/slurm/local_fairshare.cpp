#include "slurm/local_fairshare.hpp"

#include <algorithm>
#include <cmath>

namespace aequus::slurm {

LocalFairshare::LocalFairshare(core::DecayConfig decay) : decay_(decay) {}

void LocalFairshare::set_share(const std::string& system_user, double share) {
  shares_[system_user] = std::max(share, 0.0);
}

void LocalFairshare::record_usage(const std::string& system_user, double usage, double now) {
  if (usage <= 0.0) return;
  auto& bins = usage_bins_[system_user];
  // Coarse 60-second bins keep the decay evaluation cheap.
  const double bin = std::floor(now / 60.0) * 60.0;
  if (!bins.empty() && bins.back().first == bin) {
    bins.back().second += usage;
  } else {
    bins.emplace_back(bin, usage);
  }
}

double LocalFairshare::usage_share(const std::string& system_user, double now) const {
  double own = 0.0;
  double total = 0.0;
  for (const auto& [user, bins] : usage_bins_) {
    const double amount = decay_.decayed_total(bins, now);
    total += amount;
    if (user == system_user) own = amount;
  }
  if (total <= 0.0) return 0.0;
  return own / total;
}

double LocalFairshare::normalized_share(const std::string& system_user) const {
  double total = 0.0;
  for (const auto& [user, share] : shares_) {
    (void)user;
    total += share;
  }
  if (total <= 0.0) return 0.0;
  const auto it = shares_.find(system_user);
  return it == shares_.end() ? 0.0 : it->second / total;
}

double LocalFairshare::factor(const std::string& system_user, double now) const {
  const double share = normalized_share(system_user);
  const double usage = usage_share(system_user, now);
  return std::clamp((share - usage + 1.0) / 2.0, 0.0, 1.0);
}

}  // namespace aequus::slurm
