#include "slurm/plugin.hpp"

#include <stdexcept>

namespace aequus::slurm {

void PluginRegistry::register_priority(const std::string& name, PriorityFactory factory) {
  priority_factories_[name] = std::move(factory);
}

void PluginRegistry::register_jobcomp(const std::string& name, JobCompFactory factory) {
  jobcomp_factories_[name] = std::move(factory);
}

std::unique_ptr<PriorityPlugin> PluginRegistry::create_priority(const std::string& name) const {
  const auto it = priority_factories_.find(name);
  if (it == priority_factories_.end()) {
    throw std::out_of_range("PluginRegistry: unknown priority plugin " + name);
  }
  return it->second();
}

std::unique_ptr<JobCompPlugin> PluginRegistry::create_jobcomp(const std::string& name) const {
  const auto it = jobcomp_factories_.find(name);
  if (it == jobcomp_factories_.end()) {
    throw std::out_of_range("PluginRegistry: unknown jobcomp plugin " + name);
  }
  return it->second();
}

std::vector<std::string> PluginRegistry::priority_plugin_names() const {
  std::vector<std::string> names;
  for (const auto& [name, factory] : priority_factories_) {
    (void)factory;
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> PluginRegistry::jobcomp_plugin_names() const {
  std::vector<std::string> names;
  for (const auto& [name, factory] : jobcomp_factories_) {
    (void)factory;
    names.push_back(name);
  }
  return names;
}

}  // namespace aequus::slurm
