// The SLURM-like controller ("slurmctld"): the scheduling engine wired to
// the plugin system.
#pragma once

#include <memory>
#include <vector>

#include "rms/scheduler.hpp"
#include "slurm/plugin.hpp"

namespace aequus::slurm {

class SlurmController final : public rms::SchedulerBase {
 public:
  /// Takes ownership of the priority plugin (required).
  SlurmController(sim::Simulator& simulator, rms::Cluster cluster,
                  std::unique_ptr<PriorityPlugin> priority_plugin,
                  rms::SchedulerConfig config = {});

  /// Add a job-completion plugin (invoked in registration order).
  void add_jobcomp_plugin(std::unique_ptr<JobCompPlugin> plugin);

  [[nodiscard]] const PriorityPlugin& priority_plugin() const noexcept { return *priority_; }

 protected:
  double compute_priority(const rms::PriorityContext& context) override;
  void on_job_completed(const rms::Job& job) override;

 private:
  std::unique_ptr<PriorityPlugin> priority_;
  std::vector<std::unique_ptr<JobCompPlugin>> jobcomp_;
};

}  // namespace aequus::slurm
