#include "slurm/controller.hpp"

#include <stdexcept>

namespace aequus::slurm {

SlurmController::SlurmController(sim::Simulator& simulator, rms::Cluster cluster,
                                 std::unique_ptr<PriorityPlugin> priority_plugin,
                                 rms::SchedulerConfig config)
    : rms::SchedulerBase(simulator, std::move(cluster), config),
      priority_(std::move(priority_plugin)) {
  if (!priority_) {
    throw std::invalid_argument("SlurmController: priority plugin required");
  }
}

void SlurmController::add_jobcomp_plugin(std::unique_ptr<JobCompPlugin> plugin) {
  jobcomp_.push_back(std::move(plugin));
}

double SlurmController::compute_priority(const rms::PriorityContext& context) {
  return priority_->priority(context);
}

void SlurmController::on_job_completed(const rms::Job& job) {
  for (const auto& plugin : jobcomp_) plugin->job_complete(job, simulator().now());
}

}  // namespace aequus::slurm
