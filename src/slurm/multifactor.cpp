#include "slurm/multifactor.hpp"

#include <algorithm>
#include <stdexcept>

namespace aequus::slurm {

MultifactorPriorityPlugin::MultifactorPriorityPlugin(MultifactorWeights weights,
                                                     FairshareSource fairshare)
    : weights_(weights), fairshare_(std::move(fairshare)) {
  if (!fairshare_) {
    throw std::invalid_argument("MultifactorPriorityPlugin: fairshare source required");
  }
}

double MultifactorPriorityPlugin::age_factor(const rms::Job& job, double now) const {
  if (weights_.max_age <= 0.0) return 0.0;
  return std::clamp(job.wait_time(now) / weights_.max_age, 0.0, 1.0);
}

double MultifactorPriorityPlugin::job_size_factor(const rms::Job& job) const {
  if (weights_.max_cores <= 0) return 0.0;
  return std::clamp(static_cast<double>(job.cores) / weights_.max_cores, 0.0, 1.0);
}

double MultifactorPriorityPlugin::fairshare_factor(const rms::PriorityContext& context) const {
  return std::clamp(fairshare_(context), 0.0, 1.0);
}

double MultifactorPriorityPlugin::priority(const rms::PriorityContext& context) {
  const rms::Job& job = context.job;
  const double now = context.now;
  double priority = 0.0;
  priority += weights_.age * age_factor(job, now);
  priority += weights_.fairshare * fairshare_factor(context);
  priority += weights_.job_size * job_size_factor(job);
  // Partition and QoS factors are constant in the single-partition,
  // single-QoS testbed; their weights still participate so ablations can
  // exercise the smoothing effect of non-fairshare terms.
  priority += weights_.partition * 0.0;
  priority += weights_.qos * 0.0;
  return priority;
}

}  // namespace aequus::slurm
