#include "scenario/compile.hpp"

#include <algorithm>
#include <cmath>

#include "testbed/config.hpp"
#include "testing/determinism.hpp"
#include "util/strings.hpp"
#include "workload/scenarios.hpp"

namespace aequus::scenario {

namespace {

/// A phase schedule completed into contiguous segments covering [0, 1]:
/// declared phases keep their rate, gaps get rate 1.
struct Segment {
  double start = 0.0;
  double end = 0.0;
  double rate = 1.0;
  double cumulative = 0.0;  ///< intensity mass below `start`
};

std::vector<Segment> complete_schedule(const std::vector<PhaseSpec>& phases) {
  std::vector<Segment> segments;
  double cursor = 0.0;
  for (const PhaseSpec& phase : phases) {  // parse_phases sorted + disjoint
    if (phase.start > cursor) segments.push_back({cursor, phase.start, 1.0, 0.0});
    segments.push_back({phase.start, phase.end, phase.rate, 0.0});
    cursor = phase.end;
  }
  if (cursor < 1.0) segments.push_back({cursor, 1.0, 1.0, 0.0});
  double mass = 0.0;
  for (Segment& segment : segments) {
    segment.cumulative = mass;
    mass += segment.rate * (segment.end - segment.start);
  }
  return segments;
}

workload::Scenario build_base(const WorkloadSpec& workload, std::size_t jobs) {
  if (workload.base == "baseline") return workload::baseline_scenario(workload.seed, jobs);
  if (workload.base == "nonoptimal-policy") {
    return workload::nonoptimal_policy_scenario(workload.seed, jobs);
  }
  if (workload.base == "bursty") return workload::bursty_scenario(workload.seed, jobs);
  throw SpecError("$.workload.base: unknown base workload '" + workload.base + "'");
}

/// Cluster/host overrides change capacity; rescale durations by the
/// capacity ratio so the trace still carries target_load of the new
/// testbed (the generators targeted the default 6 x 40).
void apply_sizing(workload::Scenario& scenario, const WorkloadSpec& workload) {
  if (workload.clusters <= 0 && workload.hosts_per_cluster <= 0) return;
  const double before = scenario.capacity_core_seconds();
  if (workload.clusters > 0) scenario.cluster_count = workload.clusters;
  if (workload.hosts_per_cluster > 0) scenario.hosts_per_cluster = workload.hosts_per_cluster;
  const double after = scenario.capacity_core_seconds();
  if (before <= 0.0 || after == before) return;
  const double ratio = after / before;
  for (auto& record : scenario.trace.records()) record.duration *= ratio;
}

net::FaultPlan lower_faults(const FaultSpec& faults, double duration) {
  net::FaultPlan plan;
  plan.loss_rate = faults.loss_rate;
  plan.duplicate_rate = faults.duplicate_rate;
  plan.latency_jitter = faults.latency_jitter;
  plan.seed = faults.seed;
  for (const LinkLossSpec& link : faults.link_loss) {
    plan.link_loss[{link.from, link.to}] = link.rate;
  }
  for (const OutageSpec& outage : faults.outages) {
    plan.outages.push_back({outage.site, outage.start * duration, outage.end * duration});
  }
  return plan;
}

}  // namespace

std::size_t effective_jobs(const WorkloadSpec& workload, const CompileOptions& options) {
  double jobs = static_cast<double>(workload.jobs) * options.jobs_scale;
  if (options.max_jobs > 0) jobs = std::min(jobs, static_cast<double>(options.max_jobs));
  jobs = std::max(jobs, static_cast<double>(options.min_jobs));
  return static_cast<std::size_t>(jobs);
}

workload::Trace remap_arrivals(const workload::Trace& trace,
                               const std::vector<PhaseSpec>& phases, double duration) {
  if (phases.empty() || trace.empty() || duration <= 0.0) return trace;
  const std::vector<Segment> segments = complete_schedule(phases);
  const Segment& last = segments.back();
  const double mass = last.cumulative + last.rate * (last.end - last.start);
  if (mass <= 0.0) {
    throw SpecError("$.phases: schedule carries no arrival mass (all rates are 0)");
  }

  workload::Trace out = trace;
  for (auto& record : out.records()) {
    const double quantile = std::clamp(record.submit / duration, 0.0, 1.0);
    const double target = quantile * mass;
    // Find the segment holding `target` and invert its linear ramp.
    double remapped = last.end;
    for (const Segment& segment : segments) {
      const double segment_mass = segment.rate * (segment.end - segment.start);
      if (target <= segment.cumulative + segment_mass || &segment == &last) {
        remapped = segment.rate > 0.0
                       ? segment.start + (target - segment.cumulative) / segment.rate
                       : segment.end;
        break;
      }
    }
    record.submit = std::clamp(remapped, 0.0, 1.0) * duration;
  }
  out.sort_by_submit();
  return out;
}

workload::Trace apply_churn(const workload::Trace& trace, const std::vector<ChurnSpec>& churn,
                            double duration) {
  if (churn.empty() || trace.empty() || duration <= 0.0) return trace;
  workload::Trace out;
  for (const auto& record : trace.records()) {
    bool constrained = false;
    bool present = false;
    for (const ChurnSpec& entry : churn) {
      if (entry.user != record.user) continue;
      constrained = true;
      const double fraction = record.submit / duration;
      if (fraction >= entry.join && fraction < entry.leave) {
        present = true;
        break;
      }
    }
    if (!constrained || present) out.add(record);
  }
  return out;
}

CompiledScenario compile(const ScenarioSpec& spec, const CompileOptions& options) {
  CompiledScenario compiled;
  compiled.name = spec.name;
  compiled.gates = spec.gates;
  compiled.record = spec.record;
  compiled.jobs = effective_jobs(spec.workload, options);

  workload::Scenario base = build_base(spec.workload, compiled.jobs);
  apply_sizing(base, spec.workload);
  if (!spec.policy_shares.empty()) base.policy_shares = spec.policy_shares;
  if (!spec.phases.empty()) {
    base.trace = remap_arrivals(base.trace, spec.phases, base.duration_seconds);
  }
  if (!spec.churn.empty()) {
    base.trace = apply_churn(base.trace, spec.churn, base.duration_seconds);
  }
  base.name = spec.name;

  std::vector<VariantSpec> variants = spec.variants;
  if (variants.empty()) {
    VariantSpec implicit;
    implicit.name = "";
    variants.push_back(std::move(implicit));
  }

  for (const VariantSpec& variant : variants) {
    const double scale = variant.scale * options.time_scale;
    workload::Scenario scenario =
        scale != 1.0 ? workload::scaled_scenario(base, scale) : base;
    const std::string variant_path =
        variant.name.empty() ? "$" : "$.variants[" + variant.name + "]";

    // The spec's "fairness" selection sits *below* the experiment and
    // variant overlays, so a variant overriding fairshare.backend (the
    // backend_faceoff pattern) wins over the scenario-wide default.
    json::Object fairness_overlay;
    fairness_overlay["fairshare"] =
        json::Value(json::Object{{"backend", core::to_json(spec.fairness)}});
    json::Value merged = deep_merge(json::Value(std::move(fairness_overlay)),
                                    deep_merge(spec.experiment, variant.experiment));
    if (merged.is_null()) merged = json::Value(json::Object{});
    testbed::ExperimentConfig config = json::decode<testbed::ExperimentConfig>(merged);
    config.faults = lower_faults(spec.faults, scenario.duration_seconds);
    for (const OffloadSpec& rule : spec.offloads) {
      if (rule.to_site >= scenario.cluster_count ||
          (rule.from_site >= scenario.cluster_count)) {
        throw SpecError(util::format(
            "%s.offloads: site index out of range for %d clusters", variant_path.c_str(),
            scenario.cluster_count));
      }
      testbed::OffloadRule lowered;
      lowered.from_site = rule.from_site;
      lowered.to_site = rule.to_site;
      lowered.fraction = rule.fraction;
      lowered.start = rule.start * scenario.duration_seconds;
      lowered.end = rule.end * scenario.duration_seconds;
      config.offloads.push_back(lowered);
    }
    for (const OutageSpec& outage : spec.faults.outages) {
      // Outage sites are "site<N>" names bound by the experiment; an
      // unknown name would silently never fire.
      if (!util::starts_with(outage.site, "site")) {
        throw SpecError("$.faults.outages: site '" + outage.site +
                        "' does not name a testbed site (site0..site" +
                        std::to_string(scenario.cluster_count - 1) + ")");
      }
    }

    testbed::SweepVariant sweep_variant;
    sweep_variant.name =
        variant.name.empty() ? spec.name : spec.name + "/" + variant.name;
    sweep_variant.scenario = std::move(scenario);
    sweep_variant.config = std::move(config);

    CompiledVariant meta;
    meta.name = sweep_variant.name;
    meta.duration_seconds = sweep_variant.scenario.duration_seconds;
    meta.lossless = spec.faults.lossless();
    meta.backend = sweep_variant.config.fairshare.backend.name;
    compiled.variants.push_back(std::move(meta));
    compiled.sweep.variants.push_back(std::move(sweep_variant));
  }

  compiled.sweep.replications =
      options.replications > 0 ? options.replications : spec.sweep.replications;
  compiled.sweep.root_seed = spec.sweep.root_seed;
  compiled.sweep.threads = options.threads;
  compiled.sweep.convergence_epsilon = spec.sweep.convergence_epsilon;
  compiled.sweep.keep_results = false;  // metrics/obs/fingerprints survive
  testing::attach_fingerprints(compiled.sweep);
  return compiled;
}

}  // namespace aequus::scenario
