#include "scenario/runner.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>

#include "replay/recorder.hpp"
#include "replay/replayer.hpp"
#include "testing/invariants.hpp"
#include "util/strings.hpp"

namespace aequus::scenario {

namespace {

/// Per-task gate bookkeeping, preallocated in disjoint slots so the
/// worker threads never contend (the sweep's thread-safety contract).
struct TaskGateState {
  std::uint64_t checks = 0;
  std::size_t tick_violations = 0;
  std::size_t reconvergence_violations = 0;
  std::size_t conservation_violations = 0;
  bool conservation_checked = false;
  bool ingest_dropped = false;  ///< the task's ingest path shed deltas for real
  std::string first_violation;  ///< "invariant @ t: detail" of the first one
};

std::string describe_first(const testing::InvariantChecker& checker) {
  if (checker.violations().empty()) return {};
  const auto& v = checker.violations().front();
  return util::format("%s @ %.1fs: %s", v.invariant.c_str(), v.time, v.detail.c_str());
}

GateResult tally(const std::string& gate, const std::vector<TaskGateState>& states,
                 std::size_t TaskGateState::* counter) {
  GateResult result;
  result.gate = gate;
  std::size_t total = 0;
  std::size_t failing_tasks = 0;
  const std::string* first = nullptr;
  for (const TaskGateState& state : states) {
    const std::size_t count = state.*counter;
    total += count;
    if (count > 0) {
      ++failing_tasks;
      if (!first && !state.first_violation.empty()) first = &state.first_violation;
    }
  }
  result.passed = total == 0;
  result.detail =
      result.passed
          ? util::format("0 violations across %zu tasks", states.size())
          : util::format("%zu violations in %zu/%zu tasks; first: %s", total, failing_tasks,
                         states.size(), first ? first->c_str() : "(truncated)");
  return result;
}

std::string abbreviate(const std::string& fingerprint) {
  return util::format("%016llx",
                      static_cast<unsigned long long>(util::fnv1a64(fingerprint)));
}

}  // namespace

ScenarioReport run_scenario(const CompiledScenario& compiled, const RunOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  const GateSpec& gates = compiled.gates;
  const std::size_t replications =
      compiled.sweep.replications > 0 ? compiled.sweep.replications : 1;

  testbed::SweepSpec spec = compiled.sweep;
  if (options.threads > 0) spec.threads = options.threads;

  const bool want_conservation = gates.conservation != "off";
  const bool want_checker = gates.invariants || gates.reconvergence || want_conservation;

  std::vector<std::unique_ptr<testing::InvariantChecker>> checkers(spec.task_count());
  std::vector<TaskGateState> states(spec.task_count());
  if (want_checker) {
    testing::InvariantOptions invariant_options;
    invariant_options.convergence_tolerance = gates.convergence_tolerance;
    spec.on_setup = [&checkers, invariant_options](testbed::Experiment& experiment,
                                                   std::size_t task_index) {
      checkers[task_index] =
          std::make_unique<testing::InvariantChecker>(experiment, invariant_options);
    };
    spec.on_teardown = [&](testbed::Experiment&, testbed::SweepTaskResult& slot) {
      testing::InvariantChecker& checker = *checkers[slot.task_index];
      TaskGateState& state = states[slot.task_index];
      state.checks = checker.checks_run();
      state.tick_violations = checker.violations().size();
      if (gates.reconvergence) {
        const std::size_t before = checker.violations().size();
        checker.check_reconvergence();
        state.reconvergence_violations = checker.violations().size() - before;
      }
      const std::size_t variant_index = slot.task_index / replications;
      // A variant is only conservation-checkable when neither the fault
      // plan nor the ingest queue lost usage. `ingest.dropped_deltas`
      // counts records *actually shed* (merge-less drop-oldest
      // evictions) — overflow coalescing conserves amounts and does not
      // disqualify the check.
      state.ingest_dropped = slot.obs.counter("ingest.dropped_deltas") > 0;
      const bool lossless = variant_index < compiled.variants.size() &&
                            compiled.variants[variant_index].lossless &&
                            !state.ingest_dropped;
      if (gates.conservation == "on" || (gates.conservation == "auto" && lossless)) {
        const std::size_t before = checker.violations().size();
        checker.check_conservation_final();
        state.conservation_violations = checker.violations().size() - before;
        state.conservation_checked = true;
      }
      state.first_violation = describe_first(checker);
      checkers[slot.task_index].reset();  // the experiment dies with the task
    };
  }

  // Flight recording: tap the sweep's task 0 (first variant, first
  // replication) — one canonical log per scenario. The recorder is only
  // ever touched from task 0's worker thread during the sweep and read
  // after run_sweep returns, so no synchronization is needed.
  const bool want_record = compiled.record.enabled || !options.record_dir.empty();
  replay::FlightRecorder recorder(compiled.record.cap);
  double recorded_bin_width = 0.0;
  if (want_record) {
    auto prior_setup = spec.on_setup;
    spec.on_setup = [&recorder, &recorded_bin_width, prior_setup](
                        testbed::Experiment& experiment, std::size_t task_index) {
      if (prior_setup) prior_setup(experiment, task_index);
      if (task_index == 0) {
        recorded_bin_width = experiment.config().timings.uss_bin_width;
        recorder.attach(experiment.bus(), &experiment.registry());
      }
    };
  }

  ScenarioReport report;
  report.name = compiled.name;
  report.jobs = compiled.jobs;
  report.tasks = spec.task_count();
  report.variants = compiled.variants;
  report.sweep = testbed::run_sweep(spec);

  if (want_record) {
    json::Object meta;
    meta["scenario"] = compiled.name;
    meta["uss_bin_width"] = recorded_bin_width;
    // Seeds are u64: rendered as hex strings (JSON doubles lose bits).
    meta["root_seed"] = util::format(
        "%llx", static_cast<unsigned long long>(compiled.sweep.root_seed));
    replay::EnvelopeLog log = recorder.take_log(json::Value(std::move(meta)));
    // The footer hash is the record-side half of the record->replay
    // bit-identity check: bus_replay recomputes it from the log alone.
    log.fingerprint_hash = replay::BusReplayer().replay(log).fingerprint_hash;
    std::string path = compiled.record.path.empty()
                           ? compiled.name + (compiled.record.format == "jsonl" ? ".jsonl"
                                                                                : ".aeqlog")
                           : compiled.record.path;
    if (!options.record_dir.empty() && path.front() != '/') {
      path = options.record_dir + "/" + path;
    }
    // Create the target directory (--record names a directory that need
    // not exist yet); save_log still reports unwritable paths loudly.
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
    }
    replay::save_log(path, log,
                     compiled.record.format == "jsonl" ? replay::LogFormat::kJsonl
                                                       : replay::LogFormat::kBinary);
    report.record.enabled = true;
    report.record.path = path;
    report.record.envelopes = log.envelopes.size();
    report.record.recorder_dropped = log.recorder_dropped;
    report.record.fingerprint_hash = log.fingerprint_hash;
  }
  report.threads = report.sweep.threads_used;
  for (const auto& task : report.sweep.tasks) {
    report.fingerprints.push_back(abbreviate(task.fingerprint));
  }

  if (gates.invariants) {
    GateResult gate = tally("invariants", states, &TaskGateState::tick_violations);
    std::uint64_t checks = 0;
    for (const TaskGateState& state : states) checks += state.checks;
    if (gate.passed) {
      gate.detail = util::format("0 violations in %llu tick checks across %zu tasks",
                                 static_cast<unsigned long long>(checks), states.size());
    }
    report.gates.push_back(std::move(gate));
  }
  if (gates.reconvergence) {
    report.gates.push_back(
        tally("reconvergence", states, &TaskGateState::reconvergence_violations));
  }
  if (want_conservation) {
    GateResult gate =
        tally("conservation", states, &TaskGateState::conservation_violations);
    const bool any_checked =
        std::any_of(states.begin(), states.end(),
                    [](const TaskGateState& s) { return s.conservation_checked; });
    const bool any_ingest_dropped =
        std::any_of(states.begin(), states.end(),
                    [](const TaskGateState& s) { return s.ingest_dropped; });
    if (!any_checked) {
      gate.detail = any_ingest_dropped
                        ? "skipped: ingest shed deltas (conservation=auto)"
                        : "skipped: fault plan is lossy (conservation=auto)";
    }
    report.gates.push_back(std::move(gate));
  }

  if (gates.determinism && options.determinism) {
    testbed::SweepSpec recheck = compiled.sweep;  // no hooks: fingerprints only
    recheck.threads = report.sweep.threads_used == options.alternate_threads
                          ? 1
                          : options.alternate_threads;
    const testbed::SweepResult rerun = testbed::run_sweep(recheck);
    GateResult gate;
    gate.gate = "determinism";
    gate.passed = rerun.tasks.size() == report.sweep.tasks.size();
    std::size_t mismatch = report.sweep.tasks.size();
    for (std::size_t i = 0; gate.passed && i < rerun.tasks.size(); ++i) {
      if (rerun.tasks[i].fingerprint != report.sweep.tasks[i].fingerprint) {
        gate.passed = false;
        mismatch = i;
      }
    }
    gate.detail =
        gate.passed
            ? util::format("%zu fingerprints identical at %d vs %d threads",
                           report.sweep.tasks.size(), report.sweep.threads_used,
                           rerun.threads_used)
            : util::format("fingerprint mismatch at task %zu (%d vs %d threads)", mismatch,
                           report.sweep.threads_used, rerun.threads_used);
    report.gates.push_back(std::move(gate));
  }

  for (const GateResult& gate : report.gates) report.passed = report.passed && gate.passed;
  report.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return report;
}

json::Value report_to_json(const ScenarioReport& report) {
  json::Object out;
  out["name"] = report.name;
  out["jobs"] = report.jobs;
  out["tasks"] = report.tasks;
  out["threads"] = report.threads;
  out["wall_seconds"] = report.wall_seconds;
  out["passed"] = report.passed;

  json::Array gates;
  for (const GateResult& gate : report.gates) {
    json::Object entry;
    entry["gate"] = gate.gate;
    entry["passed"] = gate.passed;
    entry["detail"] = gate.detail;
    gates.push_back(json::Value(std::move(entry)));
  }
  out["gates"] = json::Value(std::move(gates));

  json::Object variants;
  for (const auto& [variant_name, metrics] : report.sweep.aggregates) {
    json::Object metrics_json;
    for (const auto& [metric, summary] : metrics) {
      json::Object cell;
      cell["count"] = summary.count;
      cell["mean"] = summary.mean;
      cell["stddev"] = summary.stddev;
      cell["ci95_half"] = summary.ci95_half;
      cell["min"] = summary.min;
      cell["max"] = summary.max;
      metrics_json[metric] = json::Value(std::move(cell));
    }
    json::Object variant_json;
    variant_json["metrics"] = json::Value(std::move(metrics_json));
    variants[variant_name] = json::Value(std::move(variant_json));
  }
  out["variants"] = json::Value(std::move(variants));

  // Head-to-head comparison table (DESIGN.md §6j): one row per variant
  // with its resolved fairness backend and the faceoff columns —
  // fairness distance (mean |share - target|), starvation count,
  // throughput, and the per-delta-delivery RPC latency observed at the
  // FCS (mean over every rpc.<site>.fcs.latency_s histogram; 0 when the
  // bus recorded no FCS traffic). Scalar columns are replication means.
  if (!report.variants.empty()) {
    json::Array comparison;
    for (const CompiledVariant& variant : report.variants) {
      json::Object row;
      row["variant"] = variant.name;
      row["backend"] = variant.backend;
      const auto aggregates = report.sweep.aggregates.find(variant.name);
      const auto mean_of = [&](const char* metric) {
        if (aggregates == report.sweep.aggregates.end()) return 0.0;
        const auto it = aggregates->second.find(metric);
        return it != aggregates->second.end() ? it->second.mean : 0.0;
      };
      row["fairness_distance"] = mean_of("fairness_distance");
      row["starved_jobs"] = mean_of("starved_jobs");
      row["throughput_jobs_per_h"] = mean_of("throughput_jobs_per_h");
      row["max_share_error"] = mean_of("max_share_error");
      double latency_sum = 0.0;
      std::uint64_t latency_count = 0;
      const auto obs = report.sweep.obs.find(variant.name);
      if (obs != report.sweep.obs.end()) {
        for (const auto& [key, histogram] : obs->second.histograms) {
          if (util::starts_with(key, "rpc.") && util::ends_with(key, ".fcs.latency_s")) {
            latency_sum += histogram.sum;
            latency_count += histogram.count;
          }
        }
      }
      row["delta_latency_ms"] =
          latency_count > 0 ? latency_sum / static_cast<double>(latency_count) * 1e3 : 0.0;
      comparison.push_back(json::Value(std::move(row)));
    }
    out["comparison"] = json::Value(std::move(comparison));
  }

  json::Array fingerprints;
  for (const std::string& fp : report.fingerprints) fingerprints.push_back(json::Value(fp));
  out["fingerprints"] = json::Value(std::move(fingerprints));

  if (report.record.enabled) {
    json::Object record;
    record["path"] = report.record.path;
    record["envelopes"] = report.record.envelopes;
    record["recorder_dropped"] = report.record.recorder_dropped;
    record["fingerprint_hash"] = report.record.fingerprint_hash;
    out["record"] = json::Value(std::move(record));
  }
  return json::Value(std::move(out));
}

json::Value catalog_report_json(const std::vector<ScenarioReport>& reports,
                                double wall_seconds) {
  json::Object out;
  out["schema"] = "aequus-scenario-report-v1";
  bool passed = true;
  json::Array scenarios;
  for (const ScenarioReport& report : reports) {
    passed = passed && report.passed;
    scenarios.push_back(report_to_json(report));
  }
  out["passed"] = passed;
  out["wall_seconds"] = wall_seconds;
  out["scenarios"] = json::Value(std::move(scenarios));
  return json::Value(std::move(out));
}

}  // namespace aequus::scenario
