// Declarative scenario DSL: JSON specs for whole testbed experiments.
//
// A scenario spec is data, not C++: it names a base workload (the paper's
// generators), then composes the situational modifiers the hand-coded
// benches could never cover exhaustively — bursty phase schedules
// (serving-style arrival spikes), user-mix churn (users joining/leaving
// mid-run), site outage windows and link faults (lowered to a
// net::FaultPlan), and federated cross-site offloading. The compiler in
// compile.hpp lowers a spec into a ready-to-run testbed::SweepSpec with
// invariant gates attached.
//
// Every time field in a spec is a *fraction of the scenario duration* in
// [0, 1], not seconds: specs stay valid when a run is scaled (fig11's
// x10 variant) or compressed for CI, and out-of-range values are decode
// errors, not silent truncation.
//
// Decoding is strict: unknown keys, wrong types, and out-of-range values
// all fail with a one-line error naming the JSON path
// ("$.phases[2].rate: expected a number"), so a typo in a catalog file
// is a test failure with an address, not a silently-defaulted knob.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "json/decode.hpp"
#include "json/json.hpp"

namespace aequus::scenario {

/// Decode failure: one line, "<json path>: <what went wrong>".
struct SpecError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Base workload selection: which paper generator seeds the trace.
struct WorkloadSpec {
  std::string base = "baseline";  ///< baseline | nonoptimal-policy | bursty
  std::size_t jobs = 43200;
  std::uint64_t seed = 2012;
  /// Cluster-count / host overrides; 0 keeps the generator default
  /// (6 x 40). Overriding rescales job durations by the capacity ratio so
  /// the target load carried by the trace is preserved.
  int clusters = 0;
  int hosts_per_cluster = 0;
};

/// One segment of a piecewise-constant arrival-intensity schedule.
/// Arrivals of the base trace are remapped through the inverse cumulative
/// intensity, concentrating submissions into high-rate windows (bursty
/// serving-style arrivals). Gaps between declared phases keep rate 1.
struct PhaseSpec {
  double start = 0.0;  ///< fraction of the run
  double end = 0.0;    ///< fraction of the run, > start
  double rate = 1.0;   ///< relative intensity, >= 0 (0 = silent window)
};

/// Membership window of one user: submissions outside [join, leave) are
/// dropped from the trace (the user is not present). The user stays in
/// the policy tree throughout, like any provisioned-but-idle identity.
struct ChurnSpec {
  std::string user;
  double join = 0.0;
  double leave = 1.0;
};

/// One scheduled site outage, lowered into FaultPlan::outages.
struct OutageSpec {
  std::string site;
  double start = 0.0;
  double end = 0.0;
};

/// Per-link loss override, lowered into FaultPlan::link_loss.
struct LinkLossSpec {
  std::string from;
  std::string to;
  double rate = 0.0;
};

/// Network fault schedule in DSL units (outage times as run fractions).
struct FaultSpec {
  double loss_rate = 0.0;
  double duplicate_rate = 0.0;
  double latency_jitter = 0.0;  ///< seconds (a latency, not a time point)
  std::uint64_t seed = 0x10ad;
  std::vector<LinkLossSpec> link_loss;
  std::vector<OutageSpec> outages;

  [[nodiscard]] bool lossless() const noexcept {
    return loss_rate == 0.0 && duplicate_rate == 0.0 && latency_jitter == 0.0 &&
           link_loss.empty() && outages.empty();
  }
};

/// Cross-site offload window (federated offloading between
/// installations), lowered into ExperimentConfig::offloads.
struct OffloadSpec {
  int from_site = -1;  ///< -1 = any dispatch-chosen site
  int to_site = 0;
  double fraction = 0.0;
  double start = 0.0;
  double end = 1.0;
};

/// One sweep variant: the base scenario with a time scale and an
/// experiment-config overlay (deep-merged over the spec's "experiment"
/// object). fig11's x10 cell is `{"name": "x10", "scale": 10,
/// "experiment": {"sample_interval": 600}}`.
struct VariantSpec {
  std::string name;
  double scale = 1.0;
  json::Value experiment;  ///< object merged over the base experiment
};

/// Sweep shape: replications per variant and the root seed feeding the
/// per-task splitmix seed stream.
struct SweepSettings {
  std::size_t replications = 1;
  std::uint64_t root_seed = 2014;
  double convergence_epsilon = 0.05;
};

/// Which pass/fail gates a catalog run attaches to this scenario.
struct GateSpec {
  bool invariants = true;     ///< per-tick InvariantChecker
  bool reconvergence = true;  ///< post-run replicated-view agreement
  /// "auto" enables exact final conservation only for lossless fault
  /// specs (loss and duplication legitimately break the exact equality);
  /// "on"/"off" force it.
  std::string conservation = "auto";
  bool determinism = true;  ///< re-run at another thread count, compare fingerprints
  double convergence_tolerance = 0.02;
};

/// Flight-recorder request: capture the scenario's bus traffic into an
/// envelope log (src/replay). Recording happens on the sweep's task 0
/// (first variant, first replication) — one canonical log per scenario,
/// with the footer fingerprint computed by an in-process replay so
/// `bus_replay replay` can check record→replay bit-identity offline.
struct RecordSpec {
  bool enabled = false;
  /// Log file path; empty derives "<scenario-name>.aeqlog" (resolved
  /// against the runner's --record directory).
  std::string path;
  std::size_t cap = 0;            ///< recorder ring cap; 0 = unbounded
  std::string format = "binary";  ///< binary | jsonl
};

/// A complete declarative scenario.
struct ScenarioSpec {
  std::string name;
  std::string description;
  WorkloadSpec workload;
  /// Optional policy-target override (user -> share); empty keeps the
  /// generator's targets.
  std::map<std::string, double> policy_shares;
  std::vector<PhaseSpec> phases;
  std::vector<ChurnSpec> churn;
  std::vector<OffloadSpec> offloads;
  FaultSpec faults;
  /// Fairness backend selection ("fairness" key; DESIGN.md §6j): a bare
  /// name ("balanced") or an object with per-policy tuning. Lowered into
  /// every variant's experiment as fairshare.backend, below the
  /// experiment/variant overlays — so a variant overlay setting
  /// fairshare.backend (the faceoff pattern) wins.
  core::FairnessBackendConfig fairness{};
  /// Raw ExperimentConfig object (testbed/config.hpp keys); decoded per
  /// variant after the variant overlay is merged in.
  json::Value experiment;
  /// Empty = one implicit variant at scale 1 with no overlay.
  std::vector<VariantSpec> variants;
  SweepSettings sweep;
  GateSpec gates;
  RecordSpec record;
};

/// Parse a spec from its JSON form. Throws SpecError with the offending
/// JSON path on unknown keys, wrong types, and out-of-range values.
[[nodiscard]] ScenarioSpec parse_spec(const json::Value& value);

/// Parse a spec from JSON text (convenience for files and tests).
[[nodiscard]] ScenarioSpec parse_spec_text(const std::string& text);

/// Recursive object merge: `overlay` wins on scalar/array conflicts,
/// objects merge key-by-key. Non-object operands: overlay replaces base
/// (null overlay keeps base).
[[nodiscard]] json::Value deep_merge(const json::Value& base, const json::Value& overlay);

}  // namespace aequus::scenario

/// json::decode<scenario::ScenarioSpec> support.
template <>
struct aequus::json::Decoder<aequus::scenario::ScenarioSpec> {
  [[nodiscard]] static aequus::scenario::ScenarioSpec decode(const Value& value) {
    return aequus::scenario::parse_spec(value);
  }
};
