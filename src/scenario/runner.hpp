// Scenario execution with invariant gates.
//
// run_scenario() executes a compiled scenario's sweep with a per-task
// testing::InvariantChecker attached and evaluates the gates the spec
// selected: per-tick invariants, post-run reconvergence, final usage
// conservation (lossless runs), and a determinism gate that re-runs the
// whole sweep at a different thread count and requires bit-identical
// per-task fingerprints. The outcome is a ScenarioReport that renders to
// the machine-readable JSON consumed by tools/scenario_run and validated
// by tools/bench_gate.py.
#pragma once

#include <string>
#include <vector>

#include "json/json.hpp"
#include "scenario/compile.hpp"
#include "testbed/sweep.hpp"

namespace aequus::scenario {

/// Execution knobs a runner (CLI or test) layers over the compiled spec.
struct RunOptions {
  int threads = 0;          ///< primary sweep threads; 0 = spec/auto
  bool determinism = true;  ///< allow disabling the (costly) dual run
  /// Thread count of the determinism re-run. If the primary run resolves
  /// to this count, the re-run uses 1 thread instead (the comparison is
  /// only meaningful across different schedules).
  int alternate_threads = 8;
  /// Non-empty: force-enable flight recording (scenario_run --record) and
  /// resolve relative log paths against this directory.
  std::string record_dir;
};

/// One evaluated gate: name, verdict, and a human-readable detail line.
struct GateResult {
  std::string gate;
  bool passed = true;
  std::string detail;
};

/// Outcome of the scenario's flight recording (when one was requested).
struct RecordOutcome {
  bool enabled = false;
  std::string path;  ///< where the log was written
  std::uint64_t envelopes = 0;
  std::uint64_t recorder_dropped = 0;  ///< ring evictions (cap-dependent)
  /// Replay state fingerprint hash (fnv1a64, 16 hex), computed by an
  /// in-process replay and written into the log footer.
  std::string fingerprint_hash;
};

/// Everything a catalog run knows about one scenario's execution.
struct ScenarioReport {
  std::string name;
  std::size_t jobs = 0;
  std::size_t tasks = 0;
  int threads = 1;
  double wall_seconds = 0.0;
  bool passed = true;
  std::vector<GateResult> gates;
  /// Abbreviated (fnv1a64, 16 hex chars) determinism fingerprint per
  /// task, in task-index order. Full fingerprints run to megabytes.
  std::vector<std::string> fingerprints;
  /// Per-variant lowering metadata (resolved fairness backend name,
  /// duration), carried over so report_to_json can emit the head-to-head
  /// "comparison" table without re-lowering the spec.
  std::vector<CompiledVariant> variants;
  RecordOutcome record;
  testbed::SweepResult sweep;
};

/// Run the sweep, evaluate the spec's gates, and collect the report.
[[nodiscard]] ScenarioReport run_scenario(const CompiledScenario& compiled,
                                          const RunOptions& options = {});

/// Render one report as a JSON object (schema: see catalog_report_json).
[[nodiscard]] json::Value report_to_json(const ScenarioReport& report);

/// Wrap per-scenario reports in the top-level report document:
/// {"schema": "aequus-scenario-report-v1", "passed": ..., "wall_seconds":
/// ..., "scenarios": [...]}.
[[nodiscard]] json::Value catalog_report_json(const std::vector<ScenarioReport>& reports,
                                              double wall_seconds);

}  // namespace aequus::scenario
