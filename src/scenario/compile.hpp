// Lowering: ScenarioSpec -> testbed::SweepSpec.
//
// The compiler turns a declarative spec into the exact object the sweep
// engine runs: it builds the base workload from the paper generators,
// applies the DSL modifiers (phase-intensity remap, churn filtering,
// capacity rescale), expands variants (per-variant time scale + deep-
// merged experiment overlay), lowers run-fraction times into seconds
// (FaultPlan outages, offload windows), and attaches determinism
// fingerprints. A spec with no modifiers lowers to byte-for-byte the
// same scenario + config a hand-coded bench builds — that identity is
// what the fig10-13 golden tests pin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "testbed/sweep.hpp"
#include "workload/trace.hpp"

namespace aequus::scenario {

/// Scale knobs for reduced-scale (CI) runs of full-size catalog specs.
struct CompileOptions {
  /// Multiplies workload.jobs (0.01 turns the 43,200-job paper trace
  /// into 432 jobs at unchanged load: generation re-targets usage to
  /// capacity whatever the job count).
  double jobs_scale = 1.0;
  std::size_t max_jobs = 0;  ///< post-scale cap; 0 = none
  std::size_t min_jobs = 40; ///< post-scale floor (tiny traces degenerate)
  /// Extra time-compression multiplied into every variant's scale
  /// (0.25 compresses the six-hour window to 90 minutes; service
  /// cadences stay fixed, so simulated chatter shrinks with it).
  double time_scale = 1.0;
  int threads = 0;               ///< sweep threads; 0 = spec/auto
  std::size_t replications = 0;  ///< override; 0 = spec value
};

/// One lowered sweep variant plus the facts the gates need about it.
struct CompiledVariant {
  std::string name;
  double duration_seconds = 0.0;  ///< post-scale scenario window
  /// Resolved fairness backend after all overlays (spec "fairness" key,
  /// experiment, variant) — the comparison emitter's row label.
  std::string backend = "aequus";
  /// No loss/duplication/outage anywhere: exact final conservation is a
  /// meaningful gate ("auto" mode enables it only here).
  bool lossless = true;
};

/// A ready-to-run scenario: the sweep (fingerprinter attached) plus
/// per-variant metadata and the gate selection carried over from the spec.
struct CompiledScenario {
  std::string name;
  std::size_t jobs = 0;  ///< effective per-variant trace size
  testbed::SweepSpec sweep;
  std::vector<CompiledVariant> variants;
  GateSpec gates;
  /// Flight-recorder request carried over from the spec; the runner may
  /// force-enable it (scenario_run --record).
  RecordSpec record;
};

/// The job count a spec resolves to under `options`.
[[nodiscard]] std::size_t effective_jobs(const WorkloadSpec& workload,
                                         const CompileOptions& options);

/// Remap arrival times through the inverse cumulative intensity of a
/// piecewise-constant phase schedule (fractions of `duration`); gaps
/// between declared phases keep rate 1. Durations, users, and relative
/// arrival order are preserved; only submission times move. Throws
/// SpecError if the schedule carries no mass.
[[nodiscard]] workload::Trace remap_arrivals(const workload::Trace& trace,
                                             const std::vector<PhaseSpec>& phases,
                                             double duration);

/// Drop submissions outside each churned user's [join, leave) membership
/// window (fractions of `duration`). Users without churn entries keep
/// every record; a user with several entries is present in the union of
/// its windows.
[[nodiscard]] workload::Trace apply_churn(const workload::Trace& trace,
                                          const std::vector<ChurnSpec>& churn,
                                          double duration);

/// Lower `spec` into a runnable sweep. Throws SpecError on constraints
/// only visible at lowering time (e.g. an offload target outside the
/// cluster count).
[[nodiscard]] CompiledScenario compile(const ScenarioSpec& spec,
                                       const CompileOptions& options = {});

}  // namespace aequus::scenario
