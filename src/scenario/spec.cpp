#include "scenario/spec.hpp"

#include <algorithm>
#include <cmath>
#include <initializer_list>

#include "util/strings.hpp"

namespace aequus::scenario {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& message) {
  throw SpecError(path + ": " + message);
}

std::string type_name(const json::Value& value) {
  if (value.is_null()) return "null";
  if (value.is_bool()) return "a boolean";
  if (value.is_number()) return "a number";
  if (value.is_string()) return "a string";
  if (value.is_array()) return "an array";
  return "an object";
}

const json::Object& as_object(const json::Value& value, const std::string& path) {
  if (!value.is_object()) fail(path, "expected an object, got " + type_name(value));
  return value.as_object();
}

const json::Array& as_array(const json::Value& value, const std::string& path) {
  if (!value.is_array()) fail(path, "expected an array, got " + type_name(value));
  return value.as_array();
}

double as_number(const json::Value& value, const std::string& path) {
  if (!value.is_number()) fail(path, "expected a number, got " + type_name(value));
  return value.as_number();
}

std::string as_string(const json::Value& value, const std::string& path) {
  if (!value.is_string()) fail(path, "expected a string, got " + type_name(value));
  return value.as_string();
}

bool as_bool(const json::Value& value, const std::string& path) {
  if (!value.is_bool()) fail(path, "expected a boolean, got " + type_name(value));
  return value.as_bool();
}

/// Strict key check: every key of `object` must be in `allowed`.
void reject_unknown_keys(const json::Object& object, const std::string& path,
                         std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : object) {
    (void)value;
    if (std::find_if(allowed.begin(), allowed.end(),
                     [&key](const char* name) { return key == name; }) == allowed.end()) {
      fail(path + "." + key, "unknown key");
    }
  }
}

/// Typed field getters on an already-verified object.
const json::Value* find(const json::Object& object, const std::string& key) {
  const auto it = object.find(key);
  return it != object.end() ? &it->second : nullptr;
}

double number_or(const json::Object& object, const std::string& path, const std::string& key,
                 double fallback) {
  const json::Value* value = find(object, key);
  return value ? as_number(*value, path + "." + key) : fallback;
}

bool bool_or(const json::Object& object, const std::string& path, const std::string& key,
             bool fallback) {
  const json::Value* value = find(object, key);
  return value ? as_bool(*value, path + "." + key) : fallback;
}

std::string string_or(const json::Object& object, const std::string& path,
                      const std::string& key, std::string fallback) {
  const json::Value* value = find(object, key);
  return value ? as_string(*value, path + "." + key) : std::move(fallback);
}

/// A run-fraction: a number in [0, 1].
double fraction_or(const json::Object& object, const std::string& path, const std::string& key,
                   double fallback) {
  const double value = number_or(object, path, key, fallback);
  if (!(value >= 0.0 && value <= 1.0)) {
    fail(path + "." + key,
         util::format("time fraction %g out of range [0, 1]", value));
  }
  return value;
}

double nonnegative_or(const json::Object& object, const std::string& path,
                      const std::string& key, double fallback) {
  const double value = number_or(object, path, key, fallback);
  if (!(value >= 0.0)) fail(path + "." + key, util::format("%g must be >= 0", value));
  return value;
}

double probability_or(const json::Object& object, const std::string& path,
                      const std::string& key, double fallback) {
  const double value = number_or(object, path, key, fallback);
  if (!(value >= 0.0 && value <= 1.0)) {
    fail(path + "." + key, util::format("probability %g out of range [0, 1]", value));
  }
  return value;
}

WorkloadSpec parse_workload(const json::Value& value, const std::string& path) {
  const json::Object& object = as_object(value, path);
  reject_unknown_keys(object, path, {"base", "jobs", "seed", "clusters", "hosts_per_cluster"});
  WorkloadSpec workload;
  workload.base = string_or(object, path, "base", workload.base);
  if (workload.base != "baseline" && workload.base != "nonoptimal-policy" &&
      workload.base != "bursty") {
    fail(path + ".base", "unknown base workload '" + workload.base +
                             "' (expected baseline | nonoptimal-policy | bursty)");
  }
  const double jobs = number_or(object, path, "jobs", static_cast<double>(workload.jobs));
  if (!(jobs >= 1.0)) fail(path + ".jobs", util::format("%g must be >= 1", jobs));
  workload.jobs = static_cast<std::size_t>(jobs);
  workload.seed = static_cast<std::uint64_t>(
      nonnegative_or(object, path, "seed", static_cast<double>(workload.seed)));
  const double clusters = number_or(object, path, "clusters", 0.0);
  if (clusters < 0.0) fail(path + ".clusters", "must be >= 0 (0 = default)");
  workload.clusters = static_cast<int>(clusters);
  const double hosts = number_or(object, path, "hosts_per_cluster", 0.0);
  if (hosts < 0.0) fail(path + ".hosts_per_cluster", "must be >= 0 (0 = default)");
  workload.hosts_per_cluster = static_cast<int>(hosts);
  return workload;
}

std::vector<PhaseSpec> parse_phases(const json::Value& value, const std::string& path) {
  std::vector<PhaseSpec> phases;
  const json::Array& array = as_array(value, path);
  for (std::size_t i = 0; i < array.size(); ++i) {
    const std::string item_path = util::format("%s[%zu]", path.c_str(), i);
    const json::Object& object = as_object(array[i], item_path);
    reject_unknown_keys(object, item_path, {"start", "end", "rate"});
    PhaseSpec phase;
    phase.start = fraction_or(object, item_path, "start", 0.0);
    phase.end = fraction_or(object, item_path, "end", 0.0);
    phase.rate = nonnegative_or(object, item_path, "rate", 1.0);
    if (!(phase.end > phase.start)) {
      fail(item_path, util::format("phase end %g must be > start %g", phase.end, phase.start));
    }
    phases.push_back(phase);
  }
  std::sort(phases.begin(), phases.end(),
            [](const PhaseSpec& a, const PhaseSpec& b) { return a.start < b.start; });
  for (std::size_t i = 1; i < phases.size(); ++i) {
    if (phases[i].start < phases[i - 1].end) {
      fail(util::format("%s[%zu]", path.c_str(), i),
           util::format("phase [%g, %g) overlaps previous phase ending at %g",
                        phases[i].start, phases[i].end, phases[i - 1].end));
    }
  }
  return phases;
}

std::vector<ChurnSpec> parse_churn(const json::Value& value, const std::string& path) {
  std::vector<ChurnSpec> churn;
  const json::Array& array = as_array(value, path);
  for (std::size_t i = 0; i < array.size(); ++i) {
    const std::string item_path = util::format("%s[%zu]", path.c_str(), i);
    const json::Object& object = as_object(array[i], item_path);
    reject_unknown_keys(object, item_path, {"user", "join", "leave"});
    ChurnSpec entry;
    entry.user = string_or(object, item_path, "user", "");
    if (entry.user.empty()) fail(item_path + ".user", "required non-empty string");
    entry.join = fraction_or(object, item_path, "join", 0.0);
    entry.leave = fraction_or(object, item_path, "leave", 1.0);
    if (!(entry.leave > entry.join)) {
      fail(item_path, util::format("leave %g must be > join %g", entry.leave, entry.join));
    }
    churn.push_back(std::move(entry));
  }
  return churn;
}

std::vector<OffloadSpec> parse_offloads(const json::Value& value, const std::string& path) {
  std::vector<OffloadSpec> offloads;
  const json::Array& array = as_array(value, path);
  for (std::size_t i = 0; i < array.size(); ++i) {
    const std::string item_path = util::format("%s[%zu]", path.c_str(), i);
    const json::Object& object = as_object(array[i], item_path);
    reject_unknown_keys(object, item_path, {"from_site", "to_site", "fraction", "start", "end"});
    OffloadSpec rule;
    const double from = number_or(object, item_path, "from_site", -1.0);
    if (from < -1.0) fail(item_path + ".from_site", "must be a site index or -1 (any)");
    rule.from_site = static_cast<int>(from);
    const double to = number_or(object, item_path, "to_site", -1.0);
    if (to < 0.0) fail(item_path + ".to_site", "required site index >= 0");
    rule.to_site = static_cast<int>(to);
    rule.fraction = probability_or(object, item_path, "fraction", 0.0);
    rule.start = fraction_or(object, item_path, "start", 0.0);
    rule.end = fraction_or(object, item_path, "end", 1.0);
    if (!(rule.end > rule.start)) {
      fail(item_path, util::format("end %g must be > start %g", rule.end, rule.start));
    }
    offloads.push_back(std::move(rule));
  }
  return offloads;
}

FaultSpec parse_faults(const json::Value& value, const std::string& path) {
  const json::Object& object = as_object(value, path);
  reject_unknown_keys(object, path, {"loss_rate", "duplicate_rate", "latency_jitter", "seed",
                                     "link_loss", "outages"});
  FaultSpec faults;
  faults.loss_rate = probability_or(object, path, "loss_rate", 0.0);
  faults.duplicate_rate = probability_or(object, path, "duplicate_rate", 0.0);
  faults.latency_jitter = nonnegative_or(object, path, "latency_jitter", 0.0);
  faults.seed = static_cast<std::uint64_t>(
      nonnegative_or(object, path, "seed", static_cast<double>(faults.seed)));
  if (const json::Value* links = find(object, "link_loss")) {
    const std::string links_path = path + ".link_loss";
    const json::Array& array = as_array(*links, links_path);
    for (std::size_t i = 0; i < array.size(); ++i) {
      const std::string item_path = util::format("%s[%zu]", links_path.c_str(), i);
      const json::Object& entry = as_object(array[i], item_path);
      reject_unknown_keys(entry, item_path, {"from", "to", "rate"});
      LinkLossSpec link;
      link.from = string_or(entry, item_path, "from", "");
      link.to = string_or(entry, item_path, "to", "");
      if (link.from.empty()) fail(item_path + ".from", "required non-empty site name");
      if (link.to.empty()) fail(item_path + ".to", "required non-empty site name");
      link.rate = probability_or(entry, item_path, "rate", 0.0);
      faults.link_loss.push_back(std::move(link));
    }
  }
  if (const json::Value* outages = find(object, "outages")) {
    const std::string outages_path = path + ".outages";
    const json::Array& array = as_array(*outages, outages_path);
    for (std::size_t i = 0; i < array.size(); ++i) {
      const std::string item_path = util::format("%s[%zu]", outages_path.c_str(), i);
      const json::Object& entry = as_object(array[i], item_path);
      reject_unknown_keys(entry, item_path, {"site", "start", "end"});
      OutageSpec outage;
      outage.site = string_or(entry, item_path, "site", "");
      if (outage.site.empty()) fail(item_path + ".site", "required non-empty site name");
      outage.start = fraction_or(entry, item_path, "start", 0.0);
      outage.end = fraction_or(entry, item_path, "end", 0.0);
      if (outage.end < outage.start) {
        fail(item_path, util::format("end %g must be >= start %g (zero-length allowed)",
                                     outage.end, outage.start));
      }
      faults.outages.push_back(std::move(outage));
    }
  }
  return faults;
}

/// Fairness backend selection: a bare backend name ("credit") or an
/// object with per-policy tuning. Unlike the lenient ExperimentConfig
/// decode, an unknown backend here fails with the registry's live name
/// list at the exact path — "$.fairness.backend: unknown fairness
/// backend 'x' (expected aequus | balanced | credit)".
core::FairnessBackendConfig parse_fairness(const json::Value& value, const std::string& path) {
  core::FairnessBackendConfig config;
  if (value.is_string()) {
    config.name = value.as_string();
  } else {
    const json::Object& object = as_object(value, path);
    reject_unknown_keys(object, path, {"backend", "credit_refresh_s", "credit_cap"});
    config.name = string_or(object, path, "backend", config.name);
    config.credit_refresh_s =
        number_or(object, path, "credit_refresh_s", config.credit_refresh_s);
    config.credit_cap = number_or(object, path, "credit_cap", config.credit_cap);
  }
  if (!core::fairness_backend_known(config.name)) {
    std::string known;
    for (const std::string& name : core::fairness_backend_names()) {
      if (!known.empty()) known += " | ";
      known += name;
    }
    fail(path + ".backend",
         "unknown fairness backend '" + config.name + "' (expected " + known + ")");
  }
  if (!(config.credit_refresh_s > 0.0)) {
    fail(path + ".credit_refresh_s",
         util::format("%g must be > 0", config.credit_refresh_s));
  }
  if (!(config.credit_cap > 0.0)) {
    fail(path + ".credit_cap", util::format("%g must be > 0", config.credit_cap));
  }
  return config;
}

/// ExperimentConfig objects are decoded leniently by the testbed decoder;
/// the DSL still rejects unknown *top-level* keys so a typo like
/// "sample_intervall" cannot silently keep the default.
void check_experiment_keys(const json::Value& value, const std::string& path) {
  const json::Object& object = as_object(value, path);
  reject_unknown_keys(object, path,
                      {"dispatch", "timings", "fairshare", "bus_remote_latency",
                       "sample_interval", "seed_rng", "record_per_site", "drain_seconds",
                       "sites", "offloads", "usage_batching"});
}

std::vector<VariantSpec> parse_variants(const json::Value& value, const std::string& path) {
  std::vector<VariantSpec> variants;
  const json::Array& array = as_array(value, path);
  for (std::size_t i = 0; i < array.size(); ++i) {
    const std::string item_path = util::format("%s[%zu]", path.c_str(), i);
    const json::Object& object = as_object(array[i], item_path);
    reject_unknown_keys(object, item_path, {"name", "scale", "experiment"});
    VariantSpec variant;
    variant.name = string_or(object, item_path, "name", "");
    if (variant.name.empty()) fail(item_path + ".name", "required non-empty string");
    variant.scale = number_or(object, item_path, "scale", 1.0);
    if (!(variant.scale > 0.0)) {
      fail(item_path + ".scale", util::format("%g must be > 0", variant.scale));
    }
    if (const json::Value* experiment = find(object, "experiment")) {
      check_experiment_keys(*experiment, item_path + ".experiment");
      variant.experiment = *experiment;
    }
    variants.push_back(std::move(variant));
  }
  return variants;
}

SweepSettings parse_sweep(const json::Value& value, const std::string& path) {
  const json::Object& object = as_object(value, path);
  reject_unknown_keys(object, path, {"replications", "root_seed", "convergence_epsilon"});
  SweepSettings sweep;
  const double replications =
      number_or(object, path, "replications", static_cast<double>(sweep.replications));
  if (!(replications >= 1.0)) fail(path + ".replications", "must be >= 1");
  sweep.replications = static_cast<std::size_t>(replications);
  sweep.root_seed = static_cast<std::uint64_t>(
      nonnegative_or(object, path, "root_seed", static_cast<double>(sweep.root_seed)));
  sweep.convergence_epsilon =
      nonnegative_or(object, path, "convergence_epsilon", sweep.convergence_epsilon);
  return sweep;
}

GateSpec parse_gates(const json::Value& value, const std::string& path) {
  const json::Object& object = as_object(value, path);
  reject_unknown_keys(object, path, {"invariants", "reconvergence", "conservation",
                                     "determinism", "convergence_tolerance"});
  GateSpec gates;
  gates.invariants = bool_or(object, path, "invariants", gates.invariants);
  gates.reconvergence = bool_or(object, path, "reconvergence", gates.reconvergence);
  gates.conservation = string_or(object, path, "conservation", gates.conservation);
  if (gates.conservation != "auto" && gates.conservation != "on" &&
      gates.conservation != "off") {
    fail(path + ".conservation",
         "unknown value '" + gates.conservation + "' (expected auto | on | off)");
  }
  gates.determinism = bool_or(object, path, "determinism", gates.determinism);
  gates.convergence_tolerance =
      nonnegative_or(object, path, "convergence_tolerance", gates.convergence_tolerance);
  return gates;
}

RecordSpec parse_record(const json::Value& value, const std::string& path) {
  const json::Object& object = as_object(value, path);
  reject_unknown_keys(object, path, {"enabled", "path", "cap", "format"});
  RecordSpec record;
  // Writing a "record" object at all means "record this scenario" unless
  // explicitly switched off.
  record.enabled = bool_or(object, path, "enabled", true);
  record.path = string_or(object, path, "path", "");
  const double cap = nonnegative_or(object, path, "cap", 0.0);
  record.cap = static_cast<std::size_t>(cap);
  record.format = string_or(object, path, "format", record.format);
  if (record.format != "binary" && record.format != "jsonl") {
    fail(path + ".format",
         "unknown value '" + record.format + "' (expected binary | jsonl)");
  }
  return record;
}

}  // namespace

json::Value deep_merge(const json::Value& base, const json::Value& overlay) {
  if (overlay.is_null()) return base;
  if (!base.is_object() || !overlay.is_object()) return overlay;
  json::Object merged = base.as_object();
  for (const auto& [key, value] : overlay.as_object()) {
    const auto it = merged.find(key);
    merged[key] = it != merged.end() ? deep_merge(it->second, value) : value;
  }
  return json::Value(std::move(merged));
}

ScenarioSpec parse_spec(const json::Value& value) {
  const std::string path = "$";
  const json::Object& object = as_object(value, path);
  reject_unknown_keys(object, path,
                      {"name", "description", "workload", "policy_shares", "phases", "churn",
                       "offloads", "faults", "fairness", "experiment", "variants", "sweep",
                       "gates", "record"});

  ScenarioSpec spec;
  spec.name = string_or(object, path, "name", "");
  if (spec.name.empty()) fail(path + ".name", "required non-empty string");
  spec.description = string_or(object, path, "description", "");
  if (const json::Value* workload = find(object, "workload")) {
    spec.workload = parse_workload(*workload, path + ".workload");
  }
  if (const json::Value* shares = find(object, "policy_shares")) {
    const std::string shares_path = path + ".policy_shares";
    for (const auto& [user, share] : as_object(*shares, shares_path)) {
      const double parsed = as_number(share, shares_path + "." + user);
      if (!(parsed >= 0.0)) fail(shares_path + "." + user, "share must be >= 0");
      spec.policy_shares[user] = parsed;
    }
  }
  if (const json::Value* phases = find(object, "phases")) {
    spec.phases = parse_phases(*phases, path + ".phases");
  }
  if (const json::Value* churn = find(object, "churn")) {
    spec.churn = parse_churn(*churn, path + ".churn");
  }
  if (const json::Value* offloads = find(object, "offloads")) {
    spec.offloads = parse_offloads(*offloads, path + ".offloads");
  }
  if (const json::Value* faults = find(object, "faults")) {
    spec.faults = parse_faults(*faults, path + ".faults");
  }
  if (const json::Value* fairness = find(object, "fairness")) {
    spec.fairness = parse_fairness(*fairness, path + ".fairness");
  }
  if (const json::Value* experiment = find(object, "experiment")) {
    check_experiment_keys(*experiment, path + ".experiment");
    spec.experiment = *experiment;
  }
  if (const json::Value* variants = find(object, "variants")) {
    spec.variants = parse_variants(*variants, path + ".variants");
  }
  if (const json::Value* sweep = find(object, "sweep")) {
    spec.sweep = parse_sweep(*sweep, path + ".sweep");
  }
  if (const json::Value* gates = find(object, "gates")) {
    spec.gates = parse_gates(*gates, path + ".gates");
  }
  if (const json::Value* record = find(object, "record")) {
    spec.record = parse_record(*record, path + ".record");
  }
  return spec;
}

ScenarioSpec parse_spec_text(const std::string& text) {
  json::Value value;
  try {
    value = json::parse(text);
  } catch (const std::exception& e) {
    throw SpecError(std::string("$: invalid JSON: ") + e.what());
  }
  return parse_spec(value);
}

}  // namespace aequus::scenario
