// Catalog access: locating and loading the shipped scenarios/*.json.
//
// The build stamps the source-tree catalog path into the library
// (AEQUUS_SCENARIO_CATALOG_DIR), so tests and tools find the catalog
// without a working-directory convention; AEQUUS_SCENARIO_DIR overrides
// it at run time (e.g. for an installed tree or a test fixture dir).
#pragma once

#include <string>
#include <vector>

#include "scenario/compile.hpp"
#include "scenario/spec.hpp"

namespace aequus::scenario {

/// The catalog directory: $AEQUUS_SCENARIO_DIR if set, else the path
/// compiled in from the source tree.
[[nodiscard]] std::string catalog_dir();

/// Absolute paths of every *.json in `dir` (default: catalog_dir()),
/// sorted by filename so catalog order is stable across platforms.
[[nodiscard]] std::vector<std::string> list_catalog(const std::string& dir = {});

/// Read and parse one spec file. SpecError messages are prefixed with the
/// file name ("fig10_baseline.json: $.phases[0].end: ...").
[[nodiscard]] ScenarioSpec load_spec_file(const std::string& path);

/// Fold $AEQUUS_SCENARIO_SCALE (a fraction in (0, 1]) into `options`:
/// multiplies jobs_scale and time_scale. Unset, empty, or out-of-range
/// values leave `options` unchanged. Lets CI compress the whole catalog
/// without editing specs or test code.
void apply_env_scale(CompileOptions& options);

}  // namespace aequus::scenario
