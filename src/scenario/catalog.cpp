#include "scenario/catalog.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef AEQUUS_SCENARIO_CATALOG_DIR
#define AEQUUS_SCENARIO_CATALOG_DIR ""
#endif

namespace aequus::scenario {

std::string catalog_dir() {
  if (const char* env = std::getenv("AEQUUS_SCENARIO_DIR"); env && *env) return env;
  return AEQUUS_SCENARIO_CATALOG_DIR;
}

std::vector<std::string> list_catalog(const std::string& dir) {
  const std::string root = dir.empty() ? catalog_dir() : dir;
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end(), [](const std::string& a, const std::string& b) {
    return std::filesystem::path(a).filename() < std::filesystem::path(b).filename();
  });
  return paths;
}

ScenarioSpec load_spec_file(const std::string& path) {
  const std::string filename = std::filesystem::path(path).filename().string();
  std::ifstream in(path);
  if (!in) throw SpecError(filename + ": cannot open file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_spec_text(buffer.str());
  } catch (const SpecError& error) {
    throw SpecError(filename + ": " + error.what());
  }
}

void apply_env_scale(CompileOptions& options) {
  const char* env = std::getenv("AEQUUS_SCENARIO_SCALE");
  if (!env || !*env) return;
  char* end = nullptr;
  const double scale = std::strtod(env, &end);
  if (end == env || scale <= 0.0 || scale > 1.0) return;
  options.jobs_scale *= scale;
  options.time_scale *= scale;
}

}  // namespace aequus::scenario
