#include "testbed/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace aequus::testbed {

double convergence_time(const util::SeriesSet& series,
                        const std::map<std::string, double>& targets, double epsilon,
                        double until) {
  double converged_at = -1.0;
  bool first = true;
  for (const auto& [name, target] : targets) {
    if (!series.contains(name)) return -1.0;
    const util::Series& s = series.all().at(name);
    // Last sample index within the evaluation window.
    std::size_t end = s.size();
    while (end > 0 && s.times()[end - 1] > until) --end;
    if (end == 0) return -1.0;
    // Walk backwards: find the last sample outside the band.
    double series_converged = s.times().front();
    for (std::size_t i = end; i-- > 0;) {
      if (std::fabs(s.values()[i] - target) > epsilon) {
        if (i + 1 >= end) return -1.0;  // window ends out of balance
        series_converged = s.times()[i + 1];
        break;
      }
    }
    if (first || series_converged > converged_at) converged_at = series_converged;
    first = false;
  }
  return converged_at;
}

SubmissionRates submission_rates(const std::vector<double>& submit_times) {
  SubmissionRates rates;
  if (submit_times.empty()) return rates;
  const auto [lo_it, hi_it] = std::minmax_element(submit_times.begin(), submit_times.end());
  const double span_minutes = std::max((*hi_it - *lo_it) / 60.0, 1.0 / 60.0);
  rates.sustained_per_minute = static_cast<double>(submit_times.size()) / span_minutes;

  std::map<long, int> per_minute;
  for (double t : submit_times) ++per_minute[static_cast<long>(std::floor(t / 60.0))];
  for (const auto& [minute, count] : per_minute) {
    (void)minute;
    rates.peak_per_minute = std::max(rates.peak_per_minute, static_cast<double>(count));
  }
  return rates;
}

}  // namespace aequus::testbed
