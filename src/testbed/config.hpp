// JSON configuration for testbed experiments.
//
// An experiment spec bundles the workload scenario selection with the
// ExperimentConfig knobs, enabling config-file-driven runs (see
// examples/run_experiment):
//
//   {
//     "scenario": "baseline" | "nonoptimal-policy" | "bursty",
//     "jobs": 43200, "seed": 2012,
//     "dispatch": "stochastic" | "round-robin",
//     "timings": {"service_update_interval": 30, "client_cache_ttl": 30,
//                 "reprioritize_interval": 30, "uss_bin_width": 600},
//     "fairshare": {"decay": {...}, "algorithm": {...}, "projection": {...}},
//     "sample_interval": 60, "seed_rng": 7, "record_per_site": false,
//     "sites": {"4": {"contributes": false}, "5": {"reads_global": false,
//               "rm": "maui"}}
//   }
#pragma once

#include "json/decode.hpp"
#include "json/json.hpp"
#include "testbed/experiment.hpp"
#include "workload/scenarios.hpp"

/// json::decode<workload::Scenario> support: builds the scenario named by
/// the spec ("baseline", "nonoptimal-policy", or "bursty"), honoring
/// "jobs" and "seed". Throws on unknown names.
template <>
struct aequus::json::Decoder<aequus::workload::Scenario> {
  [[nodiscard]] static aequus::workload::Scenario decode(const Value& spec);
};

/// json::decode<testbed::ExperimentConfig> support: builds the experiment
/// configuration from the spec (all keys optional).
template <>
struct aequus::json::Decoder<aequus::testbed::ExperimentConfig> {
  [[nodiscard]] static aequus::testbed::ExperimentConfig decode(const Value& spec);
};

namespace aequus::testbed {

/// Deprecated spelling of json::decode<workload::Scenario>().
[[deprecated("use json::decode<workload::Scenario>()")]] [[nodiscard]] inline workload::Scenario
scenario_from_json(const json::Value& spec) {
  return json::decode<workload::Scenario>(spec);
}

/// Deprecated spelling of json::decode<ExperimentConfig>().
[[deprecated("use json::decode<testbed::ExperimentConfig>()")]] [[nodiscard]] inline ExperimentConfig
experiment_config_from_json(const json::Value& spec) {
  return json::decode<ExperimentConfig>(spec);
}

}  // namespace aequus::testbed
