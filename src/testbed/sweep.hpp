// Parallel experiment-sweep engine.
//
// A sweep is the cross product (variant × replication): every variant is
// a named (scenario, config) pair, every replication re-runs it with a
// fresh seed, and every task — one (variant, replication) cell — builds
// its own Experiment so no simulator state is ever shared between
// threads. The per-task seed is a pure function of the sweep's root seed
// and the task index (the task-index-th output of a splitmix64 stream),
// so the set of experiments a sweep runs is identical whether it executes
// on one thread or sixteen. Results land in a preallocated slot per task
// and aggregation walks the slots in task-index order, which makes the
// aggregates — mean, stddev, and 95 % confidence interval per metric —
// bit-identical across thread counts and schedules.
//
// Thread-safety contract for everything a task touches:
//   - the Scenario is shared by const reference and only read;
//   - the ExperimentConfig is copied per task (the seed is overwritten);
//   - the Experiment, Simulator, ServiceBus, and sites are task-local;
//   - optional hooks run on the worker thread but receive a task index,
//     so callers can keep per-task state in preallocated disjoint slots.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "testbed/experiment.hpp"
#include "workload/scenarios.hpp"

namespace aequus::testbed {

struct SweepTaskResult;

/// One named cell of the sweep grid: a scenario plus a config variant.
struct SweepVariant {
  std::string name;
  workload::Scenario scenario;
  ExperimentConfig config{};
};

struct SweepSpec {
  std::vector<SweepVariant> variants;
  std::size_t replications = 1;
  std::uint64_t root_seed = 2014;
  /// Worker threads; 0 resolves via AEQUUS_THREADS, then the hardware.
  int threads = 0;
  /// Keep the full ExperimentResult per task (memory-heavy for big
  /// sweeps; the scalar metrics and aggregates survive either way).
  bool keep_results = true;
  /// Re-derive FaultPlan::seed per task so replications sample different
  /// fault realizations of the same schedule. Outage windows are part of
  /// the schedule and stay fixed.
  bool reseed_faults = true;
  /// Epsilon for the convergence_time_s metric (balance band half-width).
  /// Forwarded into every task's ExperimentConfig so the registry's
  /// "experiment.convergence_time_s" gauge is bit-identical to the scalar
  /// metric (same function, same inputs).
  double convergence_epsilon = 0.05;
  /// When set, each task's result is rendered to a determinism
  /// fingerprint (inject testing::fingerprint via
  /// testing::attach_fingerprints(); the testbed library cannot depend on
  /// the testing library, which depends on it).
  std::function<std::string(const ExperimentResult&)> fingerprinter;
  /// Called on the worker thread right after the task's Experiment is
  /// constructed, before run(). Use the task index to address
  /// preallocated per-task state (e.g. an InvariantChecker slot).
  std::function<void(Experiment&, std::size_t task_index)> on_setup;
  /// Called on the worker thread after the task's slot is fully
  /// populated; may append custom entries to `slot.metrics`, which then
  /// flow into the aggregates like the built-in metrics.
  std::function<void(Experiment&, SweepTaskResult& slot)> on_teardown;

  [[nodiscard]] std::size_t task_count() const noexcept {
    return variants.size() * (replications > 0 ? replications : 1);
  }
};

/// Aggregate statistics of one metric across a variant's replications.
struct MetricSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;     ///< sample standard deviation (n-1)
  double ci95_half = 0.0;  ///< Student-t 95 % half-width of the mean
  double min = 0.0;
  double max = 0.0;
};

struct SweepTaskResult {
  std::size_t task_index = 0;
  std::size_t variant_index = 0;
  std::size_t replication = 0;
  std::uint64_t seed = 0;
  double wall_seconds = 0.0;  ///< host wall clock, excluded from metrics
  std::string fingerprint;    ///< empty unless a fingerprinter is set
  std::map<std::string, double> metrics;
  /// Metrics snapshot of the task's registry; kept even when
  /// keep_results is false (small next to an ExperimentResult).
  obs::Snapshot obs;
  ExperimentResult result;    ///< empty unless spec.keep_results
};

struct SweepResult {
  std::vector<SweepTaskResult> tasks;  ///< task-index order, all tasks
  /// aggregates[variant name][metric name], merged in task-index order.
  std::map<std::string, std::map<std::string, MetricSummary>> aggregates;
  /// obs[variant name]: per-task snapshots merged in task-index order, so
  /// counters/sums are bit-identical across thread counts.
  std::map<std::string, obs::Snapshot> obs;
  double wall_seconds = 0.0;
  int threads_used = 1;

  /// Tasks of one variant, in replication order.
  [[nodiscard]] std::vector<const SweepTaskResult*> tasks_of(std::size_t variant_index) const;
};

/// The task-index-th output of a splitmix64 stream seeded with
/// `root_seed` — stateless, so any task's seed is computable in O(1).
[[nodiscard]] std::uint64_t sweep_task_seed(std::uint64_t root_seed,
                                            std::size_t task_index) noexcept;

/// Thread-count resolution: `requested` > 0 wins, else a positive
/// AEQUUS_THREADS environment value, else std::thread::hardware_concurrency
/// (at least 1).
[[nodiscard]] int resolve_thread_count(int requested);

/// The standard scalar metrics extracted from every task's result.
[[nodiscard]] std::map<std::string, double> scalar_metrics(
    const ExperimentResult& result, const workload::Scenario& scenario,
    double convergence_epsilon = 0.05);

/// Mean / sample stddev / Student-t 95 % CI of `samples` (empty -> zeros).
[[nodiscard]] MetricSummary summarize(const std::vector<double>& samples);

/// Run every (variant, replication) task, on `spec.threads` workers, and
/// aggregate. Deterministic in everything except the wall-clock fields.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec);

/// Cross-product helper: one variant per (scenario, config) pair, named
/// "<scenario name>/<config name>" (or just one part when the other list
/// has a single unnamed entry).
[[nodiscard]] std::vector<SweepVariant> cross_variants(
    const std::vector<std::pair<std::string, workload::Scenario>>& scenarios,
    const std::vector<std::pair<std::string, ExperimentConfig>>& configs);

}  // namespace aequus::testbed
