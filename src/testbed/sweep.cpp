#include "testbed/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <thread>

#include "testbed/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace aequus::testbed {

namespace {

/// Two-sided 95 % Student-t critical values, indexed by degrees of
/// freedom 1..30; larger samples use the normal limit.
constexpr double kT95[] = {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
                           2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
                           2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
                           2.060,  2.056, 2.052, 2.048, 2.045, 2.042};

double t95(std::size_t degrees_of_freedom) {
  if (degrees_of_freedom == 0) return 0.0;
  if (degrees_of_freedom <= 30) return kT95[degrees_of_freedom - 1];
  return 1.960;
}

/// Salt separating the fault-plan seed stream from the experiment seed
/// stream (both derive from the same per-task seed).
constexpr std::uint64_t kFaultSeedSalt = 0xfa171u;

}  // namespace

std::uint64_t sweep_task_seed(std::uint64_t root_seed, std::size_t task_index) noexcept {
  // splitmix64 advances its state by the golden gamma per draw, so seeding
  // the state `task_index` gammas ahead and taking one output equals the
  // task_index-th draw of the stream — without generating the prefix.
  std::uint64_t state = root_seed + static_cast<std::uint64_t>(task_index) * 0x9e3779b97f4a7c15ULL;
  return util::splitmix64(state);
}

int resolve_thread_count(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("AEQUUS_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<int>(parsed);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

MetricSummary summarize(const std::vector<double>& samples) {
  MetricSummary summary;
  summary.count = samples.size();
  if (samples.empty()) return summary;
  summary.min = *std::min_element(samples.begin(), samples.end());
  summary.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (const double v : samples) sum += v;
  summary.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double squares = 0.0;
    for (const double v : samples) squares += (v - summary.mean) * (v - summary.mean);
    summary.stddev = std::sqrt(squares / static_cast<double>(samples.size() - 1));
    summary.ci95_half =
        t95(samples.size() - 1) * summary.stddev / std::sqrt(static_cast<double>(samples.size()));
  }
  return summary;
}

std::map<std::string, double> scalar_metrics(const ExperimentResult& result,
                                             const workload::Scenario& scenario,
                                             double convergence_epsilon) {
  std::map<std::string, double> metrics;
  metrics["jobs_submitted"] = static_cast<double>(result.jobs_submitted);
  metrics["jobs_completed"] = static_cast<double>(result.jobs_completed);
  metrics["completion_ratio"] =
      result.jobs_submitted > 0
          ? static_cast<double>(result.jobs_completed) / static_cast<double>(result.jobs_submitted)
          : 0.0;
  metrics["mean_utilization"] = result.mean_utilization;
  metrics["makespan_s"] = result.makespan;
  const double convergence =
      result.priority_convergence_time(convergence_epsilon, scenario.duration_seconds);
  metrics["convergence_time_s"] = convergence;
  metrics["converged"] = convergence >= 0.0 ? 1.0 : 0.0;
  metrics["sustained_rate_per_min"] = result.rates.sustained_per_minute;
  metrics["peak_rate_per_min"] = result.rates.peak_per_minute;

  // Final-share accuracy against the scenario's realized shares (the
  // paper's convergence targets) or, failing those, the policy targets.
  const auto& targets =
      !scenario.usage_shares.empty() ? scenario.usage_shares : scenario.policy_shares;
  double worst = 0.0;
  for (const auto& [user, target] : targets) {
    const auto it = result.final_usage_share.find(user);
    const double measured = it != result.final_usage_share.end() ? it->second : 0.0;
    worst = std::max(worst, std::fabs(measured - target));
  }
  metrics["max_share_error"] = worst;
  // Run-averaged mean absolute share deviation from the *policy* targets
  // — the backend-faceoff "fairness distance" column (lower is fairer).
  // Two deliberate differences from max_share_error: the policy targets
  // are kept even when they disagree with the realized demand (the
  // nonoptimal-policy workloads — that gap is exactly what the fairness
  // policies differ on), and the deviation is averaged over every usage
  // sample of the run rather than read once at the end (once every job
  // has completed, the final cumulative share equals the trace
  // composition for any scheduling order; the trajectory does not).
  const auto& fairness_targets =
      !scenario.policy_shares.empty() ? scenario.policy_shares : targets;
  double distance_sum = 0.0;
  std::size_t distance_samples = 0;
  for (const auto& [user, target] : fairness_targets) {
    const auto it = result.usage_shares.all().find(user);
    if (it == result.usage_shares.all().end()) continue;
    for (const double share : it->second.values()) {
      distance_sum += std::fabs(share - target);
      ++distance_samples;
    }
  }
  metrics["fairness_distance"] =
      distance_samples > 0 ? distance_sum / static_cast<double>(distance_samples) : 0.0;

  // Starvation: a started job whose queue wait exceeded 5 % of the
  // scenario window. The threshold is a fraction of the (scaled) run so
  // the count is comparable across time-compressed CI variants.
  const double starvation_threshold = 0.05 * scenario.duration_seconds;
  double wait_sum = 0.0;
  std::size_t wait_count = 0;
  std::size_t starved = 0;
  for (const auto& [user, series] : result.waits.all()) {
    (void)user;
    for (const double w : series.values()) {
      wait_sum += w;
      if (starvation_threshold > 0.0 && w > starvation_threshold) ++starved;
    }
    wait_count += series.size();
  }
  metrics["mean_wait_s"] = wait_count > 0 ? wait_sum / static_cast<double>(wait_count) : 0.0;
  metrics["starved_jobs"] = static_cast<double>(starved);
  metrics["throughput_jobs_per_h"] =
      result.makespan > 0.0
          ? static_cast<double>(result.jobs_completed) / result.makespan * 3600.0
          : 0.0;

  metrics["bus_requests"] = static_cast<double>(result.bus.requests);
  metrics["bus_dropped"] =
      static_cast<double>(result.bus.dropped_participation + result.bus.dropped_unbound +
                          result.bus.dropped_loss + result.bus.dropped_outage);
  metrics["bus_payload_bytes"] = static_cast<double>(result.bus.payload_bytes);
  return metrics;
}

std::vector<const SweepTaskResult*> SweepResult::tasks_of(std::size_t variant_index) const {
  std::vector<const SweepTaskResult*> selected;
  for (const auto& task : tasks) {
    if (task.variant_index == variant_index) selected.push_back(&task);
  }
  return selected;
}

std::vector<SweepVariant> cross_variants(
    const std::vector<std::pair<std::string, workload::Scenario>>& scenarios,
    const std::vector<std::pair<std::string, ExperimentConfig>>& configs) {
  std::vector<SweepVariant> variants;
  for (const auto& [scenario_name, scenario] : scenarios) {
    for (const auto& [config_name, config] : configs) {
      SweepVariant variant;
      if (scenario_name.empty() || config_name.empty()) {
        variant.name = scenario_name.empty() ? config_name : scenario_name;
      } else {
        variant.name = scenario_name + "/" + config_name;
      }
      if (variant.name.empty()) variant.name = "default";
      variant.scenario = scenario;
      variant.config = config;
      variants.push_back(std::move(variant));
    }
  }
  return variants;
}

SweepResult run_sweep(const SweepSpec& spec) {
  using Clock = std::chrono::steady_clock;
  const std::size_t replications = spec.replications > 0 ? spec.replications : 1;
  const std::size_t task_count = spec.variants.size() * replications;

  SweepResult out;
  out.threads_used = resolve_thread_count(spec.threads);
  out.tasks.resize(task_count);

  const auto sweep_start = Clock::now();
  {
    // Never spawn more workers than tasks; extra threads would only idle.
    util::ThreadPool pool(
        std::min<std::size_t>(static_cast<std::size_t>(out.threads_used), std::max<std::size_t>(task_count, 1)));
    std::vector<std::future<void>> futures;
    futures.reserve(task_count);
    for (std::size_t index = 0; index < task_count; ++index) {
      futures.push_back(pool.submit([&spec, &out, index, replications] {
        const std::size_t variant_index = index / replications;
        const SweepVariant& variant = spec.variants[variant_index];

        SweepTaskResult& slot = out.tasks[index];
        slot.task_index = index;
        slot.variant_index = variant_index;
        slot.replication = index % replications;
        slot.seed = sweep_task_seed(spec.root_seed, index);

        ExperimentConfig config = variant.config;  // task-local copy
        config.seed = slot.seed;
        config.convergence_epsilon = spec.convergence_epsilon;
        if (spec.reseed_faults && config.faults.active()) {
          std::uint64_t fault_state = slot.seed ^ kFaultSeedSalt;
          config.faults.seed = util::splitmix64(fault_state);
        }

        const auto task_start = Clock::now();
        Experiment experiment(variant.scenario, std::move(config));
        if (spec.on_setup) spec.on_setup(experiment, index);
        ExperimentResult result = experiment.run();
        slot.wall_seconds = std::chrono::duration<double>(Clock::now() - task_start).count();

        if (spec.fingerprinter) slot.fingerprint = spec.fingerprinter(result);
        slot.metrics = scalar_metrics(result, variant.scenario, spec.convergence_epsilon);
        slot.obs = result.obs;  // survives even when the result is dropped
        if (spec.keep_results) slot.result = std::move(result);
        if (spec.on_teardown) spec.on_teardown(experiment, slot);
      }));
    }
    // get() rethrows the first task failure on the calling thread.
    for (auto& future : futures) future.get();
  }
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - sweep_start).count();

  // Aggregation walks the preallocated slots in task-index order, so the
  // result is independent of which worker finished when.
  std::map<std::string, std::map<std::string, std::vector<double>>> samples;
  for (const auto& task : out.tasks) {
    const std::string& variant_name = spec.variants[task.variant_index].name;
    for (const auto& [metric, value] : task.metrics) {
      samples[variant_name][metric].push_back(value);
    }
    out.obs[variant_name].merge(task.obs);
  }
  for (const auto& [variant_name, metrics] : samples) {
    for (const auto& [metric, values] : metrics) {
      out.aggregates[variant_name][metric] = summarize(values);
    }
  }
  return out;
}

}  // namespace aequus::testbed
