// Experiment measurement helpers: convergence detection and submission
// rate statistics.
#pragma once

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "util/timeseries.hpp"

namespace aequus::testbed {

/// Earliest time t such that every series stays within `epsilon` of its
/// target for all samples in [t, until]. Samples after `until` are
/// ignored (used to judge convergence over the active submission window,
/// excluding the drain tail). Returns -1 when balance is never reached
/// (or data is missing).
[[nodiscard]] double convergence_time(
    const util::SeriesSet& series, const std::map<std::string, double>& targets,
    double epsilon, double until = std::numeric_limits<double>::infinity());

struct SubmissionRates {
  double sustained_per_minute = 0.0;  ///< total jobs / active span
  double peak_per_minute = 0.0;       ///< max jobs in any one minute
};

/// Per-minute submission rate statistics over raw submit timestamps.
[[nodiscard]] SubmissionRates submission_rates(const std::vector<double>& submit_times);

}  // namespace aequus::testbed
