#include "testbed/site.hpp"

#include <algorithm>
#include <cctype>

#include "maui/patches.hpp"
#include "slurm/aequus_plugins.hpp"

namespace aequus::testbed {

namespace {
constexpr const char* kAccountPrefix = "acct_";
}

std::string system_account_for(const std::string& grid_user) {
  std::string lowered = grid_user;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return kAccountPrefix + lowered;
}

std::optional<std::string> grid_user_for(const std::string& system_account) {
  const std::string prefix = kAccountPrefix;
  if (system_account.size() <= prefix.size() ||
      system_account.compare(0, prefix.size(), prefix) != 0) {
    return std::nullopt;
  }
  std::string grid = system_account.substr(prefix.size());
  // The testbed convention capitalizes the leading 'U' of user names.
  if (!grid.empty() && grid.front() == 'u') grid.front() = 'U';
  return grid;
}

ClusterSite::ClusterSite(sim::Simulator& simulator, net::ServiceBus& bus, const SiteSpec& spec,
                         const SiteTimings& timings, const SiteFairshare& fairshare,
                         obs::Observability obs, const ingest::IngestConfig& batching)
    : spec_(spec) {
  services::InstallationConfig installation_config;
  installation_config.uss.bin_width = timings.uss_bin_width;
  installation_config.uss.retention = timings.uss_retention;
  installation_config.ums.update_interval = timings.service_update_interval;
  installation_config.ums.decay = fairshare.decay;
  installation_config.ums.read_remote = spec.participation.reads_global;
  installation_config.fcs.update_interval = timings.service_update_interval;
  installation_config.fcs.algorithm = fairshare.algorithm;
  installation_config.fcs.projection = fairshare.projection;
  installation_config.fcs.backend = fairshare.backend;
  installation_ = std::make_unique<services::Installation>(simulator, bus, spec.name,
                                                           installation_config, obs);

  bus.set_site_contributes(spec.name, spec.participation.contributes);

  client::ClientConfig client_config;
  client_config.site = spec.name;
  client_config.cluster = spec.name;
  client_config.fairshare_cache_ttl = timings.client_cache_ttl;
  client_config.batching = batching;
  // Coalesce on the USS histogram granularity: two deltas the delta log
  // merges were going to share a bin at the USS anyway.
  client_config.batching.bin_width = timings.uss_bin_width;
  client_ = std::make_unique<client::AequusClient>(simulator, bus, client_config, obs);

  rms::Cluster cluster(spec.name, spec.hosts, spec.cores_per_host);
  rms::SchedulerConfig scheduler_config;
  scheduler_config.reprioritize_interval = timings.reprioritize_interval;

  if (spec.rm == RmKind::kSlurm) {
    auto controller = std::make_unique<slurm::SlurmController>(
        simulator, std::move(cluster),
        slurm::make_aequus_priority_plugin(*client_, fairshare.slurm_weights),
        scheduler_config);
    controller->add_jobcomp_plugin(std::make_unique<slurm::AequusJobCompPlugin>(*client_));
    rm_ = std::move(controller);
  } else {
    auto scheduler = std::make_unique<maui::MauiScheduler>(simulator, std::move(cluster),
                                                           maui::MauiWeights{},
                                                           scheduler_config);
    maui::apply_aequus_patches(*scheduler, *client_);
    rm_ = std::move(scheduler);
  }
  rm_->attach_observability(obs, spec.name);
  // Each scheduling pass prices all jobs against one immutable snapshot
  // of the client's fairshare cache (same values as per-job lookups — the
  // client publishes the snapshot it serves lookups from).
  rm_->set_fairshare_provider([client = client_.get()] { return client->snapshot(); });
}

void ClusterSite::set_policy(core::PolicyTree policy) {
  installation_->set_policy(std::move(policy));
}

void ClusterSite::set_peer_sites(const std::vector<std::string>& sites) {
  installation_->set_peer_sites(sites);
}

}  // namespace aequus::testbed
