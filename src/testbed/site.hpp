// One emulated cluster site: a local resource manager (SLURM- or
// Maui-flavoured) integrated with a full Aequus installation through
// libaequus (Fig. 2).
#pragma once

#include <memory>
#include <string>

#include "core/backend.hpp"
#include "ingest/batcher.hpp"
#include "libaequus/client.hpp"
#include "maui/maui_scheduler.hpp"
#include "rms/scheduler.hpp"
#include "services/installation.hpp"
#include "slurm/aequus_plugins.hpp"
#include "slurm/controller.hpp"

namespace aequus::testbed {

enum class RmKind { kSlurm, kMaui };

struct SiteParticipation {
  bool contributes = true;   ///< usage data may leave the site
  bool reads_global = true;  ///< UMS considers remote sites' data
};

struct SiteSpec {
  std::string name;
  int hosts = 40;            ///< virtual hosts (paper testbed: 40 per cluster)
  int cores_per_host = 1;
  RmKind rm = RmKind::kSlurm;
  SiteParticipation participation{};
};

struct SiteTimings {
  double service_update_interval = 30.0;  ///< USS/UMS/FCS cadence (delay II)
  double client_cache_ttl = 30.0;         ///< libaequus cache (delay III)
  double reprioritize_interval = 30.0;    ///< RM sweep (delay IV)
  /// USS histogram interval. Coarse relative to the service cadences but
  /// fine relative to the decay half-life, so it bounds the exchanged
  /// histogram sizes without affecting the fairshare values.
  double uss_bin_width = 600.0;
  double uss_retention = 0.0;             ///< 0 = unlimited history
};

struct SiteFairshare {
  /// Usage decay. Production-style default: a 24-hour half-life, long
  /// relative to the 6-hour tests (so in-test priorities reflect nearly
  /// cumulative usage) yet short enough that multi-day runs forget.
  core::DecayConfig decay{core::DecayKind::kExponentialHalfLife, 86400.0, 7200.0};
  core::FairshareConfig algorithm{};
  core::ProjectionConfig projection{};
  /// Fairness policy computing the priorities (DESIGN.md §6j):
  /// "aequus" (default), "balanced", or "credit".
  core::FairnessBackendConfig backend{};
  /// Factor weights for the SLURM multifactor plugin. The paper's tests
  /// use fairshare only; nonzero age/size weights reproduce the
  /// "smoothing effect" of combining fairshare with other factors.
  slurm::MultifactorWeights slurm_weights{};
};

/// A fully wired site. Construction binds all services to the bus and
/// applies the participation flags.
class ClusterSite {
 public:
  ClusterSite(sim::Simulator& simulator, net::ServiceBus& bus, const SiteSpec& spec,
              const SiteTimings& timings, const SiteFairshare& fairshare,
              obs::Observability obs = {}, const ingest::IngestConfig& batching = {});

  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
  [[nodiscard]] const SiteSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] rms::SchedulerBase& rm() noexcept { return *rm_; }
  [[nodiscard]] const rms::SchedulerBase& rm() const noexcept { return *rm_; }
  [[nodiscard]] services::Installation& aequus() noexcept { return *installation_; }
  [[nodiscard]] client::AequusClient& client() noexcept { return *client_; }

  /// Install the site policy through the PDS.
  void set_policy(core::PolicyTree policy);

  /// Configure the USS peers this site's UMS polls.
  void set_peer_sites(const std::vector<std::string>& sites);

  /// Submit a job to the local RM.
  rms::JobId submit(rms::Job job) { return rm_->submit(std::move(job)); }

 private:
  SiteSpec spec_;
  std::unique_ptr<services::Installation> installation_;
  std::unique_ptr<client::AequusClient> client_;
  std::unique_ptr<rms::SchedulerBase> rm_;
};

/// Deterministic grid-user -> system-account mapping used by the testbed
/// submission host ("U65" -> "acct_u65"). Sites invert it through the
/// shared name-resolution endpoint.
[[nodiscard]] std::string system_account_for(const std::string& grid_user);

/// Invert system_account_for; empty optional for non-testbed accounts.
[[nodiscard]] std::optional<std::string> grid_user_for(const std::string& system_account);

}  // namespace aequus::testbed
