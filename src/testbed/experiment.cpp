#include "testbed/experiment.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace aequus::testbed {

double ExperimentResult::priority_convergence_time(double epsilon, double until) const {
  std::map<std::string, double> targets;
  for (const auto& [name, series] : priorities.all()) {
    (void)series;
    targets[name] = core::kNeutralFactor;  // percental balance point
  }
  return convergence_time(priorities, targets, epsilon, until);
}

Experiment::Experiment(const workload::Scenario& scenario, ExperimentConfig config)
    : scenario_(scenario), config_(std::move(config)), bus_(simulator_), rng_(config_.seed) {
  bus_.set_remote_latency(config_.bus_remote_latency);
  if (config_.faults.active()) bus_.set_fault_plan(config_.faults);
  // Trace ids derive from the experiment seed, so span trees are
  // bit-identical for the same (scenario, seed) at any sweep thread
  // count. The drop counter is registered unconditionally to keep the
  // snapshot key set uniform across traced and untraced tasks.
  tracer_.seed_trace_ids(config_.seed);
  tracer_.set_dropped_counter(&registry_.counter("trace.dropped_events"));
  offload_counter_ = &registry_.counter("experiment.jobs_offloaded");
  // Attach before any site binds so every endpoint registers its metrics
  // in the experiment registry (handles must never be re-registered after
  // traffic starts flowing).
  const obs::Observability observability{&registry_, &tracer_};
  bus_.attach_observability(observability);

  std::vector<std::string> site_names;
  for (int i = 0; i < scenario_.cluster_count; ++i) {
    SiteSpec spec;
    spec.name = util::format("site%d", i);
    spec.hosts = scenario_.hosts_per_cluster;
    spec.cores_per_host = 1;
    const auto override_it = config_.site_overrides.find(i);
    if (override_it != config_.site_overrides.end()) {
      const SiteSpec& o = override_it->second;
      spec.rm = o.rm;
      spec.participation = o.participation;
      if (o.hosts > 0) spec.hosts = o.hosts;
      if (o.cores_per_host > 0) spec.cores_per_host = o.cores_per_host;
    }
    site_names.push_back(spec.name);
    sites_.push_back(std::make_unique<ClusterSite>(simulator_, bus_, spec, config_.timings,
                                                   config_.fairshare, observability,
                                                   config_.usage_batching));
  }
  for (auto& site : sites_) site->set_peer_sites(site_names);

  install_policy();
  bind_name_resolver();
}

void Experiment::install_policy() {
  core::PolicyTree policy;
  for (const auto& [user, share] : scenario_.policy_shares) {
    policy.set_share("/" + user, share);
  }
  for (auto& site : sites_) site->set_policy(policy);
}

void Experiment::bind_name_resolver() {
  // "A unified name resolution service used by all clusters is co-hosted
  // on the job submission host." Every site's IRS is configured to call
  // this endpoint with the minimalist JSON protocol.
  bus_.bind("subhost.nameresolver", [](const json::Value& query) -> json::Value {
    const auto grid_user = grid_user_for(query.get_string("system_user"));
    json::Object reply;
    if (grid_user) {
      reply["grid_user"] = *grid_user;
    } else {
      reply["unknown"] = true;
    }
    return json::Value(std::move(reply));
  });
  for (auto& site : sites_) {
    site->aequus().irs().set_endpoint("subhost.nameresolver");
  }
}

std::size_t Experiment::apply_offloads(std::size_t index, double now) {
  for (const auto& rule : config_.offloads) {
    if (rule.to_site < 0 || static_cast<std::size_t>(rule.to_site) >= sites_.size()) continue;
    if (rule.from_site >= 0 && static_cast<std::size_t>(rule.from_site) != index) continue;
    if (now < rule.start || now >= rule.end) continue;
    if (rule.fraction < 1.0 && !rng_.bernoulli(rule.fraction)) continue;
    offload_counter_->inc();
    return static_cast<std::size_t>(rule.to_site);
  }
  return index;
}

void Experiment::schedule_submissions() {
  for (const auto& record : scenario_.trace.records()) {
    tasks_.push_back(simulator_.schedule_at(record.submit, [this, record] {
      std::size_t index;
      if (config_.dispatch == DispatchPolicy::kRoundRobin) {
        index = round_robin_next_++ % sites_.size();
      } else {
        index = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(sites_.size()) - 1));
      }
      if (!config_.offloads.empty()) index = apply_offloads(index, record.submit);
      rms::Job job;
      job.system_user = system_account_for(record.user);
      job.duration = record.duration;
      job.cores = record.cores;
      sites_[index]->submit(std::move(job));
    }));
  }
}

void Experiment::schedule_sampling(ExperimentResult& result) {
  tasks_.push_back(simulator_.schedule_periodic(
      config_.sample_interval, config_.sample_interval, [this, &result] {
        const double now = simulator_.now();
        // Cumulative usage shares.
        for (const auto& [user, share] : scenario_.policy_shares) {
          (void)share;
          const auto it = completed_usage_.find(user);
          const double usage = it != completed_usage_.end() ? it->second : 0.0;
          const double fraction =
              total_completed_usage_ > 0.0 ? usage / total_completed_usage_ : 0.0;
          result.usage_shares.series(user).add(now, fraction);
        }
        // Global priorities as pre-calculated by the first site's FCS.
        auto& reference_fcs = sites_.front()->aequus().fcs();
        for (const auto& [user, share] : scenario_.policy_shares) {
          (void)share;
          result.priorities.series(user).add(now, reference_fcs.factor_for(user));
        }
        // Optional per-site priorities.
        if (config_.record_per_site) {
          for (auto& site : sites_) {
            for (const auto& [user, share] : scenario_.policy_shares) {
              (void)share;
              result.per_site.series(site->name() + "/" + user)
                  .add(now, site->aequus().fcs().factor_for(user));
            }
          }
        }
        // Instantaneous utilization.
        int busy = 0;
        int total = 0;
        for (const auto& site : sites_) {
          busy += site->rm().cluster().busy_cores();
          total += site->rm().cluster().total_cores();
        }
        result.utilization.series("total").add(
            now, total > 0 ? static_cast<double>(busy) / total : 0.0);
        for (const auto& hook : tick_hooks_) hook(now);
      }));
}

ExperimentResult Experiment::run() {
  ExperimentResult result;

  // Track completions globally (ground truth for usage-share series).
  for (auto& site : sites_) {
    site->rm().add_completion_listener([this, &result](const rms::Job& job) {
      const auto grid_user = grid_user_for(job.system_user);
      const std::string user = grid_user ? *grid_user : job.system_user;
      completed_usage_[user] += job.usage();
      total_completed_usage_ += job.usage();
      ++completed_jobs_;
      // job.priority still holds the value the job was sorted by when it
      // was started (no recompute happens after start).
      result.start_priorities.series(user).add(job.start_time, job.priority);
      result.waits.series(user).add(job.start_time, job.start_time - job.submit_time);
    });
  }

  schedule_submissions();
  schedule_sampling(result);

  const auto [first_submit, last_activity] = scenario_.trace.timespan();
  (void)first_submit;
  const double horizon = last_activity + config_.drain_seconds;

  // Run until all submitted jobs have completed (bounded by a generous
  // horizon multiple so a wedged experiment still terminates).
  const double hard_stop = horizon * 20.0 + 86400.0;
  double until = horizon;
  while (true) {
    simulator_.run_until(until);
    if (completed_jobs_ >= scenario_.trace.size()) break;
    if (until >= hard_stop) {
      AEQ_WARN("experiment") << scenario_.name << ": " << completed_jobs_ << "/"
                             << scenario_.trace.size() << " jobs completed at hard stop";
      break;
    }
    until = std::min(until + horizon, hard_stop);
  }

  for (auto& task : tasks_) task.cancel();

  result.jobs_submitted = scenario_.trace.size();
  result.jobs_completed = completed_jobs_;
  result.makespan = simulator_.now();
  for (const auto& [user, usage] : completed_usage_) {
    result.final_usage_share[user] =
        total_completed_usage_ > 0.0 ? usage / total_completed_usage_ : 0.0;
  }
  double utilization_sum = 0.0;
  for (const auto& site : sites_) {
    utilization_sum += site->rm().cluster().utilization(scenario_.duration_seconds);
  }
  result.mean_utilization = utilization_sum / static_cast<double>(sites_.size());
  result.rates = submission_rates(scenario_.trace.arrival_times());
  result.bus = bus_.stats();

  // Headline metrics land in the registry so benches can derive their
  // numbers from the snapshot (same values as the sweep's scalar metrics:
  // identical inputs, identical arithmetic, bit-identical results).
  registry_.counter("experiment.jobs_submitted").inc(result.jobs_submitted);
  registry_.counter("experiment.jobs_completed").inc(result.jobs_completed);
  registry_.gauge("experiment.makespan_s").set(result.makespan);
  registry_.gauge("experiment.mean_utilization").set(result.mean_utilization);
  const double convergence =
      result.priority_convergence_time(config_.convergence_epsilon, scenario_.duration_seconds);
  registry_.gauge("experiment.convergence_time_s").set(convergence);
  registry_.gauge("experiment.converged").set(convergence >= 0.0 ? 1.0 : 0.0);

  result.obs = registry_.snapshot();
  result.trace = tracer_.take();
  return result;
}

}  // namespace aequus::testbed
