#include "testbed/config.hpp"

#include <stdexcept>

#include "core/backend.hpp"
#include "core/projection.hpp"

aequus::workload::Scenario aequus::json::Decoder<aequus::workload::Scenario>::decode(
    const Value& spec) {
  namespace workload = aequus::workload;
  const std::string name = spec.get_string("scenario", "baseline");
  const auto jobs = static_cast<std::size_t>(spec.get_number("jobs", 43200));
  const auto seed = static_cast<std::uint64_t>(spec.get_number("seed", 2012));
  if (name == "baseline") return workload::baseline_scenario(seed, jobs);
  if (name == "nonoptimal-policy") return workload::nonoptimal_policy_scenario(seed, jobs);
  if (name == "bursty") return workload::bursty_scenario(seed, jobs);
  throw std::invalid_argument("unknown scenario: " + name);
}

aequus::testbed::ExperimentConfig aequus::json::Decoder<aequus::testbed::ExperimentConfig>::decode(
    const Value& spec) {
  namespace core = aequus::core;
  namespace json = aequus::json;
  using namespace aequus::testbed;
  ExperimentConfig config;

  const std::string dispatch = spec.get_string("dispatch", "stochastic");
  if (dispatch == "stochastic") config.dispatch = DispatchPolicy::kStochastic;
  else if (dispatch == "round-robin") config.dispatch = DispatchPolicy::kRoundRobin;
  else throw std::invalid_argument("unknown dispatch policy: " + dispatch);

  if (const auto timings = spec.find("timings")) {
    const auto& t = timings->get();
    config.timings.service_update_interval =
        t.get_number("service_update_interval", config.timings.service_update_interval);
    config.timings.client_cache_ttl =
        t.get_number("client_cache_ttl", config.timings.client_cache_ttl);
    config.timings.reprioritize_interval =
        t.get_number("reprioritize_interval", config.timings.reprioritize_interval);
    config.timings.uss_bin_width =
        t.get_number("uss_bin_width", config.timings.uss_bin_width);
    config.timings.uss_retention =
        t.get_number("uss_retention", config.timings.uss_retention);
  }
  if (const auto fairshare = spec.find("fairshare")) {
    const auto& f = fairshare->get();
    if (const auto decay = f.find("decay")) {
      config.fairshare.decay = core::Decay::from_json(decay->get()).config();
    }
    if (const auto algorithm = f.find("algorithm")) {
      config.fairshare.algorithm = json::decode<core::FairshareConfig>(algorithm->get());
    }
    if (const auto projection = f.find("projection")) {
      config.fairshare.projection = json::decode<core::ProjectionConfig>(projection->get());
    }
    if (const auto backend = f.find("backend")) {
      // Accepts a bare name ("credit") or the object form with
      // per-policy tuning; unknown names throw here.
      config.fairshare.backend = json::decode<core::FairnessBackendConfig>(backend->get());
    }
  }
  config.bus_remote_latency = spec.get_number("bus_remote_latency", config.bus_remote_latency);
  config.sample_interval = spec.get_number("sample_interval", config.sample_interval);
  config.seed = static_cast<std::uint64_t>(spec.get_number("seed_rng", config.seed));
  config.record_per_site = spec.get_bool("record_per_site", config.record_per_site);
  config.drain_seconds = spec.get_number("drain_seconds", config.drain_seconds);

  if (const auto batching = spec.find("usage_batching")) {
    const auto& b = batching->get();
    auto& ingest = config.usage_batching;
    ingest.enabled = b.get_bool("enabled", true);
    ingest.batch_interval = b.get_number("batch_interval", ingest.batch_interval);
    ingest.max_batch_records =
        static_cast<std::size_t>(b.get_number("max_batch_records",
                                              static_cast<double>(ingest.max_batch_records)));
    ingest.queue_capacity = static_cast<std::size_t>(
        b.get_number("queue_capacity", static_cast<double>(ingest.queue_capacity)));
    const std::string overflow = b.get_string("overflow", "block");
    if (overflow == "block") ingest.overflow = aequus::ingest::OverflowPolicy::kBlockProducer;
    else if (overflow == "drop-oldest") ingest.overflow = aequus::ingest::OverflowPolicy::kDropOldest;
    else throw std::invalid_argument("unknown ingest overflow policy: " + overflow);
  }

  if (const auto offloads = spec.find("offloads")) {
    for (const auto& entry : offloads->get().as_array()) {
      OffloadRule rule;
      rule.from_site = static_cast<int>(entry.get_number("from_site", -1));
      rule.to_site = static_cast<int>(entry.get_number("to_site", 0));
      rule.fraction = entry.get_number("fraction", 0.0);
      rule.start = entry.get_number("start", 0.0);
      rule.end = entry.get_number("end", rule.end);
      config.offloads.push_back(rule);
    }
  }

  if (const auto sites = spec.find("sites")) {
    for (const auto& [index_text, overrides] : sites->get().as_object()) {
      const int index = std::atoi(index_text.c_str());
      SiteSpec site;
      site.participation.contributes = overrides.get_bool("contributes", true);
      site.participation.reads_global = overrides.get_bool("reads_global", true);
      const std::string rm = overrides.get_string("rm", "slurm");
      if (rm == "slurm") site.rm = RmKind::kSlurm;
      else if (rm == "maui") site.rm = RmKind::kMaui;
      else throw std::invalid_argument("unknown rm kind: " + rm);
      site.hosts = static_cast<int>(overrides.get_number("hosts", 0));
      site.cores_per_host = static_cast<int>(overrides.get_number("cores_per_host", 0));
      config.site_overrides[index] = site;
    }
  }
  return config;
}
