// The multi-cluster experiment runner (§IV-A).
//
// Reproduces the paper's testbed: N clusters of virtual hosts, each with
// its own Aequus installation and RM, a submission host that parses the
// input workload and dispatches jobs to the clusters (stochastic or
// round-robin — "evaluated without any noticeable difference"), and a
// unified name-resolution endpoint co-hosted on the submission host.
//
// During the run the experiment samples, at a fixed interval:
//   - per-user cumulative usage share (the figures' "usage share");
//   - per-user global fairshare priority, as seen by the first site's FCS;
//   - optionally the per-site priority of every user (partial
//     participation analysis).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ingest/batcher.hpp"
#include "net/service_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "testbed/metrics.hpp"
#include "testbed/site.hpp"
#include "util/rng.hpp"
#include "util/timeseries.hpp"
#include "workload/scenarios.hpp"

namespace aequus::testbed {

enum class DispatchPolicy { kStochastic, kRoundRobin };

/// Federated cross-site offloading (Pacholczyk-style): while the
/// simulated time is in [start, end), a job the dispatch policy assigned
/// to `from_site` is redirected to `to_site` with probability `fraction`.
/// Rules are evaluated in order; the first matching rule that fires wins.
/// The redirect draw only happens for a matching rule, so configurations
/// without offload rules keep the legacy dispatch rng stream
/// byte-identical.
struct OffloadRule {
  int from_site = -1;  ///< dispatch-chosen site index; -1 matches any site
  int to_site = 0;
  double fraction = 0.0;  ///< redirect probability per matching job
  double start = 0.0;
  double end = std::numeric_limits<double>::infinity();
};

struct ExperimentConfig {
  DispatchPolicy dispatch = DispatchPolicy::kStochastic;
  SiteTimings timings{};
  SiteFairshare fairshare{};
  double bus_remote_latency = 0.1;   ///< inter-site hop [s] (delay I)
  double sample_interval = 60.0;     ///< measurement cadence [s]
  /// Balance-band half-width for the "experiment.convergence_time_s"
  /// gauge (must match the sweep's epsilon for identical values).
  double convergence_epsilon = 0.05;
  std::uint64_t seed = 7;
  bool record_per_site = false;      ///< per-site priority series
  /// Per-site overrides keyed by site index (participation, RM kind).
  std::map<int, SiteSpec> site_overrides;
  /// Extra simulated time after the last submission (drain phase).
  double drain_seconds = 1800.0;
  /// Deterministic fault-injection schedule installed on the bus before
  /// the run (loss, duplication, jitter, site outage windows).
  net::FaultPlan faults{};
  /// Cross-site offload windows applied after dispatch site selection.
  std::vector<OffloadRule> offloads;
  /// Batched usage ingestion for every site's client (DESIGN.md §6g).
  /// Off by default: reports stay per-RPC, byte-identical to the legacy
  /// path. The delta-log bin width is overridden per site with the USS
  /// histogram width.
  ingest::IngestConfig usage_batching{};
};

struct ExperimentResult {
  util::SeriesSet usage_shares;   ///< per user: cumulative usage share
  util::SeriesSet priorities;     ///< per user: global fairshare factor
  util::SeriesSet per_site;       ///< "site/user" series when enabled
  util::SeriesSet utilization;    ///< "total": fraction of cores busy
  /// Per-user scheduler-level priorities of jobs at their start time (the
  /// values the RM actually sorted by; includes non-fairshare factors).
  util::SeriesSet start_priorities;
  /// Per-user queue wait of each job, recorded at its start time.
  util::SeriesSet waits;
  std::map<std::string, double> final_usage_share;
  double mean_utilization = 0.0;
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  double makespan = 0.0;
  SubmissionRates rates;
  net::BusStats bus;
  /// Full metrics snapshot of the experiment's registry (bus, services,
  /// clients, RMs, plus the "experiment.*" headline metrics).
  obs::Snapshot obs;
  /// Trace events, non-empty only when the tracer was enabled pre-run.
  std::vector<obs::TraceEvent> trace;

  /// Convergence of priorities to the balance point 0.5, judged over
  /// [0, until] (pass the scenario duration to exclude the drain tail).
  [[nodiscard]] double priority_convergence_time(
      double epsilon = 0.05,
      double until = std::numeric_limits<double>::infinity()) const;
};

/// Build-and-run harness. One Experiment instance runs one scenario.
class Experiment {
 public:
  Experiment(const workload::Scenario& scenario, ExperimentConfig config = {});

  /// Run to completion (all jobs drained) and collect measurements.
  [[nodiscard]] ExperimentResult run();

  /// Access sites after construction (pre-run customization in tests).
  [[nodiscard]] std::vector<std::unique_ptr<ClusterSite>>& sites() noexcept { return sites_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] net::ServiceBus& bus() noexcept { return bus_; }
  /// The experiment-wide metrics registry every component records into.
  [[nodiscard]] obs::Registry& registry() noexcept { return registry_; }
  /// Shared tracer; disabled by default — enable() before run() to collect.
  [[nodiscard]] obs::Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] const workload::Scenario& scenario() const noexcept { return scenario_; }
  [[nodiscard]] const ExperimentConfig& config() const noexcept { return config_; }

  /// Live progress counters, valid during and after run() (used by
  /// invariant checkers hooked into the sampling tick).
  [[nodiscard]] std::uint64_t completed_jobs() const noexcept { return completed_jobs_; }
  [[nodiscard]] double total_completed_usage() const noexcept { return total_completed_usage_; }
  [[nodiscard]] const std::map<std::string, double>& completed_usage() const noexcept {
    return completed_usage_;
  }

  /// Register a callback invoked at every sampling tick (after the
  /// built-in measurements), with the current simulated time. Must be
  /// called before run().
  void add_tick_hook(std::function<void(double)> hook) {
    tick_hooks_.push_back(std::move(hook));
  }

 private:
  void install_policy();
  void bind_name_resolver();
  /// First matching offload rule may redirect the dispatched site index.
  [[nodiscard]] std::size_t apply_offloads(std::size_t index, double now);
  void schedule_submissions();
  void schedule_sampling(ExperimentResult& result);

  const workload::Scenario& scenario_;
  ExperimentConfig config_;
  sim::Simulator simulator_;
  // Registry and tracer outlive the bus and sites (declared first so they
  // destruct last): components hold raw metric handles until teardown.
  obs::Registry registry_;
  obs::Tracer tracer_;
  net::ServiceBus bus_;
  std::vector<std::unique_ptr<ClusterSite>> sites_;
  util::Rng rng_;
  /// Registered unconditionally (keeps the snapshot key set uniform
  /// across offloaded and offload-free tasks of one sweep).
  obs::Counter* offload_counter_ = nullptr;
  std::size_t round_robin_next_ = 0;
  std::map<std::string, double> completed_usage_;  ///< grid user -> core-s
  double total_completed_usage_ = 0.0;
  std::uint64_t completed_jobs_ = 0;
  std::vector<sim::EventHandle> tasks_;
  std::vector<std::function<void(double)>> tick_hooks_;
};

}  // namespace aequus::testbed
