// The paper's evaluation scenarios (§IV-A), packaged as ready-to-run
// workload + policy bundles for the testbed.
//
// Common parameters across tests: six clusters of 40 virtual hosts each
// (240 single-core hosts, ~10 % of the national grid), six-hour runs,
// 43,200 jobs per trace, total load 95 % of the combined theoretical
// maximum, fairshare as the only scheduling factor, percental projection,
// distance weight k = 0.5.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "workload/trace.hpp"

namespace aequus::workload {

/// A complete experiment input: trace, policy, and sizing.
struct Scenario {
  std::string name;
  Trace trace;
  std::map<std::string, double> policy_shares;  ///< target share per user
  std::map<std::string, double> usage_shares;   ///< realized usage share per user
  double duration_seconds = 21600.0;            ///< six hours
  int cluster_count = 6;
  int hosts_per_cluster = 40;
  double target_load = 0.95;
  /// Per-job walltime cap applied when compressing the trace (the real
  /// testbed's virtual hosts impose one); 0 disables.
  double max_job_duration = 5400.0;

  [[nodiscard]] int total_hosts() const noexcept { return cluster_count * hosts_per_cluster; }
  [[nodiscard]] double capacity_core_seconds() const noexcept {
    return static_cast<double>(total_hosts()) * duration_seconds;
  }
};

/// Baseline convergence test: the 2012 model compressed to six hours with
/// the actual usage shares used as policy targets ("the actual share from
/// the workloads are used as targets for most of the tests").
[[nodiscard]] Scenario baseline_scenario(std::uint64_t seed = 2012,
                                         std::size_t total_jobs = 43200);

/// Non-optimal policy test (§IV-A-3): baseline workload but the policy file
/// specifies 70 % / 20 % / 8 % / 2 % for U65/U30/U3/Uoth.
[[nodiscard]] Scenario nonoptimal_policy_scenario(std::uint64_t seed = 2012,
                                                  std::size_t total_jobs = 43200);

/// Bursty usage test (§IV-A-5): U3's submission rate raised to 45.5 % of
/// jobs with the burst after one third of the run; usage shares
/// 47/38.5/12/2.5 %.
[[nodiscard]] Scenario bursty_scenario(std::uint64_t seed = 2012,
                                       std::size_t total_jobs = 43200);

/// Update-delay test (§IV-A-2): the baseline scaled up `factor` times in
/// both arrival times and durations, keeping job count and internal
/// relations. Service/update delays stay constant, so relative delay
/// shrinks by `factor`.
[[nodiscard]] Scenario scaled_scenario(const Scenario& base, double factor);

}  // namespace aequus::workload
