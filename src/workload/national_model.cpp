#include "workload/national_model.hpp"

#include <stdexcept>

#include "stats/families.hpp"

namespace aequus::workload {

using stats::BirnbaumSaunders;
using stats::Burr;
using stats::Gev;
using stats::Weibull;

namespace {

// Duration models (absolute seconds, Table III families). The scale
// parameters follow the paper where Table III is legible; duration caps
// model the clusters' maximum-walltime limits that bound the fitted
// heavy tails.
stats::DistributionPtr u65_duration() {
  return std::make_unique<BirnbaumSaunders>(1.76e4, 3.53);
}
stats::DistributionPtr u30_duration() {
  return std::make_unique<Weibull>(5.49e4, 0.637);
}
stats::DistributionPtr u3_duration() {
  // Burr with the paper's shapes (c = 11.0, k = 0.02); scale chosen so the
  // median (~4.8e3 s) is well below U65's, matching "the job durations of
  // U3 are considerably shorter than those of U65".
  return std::make_unique<Burr>(207.0, 11.0, 0.02);
}
stats::DistributionPtr uoth_duration() {
  return std::make_unique<BirnbaumSaunders>(3.02e4, 7.91);
}

constexpr double kLongCap = 30.0 * 86400.0;  // 30-day max walltime
constexpr double kShortCap = 6.0e5;          // Fig. 7: sizes focused in [0, 6e5]

}  // namespace

NationalGridModel NationalGridModel::paper_2012(double window_seconds) {
  if (window_seconds <= 0.0) throw std::invalid_argument("window_seconds must be > 0");
  NationalGridModel model;
  model.window_ = window_seconds;
  const double w = window_seconds;

  // U65: four quarterly experiment cycles. GEV shapes from Table II;
  // locations spread one per quarter, widths ~10 days on the year scale.
  const double phase_k[4] = {-0.386, -0.371, -0.457, -0.301};
  const double phase_mu[4] = {0.123 * w, 0.370 * w, 0.616 * w, 0.863 * w};
  const double phase_weight[4] = {0.31, 0.27, 0.24, 0.18};
  const double phase_sigma = 0.027 * w;
  std::vector<stats::Mixture::Component> mixture;
  for (int p = 0; p < 4; ++p) {
    PhaseModel phase;
    phase.weight = phase_weight[p];
    phase.boundary_lo = 0.25 * w * p;
    phase.boundary_hi = 0.25 * w * (p + 1);
    phase.dist = std::make_unique<Gev>(phase_k[p], phase_sigma, phase_mu[p]);
    mixture.push_back({phase.dist->clone(), phase.weight});
    model.phases_.push_back(std::move(phase));
  }

  UserModel u65;
  u65.name = kU65;
  u65.job_fraction = 0.8103;
  u65.usage_fraction = 0.6525;
  u65.arrival = std::make_unique<stats::Mixture>(std::move(mixture));
  u65.duration = u65_duration();
  u65.duration_cap = kLongCap;
  model.users_.push_back(std::move(u65));

  UserModel u30;
  u30.name = kU30;
  u30.job_fraction = 0.0658;
  u30.usage_fraction = 0.3049;
  // Heavy-tailed Burr arrivals (Table II fits Burr for U30); the small k
  // gives the pronounced tail that separates Burr from lighter families.
  u30.arrival = std::make_unique<Burr>(0.28 * w, 2.0, 0.6);
  u30.duration = u30_duration();
  u30.duration_cap = kLongCap;
  model.users_.push_back(std::move(u30));

  UserModel u3;
  u3.name = kU3;
  u3.job_fraction = 0.0947;
  u3.usage_fraction = 0.0286;
  u3.arrival = std::make_unique<Gev>(0.195, 0.014 * w, 0.164 * w);
  u3.duration = u3_duration();
  u3.duration_cap = kShortCap;
  model.users_.push_back(std::move(u3));

  UserModel uoth;
  uoth.name = kUoth;
  uoth.job_fraction = 0.0293;
  uoth.usage_fraction = 0.0140;
  uoth.arrival = std::make_unique<Gev>(0.148, 0.164 * w, 0.329 * w);
  uoth.duration = uoth_duration();
  uoth.duration_cap = kShortCap;
  model.users_.push_back(std::move(uoth));

  return model;
}

NationalGridModel NationalGridModel::bursty_2012(double window_seconds) {
  if (window_seconds <= 0.0) throw std::invalid_argument("window_seconds must be > 0");
  NationalGridModel model;
  model.window_ = window_seconds;
  const double w = window_seconds;

  // §IV-A-5: job fractions 45.5 / 6.5 / 45.5 / 3 %, usage shares
  // 47 / 38.5 / 12 / 2.5 %. U65's rate is reduced by the amount added to
  // U3, whose burst is shifted to start after one third of the run.
  const double phase_k[4] = {-0.386, -0.371, -0.457, -0.301};
  const double phase_mu[4] = {0.123 * w, 0.370 * w, 0.616 * w, 0.863 * w};
  const double phase_weight[4] = {0.31, 0.27, 0.24, 0.18};
  const double phase_sigma = 0.027 * w;
  std::vector<stats::Mixture::Component> mixture;
  for (int p = 0; p < 4; ++p) {
    PhaseModel phase;
    phase.weight = phase_weight[p];
    phase.boundary_lo = 0.25 * w * p;
    phase.boundary_hi = 0.25 * w * (p + 1);
    phase.dist = std::make_unique<Gev>(phase_k[p], phase_sigma, phase_mu[p]);
    mixture.push_back({phase.dist->clone(), phase.weight});
    model.phases_.push_back(std::move(phase));
  }

  UserModel u65;
  u65.name = kU65;
  u65.job_fraction = 0.455;
  u65.usage_fraction = 0.47;
  u65.arrival = std::make_unique<stats::Mixture>(std::move(mixture));
  u65.duration = u65_duration();
  u65.duration_cap = kLongCap;
  model.users_.push_back(std::move(u65));

  UserModel u30;
  u30.name = kU30;
  u30.job_fraction = 0.065;
  u30.usage_fraction = 0.385;
  // Heavy-tailed Burr arrivals (Table II fits Burr for U30); the small k
  // gives the pronounced tail that separates Burr from lighter families.
  u30.arrival = std::make_unique<Burr>(0.28 * w, 2.0, 0.6);
  u30.duration = u30_duration();
  u30.duration_cap = kLongCap;
  model.users_.push_back(std::move(u30));

  UserModel u3;
  u3.name = kU3;
  u3.job_fraction = 0.455;
  u3.usage_fraction = 0.12;
  // Burst starts just after w/3. The width is calibrated so the peak
  // submission rate lands near the paper's 472 jobs/min at the 43,200-job
  // trace size (GEV peak density ~0.4/sigma).
  u3.arrival = std::make_unique<Gev>(0.195, 0.045 * w, 0.368 * w);
  u3.duration = u3_duration();
  u3.duration_cap = kShortCap;
  model.users_.push_back(std::move(u3));

  UserModel uoth;
  uoth.name = kUoth;
  uoth.job_fraction = 0.025;
  uoth.usage_fraction = 0.025;
  uoth.arrival = std::make_unique<Gev>(0.148, 0.164 * w, 0.329 * w);
  uoth.duration = uoth_duration();
  uoth.duration_cap = kShortCap;
  model.users_.push_back(std::move(uoth));

  return model;
}

const UserModel& NationalGridModel::user(const std::string& name) const {
  for (const auto& u : users_) {
    if (u.name == name) return u;
  }
  throw std::out_of_range("NationalGridModel: unknown user " + name);
}

stats::Mixture NationalGridModel::u65_composite() const {
  std::vector<stats::Mixture::Component> components;
  for (const auto& phase : phases_) {
    components.push_back({phase.dist->clone(), phase.weight});
  }
  return stats::Mixture(std::move(components));
}

std::map<std::string, double> NationalGridModel::usage_shares() const {
  std::map<std::string, double> shares;
  for (const auto& u : users_) shares[u.name] = u.usage_fraction;
  return shares;
}

std::map<std::string, double> NationalGridModel::job_shares() const {
  std::map<std::string, double> shares;
  for (const auto& u : users_) shares[u.name] = u.job_fraction;
  return shares;
}

}  // namespace aequus::workload
