#include "workload/trace.hpp"

#include <algorithm>

namespace aequus::workload {

Trace::Trace(std::vector<TraceRecord> records) : records_(std::move(records)) {}

void Trace::add(TraceRecord record) {
  records_.push_back(std::move(record));
}

void Trace::sort_by_submit() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const TraceRecord& a, const TraceRecord& b) { return a.submit < b.submit; });
}

double Trace::total_usage() const noexcept {
  double total = 0.0;
  for (const auto& r : records_) total += r.usage();
  return total;
}

std::pair<double, double> Trace::timespan() const noexcept {
  if (records_.empty()) return {0.0, 0.0};
  double lo = records_.front().submit;
  double hi = lo;
  for (const auto& r : records_) {
    lo = std::min(lo, r.submit);
    hi = std::max(hi, r.submit + r.duration);
  }
  return {lo, hi};
}

std::map<std::string, UserStats> Trace::user_stats() const {
  std::map<std::string, UserStats> stats;
  double total_usage_value = 0.0;
  for (const auto& r : records_) {
    auto& s = stats[r.user];
    ++s.jobs;
    s.usage += r.usage();
    total_usage_value += r.usage();
  }
  const auto total_jobs = static_cast<double>(records_.size());
  for (auto& [user, s] : stats) {
    (void)user;
    s.job_fraction = total_jobs > 0 ? static_cast<double>(s.jobs) / total_jobs : 0.0;
    s.usage_fraction = total_usage_value > 0 ? s.usage / total_usage_value : 0.0;
  }
  return stats;
}

std::vector<double> Trace::arrival_times(const std::string& user) const {
  std::vector<double> out;
  for (const auto& r : records_) {
    if (user.empty() || r.user == user) out.push_back(r.submit);
  }
  return out;
}

std::vector<double> Trace::interarrival_times(const std::string& user) const {
  std::vector<double> arrivals = arrival_times(user);
  std::sort(arrivals.begin(), arrivals.end());
  std::vector<double> gaps;
  if (arrivals.size() < 2) return gaps;
  gaps.reserve(arrivals.size() - 1);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    gaps.push_back(arrivals[i] - arrivals[i - 1]);
  }
  return gaps;
}

std::vector<double> Trace::durations(const std::string& user) const {
  std::vector<double> out;
  for (const auto& r : records_) {
    if (user.empty() || r.user == user) out.push_back(r.duration);
  }
  return out;
}

std::pair<Trace, FilterReport> filter_for_modeling(const Trace& input) {
  Trace cleaned;
  FilterReport report;
  double removed_usage = 0.0;
  for (const auto& r : input.records()) {
    if (r.admin) {
      ++report.removed_admin;
      removed_usage += r.usage();
      continue;
    }
    if (r.duration <= 0.0) {
      ++report.removed_zero_duration;
      removed_usage += r.usage();
      continue;
    }
    cleaned.add(r);
  }
  const std::size_t removed = report.removed_admin + report.removed_zero_duration;
  if (!input.empty()) {
    report.removed_job_fraction =
        static_cast<double>(removed) / static_cast<double>(input.size());
  }
  const double total = input.total_usage();
  if (total > 0.0) report.removed_usage_fraction = removed_usage / total;
  return {std::move(cleaned), report};
}

}  // namespace aequus::workload
