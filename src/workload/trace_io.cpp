#include "workload/trace_io.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace aequus::workload {

namespace {

/// user name <-> numeric id maps for SWF emission.
std::map<std::string, int> number_users(const Trace& trace) {
  std::map<std::string, int> ids;
  for (const auto& record : trace.records()) {
    ids.emplace(record.user, 0);
  }
  int next = 1;
  for (auto& [user, id] : ids) {
    (void)user;
    id = next++;
  }
  return ids;
}

}  // namespace

void write_swf(std::ostream& out, const Trace& trace) {
  const auto ids = number_users(trace);
  out << "; SWF trace written by aequus\n";
  out << "; MaxJobs: " << trace.size() << "\n";
  for (const auto& [user, id] : ids) {
    out << "; UserID " << id << " = " << user << "\n";
  }
  out << "; Fields: job submit wait run procs avgcpu mem reqprocs reqtime reqmem status "
         "user group app queue partition prevjob thinktime\n";
  long job_number = 1;
  for (const auto& r : trace.records()) {
    const int status = r.duration > 0.0 ? 1 : 0;
    const int partition = r.admin ? 2 : 1;
    out << job_number++ << ' ' << util::format("%.0f", r.submit) << " -1 "
        << util::format("%.0f", r.duration) << ' ' << r.cores << " -1 -1 " << r.cores
        << " -1 -1 " << status << ' ' << ids.at(r.user) << " -1 -1 -1 " << partition
        << " -1 -1\n";
  }
}

Trace read_swf(std::istream& in) {
  Trace trace;
  std::map<int, std::string> names;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == ';') {
      // Recover user names from our own header convention when present:
      // "; UserID <n> = <name>".
      const auto parts = util::split_nonempty(trimmed.substr(1), ' ');
      if (parts.size() == 4 && parts[0] == "UserID" && parts[2] == "=") {
        names[std::atoi(parts[1].c_str())] = parts[3];
      }
      continue;
    }
    std::istringstream fields{std::string(trimmed)};
    long job_number = 0;
    double submit = 0.0;
    double wait = 0.0;
    double run_time = 0.0;
    long procs = 0;
    double avg_cpu = 0.0;
    double mem = 0.0;
    long req_procs = 0;
    double req_time = 0.0;
    double req_mem = 0.0;
    int status = 0;
    long user_id = 0;
    if (!(fields >> job_number >> submit >> wait >> run_time >> procs >> avg_cpu >> mem >>
          req_procs >> req_time >> req_mem >> status >> user_id)) {
      throw std::runtime_error(
          util::format("read_swf: malformed record at line %zu", line_number));
    }
    // Optional trailing fields: group, app, queue, partition, ...
    long group = 0;
    long app = 0;
    long queue = 0;
    long partition = 0;
    fields >> group >> app >> queue >> partition;

    TraceRecord record;
    const auto name_it = names.find(static_cast<int>(user_id));
    record.user = name_it != names.end() ? name_it->second
                                         : util::format("user%ld", user_id);
    record.submit = submit;
    record.duration = status == 0 ? 0.0 : std::max(run_time, 0.0);
    record.cores = procs > 0 ? static_cast<int>(procs)
                             : std::max(1, static_cast<int>(req_procs));
    record.admin = partition == 2;
    trace.add(std::move(record));
  }
  trace.sort_by_submit();
  return trace;
}

void write_csv(std::ostream& out, const Trace& trace) {
  out << "user,submit,duration,cores,admin\n";
  for (const auto& r : trace.records()) {
    out << r.user << ',' << util::format("%.6f", r.submit) << ','
        << util::format("%.6f", r.duration) << ',' << r.cores << ',' << (r.admin ? 1 : 0)
        << '\n';
  }
}

Trace read_csv(std::istream& in) {
  Trace trace;
  std::string line;
  if (!std::getline(in, line) || util::trim(line) != "user,submit,duration,cores,admin") {
    throw std::runtime_error("read_csv: missing or unexpected header row");
  }
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (util::trim(line).empty()) continue;
    const auto fields = util::split(line, ',');
    if (fields.size() != 5) {
      throw std::runtime_error(
          util::format("read_csv: expected 5 fields at line %zu", line_number));
    }
    TraceRecord record;
    record.user = fields[0];
    record.submit = std::strtod(fields[1].c_str(), nullptr);
    record.duration = std::strtod(fields[2].c_str(), nullptr);
    record.cores = std::atoi(fields[3].c_str());
    record.admin = std::atoi(fields[4].c_str()) != 0;
    if (record.user.empty() || record.cores <= 0) {
      throw std::runtime_error(
          util::format("read_csv: invalid record at line %zu", line_number));
    }
    trace.add(std::move(record));
  }
  return trace;
}

namespace {
bool ends_with(const std::string& value, const std::string& suffix) {
  return value.size() >= suffix.size() &&
         value.compare(value.size() - suffix.size(), suffix.size(), suffix) == 0;
}
}  // namespace

void save_trace(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  if (ends_with(path, ".swf")) {
    write_swf(out, trace);
  } else if (ends_with(path, ".csv")) {
    write_csv(out, trace);
  } else {
    throw std::runtime_error("save_trace: unknown extension on " + path);
  }
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  if (ends_with(path, ".swf")) return read_swf(in);
  if (ends_with(path, ".csv")) return read_csv(in);
  throw std::runtime_error("load_trace: unknown extension on " + path);
}

}  // namespace aequus::workload
