// Synthetic trace generation from a NationalGridModel.
//
// Implements the paper's generation procedure: per-user job counts from
// the model's job fractions, arrival times by range-rescaled ICDF
// sampling (§IV-2), durations by bounded ICDF sampling, optional load
// scaling so the trace carries a chosen fraction of the target
// infrastructure's capacity (the tests run at "95% of the theoretical
// maximum"), and optional injection of admin/zero-duration jobs so the
// §IV-1 cleanup filters have something to remove.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "workload/national_model.hpp"
#include "workload/trace.hpp"

namespace aequus::workload {

struct GeneratorConfig {
  std::size_t total_jobs = 43200;   ///< jobs across all users (paper test size)
  std::uint64_t seed = 2012;

  /// If > 0, scale durations so total usage equals this many core-seconds,
  /// distributed between users according to the model's usage fractions
  /// (each user's durations get one scale factor, preserving the family).
  double target_total_usage = -1.0;

  /// Fraction of *additional* jobs submitted by admins/monitoring, with
  /// short uniform durations. The paper removed ~15 % of job records
  /// (admin + zero-duration) representing ~1.5 % of usage.
  double admin_job_fraction = 0.0;
  double admin_duration_lo = 60.0;    ///< admin job duration range [s]
  double admin_duration_hi = 7200.0;

  /// Fraction of additional zero-duration (cancelled/failed) jobs,
  /// attributed to regular users.
  double zero_duration_fraction = 0.0;
};

/// Generate a synthetic trace. The result is sorted by submission time.
[[nodiscard]] Trace generate_trace(const NationalGridModel& model, const GeneratorConfig& config);

/// Scale every record's submit time and duration by `factor` (used for the
/// §IV-A-2 update-delay experiment, which scales the baseline "up ten
/// times, adjusting the arrival times and job durations while keeping the
/// same number of jobs and same internal relations").
[[nodiscard]] Trace scale_trace(const Trace& input, double time_factor, double duration_factor);

/// Enforce a per-job walltime cap while keeping each user's total usage on
/// target: alternates clamping with per-user rescaling (ending on a
/// rescale, so totals are exact with at most a small overshoot of the cap).
/// `usage_targets` maps user -> target core-seconds; users absent from the
/// map keep their durations unscaled (but still clamped).
void enforce_walltime_cap(Trace& trace, const std::map<std::string, double>& usage_targets,
                          double cap, int passes = 6);

}  // namespace aequus::workload
