// Statistical model of the 2012 Swedish national grid workload (§IV-1..3).
//
// The paper derives per-user models from the proprietary national trace:
//   U65  - 65.25 % of usage, 81.03 % of jobs; arrivals follow a 4-phase
//          composite of GEV distributions (Eq. 1, ~3-month experiment
//          cycles); durations Birnbaum-Saunders.
//   U30  - 30.49 % of usage, 6.58 % of jobs; arrivals Burr; durations
//          Weibull with a long tail (largest jobs in the trace).
//   U3   - 2.86 % of usage, 9.47 % of jobs; bursty arrivals (GEV, k > 0);
//          durations Burr, considerably shorter than U65.
//   Uoth - 1.40 % of usage, 2.93 % of jobs; wide GEV arrivals; durations
//          Birnbaum-Saunders.
//
// Since the original trace is unavailable, this model *is* our ground
// truth: synthetic "historical" traces are generated from it, and the
// paper's fitting pipeline (filter, partition, fit 18 families, BIC, KS)
// is run against those traces to regenerate Tables II/III and Figures 4-7.
//
// Arrival distributions are parameterized relative to the modeling window
// length W so the same shapes serve both the year-long trace (W = one
// year) and the compressed 6-hour test traces (W = 21600 s). Shape
// parameters (GEV k, Burr c/k, BS gamma, Weibull k) are the paper's values
// where Table II/III states them.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "stats/distribution.hpp"
#include "stats/mixture.hpp"

namespace aequus::workload {

/// Canonical user names used across the library.
inline constexpr const char* kU65 = "U65";
inline constexpr const char* kU30 = "U30";
inline constexpr const char* kU3 = "U3";
inline constexpr const char* kUoth = "Uoth";

/// Seconds in the modeled calendar year.
inline constexpr double kYearSeconds = 365.0 * 86400.0;

/// Per-user workload model.
struct UserModel {
  std::string name;
  double job_fraction = 0.0;    ///< share of submitted jobs
  double usage_fraction = 0.0;  ///< share of total wall-clock usage
  stats::DistributionPtr arrival;   ///< arrival time within the window
  stats::DistributionPtr duration;  ///< job duration [s]
  double duration_cap = 0.0;        ///< upper bound for bounded sampling [s]
};

/// One phase of the U65 composite arrival model (Eq. 1).
struct PhaseModel {
  double weight = 0.0;           ///< phase_usage / total_usage
  double boundary_lo = 0.0;      ///< phase window start [s]
  double boundary_hi = 0.0;      ///< phase window end [s]
  stats::DistributionPtr dist;   ///< per-phase arrival distribution
};

/// The composed national model. Move-only (owns distributions).
class NationalGridModel {
 public:
  /// Paper-parameterized model over a window of `window_seconds`.
  /// Defaults to the calendar-year window used for Tables II/III.
  [[nodiscard]] static NationalGridModel paper_2012(double window_seconds = kYearSeconds);

  /// Variant for the bursty test (§IV-A-5): U3's submission rate is raised
  /// to 45.5 % of jobs with the burst starting after one third of the
  /// window, U65 reduced correspondingly. Usage shares 47/38.5/12/2.5 %.
  [[nodiscard]] static NationalGridModel bursty_2012(double window_seconds);

  NationalGridModel(NationalGridModel&&) = default;
  NationalGridModel& operator=(NationalGridModel&&) = default;

  [[nodiscard]] const std::vector<UserModel>& users() const noexcept { return users_; }
  [[nodiscard]] const UserModel& user(const std::string& name) const;
  [[nodiscard]] double window_seconds() const noexcept { return window_; }

  /// U65 phase decomposition (4 phases; empty for variants without one).
  [[nodiscard]] const std::vector<PhaseModel>& u65_phases() const noexcept { return phases_; }

  /// Eq. 1: the weighted mixture of the per-phase distributions.
  [[nodiscard]] stats::Mixture u65_composite() const;

  /// Map user name -> target usage fraction.
  [[nodiscard]] std::map<std::string, double> usage_shares() const;

  /// Map user name -> target job-count fraction.
  [[nodiscard]] std::map<std::string, double> job_shares() const;

 private:
  NationalGridModel() = default;
  double window_ = 0.0;
  std::vector<UserModel> users_;
  std::vector<PhaseModel> phases_;
};

}  // namespace aequus::workload
