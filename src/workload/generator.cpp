#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "stats/sampling.hpp"
#include "util/rng.hpp"

namespace aequus::workload {

Trace generate_trace(const NationalGridModel& model, const GeneratorConfig& config) {
  util::Rng rng(config.seed);
  Trace trace;
  const double window = model.window_seconds();

  // Regular jobs, per user.
  std::map<std::string, double> user_usage;
  for (const auto& user : model.users()) {
    const auto count = static_cast<std::size_t>(
        std::llround(user.job_fraction * static_cast<double>(config.total_jobs)));
    const stats::BoundedSampler arrivals(*user.arrival, 0.0, window);
    const stats::BoundedSampler durations(*user.duration, 1.0, user.duration_cap);
    for (std::size_t i = 0; i < count; ++i) {
      TraceRecord record;
      record.user = user.name;
      record.submit = arrivals.sample(rng);
      record.duration = durations.sample(rng);
      record.cores = 1;
      user_usage[user.name] += record.duration;
      trace.add(std::move(record));
    }
  }

  // Load scaling: one multiplicative factor per user so the realized usage
  // shares equal the model's targets and the total hits the requested load.
  if (config.target_total_usage > 0.0) {
    std::map<std::string, double> factor;
    for (const auto& user : model.users()) {
      const double current = user_usage[user.name];
      if (current <= 0.0) continue;
      factor[user.name] = config.target_total_usage * user.usage_fraction / current;
    }
    for (auto& record : trace.records()) {
      const auto it = factor.find(record.user);
      if (it != factor.end()) record.duration *= it->second;
    }
  }

  // Injected admin/monitoring jobs: frequent, short, uniformly spread.
  const auto admin_count = static_cast<std::size_t>(
      std::llround(config.admin_job_fraction * static_cast<double>(config.total_jobs)));
  for (std::size_t i = 0; i < admin_count; ++i) {
    TraceRecord record;
    record.user = i % 2 == 0 ? "sysadmin" : "monitor";
    record.admin = true;
    record.submit = rng.uniform(0.0, window);
    record.duration = rng.uniform(config.admin_duration_lo, config.admin_duration_hi);
    trace.add(std::move(record));
  }

  // Injected zero-duration (cancelled/failed) jobs from regular users.
  const auto zero_count = static_cast<std::size_t>(
      std::llround(config.zero_duration_fraction * static_cast<double>(config.total_jobs)));
  const auto& users = model.users();
  for (std::size_t i = 0; i < zero_count; ++i) {
    TraceRecord record;
    record.user = users[i % users.size()].name;
    record.submit = rng.uniform(0.0, window);
    record.duration = 0.0;
    trace.add(std::move(record));
  }

  trace.sort_by_submit();
  return trace;
}

void enforce_walltime_cap(Trace& trace, const std::map<std::string, double>& usage_targets,
                          double cap, int passes) {
  if (cap <= 0.0) return;
  for (int pass = 0; pass < passes; ++pass) {
    for (auto& record : trace.records()) {
      record.duration = std::min(record.duration, cap);
    }
    std::map<std::string, double> current;
    for (const auto& record : trace.records()) current[record.user] += record.usage();
    std::map<std::string, double> factor;
    for (const auto& [user, target] : usage_targets) {
      const auto it = current.find(user);
      if (it != current.end() && it->second > 0.0) factor[user] = target / it->second;
    }
    for (auto& record : trace.records()) {
      const auto it = factor.find(record.user);
      if (it != factor.end()) record.duration *= it->second;
    }
  }
}

Trace scale_trace(const Trace& input, double time_factor, double duration_factor) {
  Trace out;
  for (const auto& r : input.records()) {
    TraceRecord scaled = r;
    scaled.submit = r.submit * time_factor;
    scaled.duration = r.duration * duration_factor;
    out.add(std::move(scaled));
  }
  out.sort_by_submit();
  return out;
}

}  // namespace aequus::workload
