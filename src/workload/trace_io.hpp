// Trace file input/output.
//
// Two formats:
//   - SWF (Standard Workload Format, Feitelson's archive format): the de
//     facto interchange format for cluster workload traces, so real
//     traces (e.g. from the Parallel Workloads Archive) can be replayed
//     through the testbed, and synthetic traces can be analyzed with
//     standard tooling. Only the fields this library uses are
//     interpreted: job number (1), submit time (2), run time (4),
//     allocated processors (5), user id (12). Status (11) = 0 or
//     run time <= 0 marks cancelled jobs (kept, as zero-duration records,
//     for the cleanup filters). Header comments (';') carry metadata.
//   - CSV: "user,submit,duration,cores,admin" — the library's own simple
//     format, loss-free for TraceRecord.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.hpp"

namespace aequus::workload {

/// Write `trace` in SWF. Users are emitted as numeric ids with a comment
/// header mapping ids back to names; admin jobs are flagged via the
/// partition field (16) = 2.
void write_swf(std::ostream& out, const Trace& trace);

/// Parse SWF. Unknown/missing optional fields are tolerated; malformed
/// *data* lines throw std::runtime_error with the line number.
[[nodiscard]] Trace read_swf(std::istream& in);

/// Write the loss-free CSV form with a header row.
void write_csv(std::ostream& out, const Trace& trace);

/// Parse the CSV form (header row required).
[[nodiscard]] Trace read_csv(std::istream& in);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_trace(const std::string& path, const Trace& trace);  // by extension (.swf/.csv)
[[nodiscard]] Trace load_trace(const std::string& path);

}  // namespace aequus::workload
