// Job trace representation and the pre-modeling filters from §IV-1.
//
// A trace is the unit of exchange between the workload models and the
// testbed: the statistical models are fitted *from* traces and the
// synthetic workloads are emitted *as* traces that the submission host
// replays against the clusters.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace aequus::workload {

/// One job record. Times are seconds on the trace's own clock; jobs are
/// single-core bag-of-task entries unless `cores` says otherwise (the 2012
/// national trace is exclusively single-processor, §IV-3).
struct TraceRecord {
  std::string user;     ///< grid user identity owning the job
  double submit = 0.0;  ///< submission time [s]
  double duration = 0.0;///< wall-clock duration [s]
  int cores = 1;        ///< processors used
  bool admin = false;   ///< submitted by admins / automated monitoring

  /// Core-seconds consumed.
  [[nodiscard]] double usage() const noexcept { return duration * cores; }
};

/// Per-user aggregate over a trace.
struct UserStats {
  std::size_t jobs = 0;
  double usage = 0.0;         ///< total core-seconds
  double job_fraction = 0.0;  ///< share of job count
  double usage_fraction = 0.0;///< share of total usage
};

/// An ordered collection of job records.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TraceRecord> records);

  void add(TraceRecord record);

  /// Sort records by submission time (stable).
  void sort_by_submit();

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept { return records_; }
  [[nodiscard]] std::vector<TraceRecord>& records() noexcept { return records_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  /// Total core-seconds across all records.
  [[nodiscard]] double total_usage() const noexcept;

  /// Timespan [first submit, last submit + its duration]; {0,0} when empty.
  [[nodiscard]] std::pair<double, double> timespan() const noexcept;

  /// Per-user aggregates with job/usage fractions.
  [[nodiscard]] std::map<std::string, UserStats> user_stats() const;

  /// Submission times of jobs owned by `user` (all users if empty).
  [[nodiscard]] std::vector<double> arrival_times(const std::string& user = "") const;

  /// Inter-arrival gaps of jobs owned by `user` (sorted arrivals).
  [[nodiscard]] std::vector<double> interarrival_times(const std::string& user = "") const;

  /// Durations of jobs owned by `user` (all users if empty).
  [[nodiscard]] std::vector<double> durations(const std::string& user = "") const;

 private:
  std::vector<TraceRecord> records_;
};

/// Result of the pre-modeling cleanup.
struct FilterReport {
  std::size_t removed_admin = 0;
  std::size_t removed_zero_duration = 0;
  double removed_job_fraction = 0.0;    ///< paper: ~15 % of job count
  double removed_usage_fraction = 0.0;  ///< paper: ~1.5 % of usage
};

/// Apply the paper's filters: drop admin/monitoring jobs (Feitelson's
/// advice) and zero-duration jobs (cancelled/failed outliers). Returns the
/// cleaned trace and a report of what was removed.
[[nodiscard]] std::pair<Trace, FilterReport> filter_for_modeling(const Trace& input);

}  // namespace aequus::workload
