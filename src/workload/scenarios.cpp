#include "workload/scenarios.hpp"

#include <algorithm>
#include <map>

#include "workload/generator.hpp"
#include "workload/national_model.hpp"

namespace aequus::workload {

namespace {

Scenario build(const NationalGridModel& model, const std::string& name, std::uint64_t seed,
               std::size_t total_jobs) {
  Scenario scenario;
  scenario.name = name;
  scenario.duration_seconds = model.window_seconds();

  GeneratorConfig config;
  config.total_jobs = total_jobs;
  config.seed = seed;
  config.target_total_usage =
      scenario.target_load * scenario.capacity_core_seconds();
  scenario.trace = generate_trace(model, config);

  // Walltime cap + per-user rescale: clamping the compressed heavy tails
  // would otherwise shift usage shares and deflate the load.
  if (scenario.max_job_duration > 0.0) {
    std::map<std::string, double> targets;
    for (const auto& user : model.users()) {
      targets[user.name] = config.target_total_usage * user.usage_fraction;
    }
    enforce_walltime_cap(scenario.trace, targets, scenario.max_job_duration);
  }

  scenario.usage_shares = model.usage_shares();
  scenario.policy_shares = model.usage_shares();  // balanced by default
  return scenario;
}

}  // namespace

Scenario baseline_scenario(std::uint64_t seed, std::size_t total_jobs) {
  const auto model = NationalGridModel::paper_2012(21600.0);
  return build(model, "baseline", seed, total_jobs);
}

Scenario nonoptimal_policy_scenario(std::uint64_t seed, std::size_t total_jobs) {
  const auto model = NationalGridModel::paper_2012(21600.0);
  Scenario scenario = build(model, "nonoptimal-policy", seed, total_jobs);
  scenario.policy_shares = {{kU65, 0.70}, {kU30, 0.20}, {kU3, 0.08}, {kUoth, 0.02}};
  return scenario;
}

Scenario bursty_scenario(std::uint64_t seed, std::size_t total_jobs) {
  const auto model = NationalGridModel::bursty_2012(21600.0);
  return build(model, "bursty", seed, total_jobs);
}

Scenario scaled_scenario(const Scenario& base, double factor) {
  Scenario scenario;
  scenario.name = base.name + "-x" + std::to_string(static_cast<int>(factor));
  scenario.trace = scale_trace(base.trace, factor, factor);
  scenario.policy_shares = base.policy_shares;
  scenario.usage_shares = base.usage_shares;
  scenario.duration_seconds = base.duration_seconds * factor;
  scenario.cluster_count = base.cluster_count;
  scenario.hosts_per_cluster = base.hosts_per_cluster;
  scenario.target_load = base.target_load;
  return scenario;
}

}  // namespace aequus::workload
