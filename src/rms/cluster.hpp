// Cluster resource model: a set of nodes with cores, plus utilization
// accounting.
//
// The testbed clusters are 40 single-core virtual hosts each; the HPC2N
// production cluster is 68 nodes x 8 cores = 544 cores. Allocation is
// core-granular first-fit (the traces are single-core bag-of-task jobs,
// so node topology never constrains placement).
#pragma once

#include <string>
#include <vector>

namespace aequus::rms {

class Cluster {
 public:
  /// `node_count` nodes with `cores_per_node` cores each.
  Cluster(std::string name, int node_count, int cores_per_node);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int node_count() const noexcept { return node_count_; }
  [[nodiscard]] int cores_per_node() const noexcept { return cores_per_node_; }
  [[nodiscard]] int total_cores() const noexcept { return node_count_ * cores_per_node_; }
  [[nodiscard]] int busy_cores() const noexcept { return busy_cores_; }
  [[nodiscard]] int free_cores() const noexcept { return total_cores() - busy_cores_; }

  [[nodiscard]] bool can_allocate(int cores) const noexcept { return cores <= free_cores(); }

  /// Claim `cores` at simulated time `now`. Throws when over capacity.
  void allocate(int cores, double now);

  /// Return `cores` at simulated time `now`. Throws when releasing more
  /// than currently busy.
  void release(int cores, double now);

  /// Integral of busy cores over time, up to the last allocate/release.
  [[nodiscard]] double busy_core_seconds() const noexcept { return busy_core_seconds_; }

  /// Mean utilization over [0, now]: busy core-seconds / capacity.
  [[nodiscard]] double utilization(double now) const noexcept;

 private:
  void advance(double now) noexcept;

  std::string name_;
  int node_count_;
  int cores_per_node_;
  int busy_cores_ = 0;
  double last_change_ = 0.0;
  double busy_core_seconds_ = 0.0;
};

}  // namespace aequus::rms
