#include "rms/job.hpp"

namespace aequus::rms {

std::string to_string(JobState state) {
  switch (state) {
    case JobState::kPending: return "pending";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
  }
  return "?";
}

}  // namespace aequus::rms
