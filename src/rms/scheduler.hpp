// Base scheduling engine shared by the SLURM- and Maui-flavoured RMs.
//
// The engine owns the pending queue and the cluster, and drives the loop
// on the simulator:
//   - on submit and on completion it runs a scheduling pass;
//   - every `reprioritize_interval` seconds it recomputes priorities of
//     all pending jobs (delay source IV of §IV-A-2: "local resource
//     manager re-prioritization interval") and runs a pass;
//   - a pass starts pending jobs in descending priority order while the
//     cluster can place them (first-fit; no backfill past a blocked job
//     unless `backfill` is enabled).
//
// Derived classes supply the priority policy (compute_priority) and get
// completion callbacks — the two seams the paper uses for integration
// ("the normal fairshare priority calculation code replaced with a call
// to libaequus"; "a job completion plug-in supplies usage information").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rms/cluster.hpp"
#include "rms/job.hpp"
#include "sim/simulator.hpp"

namespace aequus::rms {

/// Everything a priority policy may consult for one job. Passed instead
/// of a bare (job, now) pair so new inputs extend the struct rather than
/// every compute_priority signature in the plugin chain. The fairshare
/// snapshot is grabbed once per scheduling pass (not per job), so a whole
/// reprioritization sweep prices against one consistent generation.
struct PriorityContext {
  const Job& job;
  double now = 0.0;
  /// Immutable fairshare state for this pass; null when no provider is
  /// wired or no data has arrived yet (policies fall back to 0.5).
  core::FairshareSnapshotPtr fairshare{};
  std::string site{};  ///< site label of the owning scheduler

  /// Projected fairshare priority of the user leaf `leaf_id` (a grid-user
  /// name or a policy leaf path), read from this pass's pinned snapshot —
  /// or from `fallback` (e.g. a client's cached snapshot) when no
  /// snapshot was pinned. This is THE priority fetch for every scheduler
  /// flavour (SLURM multifactor, Maui patches, rms policies): the
  /// missing-leaf convention is applied in exactly one place — an absent
  /// snapshot or an unknown leaf reads core::kNeutralFactor, never a
  /// priority-zeroing 0.0.
  [[nodiscard]] double priority_of(const std::string& leaf_id,
                                   const core::FairshareSnapshotPtr& fallback = {}) const {
    const core::FairshareSnapshotPtr& snap = fairshare != nullptr ? fairshare : fallback;
    return snap != nullptr ? snap->factor_for(leaf_id) : core::kNeutralFactor;
  }
};

struct SchedulerConfig {
  double reprioritize_interval = 30.0;  ///< seconds between priority sweeps
  bool backfill = true;                 ///< let smaller jobs jump a blocked head
};

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  double total_wait_time = 0.0;  ///< sum of queue wait of started jobs
};

/// Abstract priority-scheduling RM on a simulated cluster.
class SchedulerBase {
 public:
  using CompletionListener = std::function<void(const Job&)>;
  using FairshareProvider = std::function<core::FairshareSnapshotPtr()>;

  SchedulerBase(sim::Simulator& simulator, Cluster cluster, SchedulerConfig config = {});
  virtual ~SchedulerBase() = default;
  SchedulerBase(const SchedulerBase&) = delete;
  SchedulerBase& operator=(const SchedulerBase&) = delete;

  /// Enqueue a job; assigns an id when the job has none. Returns the id.
  JobId submit(Job job);

  /// Register a completion callback (e.g. the Aequus jobcomp plugin).
  void add_completion_listener(CompletionListener listener);

  /// Source of fairshare snapshots for PriorityContext (e.g. the Aequus
  /// client's snapshot()). Called once per scheduling pass.
  void set_fairshare_provider(FairshareProvider provider);

  /// Route scheduler counters ("rm.<site>.*"), the queue-wait histogram,
  /// and per-decision trace events into an experiment registry/tracer.
  /// `site` labels the metrics (the cluster's site name).
  void attach_observability(obs::Observability obs, const std::string& site);

  [[nodiscard]] const Cluster& cluster() const noexcept { return cluster_; }
  [[nodiscard]] const SchedulerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t pending_count() const noexcept { return pending_.size(); }
  [[nodiscard]] std::size_t running_count() const noexcept { return running_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }

  /// Local per-system-user usage accounting (core-seconds of completed
  /// jobs), the data a purely local fairshare policy would use.
  [[nodiscard]] const std::map<std::string, double>& local_usage() const noexcept {
    return local_usage_;
  }

  /// Force a priority recompute + scheduling pass now.
  void reschedule();

 protected:
  /// Priority of a pending job given its context; higher runs first.
  [[nodiscard]] virtual double compute_priority(const PriorityContext& context) = 0;

  /// Hook invoked when a job finishes (before external listeners).
  virtual void on_job_completed(const Job& job) { (void)job; }

 private:
  void schedule_pass();
  void start_job(Job job);
  void finish_job(Job job);
  void ensure_reprioritize_scheduled();
  [[nodiscard]] core::FairshareSnapshotPtr current_fairshare() const;

  sim::Simulator& simulator_;
  Cluster cluster_;
  SchedulerConfig config_;
  obs::Observability obs_;
  std::string obs_site_;
  std::string site_label_;  ///< cluster name until attach_observability names the site
  FairshareProvider fairshare_provider_;
  obs::Counter* submitted_counter_ = nullptr;
  obs::Counter* started_counter_ = nullptr;
  obs::Counter* completed_counter_ = nullptr;
  obs::Histogram* wait_histogram_ = nullptr;
  std::deque<Job> pending_;
  std::size_t running_ = 0;
  JobId next_id_ = 1;
  SchedulerStats stats_;
  std::map<std::string, double> local_usage_;
  std::vector<CompletionListener> listeners_;
  bool reprioritize_scheduled_ = false;
  sim::EventHandle reprioritize_handle_;
};

}  // namespace aequus::rms
