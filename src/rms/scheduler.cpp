#include "rms/scheduler.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace aequus::rms {

SchedulerBase::SchedulerBase(sim::Simulator& simulator, Cluster cluster, SchedulerConfig config)
    : simulator_(simulator), cluster_(std::move(cluster)), config_(config) {
  site_label_ = cluster_.name();
}

void SchedulerBase::set_fairshare_provider(FairshareProvider provider) {
  fairshare_provider_ = std::move(provider);
}

core::FairshareSnapshotPtr SchedulerBase::current_fairshare() const {
  return fairshare_provider_ ? fairshare_provider_() : nullptr;
}

void SchedulerBase::ensure_reprioritize_scheduled() {
  // Periodic priority sweeps run only while jobs wait, so an idle
  // scheduler leaves the event queue drainable.
  if (reprioritize_scheduled_ || pending_.empty()) return;
  reprioritize_scheduled_ = true;
  reprioritize_handle_ =
      simulator_.schedule_after(config_.reprioritize_interval, [this] {
        reprioritize_scheduled_ = false;
        reschedule();
        ensure_reprioritize_scheduled();
      });
}

JobId SchedulerBase::submit(Job job) {
  if (job.id == 0) job.id = next_id_++;
  else next_id_ = std::max(next_id_, job.id + 1);
  job.state = JobState::kPending;
  job.submit_time = simulator_.now();
  job.priority =
      compute_priority(PriorityContext{job, simulator_.now(), current_fairshare(), site_label_});
  const JobId id = job.id;
  pending_.push_back(std::move(job));
  ++stats_.submitted;
  obs::bump(submitted_counter_);
  schedule_pass();
  ensure_reprioritize_scheduled();
  return id;
}

void SchedulerBase::add_completion_listener(CompletionListener listener) {
  listeners_.push_back(std::move(listener));
}

void SchedulerBase::attach_observability(obs::Observability obs, const std::string& site) {
  obs_ = obs;
  obs_site_ = site;
  site_label_ = site;
  if (obs_.registry != nullptr) {
    const std::string prefix = "rm." + site + ".";
    submitted_counter_ = &obs_.registry->counter(prefix + "submitted");
    started_counter_ = &obs_.registry->counter(prefix + "started");
    completed_counter_ = &obs_.registry->counter(prefix + "completed");
    // Queue waits span sub-second dispatches to multi-hour backlogs.
    wait_histogram_ = &obs_.registry->histogram(prefix + "wait_s",
                                                obs::HistogramSpec{0.1, 2.0, 24});
  }
}

void SchedulerBase::reschedule() {
  const double now = simulator_.now();
  // Root span of the periodic priority sweep: fairshare lookups the sweep
  // performs (client cache hits/misses, IRS calls) nest under it.
  obs::SpanContext span;
  if (obs_.tracer != nullptr && obs_.tracer->enabled()) {
    span = obs_.tracer->begin_span(now, obs_site_, "rm", "reprioritize:" + cluster_.name());
  }
  obs::SpanScope scope(obs_.tracer, span);
  // One snapshot for the whole sweep: every pending job is priced against
  // the same fairshare generation.
  const core::FairshareSnapshotPtr fairshare = current_fairshare();
  for (auto& job : pending_) {
    job.priority = compute_priority(PriorityContext{job, now, fairshare, site_label_});
  }
  schedule_pass();
  if (span.valid() && obs_.tracer != nullptr) {
    obs_.tracer->end_span(simulator_.now(), span, obs_site_, "rm", {},
                          static_cast<double>(pending_.size()));
  }
}

void SchedulerBase::schedule_pass() {
  if (pending_.empty()) return;
  // Highest priority first; ties dispatch FIFO by submit time, then by
  // job id so externally assigned ids cannot jump jobs submitted earlier
  // in the same instant.
  std::stable_sort(pending_.begin(), pending_.end(), [](const Job& a, const Job& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
    return a.id < b.id;
  });
  std::deque<Job> still_pending;
  bool blocked = false;
  while (!pending_.empty()) {
    Job job = std::move(pending_.front());
    pending_.pop_front();
    if (blocked || !cluster_.can_allocate(job.cores)) {
      if (!config_.backfill) blocked = true;
      still_pending.push_back(std::move(job));
      continue;
    }
    start_job(std::move(job));
  }
  pending_ = std::move(still_pending);
  if (pending_.empty() && reprioritize_scheduled_) {
    reprioritize_handle_.cancel();
    reprioritize_scheduled_ = false;
  }
}

void SchedulerBase::start_job(Job job) {
  const double now = simulator_.now();
  cluster_.allocate(job.cores, now);
  job.state = JobState::kRunning;
  job.start_time = now;
  job.end_time = now + job.duration;
  ++running_;
  ++stats_.started;
  stats_.total_wait_time += now - job.submit_time;
  obs::bump(started_counter_);
  if (wait_histogram_ != nullptr) wait_histogram_->record(now - job.submit_time);
  if (obs_.tracer != nullptr && obs_.tracer->enabled()) {
    obs_.tracer->record(now, obs::EventKind::kSchedulerDecision, obs_site_, cluster_.name(),
                        job.system_user, job.priority, job.id);
  }
  AEQ_TRACE("rms") << cluster_.name() << " start job " << job.id << " user "
                   << job.system_user;
  simulator_.schedule_at(job.end_time,
                         [this, job = std::move(job)]() mutable { finish_job(std::move(job)); });
}

void SchedulerBase::finish_job(Job job) {
  const double now = simulator_.now();
  cluster_.release(job.cores, now);
  job.state = JobState::kCompleted;
  job.end_time = now;
  --running_;
  ++stats_.completed;
  obs::bump(completed_counter_);
  local_usage_[job.system_user] += job.usage();
  // Root span of the usage propagation chain: everything the completion
  // triggers — jobcomp plugins, identity resolution, the usage report
  // send, the follow-up scheduling pass — nests under it, so one job
  // completion yields one trace tree the analyzer can walk end to end.
  obs::SpanContext span;
  if (obs_.tracer != nullptr && obs_.tracer->enabled()) {
    span = obs_.tracer->begin_span(now, obs_site_, "rm", "jobcomp:" + cluster_.name());
  }
  {
    obs::SpanScope scope(obs_.tracer, span);
    on_job_completed(job);
    for (const auto& listener : listeners_) listener(job);
    schedule_pass();
  }
  if (span.valid() && obs_.tracer != nullptr) {
    obs_.tracer->end_span(simulator_.now(), span, obs_site_, "rm", job.system_user,
                          static_cast<double>(job.id));
  }
}

}  // namespace aequus::rms
