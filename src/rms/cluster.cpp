#include "rms/cluster.hpp"

#include <stdexcept>

namespace aequus::rms {

Cluster::Cluster(std::string name, int node_count, int cores_per_node)
    : name_(std::move(name)), node_count_(node_count), cores_per_node_(cores_per_node) {
  if (node_count <= 0 || cores_per_node <= 0) {
    throw std::invalid_argument("Cluster: node_count and cores_per_node must be > 0");
  }
}

void Cluster::advance(double now) noexcept {
  if (now > last_change_) {
    busy_core_seconds_ += static_cast<double>(busy_cores_) * (now - last_change_);
    last_change_ = now;
  }
}

void Cluster::allocate(int cores, double now) {
  if (cores < 0 || cores > free_cores()) {
    throw std::runtime_error("Cluster::allocate: capacity exceeded on " + name_);
  }
  advance(now);
  busy_cores_ += cores;
}

void Cluster::release(int cores, double now) {
  if (cores < 0 || cores > busy_cores_) {
    throw std::runtime_error("Cluster::release: more cores than busy on " + name_);
  }
  advance(now);
  busy_cores_ -= cores;
}

double Cluster::utilization(double now) const noexcept {
  if (now <= 0.0) return 0.0;
  double busy = busy_core_seconds_;
  if (now > last_change_) busy += static_cast<double>(busy_cores_) * (now - last_change_);
  return busy / (static_cast<double>(total_cores()) * now);
}

}  // namespace aequus::rms
