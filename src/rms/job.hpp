// Job model shared by the resource-management substrates.
//
// A job carries both a *system user* (the local account it runs under)
// and a *grid user* identity. §III-B: the mapping between the two differs
// per site and per RM; local fairshare only needs the system user, but
// grid-wide fairshare requires the grid identity, recovered through the
// IRS when the RM does not know it.
#pragma once

#include <cstdint>
#include <string>

namespace aequus::rms {

using JobId = std::uint64_t;

enum class JobState { kPending, kRunning, kCompleted };

[[nodiscard]] std::string to_string(JobState state);

struct Job {
  JobId id = 0;
  std::string system_user;   ///< local account on the cluster
  std::string grid_user;     ///< global grid identity ("" = unresolved)
  double submit_time = 0.0;  ///< when the job entered the queue [s]
  double duration = 0.0;     ///< wall-clock runtime once started [s]
  int cores = 1;             ///< processors requested

  JobState state = JobState::kPending;
  double start_time = -1.0;
  double end_time = -1.0;
  double priority = 0.0;     ///< last computed scheduling priority

  [[nodiscard]] double usage() const noexcept { return duration * cores; }
  [[nodiscard]] double wait_time(double now) const noexcept {
    const double until = start_time >= 0.0 ? start_time : now;
    return until - submit_time;
  }
};

}  // namespace aequus::rms
