// Observability: structured trace-event stream with causal spans
// (§ DESIGN.md 6d/6e).
//
// A Tracer collects typed events with simulated timestamps. It starts
// disabled — `record()` is then a single branch, so instrumented code can
// call it unconditionally without measurable cost — and buffers events in
// memory when enabled. Events export to JSON-lines (one json:: object per
// line) for offline analysis, keeping the repo free of new dependencies.
//
// Causal spans: a SpanContext (trace_id, span_id, parent_span_id) names a
// node in a cross-site span tree. `begin_span` mints a child of the
// ambient "current" span (or a new trace root when there is none) and the
// RAII SpanScope establishes the ambient span around synchronous work —
// every plain `record()` call then stamps the ambient context onto its
// event, so existing instrumentation joins the tree without signature
// changes. The simulation is single-threaded per task, which makes the
// ambient-context model exact (it plays the role a thread-local plays in
// production tracers).
//
// Determinism contract: span_ids are a per-tracer monotonic counter and
// trace_ids come from a splitmix64 stream seeded via `seed_trace_ids`
// (the sweep seeds it with the task's splitmix seed), so the same task
// produces bit-identical span trees at any sweep thread count. trace_ids
// are masked to 48 bits so they survive a JSON double round trip exactly.
//
// Memory bound: `set_capacity(n)` turns the buffer into a ring that keeps
// the newest n events; overwritten events count into `dropped()` and into
// an optional registry counter ("trace.dropped_events" when attached by
// the Experiment). Site/component strings are interned — the hot path
// stores two integer ids — and the disabled path neither interns nor
// buffers.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "obs/metrics.hpp"

namespace aequus::obs {

/// The event taxonomy mirrors the layers the paper measures: bus traffic,
/// RPC round-trips, the client cache, scheduler decisions, and the usage
/// pipeline whose propagation delay Fig. 11 plots.
enum class EventKind : std::uint8_t {
  kMessageSend,         ///< bus accepted an envelope for delivery
  kMessageDeliver,      ///< envelope handed to the destination handler
  kMessageDrop,         ///< envelope dropped (loss, outage, unbound, ...)
  kRpcBegin,            ///< client issued a request expecting a reply
  kRpcEnd,              ///< reply (or timeout) observed; value = latency s
  kCacheHit,            ///< client served a lookup from fresh cache
  kCacheMiss,           ///< lookup had no usable cached entry
  kCacheStaleFallback,  ///< refresh failed; stale entry served instead
  kSchedulerDecision,   ///< RM dispatched a job; value = priority
  kUsageUpdateApplied,  ///< usage/fairshare state rebuilt from new data
  kSpanBegin,           ///< causal span opened; detail = span name
  kSpanEnd,             ///< causal span closed; value = kind-specific scalar
};

[[nodiscard]] const char* to_string(EventKind kind) noexcept;

/// Reverse of to_string; returns false when `name` is not a known kind.
[[nodiscard]] bool event_kind_from_string(std::string_view name, EventKind& out) noexcept;

/// A node name in a causal span tree. span_id == 0 means "no span": the
/// default-constructed context is the invalid/absent value throughout.
struct SpanContext {
  std::uint64_t trace_id = 0;        ///< tree identity (seeded splitmix stream)
  std::uint64_t span_id = 0;         ///< node identity (monotonic per tracer)
  std::uint64_t parent_span_id = 0;  ///< 0 for trace roots

  [[nodiscard]] bool valid() const noexcept { return span_id != 0; }
  bool operator==(const SpanContext&) const = default;
};

struct TraceEvent {
  double time = 0.0;      ///< simulated seconds
  EventKind kind = EventKind::kMessageSend;
  std::string site;       ///< originating site ("" = cross-site / global)
  std::string component;  ///< service/bus/client/rm identifier
  std::string detail;     ///< kind-specific detail (op, address, reason)
  double value = 0.0;     ///< kind-specific scalar (latency, priority, ...)
  std::uint64_t id = 0;   ///< correlates paired events (rpc begin/end)
  /// Causal context: for kSpanBegin/kSpanEnd the span itself, for every
  /// other kind the ambient span the event happened under (invalid when
  /// recorded outside any span).
  SpanContext span;

  [[nodiscard]] json::Value to_json() const;
};

class Tracer {
 public:
  void enable(bool on = true) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Record one point event, stamped with the ambient span context. The
  /// disabled path is a single branch: no interning, no buffering.
  void record(double time, EventKind kind, std::string_view site, std::string_view component,
              std::string detail = {}, double value = 0.0, std::uint64_t id = 0) {
    if (!enabled_) return;
    push(RawEvent{time, kind, intern(site), intern(component), std::move(detail), value, id,
                  current_});
  }

  /// Fresh id for correlating paired events (monotonic per tracer).
  [[nodiscard]] std::uint64_t next_id() noexcept { return ++last_id_; }

  // --- causal spans -------------------------------------------------------

  /// Seed the trace_id stream (call before recording; the Experiment seeds
  /// from its task seed so trees are bit-identical at any thread count).
  void seed_trace_ids(std::uint64_t seed) noexcept { trace_seed_state_ = seed; }

  /// Open a span as a child of `parent` (a new trace root when `parent` is
  /// invalid). Records a kSpanBegin event carrying the new context; does
  /// not change the ambient span (use SpanScope). Returns the invalid
  /// context when disabled.
  SpanContext begin_child(double time, const SpanContext& parent, std::string_view site,
                          std::string_view component, std::string name);

  /// Open a span as a child of the ambient span (see begin_child).
  SpanContext begin_span(double time, std::string_view site, std::string_view component,
                         std::string name) {
    return begin_child(time, current_, site, component, std::move(name));
  }

  /// Close `span` (kSpanEnd). No-op for the invalid context, so call
  /// sites need no enabled() checks of their own.
  void end_span(double time, const SpanContext& span, std::string_view site,
                std::string_view component, std::string detail = {}, double value = 0.0);

  /// The ambient span that plain record() calls attach to.
  [[nodiscard]] const SpanContext& current() const noexcept { return current_; }
  void set_current(const SpanContext& span) noexcept { current_ = span; }

  // --- memory bound -------------------------------------------------------

  /// Cap the buffer at `cap` events (0 = unbounded, the default). The ring
  /// keeps the newest events; older ones count as dropped. Shrinking below
  /// the current size drops the oldest surplus immediately.
  void set_capacity(std::size_t cap);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events overwritten/evicted by the ring so far.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Mirror drops into a registry counter (e.g. "trace.dropped_events").
  void set_dropped_counter(Counter* counter) noexcept { dropped_counter_ = counter; }

  // --- export -------------------------------------------------------------

  [[nodiscard]] std::size_t event_count() const noexcept { return events_.size(); }
  /// Distinct site/component strings interned so far (0 while disabled —
  /// the single-branch claim bench_micro pins).
  [[nodiscard]] std::size_t interned_count() const noexcept { return interned_.size(); }

  /// Materialize buffered events (oldest first) with resolved strings.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Materialize and clear the buffer (interning and ids are kept).
  [[nodiscard]] std::vector<TraceEvent> take();
  void clear() noexcept {
    events_.clear();
    head_ = 0;
  }

 private:
  /// Interned storage form of one event; strings resolve on export.
  struct RawEvent {
    double time;
    EventKind kind;
    std::uint32_t site;
    std::uint32_t component;
    std::string detail;
    double value;
    std::uint64_t id;
    SpanContext span;
  };

  [[nodiscard]] std::uint32_t intern(std::string_view text);
  void push(RawEvent event);
  [[nodiscard]] TraceEvent materialize(const RawEvent& raw) const;
  [[nodiscard]] std::uint64_t mint_trace_id() noexcept;

  bool enabled_ = false;
  std::uint64_t last_id_ = 0;
  std::uint64_t last_span_id_ = 0;
  std::uint64_t trace_seed_state_ = 0x5eedULL;
  SpanContext current_;
  std::vector<RawEvent> events_;
  std::size_t head_ = 0;       ///< oldest slot once the ring has wrapped
  std::size_t capacity_ = 0;   ///< 0 = unbounded
  std::uint64_t dropped_ = 0;
  Counter* dropped_counter_ = nullptr;
  std::map<std::string, std::uint32_t, std::less<>> intern_index_;
  std::vector<std::string> interned_;
};

/// RAII ambient-span switch: makes `span` the tracer's current span for
/// the scope's lifetime and restores the previous one on exit. Null or
/// disabled tracers make this a no-op, so call sites need no checks.
class SpanScope {
 public:
  SpanScope(Tracer* tracer, const SpanContext& span) noexcept : tracer_(tracer) {
    if (tracer_ == nullptr || !tracer_->enabled()) {
      tracer_ = nullptr;
      return;
    }
    saved_ = tracer_->current();
    tracer_->set_current(span);
  }
  ~SpanScope() {
    if (tracer_ != nullptr) tracer_->set_current(saved_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Tracer* tracer_;
  SpanContext saved_;
};

/// Write events as JSON-lines: one compact object per line.
void write_jsonl(std::ostream& out, const std::vector<TraceEvent>& events);

}  // namespace aequus::obs
