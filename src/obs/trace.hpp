// Observability: structured trace-event stream (§ DESIGN.md 6d).
//
// A Tracer collects typed events with simulated timestamps. It starts
// disabled — `record()` is then a single branch, so instrumented code can
// call it unconditionally without measurable cost — and buffers events in
// memory when enabled. Events export to JSON-lines (one json:: object per
// line) for offline analysis, keeping the repo free of new dependencies.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace aequus::obs {

/// The event taxonomy mirrors the layers the paper measures: bus traffic,
/// RPC round-trips, the client cache, scheduler decisions, and the usage
/// pipeline whose propagation delay Fig. 11 plots.
enum class EventKind : std::uint8_t {
  kMessageSend,         ///< bus accepted an envelope for delivery
  kMessageDeliver,      ///< envelope handed to the destination handler
  kMessageDrop,         ///< envelope dropped (loss, outage, unbound, ...)
  kRpcBegin,            ///< client issued a request expecting a reply
  kRpcEnd,              ///< reply (or timeout) observed; value = latency s
  kCacheHit,            ///< client served a lookup from fresh cache
  kCacheMiss,           ///< lookup had no usable cached entry
  kCacheStaleFallback,  ///< refresh failed; stale entry served instead
  kSchedulerDecision,   ///< RM dispatched a job; value = priority
  kUsageUpdateApplied,  ///< usage/fairshare state rebuilt from new data
};

[[nodiscard]] const char* to_string(EventKind kind) noexcept;

struct TraceEvent {
  double time = 0.0;      ///< simulated seconds
  EventKind kind = EventKind::kMessageSend;
  std::string site;       ///< originating site ("" = cross-site / global)
  std::string component;  ///< service/bus/client/rm identifier
  std::string detail;     ///< kind-specific detail (op, address, reason)
  double value = 0.0;     ///< kind-specific scalar (latency, priority, ...)
  std::uint64_t id = 0;   ///< correlates paired events (rpc begin/end)

  [[nodiscard]] json::Value to_json() const;
};

class Tracer {
 public:
  void enable(bool on = true) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void record(double time, EventKind kind, std::string site, std::string component,
              std::string detail = {}, double value = 0.0, std::uint64_t id = 0) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{time, kind, std::move(site), std::move(component),
                                 std::move(detail), value, id});
  }

  /// Fresh id for correlating paired events (monotonic per tracer).
  [[nodiscard]] std::uint64_t next_id() noexcept { return ++last_id_; }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::vector<TraceEvent> take() noexcept { return std::move(events_); }
  void clear() noexcept { events_.clear(); }

 private:
  bool enabled_ = false;
  std::uint64_t last_id_ = 0;
  std::vector<TraceEvent> events_;
};

/// Write events as JSON-lines: one compact object per line.
void write_jsonl(std::ostream& out, const std::vector<TraceEvent>& events);

}  // namespace aequus::obs
