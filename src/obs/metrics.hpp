// Observability: metrics registry (§ DESIGN.md 6d).
//
// The paper evaluates Aequus by measuring it — update propagation delay
// (Fig. 11), message volume for the compact usage form, fairshare
// convergence across six sites — so the reproduction needs a uniform way
// to observe those quantities instead of per-bench ad-hoc counters.
//
// A Registry owns three metric kinds, all keyed by a flat dotted string
// ("<site>.<service>.<name>", or a plain name for experiment-global
// metrics):
//   - Counter:   monotonically increasing uint64 (requests, drops, bytes);
//   - Gauge:     last double value plus (sum, samples) so replications can
//                be merged into a deterministic mean;
//   - Histogram: fixed log-scale buckets (bounds = first_bound * growth^i,
//                plus an overflow bucket) with count/sum/min/max.
//
// Hot-path contract: registration (the first lookup of a key) may
// allocate; afterwards components hold plain pointers and recording is
// O(1) with no allocation — counters and gauges are single stores,
// histograms a bounded binary search over precomputed bounds. Handles
// stay valid for the Registry's lifetime (deque storage, no relocation).
//
// A Snapshot is the copyable, mergeable export form: run_sweep merges
// per-task snapshots in task-index order, which makes the merged values
// bit-identical across thread counts (the same guarantee the sweep
// aggregates give). Everything serializes to JSON via json::.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace aequus::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value metric that also accumulates (sum, samples) so merged
/// replications expose a deterministic mean.
class Gauge {
 public:
  void set(double v) noexcept {
    last_ = v;
    sum_ += v;
    ++samples_;
  }
  [[nodiscard]] double last() const noexcept { return last_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }

 private:
  double last_ = 0.0;
  double sum_ = 0.0;
  std::uint64_t samples_ = 0;
};

/// Log-scale bucket layout: bucket i covers (bounds[i-1], bounds[i]] with
/// bounds[i] = first_bound * growth^i; one extra bucket catches overflow.
/// The layout is fixed at registration so recording never allocates.
struct HistogramSpec {
  double first_bound = 1e-3;  ///< upper bound of the first bucket
  double growth = 2.0;        ///< bound ratio between adjacent buckets
  int buckets = 24;           ///< bounded buckets (excluding overflow)
};

class Histogram {
 public:
  explicit Histogram(HistogramSpec spec = {});

  /// O(log buckets), allocation-free.
  void record(double value) noexcept;

  /// The normalized layout spec the bounds were derived from (exported in
  /// snapshots so report consumers never re-derive the log-scale layout).
  [[nodiscard]] const HistogramSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

 private:
  HistogramSpec spec_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Copyable export of a Gauge.
struct GaugeValue {
  double last = 0.0;
  double sum = 0.0;
  std::uint64_t samples = 0;

  [[nodiscard]] double mean() const noexcept {
    return samples > 0 ? sum / static_cast<double>(samples) : 0.0;
  }
};

/// Copyable export of a Histogram. `spec.buckets == 0` marks an unknown
/// layout (snapshots with mismatched layouts were merged).
struct HistogramValue {
  HistogramSpec spec{0.0, 0.0, 0};
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Copyable, mergeable snapshot of a Registry. Merge semantics: counters
/// and histogram buckets/sums add; gauges add (sum, samples) and keep the
/// other snapshot's last value, so `gauge(key).mean()` over merged
/// replications equals the task-index-order arithmetic mean.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeValue> gauges;
  std::map<std::string, HistogramValue> histograms;

  /// Fold `other` into this snapshot. Deterministic: merging the same
  /// snapshots in the same order yields bit-identical results.
  void merge(const Snapshot& other);

  /// Counter value, 0 when the key was never registered.
  [[nodiscard]] std::uint64_t counter(const std::string& key) const noexcept;
  /// Gauge export, zeros when the key was never registered.
  [[nodiscard]] GaugeValue gauge(const std::string& key) const noexcept;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  [[nodiscard]] json::Value to_json() const;
};

/// Owner of all metrics of one experiment (or one bus, in isolation).
/// Lookup by key registers on first use and returns the same object on
/// every subsequent call. Not thread-safe by design: each sweep task owns
/// its own registry (same contract as the Simulator).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& key);
  [[nodiscard]] Gauge& gauge(const std::string& key);
  /// `spec` is honoured only by the registering (first) call.
  [[nodiscard]] Histogram& histogram(const std::string& key, HistogramSpec spec = {});

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] json::Value to_json() const { return snapshot().to_json(); }

 private:
  // deque storage: references handed to components never relocate.
  std::map<std::string, std::size_t> counter_index_;
  std::map<std::string, std::size_t> gauge_index_;
  std::map<std::string, std::size_t> histogram_index_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

/// Optional observability hookup threaded through components. Null
/// members disable the corresponding recording (checked per call site).
struct Observability {
  Registry* registry = nullptr;
  class Tracer* tracer = nullptr;
};

/// Increment an optional counter handle (no-op when observability is not
/// attached and the handle is null).
inline void bump(Counter* counter, std::uint64_t n = 1) noexcept {
  if (counter != nullptr) counter->inc(n);
}

}  // namespace aequus::obs
