#include "obs/span_analysis.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <unordered_map>

namespace aequus::obs {
namespace {

bool is_blank(const std::string& line) noexcept {
  return std::all_of(line.begin(), line.end(),
                     [](unsigned char c) { return std::isspace(c) != 0; });
}

/// Walk one tree, partitioning [lo, hi] among the span and its children.
/// Children windows are disjoint (overlapping siblings split at the
/// overlap, earlier sibling wins) so self times sum to the root duration.
void accumulate_hops(const std::vector<SpanNode>& spans, std::size_t index, double lo,
                     double hi, ChainStats& stats) {
  const SpanNode& span = spans[index];
  const double window_lo = std::clamp(span.start, lo, hi);
  const double window_hi = std::clamp(span.end, window_lo, hi);
  double child_total = 0.0;
  double cursor = window_lo;
  for (const std::size_t child_index : span.children) {
    const SpanNode& child = spans[child_index];
    const double child_lo = std::clamp(std::max(child.start, cursor), window_lo, window_hi);
    const double child_hi = std::clamp(child.end, child_lo, window_hi);
    accumulate_hops(spans, child_index, child_lo, child_hi, stats);
    child_total += child_hi - child_lo;
    cursor = std::max(cursor, child_hi);
  }
  const std::string key = hop_key(span);
  stats.hop_self_time[key] += (window_hi - window_lo) - child_total;
  stats.hop_spans[key] += 1;
}

struct TreeScan {
  bool all_closed = true;
  std::size_t attempts = 0;
};

void scan_tree(const std::vector<SpanNode>& spans, std::size_t index, TreeScan& scan) {
  const SpanNode& span = spans[index];
  if (!span.closed()) scan.all_closed = false;
  if (span_name_stem(span.name) == "attempt") ++scan.attempts;
  for (const std::size_t child : span.children) scan_tree(spans, child, scan);
}

}  // namespace

std::string_view span_name_stem(std::string_view name) noexcept {
  const std::size_t colon = name.find(':');
  return colon == std::string_view::npos ? name : name.substr(0, colon);
}

std::string hop_key(const SpanNode& span) {
  std::string key = span.component;
  key += '/';
  key += span_name_stem(span.name);
  return key;
}

std::vector<std::size_t> TraceAnalysis::critical_path(std::size_t root_index) const {
  std::vector<std::size_t> path;
  if (root_index >= spans.size()) return path;
  std::size_t current = root_index;
  path.push_back(current);
  while (true) {
    std::size_t best = kNoSpan;
    double best_end = 0.0;
    for (const std::size_t child : spans[current].children) {
      if (!spans[child].closed()) continue;
      if (best == kNoSpan || spans[child].end >= best_end) {
        best = child;
        best_end = spans[child].end;
      }
    }
    if (best == kNoSpan) break;
    path.push_back(best);
    current = best;
  }
  return path;
}

double TraceAnalysis::self_time(std::size_t index) const {
  if (index >= spans.size()) return 0.0;
  const SpanNode& span = spans[index];
  if (!span.closed()) return 0.0;
  double covered = 0.0;
  double cursor = span.start;
  for (const std::size_t child_index : span.children) {
    const SpanNode& child = spans[child_index];
    if (!child.closed()) continue;
    const double lo = std::clamp(std::max(child.start, cursor), span.start, span.end);
    const double hi = std::clamp(child.end, lo, span.end);
    covered += hi - lo;
    cursor = std::max(cursor, hi);
  }
  return span.duration() - covered;
}

TraceAnalysis analyze_spans(const std::vector<TraceEvent>& events,
                            const AnalyzeOptions& options) {
  TraceAnalysis analysis;
  analysis.total_events = events.size();
  std::unordered_map<std::uint64_t, std::size_t> by_span_id;
  by_span_id.reserve(events.size() / 2 + 1);

  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::kSpanBegin) {
      ++analysis.span_events;
      if (by_span_id.count(event.span.span_id) > 0) continue;  // malformed duplicate begin
      SpanNode node;
      node.context = event.span;
      node.start = event.time;
      node.site = event.site;
      node.component = event.component;
      node.name = event.detail;
      by_span_id.emplace(event.span.span_id, analysis.spans.size());
      analysis.spans.push_back(std::move(node));
      continue;
    }
    if (event.kind == EventKind::kSpanEnd) {
      ++analysis.span_events;
      const auto it = by_span_id.find(event.span.span_id);
      if (it == by_span_id.end()) {
        ++analysis.unmatched_ends;  // begin evicted by the ring (or never traced)
        continue;
      }
      SpanNode& node = analysis.spans[it->second];
      if (node.closed()) {
        ++analysis.duplicate_ends;  // bus duplication delivered the end twice
        continue;
      }
      node.end = std::max(event.time, node.start);
      node.end_detail = event.detail;
      node.end_value = event.value;
      continue;
    }
    // Point event: attribute to its ambient span when it has one.
    if (!event.span.valid()) {
      ++analysis.contextless_events;
      continue;
    }
    const auto it = by_span_id.find(event.span.span_id);
    if (it != by_span_id.end() && event.kind == EventKind::kMessageDrop) {
      ++analysis.spans[it->second].drop_events;
      ++analysis.drop_events;
    }
  }

  // Link parents; spans whose parent never appeared are orphans and act
  // as roots of partial trees.
  for (std::size_t i = 0; i < analysis.spans.size(); ++i) {
    SpanNode& node = analysis.spans[i];
    if (!node.closed()) ++analysis.open_spans;
    if (node.context.parent_span_id == 0) continue;
    const auto it = by_span_id.find(node.context.parent_span_id);
    if (it == by_span_id.end()) {
      node.orphan = true;
      ++analysis.orphan_spans;
      continue;
    }
    node.parent = it->second;
    analysis.spans[it->second].children.push_back(i);
  }
  for (std::size_t i = 0; i < analysis.spans.size(); ++i) {
    if (analysis.spans[i].parent == kNoSpan) analysis.roots.push_back(i);
  }

  for (const std::size_t root : analysis.roots) {
    const SpanNode& span = analysis.spans[root];
    ChainStats& stats = analysis.chains[hop_key(span)];
    TreeScan scan;
    scan_tree(analysis.spans, root, scan);
    const std::size_t retries = scan.attempts > 1 ? scan.attempts - 1 : 0;
    stats.retries += retries;
    if (retries >= options.retry_storm_threshold) {
      ++stats.retry_storms;
      ++analysis.retry_storms;
    }
    if (!scan.all_closed || span.orphan) {
      ++stats.broken;
      ++analysis.broken_chains;
      continue;
    }
    ++stats.complete;
    const double duration = span.duration();
    stats.total_duration += duration;
    if (stats.slowest_root == kNoSpan || duration > stats.max_duration) {
      stats.slowest_root = root;
    }
    stats.max_duration = std::max(stats.max_duration, duration);
    accumulate_hops(analysis.spans, root, span.start, span.end, stats);
  }
  return analysis;
}

std::vector<TraceEvent> read_trace_jsonl(std::istream& in) {
  std::vector<TraceEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || is_blank(line)) continue;
    const json::Value value = json::parse(line);
    TraceEvent event;
    event.time = value.get_number("t");
    const std::string kind_name = value.get_string("kind");
    if (!event_kind_from_string(kind_name, event.kind)) {
      throw std::runtime_error("read_trace_jsonl: unknown event kind: " + kind_name);
    }
    event.site = value.get_string("site");
    event.component = value.get_string("component");
    event.detail = value.get_string("detail");
    event.value = value.get_number("value");
    event.id = static_cast<std::uint64_t>(value.get_number("id"));
    event.span.trace_id = static_cast<std::uint64_t>(value.get_number("trace"));
    event.span.span_id = static_cast<std::uint64_t>(value.get_number("span"));
    event.span.parent_span_id = static_cast<std::uint64_t>(value.get_number("parent"));
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace aequus::obs
