#include "obs/trace.hpp"

namespace aequus::obs {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kMessageSend: return "message_send";
    case EventKind::kMessageDeliver: return "message_deliver";
    case EventKind::kMessageDrop: return "message_drop";
    case EventKind::kRpcBegin: return "rpc_begin";
    case EventKind::kRpcEnd: return "rpc_end";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheMiss: return "cache_miss";
    case EventKind::kCacheStaleFallback: return "cache_stale_fallback";
    case EventKind::kSchedulerDecision: return "scheduler_decision";
    case EventKind::kUsageUpdateApplied: return "usage_update_applied";
  }
  return "unknown";
}

json::Value TraceEvent::to_json() const {
  json::Object obj;
  obj["t"] = time;
  obj["kind"] = to_string(kind);
  if (!site.empty()) obj["site"] = site;
  obj["component"] = component;
  if (!detail.empty()) obj["detail"] = detail;
  obj["value"] = value;
  if (id != 0) obj["id"] = id;
  return json::Value(std::move(obj));
}

void write_jsonl(std::ostream& out, const std::vector<TraceEvent>& events) {
  for (const TraceEvent& event : events) out << event.to_json().dump() << "\n";
}

}  // namespace aequus::obs
