#include "obs/trace.hpp"

#include <algorithm>
#include <utility>

namespace aequus::obs {
namespace {

// Stateless splitmix64 step, inlined here so aequus_obs stays dependency
// free (util links nothing back into obs, but the five lines are cheaper
// than the edge).
std::uint64_t splitmix64_step(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kMessageSend: return "message_send";
    case EventKind::kMessageDeliver: return "message_deliver";
    case EventKind::kMessageDrop: return "message_drop";
    case EventKind::kRpcBegin: return "rpc_begin";
    case EventKind::kRpcEnd: return "rpc_end";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheMiss: return "cache_miss";
    case EventKind::kCacheStaleFallback: return "cache_stale_fallback";
    case EventKind::kSchedulerDecision: return "scheduler_decision";
    case EventKind::kUsageUpdateApplied: return "usage_update_applied";
    case EventKind::kSpanBegin: return "span_begin";
    case EventKind::kSpanEnd: return "span_end";
  }
  return "unknown";
}

bool event_kind_from_string(std::string_view name, EventKind& out) noexcept {
  for (int i = 0; i <= static_cast<int>(EventKind::kSpanEnd); ++i) {
    const auto kind = static_cast<EventKind>(i);
    if (name == to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

json::Value TraceEvent::to_json() const {
  json::Object obj;
  obj["t"] = time;
  obj["kind"] = to_string(kind);
  if (!site.empty()) obj["site"] = site;
  obj["component"] = component;
  if (!detail.empty()) obj["detail"] = detail;
  obj["value"] = value;
  if (id != 0) obj["id"] = id;
  if (span.trace_id != 0) obj["trace"] = span.trace_id;
  if (span.span_id != 0) obj["span"] = span.span_id;
  if (span.parent_span_id != 0) obj["parent"] = span.parent_span_id;
  return json::Value(std::move(obj));
}

std::uint64_t Tracer::mint_trace_id() noexcept {
  // Masked to 48 bits: a JSON double carries the id exactly, and per-task
  // traces hold far too few trees for birthday collisions to matter.
  const std::uint64_t id = splitmix64_step(trace_seed_state_) & 0xffffffffffffULL;
  return id != 0 ? id : 1;
}

SpanContext Tracer::begin_child(double time, const SpanContext& parent, std::string_view site,
                                std::string_view component, std::string name) {
  if (!enabled_) return {};
  SpanContext span;
  if (parent.valid()) {
    span.trace_id = parent.trace_id;
    span.parent_span_id = parent.span_id;
  } else {
    span.trace_id = mint_trace_id();
  }
  span.span_id = ++last_span_id_;
  push(RawEvent{time, EventKind::kSpanBegin, intern(site), intern(component), std::move(name),
                0.0, 0, span});
  return span;
}

void Tracer::end_span(double time, const SpanContext& span, std::string_view site,
                      std::string_view component, std::string detail, double value) {
  if (!enabled_ || !span.valid()) return;
  push(RawEvent{time, EventKind::kSpanEnd, intern(site), intern(component), std::move(detail),
                value, 0, span});
}

std::uint32_t Tracer::intern(std::string_view text) {
  const auto it = intern_index_.find(text);
  if (it != intern_index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(interned_.size());
  interned_.emplace_back(text);
  intern_index_.emplace(interned_.back(), id);
  return id;
}

void Tracer::push(RawEvent event) {
  if (capacity_ > 0 && events_.size() >= capacity_) {
    events_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
    bump(dropped_counter_);
    return;
  }
  events_.push_back(std::move(event));
}

void Tracer::set_capacity(std::size_t cap) {
  if (head_ != 0) {
    // Normalize ring order so the vector is oldest-first again.
    std::rotate(events_.begin(),
                events_.begin() + static_cast<std::ptrdiff_t>(head_), events_.end());
    head_ = 0;
  }
  capacity_ = cap;
  if (capacity_ > 0 && events_.size() > capacity_) {
    const std::size_t surplus = events_.size() - capacity_;
    events_.erase(events_.begin(), events_.begin() + static_cast<std::ptrdiff_t>(surplus));
    dropped_ += surplus;
    bump(dropped_counter_, surplus);
  }
}

TraceEvent Tracer::materialize(const RawEvent& raw) const {
  TraceEvent event;
  event.time = raw.time;
  event.kind = raw.kind;
  event.site = interned_[raw.site];
  event.component = interned_[raw.component];
  event.detail = raw.detail;
  event.value = raw.value;
  event.id = raw.id;
  event.span = raw.span;
  return event;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  const std::size_t n = events_.size();
  for (std::size_t i = 0; i < n; ++i) out.push_back(materialize(events_[(head_ + i) % n]));
  return out;
}

std::vector<TraceEvent> Tracer::take() {
  std::vector<TraceEvent> out = events();
  clear();
  return out;
}

void write_jsonl(std::ostream& out, const std::vector<TraceEvent>& events) {
  for (const TraceEvent& event : events) out << event.to_json().dump() << "\n";
}

}  // namespace aequus::obs
