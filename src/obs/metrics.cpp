#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace aequus::obs {

Histogram::Histogram(HistogramSpec spec) {
  if (spec.buckets < 1) spec.buckets = 1;
  if (!(spec.first_bound > 0.0)) spec.first_bound = 1e-3;
  if (!(spec.growth > 1.0)) spec.growth = 2.0;
  spec_ = spec;
  bounds_.reserve(static_cast<std::size_t>(spec.buckets));
  double bound = spec.first_bound;
  for (int i = 0; i < spec.buckets; ++i) {
    bounds_.push_back(bound);
    bound *= spec.growth;
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double value) noexcept {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Snapshot::merge(const Snapshot& other) {
  for (const auto& [key, value] : other.counters) counters[key] += value;
  for (const auto& [key, value] : other.gauges) {
    GaugeValue& mine = gauges[key];
    mine.last = value.samples > 0 ? value.last : mine.last;
    mine.sum += value.sum;
    mine.samples += value.samples;
  }
  for (const auto& [key, value] : other.histograms) {
    auto [it, inserted] = histograms.try_emplace(key, value);
    if (inserted) continue;
    HistogramValue& mine = it->second;
    if (mine.bounds != value.bounds) {
      // Mismatched layouts cannot be merged bucket-wise; keep the scalar
      // aggregates correct and drop per-bucket resolution (and the spec —
      // no single layout describes the merged data).
      mine.bounds.clear();
      mine.counts.clear();
      mine.spec = HistogramSpec{0.0, 0.0, 0};
    } else {
      for (std::size_t i = 0; i < mine.counts.size(); ++i) mine.counts[i] += value.counts[i];
    }
    if (value.count > 0) {
      mine.min = mine.count > 0 ? std::min(mine.min, value.min) : value.min;
      mine.max = mine.count > 0 ? std::max(mine.max, value.max) : value.max;
    }
    mine.count += value.count;
    mine.sum += value.sum;
  }
}

std::uint64_t Snapshot::counter(const std::string& key) const noexcept {
  const auto it = counters.find(key);
  return it != counters.end() ? it->second : 0;
}

GaugeValue Snapshot::gauge(const std::string& key) const noexcept {
  const auto it = gauges.find(key);
  return it != gauges.end() ? it->second : GaugeValue{};
}

json::Value Snapshot::to_json() const {
  json::Object root;
  json::Object counter_obj;
  for (const auto& [key, value] : counters) counter_obj[key] = value;
  root["counters"] = json::Value(std::move(counter_obj));

  json::Object gauge_obj;
  for (const auto& [key, value] : gauges) {
    json::Object g;
    g["last"] = value.last;
    g["sum"] = value.sum;
    g["samples"] = value.samples;
    g["mean"] = value.mean();
    gauge_obj[key] = json::Value(std::move(g));
  }
  root["gauges"] = json::Value(std::move(gauge_obj));

  json::Object histogram_obj;
  for (const auto& [key, value] : histograms) {
    json::Object h;
    if (value.spec.buckets > 0) {
      json::Object spec;
      spec["first_bound"] = value.spec.first_bound;
      spec["growth"] = value.spec.growth;
      spec["buckets"] = value.spec.buckets;
      h["spec"] = json::Value(std::move(spec));
    }
    json::Array bounds;
    for (double b : value.bounds) bounds.push_back(b);
    json::Array counts;
    for (std::uint64_t c : value.counts) counts.push_back(c);
    h["bounds"] = json::Value(std::move(bounds));
    h["counts"] = json::Value(std::move(counts));
    h["count"] = value.count;
    h["sum"] = value.sum;
    h["min"] = value.min;
    h["max"] = value.max;
    h["mean"] = value.mean();
    histogram_obj[key] = json::Value(std::move(h));
  }
  root["histograms"] = json::Value(std::move(histogram_obj));
  return json::Value(std::move(root));
}

Counter& Registry::counter(const std::string& key) {
  const auto it = counter_index_.find(key);
  if (it != counter_index_.end()) return counters_[it->second];
  counter_index_.emplace(key, counters_.size());
  return counters_.emplace_back();
}

Gauge& Registry::gauge(const std::string& key) {
  const auto it = gauge_index_.find(key);
  if (it != gauge_index_.end()) return gauges_[it->second];
  gauge_index_.emplace(key, gauges_.size());
  return gauges_.emplace_back();
}

Histogram& Registry::histogram(const std::string& key, HistogramSpec spec) {
  const auto it = histogram_index_.find(key);
  if (it != histogram_index_.end()) return histograms_[it->second];
  histogram_index_.emplace(key, histograms_.size());
  return histograms_.emplace_back(spec);
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  for (const auto& [key, index] : counter_index_) {
    snap.counters.emplace(key, counters_[index].value());
  }
  for (const auto& [key, index] : gauge_index_) {
    const Gauge& gauge = gauges_[index];
    snap.gauges.emplace(key, GaugeValue{gauge.last(), gauge.sum(), gauge.samples()});
  }
  for (const auto& [key, index] : histogram_index_) {
    const Histogram& histogram = histograms_[index];
    HistogramValue value;
    value.spec = histogram.spec();
    value.bounds = histogram.bounds();
    value.counts = histogram.counts();
    value.count = histogram.count();
    value.sum = histogram.sum();
    value.min = histogram.min();
    value.max = histogram.max();
    snap.histograms.emplace(key, std::move(value));
  }
  return snap;
}

}  // namespace aequus::obs
