// Offline span-tree reconstruction and critical-path analysis
// (§ DESIGN.md 6e).
//
// Consumes the Tracer's event stream (in memory or re-read from JSONL),
// rebuilds the causal span trees, and derives per-chain statistics:
//
//   - per-hop latency/queueing breakdown: each span's *self time* is its
//     share of the chain after handing disjoint sub-windows to its
//     children (overlapping siblings split at the overlap, so the
//     decomposition is a strict partition). Summing self times over a
//     complete tree therefore reproduces the root's duration exactly —
//     the identity the fig11 bench's per-hop tables rely on;
//   - the critical path: from the root, repeatedly descend into the child
//     that finishes last (the one that determined the parent's end);
//   - anomalies: orphan spans (parent never seen — ring eviction or a
//     lost begin), broken chains (spans opened but never closed — drops,
//     outages, participation filtering), retry storms (attempt fan-out
//     beyond a threshold), duplicate span ends (bus duplication).
//
// Hops and chains are keyed by "component/name-stem", where the stem is
// the span name up to the first ':' ("rpc:site0.fcs" -> "bus/rpc"); chain
// keys use the root span ("rm/jobcomp", "client/refresh", "ums/update").
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace aequus::obs {

inline constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

/// One reconstructed span. Indices refer into TraceAnalysis::spans.
struct SpanNode {
  SpanContext context;
  double start = 0.0;
  double end = -1.0;  ///< < start until a kSpanEnd arrives (open span)
  std::string site;
  std::string component;
  std::string name;        ///< begin-event detail
  std::string end_detail;  ///< end-event detail ("ok", "superseded", ...)
  double end_value = 0.0;
  std::size_t parent = kNoSpan;
  std::vector<std::size_t> children;  ///< begin-event order
  bool orphan = false;                ///< parent id never appeared
  std::size_t drop_events = 0;        ///< kMessageDrop events under this span

  [[nodiscard]] bool closed() const noexcept { return end >= start; }
  [[nodiscard]] double duration() const noexcept { return closed() ? end - start : 0.0; }
};

/// Aggregate over all trees sharing one root key ("rm/jobcomp", ...).
struct ChainStats {
  std::size_t complete = 0;  ///< root + every descendant closed, non-orphan
  std::size_t broken = 0;    ///< at least one span never closed
  std::size_t retries = 0;   ///< "attempt" spans beyond the first, any tree
  std::size_t retry_storms = 0;  ///< trees with >= threshold retries
  double total_duration = 0.0;   ///< summed complete-chain durations [s]
  double max_duration = 0.0;
  std::size_t slowest_root = kNoSpan;  ///< root index of the slowest complete chain
  /// Per-hop strict partition of the complete chains' durations; values
  /// sum to total_duration exactly (within float addition error).
  std::map<std::string, double> hop_self_time;
  std::map<std::string, std::size_t> hop_spans;

  [[nodiscard]] double mean_duration() const noexcept {
    return complete > 0 ? total_duration / static_cast<double>(complete) : 0.0;
  }
};

struct AnalyzeOptions {
  std::size_t retry_storm_threshold = 3;  ///< retries per tree that flag a storm
};

struct TraceAnalysis {
  std::vector<SpanNode> spans;        ///< kSpanBegin order (deterministic)
  std::vector<std::size_t> roots;     ///< spans with no in-trace parent
  std::map<std::string, ChainStats> chains;  ///< keyed by root "component/stem"

  std::size_t total_events = 0;
  std::size_t span_events = 0;        ///< kSpanBegin + kSpanEnd events
  std::size_t contextless_events = 0; ///< point events outside any span
  std::size_t orphan_spans = 0;
  std::size_t open_spans = 0;         ///< begun but never ended
  std::size_t broken_chains = 0;
  std::size_t retry_storms = 0;
  std::size_t duplicate_ends = 0;     ///< extra kSpanEnd for a closed span
  std::size_t unmatched_ends = 0;     ///< kSpanEnd with no begin in buffer
  std::size_t drop_events = 0;        ///< kMessageDrop events under spans

  /// Critical path from `root_index`: the chain of closed descendants that
  /// determined the root's end time, root first.
  [[nodiscard]] std::vector<std::size_t> critical_path(std::size_t root_index) const;

  /// Self time of one span against its own full interval (no sibling
  /// splitting); the per-chain tables use the partitioned variant instead.
  [[nodiscard]] double self_time(std::size_t index) const;
};

/// Span name / chain key stem: the name up to the first ':'.
[[nodiscard]] std::string_view span_name_stem(std::string_view name) noexcept;

/// Hop key of a span: "component/stem".
[[nodiscard]] std::string hop_key(const SpanNode& span);

/// Rebuild span trees and chain statistics from an event stream.
[[nodiscard]] TraceAnalysis analyze_spans(const std::vector<TraceEvent>& events,
                                          const AnalyzeOptions& options = {});

/// Parse a write_jsonl stream back into events (blank lines skipped;
/// throws std::runtime_error on malformed JSON or unknown event kinds).
[[nodiscard]] std::vector<TraceEvent> read_trace_jsonl(std::istream& in);

}  // namespace aequus::obs
