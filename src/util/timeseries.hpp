// Time-series recording and rendering.
//
// Experiments record per-user usage shares and priorities against the
// simulated clock; benches render them as terminal line charts so every
// figure in the paper has a direct textual analogue in bench output.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace aequus::util {

/// A single named series of (time, value) samples, kept in time order.
class Series {
 public:
  /// Append a sample. In-order times (the common case) cost one
  /// comparison; an out-of-order time falls back to sorted insertion so
  /// value_at's binary search stays correct.
  void add(double time, double value);

  [[nodiscard]] const std::vector<double>& times() const noexcept { return times_; }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }
  [[nodiscard]] std::size_t size() const noexcept { return times_.size(); }
  [[nodiscard]] bool empty() const noexcept { return times_.empty(); }

  /// Last value at or before `time`; `fallback` if none.
  [[nodiscard]] double value_at(double time, double fallback = 0.0) const noexcept;

  /// Mean of values with time in [t0, t1]. Returns `fallback` when empty.
  [[nodiscard]] double mean_in(double t0, double t1, double fallback = 0.0) const noexcept;

  /// Max absolute difference from `target` over times in [t0, t1].
  [[nodiscard]] double max_deviation_in(double t0, double t1, double target) const noexcept;

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

/// A bundle of named series sharing one x-axis (simulated time).
class SeriesSet {
 public:
  /// Get-or-create the series called `name`.
  Series& series(const std::string& name) { return series_[name]; }
  [[nodiscard]] const std::map<std::string, Series>& all() const noexcept { return series_; }
  [[nodiscard]] bool contains(const std::string& name) const { return series_.count(name) > 0; }

  /// Render all series as an ASCII chart: `height` rows, `width` columns,
  /// one letter per series, with a legend and y-axis labels.
  [[nodiscard]] std::string render_chart(const std::string& title, int width = 90,
                                         int height = 18, double y_min = 0.0,
                                         double y_max = -1.0) const;

  /// Render sampled values at `samples` evenly spaced times as a table.
  [[nodiscard]] std::string render_table(const std::string& title, int samples = 12) const;

 private:
  std::map<std::string, Series> series_;
};

}  // namespace aequus::util
