// ASCII table rendering used by the benchmark harnesses to print the
// paper's tables (Table I–III) and figure data series in a readable form.
#pragma once

#include <string>
#include <vector>

namespace aequus::util {

/// Column-aligned ASCII table builder.
///
/// Usage:
///   Table t({"User", "Median(s)", "Distribution", "KS"});
///   t.add_row({"U65 (p1)", "2", "GEV(...)", "0.06"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Append a horizontal separator at the current position.
  void add_separator();

  /// Render with box-drawing in plain ASCII.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace aequus::util
