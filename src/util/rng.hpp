// Deterministic pseudo-random number generation for simulation and
// workload synthesis.
//
// All stochastic behaviour in the library flows through util::Rng so that
// every experiment is reproducible from a single 64-bit seed. The generator
// is xoshiro256** (Blackman & Vigna), seeded through splitmix64 so that
// nearby seeds produce uncorrelated streams.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace aequus::util {

/// Stateless splitmix64 step; used for seeding and for cheap hash mixing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Deterministic, seedable random number generator (xoshiro256**).
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can be used
/// with <random> adaptors, but the common draws (uniform, normal,
/// exponential) are provided as members to keep call sites terse and the
/// numerics identical across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed. Equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal draw (Box–Muller with caching of the second deviate).
  [[nodiscard]] double normal() noexcept;

  /// Normal draw with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Exponential draw with the given rate (lambda > 0).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// True with probability p (p clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Index drawn from a discrete distribution proportional to `weights`.
  /// Non-positive weights are treated as zero; requires at least one
  /// positive weight.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Fork an independent child stream; deterministic in the parent state.
  [[nodiscard]] Rng fork() noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace aequus::util
