// Minimal structured logging.
//
// The library is a simulation substrate: logging defaults to warnings only
// so that benches stay quiet, but experiments can raise verbosity to trace
// scheduler and service activity. Output goes to a configurable sink
// (stderr by default) and is timestamped with the *simulated* clock when a
// clock source is registered.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace aequus::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Human-readable name for a level ("TRACE", "DEBUG", ...).
[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Process-wide logger configuration. Not thread-safe by design: the
/// simulator is single-threaded and deterministic.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component, std::string_view message)>;
  using ClockSource = std::function<double()>;

  /// Global instance used by the AEQ_LOG macros.
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }

  /// Replace the output sink. Passing nullptr restores the stderr sink.
  void set_sink(Sink sink);

  /// Register a simulated-clock source used to timestamp messages.
  void set_clock(ClockSource clock) { clock_ = std::move(clock); }

  [[nodiscard]] bool enabled(LogLevel level) const noexcept { return level >= level_; }

  void log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  ClockSource clock_;
};

namespace detail {
/// Builds a message with ostream formatting and submits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().log(level_, component_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace aequus::util

#define AEQ_LOG(level, component)                                      \
  if (!::aequus::util::Logger::instance().enabled(level)) {           \
  } else                                                               \
    ::aequus::util::detail::LogLine(level, component)

#define AEQ_TRACE(component) AEQ_LOG(::aequus::util::LogLevel::kTrace, component)
#define AEQ_DEBUG(component) AEQ_LOG(::aequus::util::LogLevel::kDebug, component)
#define AEQ_INFO(component) AEQ_LOG(::aequus::util::LogLevel::kInfo, component)
#define AEQ_WARN(component) AEQ_LOG(::aequus::util::LogLevel::kWarn, component)
#define AEQ_ERROR(component) AEQ_LOG(::aequus::util::LogLevel::kError, component)
