#include "util/thread_pool.hpp"

#include <stdexcept>

namespace aequus::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    if (shutdown_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain-on-shutdown: exit only once the queue is empty.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();  // packaged_task captures exceptions into the future
    {
      std::unique_lock lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace aequus::util
