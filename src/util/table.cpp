#include "util/table.hpp"

#include <algorithm>

namespace aequus::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(Row{std::move(row), false});
}

void Table::add_separator() {
  rows_.push_back(Row{{}, true});
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  const auto render_separator = [&widths]() {
    std::string line = "+";
    for (std::size_t w : widths) {
      line.append(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };
  const auto render_cells = [&widths](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      line += ' ';
      line += cell;
      line.append(widths[i] - cell.size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out = render_separator();
  out += render_cells(header_);
  out += render_separator();
  for (const auto& row : rows_) {
    out += row.separator ? render_separator() : render_cells(row.cells);
  }
  out += render_separator();
  return out;
}

}  // namespace aequus::util
