#include "util/logging.hpp"

#include <cstdio>

namespace aequus::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  set_sink(nullptr);
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
    return;
  }
  sink_ = [this](LogLevel level, std::string_view component, std::string_view message) {
    if (clock_) {
      std::fprintf(stderr, "[%12.3f] %-5s %s: %.*s\n", clock_(),
                   std::string(to_string(level)).c_str(), std::string(component).c_str(),
                   static_cast<int>(message.size()), message.data());
    } else {
      std::fprintf(stderr, "%-5s %s: %.*s\n", std::string(to_string(level)).c_str(),
                   std::string(component).c_str(), static_cast<int>(message.size()),
                   message.data());
    }
  };
}

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  if (!enabled(level)) return;
  sink_(level, component, message);
}

}  // namespace aequus::util
