#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>
#include <cmath>

namespace aequus::util {

std::vector<std::string> split(std::string_view input, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_nonempty(std::string_view input, char delimiter) {
  std::vector<std::string> out;
  for (auto& part : split(input, delimiter)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string_view trim(std::string_view input) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
  };
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end && is_space(input[begin])) ++begin;
  while (end > begin && is_space(input[end - 1])) --end;
  return input.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view delimiter) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delimiter;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view value, std::string_view prefix) noexcept {
  return value.size() >= prefix.size() && value.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view value, std::string_view suffix) noexcept {
  return value.size() >= suffix.size() && value.substr(value.size() - suffix.size()) == suffix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string format_duration(double seconds) {
  const bool negative = seconds < 0;
  double remaining = std::fabs(seconds);
  const auto hours = static_cast<long>(remaining / 3600.0);
  remaining -= static_cast<double>(hours) * 3600.0;
  const auto minutes = static_cast<long>(remaining / 60.0);
  remaining -= static_cast<double>(minutes) * 60.0;
  return format("%s%ldh %02ldm %04.1fs", negative ? "-" : "", hours, minutes, remaining);
}

std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace aequus::util
