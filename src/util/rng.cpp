#include "util/rng.hpp"

#include <cmath>

namespace aequus::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit && limit != 0);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights)
    if (w > 0.0) total += w;
  if (total <= 0.0) return 0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

Rng Rng::fork() noexcept {
  return Rng((*this)());
}

}  // namespace aequus::util
