#include "util/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/strings.hpp"

namespace aequus::util {

void Series::add(double time, double value) {
  if (times_.empty() || time >= times_.back()) {
    times_.push_back(time);
    values_.push_back(value);
    return;
  }
  // Out-of-order sample: insert at its sorted position (after any equal
  // times, preserving arrival order within a timestamp) so value_at's
  // binary search stays valid.
  const auto it = std::upper_bound(times_.begin(), times_.end(), time);
  const std::size_t index = static_cast<std::size_t>(it - times_.begin());
  times_.insert(it, time);
  values_.insert(values_.begin() + static_cast<std::ptrdiff_t>(index), value);
}

double Series::value_at(double time, double fallback) const noexcept {
  const auto it = std::upper_bound(times_.begin(), times_.end(), time);
  if (it == times_.begin()) return fallback;
  return values_[static_cast<std::size_t>(it - times_.begin()) - 1];
}

double Series::mean_in(double t0, double t1, double fallback) const noexcept {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] >= t0 && times_[i] <= t1) {
      sum += values_[i];
      ++count;
    }
  }
  return count == 0 ? fallback : sum / static_cast<double>(count);
}

double Series::max_deviation_in(double t0, double t1, double target) const noexcept {
  double worst = 0.0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] >= t0 && times_[i] <= t1) {
      worst = std::max(worst, std::fabs(values_[i] - target));
    }
  }
  return worst;
}

std::string SeriesSet::render_chart(const std::string& title, int width, int height,
                                    double y_min, double y_max) const {
  if (series_.empty()) return title + ": (no data)\n";

  double t_min = std::numeric_limits<double>::infinity();
  double t_max = -std::numeric_limits<double>::infinity();
  double v_max = -std::numeric_limits<double>::infinity();
  for (const auto& [name, s] : series_) {
    if (s.empty()) continue;
    t_min = std::min(t_min, s.times().front());
    t_max = std::max(t_max, s.times().back());
    v_max = std::max(v_max, *std::max_element(s.values().begin(), s.values().end()));
  }
  if (!std::isfinite(t_min)) return title + ": (no data)\n";
  if (y_max <= y_min) y_max = std::max(v_max * 1.05, y_min + 1e-9);
  if (t_max <= t_min) t_max = t_min + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  char marker = 'a';
  std::string legend;
  for (const auto& [name, s] : series_) {
    for (int col = 0; col < width; ++col) {
      const double t = t_min + (t_max - t_min) * (static_cast<double>(col) + 0.5) /
                                   static_cast<double>(width);
      const double v = s.value_at(t, std::numeric_limits<double>::quiet_NaN());
      if (!std::isfinite(v)) continue;
      const double frac = (v - y_min) / (y_max - y_min);
      int row = static_cast<int>(std::lround((1.0 - frac) * (height - 1)));
      row = std::clamp(row, 0, height - 1);
      auto& cell = grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
      cell = (cell == ' ' || cell == marker) ? marker : '*';
    }
    legend += format("  %c = %s", marker, name.c_str());
    marker = marker == 'z' ? 'A' : static_cast<char>(marker + 1);
  }

  std::string out = title + "\n";
  for (int row = 0; row < height; ++row) {
    const double frac = 1.0 - static_cast<double>(row) / (height - 1);
    const double v = y_min + frac * (y_max - y_min);
    out += format("%8.3f |", v);
    out += grid[static_cast<std::size_t>(row)];
    out += '\n';
  }
  out += "         +";
  out.append(static_cast<std::size_t>(width), '-');
  out += '\n';
  out += format("          t = [%.1f, %.1f]%s\n", t_min, t_max, legend.c_str());
  return out;
}

std::string SeriesSet::render_table(const std::string& title, int samples) const {
  if (series_.empty()) return title + ": (no data)\n";
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = -std::numeric_limits<double>::infinity();
  for (const auto& [name, s] : series_) {
    if (s.empty()) continue;
    t_min = std::min(t_min, s.times().front());
    t_max = std::max(t_max, s.times().back());
  }
  if (!std::isfinite(t_min)) return title + ": (no data)\n";

  std::string out = title + "\n";
  std::string header = format("%10s", "t");
  for (const auto& [name, s] : series_) {
    (void)s;
    header += format(" %12s", name.c_str());
  }
  out += header + '\n';
  for (int i = 0; i < samples; ++i) {
    const double t =
        t_min + (t_max - t_min) * static_cast<double>(i) / std::max(1, samples - 1);
    std::string line = format("%10.1f", t);
    for (const auto& [name, s] : series_) {
      (void)name;
      line += format(" %12.4f", s.value_at(t, 0.0));
    }
    out += line + '\n';
  }
  return out;
}

}  // namespace aequus::util
