// Fixed-size worker pool for embarrassingly parallel sweeps.
//
// Deliberately minimal: one FIFO queue, a fixed number of workers, no
// work stealing and no priorities. The evaluation pipeline parallelizes
// over whole experiments — coarse tasks of seconds each — so a single
// mutex-guarded queue is nowhere near contention and keeps the execution
// order (and therefore the set of tasks each worker runs) easy to reason
// about. Determinism of the *results* never depends on the pool: tasks
// must be pure functions of their inputs that write to disjoint slots.
//
// Shutdown semantics: the destructor drains the queue. Tasks already
// submitted all run to completion and their futures become ready; only
// submission of new tasks is refused after shutdown begins.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace aequus::util {

class ThreadPool {
 public:
  /// Spawn `threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a nullary callable; tasks start in FIFO submission order.
  /// The future reports the task's return value, or rethrows whatever the
  /// task threw. Throws std::runtime_error if the pool is shutting down.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& task) {
    using R = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    post([packaged] { (*packaged)(); });
    return future;
  }

  /// Block until every task submitted so far has finished.
  void wait_idle();

 private:
  void post(std::function<void()> task);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t running_ = 0;  ///< tasks currently executing
  bool shutdown_ = false;
};

}  // namespace aequus::util
