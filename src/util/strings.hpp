// Small string utilities shared across modules (path parsing in policy
// trees, CSV-ish trace IO, identity names).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aequus::util {

/// Split `input` on `delimiter`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view input, char delimiter);

/// Split on `delimiter`, discarding empty fields (useful for '/'-paths).
[[nodiscard]] std::vector<std::string> split_nonempty(std::string_view input, char delimiter);

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view input) noexcept;

/// Join parts with `delimiter`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view delimiter);

/// True if `value` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view value, std::string_view prefix) noexcept;

/// True if `value` ends with `suffix`.
[[nodiscard]] bool ends_with(std::string_view value, std::string_view suffix) noexcept;

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Render seconds of simulated time as "HHh MMm SSs" for reports.
[[nodiscard]] std::string format_duration(double seconds);

/// FNV-1a 64-bit hash; used to abbreviate determinism fingerprints (which
/// can run to megabytes) in machine-readable bench reports.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data) noexcept;

}  // namespace aequus::util
