// Uniform JSON decoding: json::decode<T>(value).
//
// Every module used to grow its own `<type>_from_json` free function,
// which made generic code (config loaders, wire handlers) spell a
// different name per type. The Decoder<T> trait gives them all one entry
// point:
//
//   auto config = json::decode<core::FairshareConfig>(value);
//
// A type opts in by specializing Decoder<T> next to its definition:
//
//   template <>
//   struct aequus::json::Decoder<MyConfig> {
//     static MyConfig decode(const Value& value);
//   };
//
// The legacy `*_from_json` names remain as deprecated inline forwarders.
#pragma once

#include "json/json.hpp"

namespace aequus::json {

/// Trait hook; specializations provide `static T decode(const Value&)`.
/// The primary template is intentionally undefined so decoding a type
/// without a specialization is a compile-time error, not a link error.
template <typename T>
struct Decoder;

/// Decode `value` into a T via its Decoder specialization.
template <typename T>
[[nodiscard]] T decode(const Value& value) {
  return Decoder<T>::decode(value);
}

}  // namespace aequus::json
