// Minimal JSON value model, parser, and serializer.
//
// The paper's Identity Resolution Service (IRS) speaks a "minimalist JSON
// based protocol" with custom name-resolution endpoints (§III-B). This
// module implements exactly enough of RFC 8259 for that protocol and for
// the policy/usage wire formats used by the simulated service bus:
// objects, arrays, strings (with escapes), numbers, booleans, and null.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace aequus::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// A JSON value: null, bool, number (double), string, array, or object.
///
/// Value semantics throughout; copies are deep. Accessors are checked and
/// throw std::runtime_error on type mismatch, keeping protocol-decoding
/// call sites terse.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(std::int64_t i) : data_(static_cast<double>(i)) {}
  Value(std::size_t i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(data_); }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool is_number() const noexcept { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(data_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<Object>(data_); }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  /// Object member access; throws if not an object or key missing.
  [[nodiscard]] const Value& at(const std::string& key) const;

  /// Object member lookup; nullopt when absent (still throws on non-object).
  [[nodiscard]] std::optional<std::reference_wrapper<const Value>> find(
      const std::string& key) const;

  /// Convenience typed getters with defaults, for tolerant protocol decode.
  [[nodiscard]] std::string get_string(const std::string& key, std::string fallback = "") const;
  [[nodiscard]] double get_number(const std::string& key, double fallback = 0.0) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback = false) const;

  /// Array element access; throws if not an array or out of range.
  [[nodiscard]] const Value& at(std::size_t index) const;

  [[nodiscard]] std::size_t size() const;

  /// Serialize compactly (no whitespace). Stable key order (std::map).
  [[nodiscard]] std::string dump() const;

  /// Serialize with 2-space indentation.
  [[nodiscard]] std::string pretty() const;

  bool operator==(const Value& other) const = default;

 private:
  void write(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parse a complete JSON document. Throws std::runtime_error with a byte
/// offset on malformed input; trailing garbage is an error.
[[nodiscard]] Value parse(std::string_view text);

/// Parse, returning nullopt instead of throwing.
[[nodiscard]] std::optional<Value> try_parse(std::string_view text) noexcept;

}  // namespace aequus::json
