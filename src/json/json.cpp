#include "json/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <system_error>

#include "util/strings.hpp"

namespace aequus::json {

namespace {
[[noreturn]] void fail(const char* what, std::size_t offset) {
  throw std::runtime_error(util::format("json: %s at offset %zu", what, offset));
}
}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) throw std::runtime_error("json: not a bool");
  return std::get<bool>(data_);
}

double Value::as_number() const {
  if (!is_number()) throw std::runtime_error("json: not a number");
  return std::get<double>(data_);
}

std::int64_t Value::as_int() const {
  return static_cast<std::int64_t>(std::llround(as_number()));
}

const std::string& Value::as_string() const {
  if (!is_string()) throw std::runtime_error("json: not a string");
  return std::get<std::string>(data_);
}

const Array& Value::as_array() const {
  if (!is_array()) throw std::runtime_error("json: not an array");
  return std::get<Array>(data_);
}

const Object& Value::as_object() const {
  if (!is_object()) throw std::runtime_error("json: not an object");
  return std::get<Object>(data_);
}

Array& Value::as_array() {
  if (!is_array()) throw std::runtime_error("json: not an array");
  return std::get<Array>(data_);
}

Object& Value::as_object() {
  if (!is_object()) throw std::runtime_error("json: not an object");
  return std::get<Object>(data_);
}

const Value& Value::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}

std::optional<std::reference_wrapper<const Value>> Value::find(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) return std::nullopt;
  return std::cref(it->second);
}

std::string Value::get_string(const std::string& key, std::string fallback) const {
  const auto found = find(key);
  if (!found || !found->get().is_string()) return fallback;
  return found->get().as_string();
}

double Value::get_number(const std::string& key, double fallback) const {
  const auto found = find(key);
  if (!found || !found->get().is_number()) return fallback;
  return found->get().as_number();
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  const auto found = find(key);
  if (!found || !found->get().is_bool()) return fallback;
  return found->get().as_bool();
}

const Value& Value::at(std::size_t index) const {
  const auto& arr = as_array();
  if (index >= arr.size()) throw std::runtime_error("json: index out of range");
  return arr[index];
}

std::size_t Value::size() const {
  if (is_array()) return std::get<Array>(data_).size();
  if (is_object()) return std::get<Object>(data_).size();
  throw std::runtime_error("json: size() on scalar");
}

namespace {
void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double d) {
  // JSON has no NaN/inf literals; emitting "nan" would produce a document
  // the parser itself rejects. Fail at the source instead.
  if (!std::isfinite(d)) throw std::domain_error("json: cannot serialize non-finite number");
  if (d == std::llround(d) && std::fabs(d) < 1e15) {
    out += util::format("%lld", static_cast<long long>(std::llround(d)));
  } else {
    // std::to_chars, not printf "%g": the latter renders the decimal
    // separator per LC_NUMERIC, and a comma-decimal locale (de_DE) would
    // corrupt every serialized number. 17 significant digits round-trip
    // any double exactly.
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), d, std::chars_format::general, 17);
    if (ec != std::errc()) throw std::runtime_error("json: number formatting failed");
    out.append(buffer, end);
  }
}
}  // namespace

void Value::write(std::string& out, int indent, int depth) const {
  const auto newline = [&] {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(data_) ? "true" : "false";
  } else if (is_number()) {
    write_number(out, std::get<double>(data_));
  } else if (is_string()) {
    write_escaped(out, std::get<std::string>(data_));
  } else if (is_array()) {
    const auto& arr = std::get<Array>(data_);
    out += '[';
    bool first = true;
    for (const auto& item : arr) {
      if (!first) out += ',';
      first = false;
      ++depth;
      newline();
      --depth;
      item.write(out, indent, depth + 1);
    }
    if (!arr.empty()) newline();
    out += ']';
  } else {
    const auto& obj = std::get<Object>(data_);
    out += '{';
    bool first = true;
    for (const auto& [key, item] : obj) {
      if (!first) out += ',';
      first = false;
      ++depth;
      newline();
      --depth;
      write_escaped(out, key);
      out += ':';
      if (indent > 0) out += ' ';
      item.write(out, indent, depth + 1);
    }
    if (!obj.empty()) newline();
    out += '}';
  }
}

std::string Value::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Value::pretty() const {
  std::string out;
  write(out, 2, 0);
  return out;
}

namespace {
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_whitespace();
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return v;
  }

 private:
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (advance() != c) fail("unexpected character", pos_ - 1);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal", pos_);
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal", pos_);
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal", pos_);
        return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_whitespace();
      const char c = advance();
      if (c == '}') return Value(std::move(obj));
      if (c != ',') fail("expected ',' or '}'", pos_ - 1);
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char c = advance();
      if (c == ']') return Value(std::move(arr));
      if (c != ',') fail("expected ',' or ']'", pos_ - 1);
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = advance();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = advance();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = advance();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape", pos_ - 1);
            }
            // UTF-8 encode the BMP code point (surrogate pairs unsupported;
            // the IRS protocol is ASCII identity names).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape", pos_ - 1);
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character", pos_ - 1);
      } else {
        out += c;
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected value", start);
    // std::from_chars, not strtod: strtod honours LC_NUMERIC, so under a
    // comma-decimal locale it would stop at the '.' and mis-parse "1.5"
    // as 1. from_chars always uses the C-locale grammar.
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || end != token.data() + token.size()) {
      fail("malformed number", start);
    }
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};
}  // namespace

Value parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::optional<Value> try_parse(std::string_view text) noexcept {
  try {
    return parse(text);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace aequus::json
