#include "libaequus/c_api.hpp"

#include <cstring>

#include "libaequus/client.hpp"

struct aequus_handle {
  aequus::client::AequusClient client;
};

extern "C" {

aequus_handle* aequus_create(aequus::sim::Simulator* simulator, aequus::net::ServiceBus* bus,
                             const char* site, const char* cluster,
                             double fairshare_cache_ttl, double identity_cache_ttl) {
  if (simulator == nullptr || bus == nullptr || site == nullptr || cluster == nullptr) {
    return nullptr;
  }
  try {
    aequus::client::ClientConfig config;
    config.site = site;
    config.cluster = cluster;
    config.fairshare_cache_ttl = fairshare_cache_ttl;
    config.identity_cache_ttl = identity_cache_ttl;
    return new aequus_handle{
        aequus::client::AequusClient(*simulator, *bus, std::move(config))};
  } catch (...) {
    return nullptr;
  }
}

void aequus_destroy(aequus_handle* handle) {
  delete handle;
}

double aequus_fairshare_factor(aequus_handle* handle, const char* grid_user) {
  if (handle == nullptr || grid_user == nullptr) return -1.0;
  try {
    return handle->client.fairshare_factor(grid_user);
  } catch (...) {
    return -1.0;
  }
}

int aequus_resolve_identity(aequus_handle* handle, const char* system_user, char* out,
                            std::size_t out_size) {
  if (handle == nullptr || system_user == nullptr || out == nullptr || out_size == 0) return -1;
  try {
    const auto grid_user = handle->client.resolve_identity(system_user);
    if (!grid_user || grid_user->size() + 1 > out_size) return -1;
    std::memcpy(out, grid_user->c_str(), grid_user->size() + 1);
    return 0;
  } catch (...) {
    return -1;
  }
}

int aequus_report_usage(aequus_handle* handle, const char* grid_user, double usage) {
  if (handle == nullptr || grid_user == nullptr) return -1;
  try {
    handle->client.report_usage(grid_user, usage);
    return 0;
  } catch (...) {
    return -1;
  }
}

int aequus_report_system_usage(aequus_handle* handle, const char* system_user, double usage) {
  if (handle == nullptr || system_user == nullptr) return -1;
  try {
    return handle->client.report_system_usage(system_user, usage) ? 0 : -1;
  } catch (...) {
    return -1;
  }
}

}  // extern "C"
