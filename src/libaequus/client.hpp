// libaequus: the unified system library linked into local resource
// management systems (§III-A).
//
// "The libaequus library provides a C/C++ based interface that underneath
// contains Web service clients that communicate with Aequus to retrieve
// fairshare values, usage identity mappings, and store usage records.
// Previously resolved fairshare values and identities are cached within
// the library (for a configurable amount of time), which considerably
// reduces the amount of network traffic and computations required when
// batches of jobs are submitted and processed at the same time."
//
// The client is synchronous from the RM's point of view: fairshare
// lookups are served from a periodically refreshed snapshot of the FCS
// table (cache delay III of §IV-A-2), identity lookups hit a TTL cache in
// front of the site IRS, and usage reports are one-way messages to the
// site USS (reporting delay I).
//
// Failure handling: a table refresh that receives no reply within
// `request_timeout` is retried with bounded exponential backoff
// (`backoff_base * backoff_multiplier^attempt`, capped at `backoff_max`,
// at most `max_retries` retries). An unbound FCS (service crashed) bounces
// immediately and follows the same backoff path. When all retries are
// exhausted the client keeps serving the stale cached table — schedulers
// degrade to cached or local fairshare instead of hanging — and tries
// again at the next periodic refresh.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/snapshot.hpp"
#include "ingest/batcher.hpp"
#include "net/service_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace aequus::client {

struct ClientConfig {
  std::string site;                  ///< Aequus installation to talk to
  std::string cluster;               ///< local cluster name (IRS context)
  double fairshare_cache_ttl = 30.0; ///< seconds between table refreshes
  double identity_cache_ttl = 600.0; ///< seconds an identity stays cached
  double request_timeout = 5.0;      ///< seconds before a refresh is presumed lost
  int max_retries = 4;               ///< retry budget per refresh cycle
  double backoff_base = 1.0;         ///< first retry delay [s]
  double backoff_multiplier = 2.0;   ///< exponential backoff factor
  double backoff_max = 30.0;         ///< ceiling on a single backoff delay [s]
  /// Batched usage ingestion (DESIGN.md §6g). Disabled by default: every
  /// report is one immediate bus send, byte-identical to the legacy
  /// path. Enabled, reports append to a bounded per-site delta log that
  /// ships coalesced, sequence-numbered batches to the USS on
  /// `batch_interval` cadence.
  ingest::IngestConfig batching{};
};

struct ClientStats {
  std::uint64_t fairshare_lookups = 0;
  std::uint64_t fairshare_refreshes = 0;
  std::uint64_t usage_reports = 0;
  std::uint64_t identity_hits = 0;
  std::uint64_t identity_misses = 0;
  std::uint64_t identity_failures = 0;  ///< IRS unreachable; lookup failed soft
  std::uint64_t refresh_timeouts = 0;   ///< refresh replies that never arrived
  std::uint64_t refresh_retries = 0;    ///< backoff retries issued
  std::uint64_t refresh_errors = 0;     ///< unbound bounces from the bus
  std::uint64_t refresh_failures = 0;   ///< retry budget exhausted (stale fallback)
};

class AequusClient {
 public:
  AequusClient(sim::Simulator& simulator, net::ServiceBus& bus, ClientConfig config,
               obs::Observability obs = {});
  ~AequusClient();
  AequusClient(const AequusClient&) = delete;
  AequusClient& operator=(const AequusClient&) = delete;

  /// Global fairshare factor in [0, 1] for a grid user. Served from the
  /// cached FCS table; 0.5 (the balance point) until the first refresh
  /// lands or for users Aequus does not know. Never blocks: under faults
  /// this degrades to the last successfully fetched (stale) table.
  [[nodiscard]] double fairshare_factor(const std::string& grid_user);

  /// Immutable snapshot of the cached fairshare factors. The generation
  /// is a local counter bumped per successful refresh, so a scheduler can
  /// grab one snapshot per pass (and detect "nothing changed" cheaply)
  /// instead of probing the client per job. Null until the first refresh
  /// lands; readers hold the returned pointer, which never mutates.
  [[nodiscard]] core::FairshareSnapshotPtr snapshot() const noexcept { return snapshot_; }

  /// Reverse-map a system user to its grid identity via the site IRS,
  /// caching results for `identity_cache_ttl` seconds. An unreachable IRS
  /// is a soft failure (nullopt), never an exception into the scheduler.
  [[nodiscard]] std::optional<std::string> resolve_identity(const std::string& system_user);

  /// Report `usage` core-seconds consumed by `grid_user` to the site USS.
  void report_usage(const std::string& grid_user, double usage);

  /// Convenience used by completion plugins: resolve, then report. Returns
  /// false when the identity cannot be resolved (usage is then dropped,
  /// as it would be in a misconfigured deployment).
  bool report_system_usage(const std::string& system_user, double usage);

  [[nodiscard]] const ClientStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ClientConfig& config() const noexcept { return config_; }

  /// The observability hookup the client records into; completion plugins
  /// use it to open their own spans around client calls.
  [[nodiscard]] const obs::Observability& observability() const noexcept { return obs_; }

  /// Simulated time of the last successful table refresh; negative until
  /// one lands.
  [[nodiscard]] double last_refresh_time() const noexcept { return last_refresh_time_; }

  /// True when the cached table is older than `max_age` seconds (always
  /// true before the first successful refresh).
  [[nodiscard]] bool stale(double max_age) const noexcept;

  /// Force a fresh refresh cycle (normally timer-driven). Cancels any
  /// in-flight attempt or pending backoff retry.
  void refresh_fairshare_table();

  /// The batching delta log (null unless config.batching.enabled).
  [[nodiscard]] ingest::DeltaLog* delta_log() noexcept { return delta_log_.get(); }

 private:
  /// Registry-backed mirrors of ClientStats ("<site>.client.*"), null
  /// when no observability is attached.
  struct Metrics {
    obs::Counter* fairshare_lookups = nullptr;
    obs::Counter* fairshare_refreshes = nullptr;
    obs::Counter* usage_reports = nullptr;
    obs::Counter* identity_hits = nullptr;
    obs::Counter* identity_misses = nullptr;
    obs::Counter* identity_failures = nullptr;
    obs::Counter* refresh_timeouts = nullptr;
    obs::Counter* refresh_retries = nullptr;
    obs::Counter* refresh_errors = nullptr;
    obs::Counter* refresh_failures = nullptr;
  };

  /// Issue attempt number `attempt` of the current refresh cycle.
  void start_refresh(int attempt);
  /// Handle a lost/bounced attempt: back off and retry, or give up and
  /// serve stale until the next periodic cycle.
  void refresh_attempt_failed(int attempt);
  [[nodiscard]] double backoff_delay(int attempt) const noexcept;
  void trace(obs::EventKind kind, std::string detail, double value = 0.0,
             std::uint64_t id = 0);
  [[nodiscard]] bool tracing() const noexcept {
    return obs_.tracer != nullptr && obs_.tracer->enabled();
  }
  /// Close `span` (when open) with `detail` and invalidate the handle.
  void end_client_span(obs::SpanContext& span, std::string detail, double value = 0.0);

  sim::Simulator& simulator_;
  net::ServiceBus& bus_;
  ClientConfig config_;
  obs::Observability obs_;
  Metrics metrics_;
  std::map<std::string, double> fairshare_table_;
  /// Latest published view of fairshare_table_; rebuilt after every
  /// successful refresh, immutable once handed out.
  core::FairshareSnapshotPtr snapshot_;
  std::uint64_t snapshot_generation_ = 0;
  struct CachedIdentity {
    std::string grid_user;
    double expires;
  };
  std::map<std::string, CachedIdentity> identity_cache_;
  ClientStats stats_;
  /// Bounded delta log for batched ingestion; null when batching is off.
  std::unique_ptr<ingest::DeltaLog> delta_log_;
  sim::EventHandle refresh_task_;
  sim::EventHandle timeout_task_;
  sim::EventHandle retry_task_;
  /// Identifies the outstanding refresh attempt; replies and timeouts
  /// carrying another generation are stale and ignored.
  std::uint64_t refresh_generation_ = 0;
  double last_refresh_time_ = -1.0;
  /// Causal spans for the current refresh cycle: one "refresh" root per
  /// cycle with one "attempt:<n>" child per try, so retry storms and
  /// stale-cache fallbacks are visible as tree shapes in the trace.
  obs::SpanContext refresh_span_;
  obs::SpanContext attempt_span_;
};

}  // namespace aequus::client
