// libaequus: the unified system library linked into local resource
// management systems (§III-A).
//
// "The libaequus library provides a C/C++ based interface that underneath
// contains Web service clients that communicate with Aequus to retrieve
// fairshare values, usage identity mappings, and store usage records.
// Previously resolved fairshare values and identities are cached within
// the library (for a configurable amount of time), which considerably
// reduces the amount of network traffic and computations required when
// batches of jobs are submitted and processed at the same time."
//
// The client is synchronous from the RM's point of view: fairshare
// lookups are served from a periodically refreshed snapshot of the FCS
// table (cache delay III of §IV-A-2), identity lookups hit a TTL cache in
// front of the site IRS, and usage reports are one-way messages to the
// site USS (reporting delay I).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "net/service_bus.hpp"
#include "sim/simulator.hpp"

namespace aequus::client {

struct ClientConfig {
  std::string site;                  ///< Aequus installation to talk to
  std::string cluster;               ///< local cluster name (IRS context)
  double fairshare_cache_ttl = 30.0; ///< seconds between table refreshes
  double identity_cache_ttl = 600.0; ///< seconds an identity stays cached
};

struct ClientStats {
  std::uint64_t fairshare_lookups = 0;
  std::uint64_t fairshare_refreshes = 0;
  std::uint64_t identity_hits = 0;
  std::uint64_t identity_misses = 0;
  std::uint64_t usage_reports = 0;
};

class AequusClient {
 public:
  AequusClient(sim::Simulator& simulator, net::ServiceBus& bus, ClientConfig config);
  ~AequusClient();
  AequusClient(const AequusClient&) = delete;
  AequusClient& operator=(const AequusClient&) = delete;

  /// Global fairshare factor in [0, 1] for a grid user. Served from the
  /// cached FCS table; 0.5 (the balance point) until the first refresh
  /// lands or for users Aequus does not know.
  [[nodiscard]] double fairshare_factor(const std::string& grid_user);

  /// Reverse-map a system user to its grid identity via the site IRS,
  /// caching results for `identity_cache_ttl` seconds.
  [[nodiscard]] std::optional<std::string> resolve_identity(const std::string& system_user);

  /// Report `usage` core-seconds consumed by `grid_user` to the site USS.
  void report_usage(const std::string& grid_user, double usage);

  /// Convenience used by completion plugins: resolve, then report. Returns
  /// false when the identity cannot be resolved (usage is then dropped,
  /// as it would be in a misconfigured deployment).
  bool report_system_usage(const std::string& system_user, double usage);

  [[nodiscard]] const ClientStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ClientConfig& config() const noexcept { return config_; }

  /// Force a synchronous-style refresh request (normally timer-driven).
  void refresh_fairshare_table();

 private:
  sim::Simulator& simulator_;
  net::ServiceBus& bus_;
  ClientConfig config_;
  std::map<std::string, double> fairshare_table_;
  struct CachedIdentity {
    std::string grid_user;
    double expires;
  };
  std::map<std::string, CachedIdentity> identity_cache_;
  ClientStats stats_;
  sim::EventHandle refresh_task_;
};

}  // namespace aequus::client
