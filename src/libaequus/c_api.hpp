// C-compatible facade over AequusClient.
//
// Real SLURM plugins and Maui patches are C code; the paper's libaequus
// therefore exposes a C interface. This facade mirrors that boundary:
// opaque handle, plain-C types, no exceptions across the API (failures
// return error codes / sentinel values).
#pragma once

#include <cstddef>

namespace aequus::client {
class AequusClient;
}
namespace aequus::net {
class ServiceBus;
}
namespace aequus::sim {
class Simulator;
}

extern "C" {

/// Opaque client handle.
typedef struct aequus_handle aequus_handle;

/// Create a client bound to `site` (installation name) and `cluster`
/// (local cluster name). Cache TTLs in seconds. Returns nullptr on error.
aequus_handle* aequus_create(aequus::sim::Simulator* simulator, aequus::net::ServiceBus* bus,
                             const char* site, const char* cluster,
                             double fairshare_cache_ttl, double identity_cache_ttl);

/// Destroy a client created by aequus_create. Safe on nullptr.
void aequus_destroy(aequus_handle* handle);

/// Global fairshare factor in [0, 1]; 0.5 when unknown; -1.0 on error.
double aequus_fairshare_factor(aequus_handle* handle, const char* grid_user);

/// Resolve a system user to a grid identity. Writes a NUL-terminated
/// string into `out` (capacity `out_size`). Returns 0 on success, -1 when
/// unresolvable or on error.
int aequus_resolve_identity(aequus_handle* handle, const char* system_user, char* out,
                            std::size_t out_size);

/// Report usage (core-seconds) for a grid user. Returns 0 on success.
int aequus_report_usage(aequus_handle* handle, const char* grid_user, double usage);

/// Resolve-and-report for a system user. Returns 0 on success, -1 when the
/// identity cannot be resolved.
int aequus_report_system_usage(aequus_handle* handle, const char* system_user, double usage);

}  // extern "C"
