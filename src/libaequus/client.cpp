#include "libaequus/client.hpp"

#include "util/logging.hpp"

namespace aequus::client {

AequusClient::AequusClient(sim::Simulator& simulator, net::ServiceBus& bus, ClientConfig config)
    : simulator_(simulator), bus_(bus), config_(std::move(config)) {
  refresh_fairshare_table();
  refresh_task_ =
      simulator_.schedule_periodic(config_.fairshare_cache_ttl, config_.fairshare_cache_ttl,
                                   [this] { refresh_fairshare_table(); });
}

AequusClient::~AequusClient() {
  refresh_task_.cancel();
}

void AequusClient::refresh_fairshare_table() {
  json::Object request;
  request["op"] = "table";
  bus_.request(config_.site, config_.site + ".fcs", json::Value(std::move(request)),
               [this](const json::Value& reply) {
                 try {
                   const auto users = reply.find("users");
                   if (!users) return;
                   for (const auto& [user, value] : users->get().as_object()) {
                     fairshare_table_[user] = value.as_number();
                   }
                   ++stats_.fairshare_refreshes;
                 } catch (const std::exception& e) {
                   AEQ_WARN("libaequus") << "bad fairshare table reply: " << e.what();
                 }
               });
}

double AequusClient::fairshare_factor(const std::string& grid_user) {
  ++stats_.fairshare_lookups;
  const auto it = fairshare_table_.find(grid_user);
  return it != fairshare_table_.end() ? it->second : 0.5;
}

std::optional<std::string> AequusClient::resolve_identity(const std::string& system_user) {
  const double now = simulator_.now();
  const auto it = identity_cache_.find(system_user);
  if (it != identity_cache_.end() && it->second.expires > now) {
    ++stats_.identity_hits;
    return it->second.grid_user;
  }
  ++stats_.identity_misses;
  json::Object request;
  request["op"] = "resolve";
  request["system_user"] = system_user;
  request["cluster"] = config_.cluster;
  // The IRS is co-located with the installation; the paper resolves
  // identities synchronously during the fairshare calculation process.
  const json::Value reply =
      bus_.call(config_.site + ".irs", json::Value(std::move(request)));
  if (reply.get_bool("unknown", false)) return std::nullopt;
  const std::string grid_user = reply.get_string("grid_user");
  if (grid_user.empty()) return std::nullopt;
  identity_cache_[system_user] = {grid_user, now + config_.identity_cache_ttl};
  return grid_user;
}

void AequusClient::report_usage(const std::string& grid_user, double usage) {
  if (usage <= 0.0) return;
  ++stats_.usage_reports;
  json::Object record;
  record["op"] = "report";
  record["user"] = grid_user;
  record["usage"] = usage;
  bus_.send(config_.site, config_.site + ".uss", json::Value(std::move(record)));
}

bool AequusClient::report_system_usage(const std::string& system_user, double usage) {
  const auto grid_user = resolve_identity(system_user);
  if (!grid_user) {
    AEQ_DEBUG("libaequus") << "unresolvable system user " << system_user
                           << "; usage record dropped";
    return false;
  }
  report_usage(*grid_user, usage);
  return true;
}

}  // namespace aequus::client
