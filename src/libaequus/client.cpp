#include "libaequus/client.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace aequus::client {

AequusClient::AequusClient(sim::Simulator& simulator, net::ServiceBus& bus, ClientConfig config,
                           obs::Observability obs)
    : simulator_(simulator), bus_(bus), config_(std::move(config)), obs_(obs) {
  if (obs_.registry != nullptr) {
    const std::string prefix = config_.site + ".client.";
    metrics_.fairshare_lookups = &obs_.registry->counter(prefix + "fairshare_lookups");
    metrics_.fairshare_refreshes = &obs_.registry->counter(prefix + "fairshare_refreshes");
    metrics_.usage_reports = &obs_.registry->counter(prefix + "usage_reports");
    metrics_.identity_hits = &obs_.registry->counter(prefix + "identity_hits");
    metrics_.identity_misses = &obs_.registry->counter(prefix + "identity_misses");
    metrics_.identity_failures = &obs_.registry->counter(prefix + "identity_failures");
    metrics_.refresh_timeouts = &obs_.registry->counter(prefix + "refresh_timeouts");
    metrics_.refresh_retries = &obs_.registry->counter(prefix + "refresh_retries");
    metrics_.refresh_errors = &obs_.registry->counter(prefix + "refresh_errors");
    metrics_.refresh_failures = &obs_.registry->counter(prefix + "refresh_failures");
  }
  if (config_.batching.enabled) {
    delta_log_ = std::make_unique<ingest::DeltaLog>(simulator_, bus_, config_.site,
                                                    config_.site + ".uss", config_.batching, obs_);
  }
  refresh_fairshare_table();
  refresh_task_ =
      simulator_.schedule_periodic(config_.fairshare_cache_ttl, config_.fairshare_cache_ttl,
                                   [this] { refresh_fairshare_table(); });
}

AequusClient::~AequusClient() {
  refresh_task_.cancel();
  timeout_task_.cancel();
  retry_task_.cancel();
}

void AequusClient::trace(obs::EventKind kind, std::string detail, double value,
                         std::uint64_t id) {
  if (obs_.tracer == nullptr || !obs_.tracer->enabled()) return;
  obs_.tracer->record(simulator_.now(), kind, config_.site, "client", std::move(detail), value,
                      id);
}

bool AequusClient::stale(double max_age) const noexcept {
  if (last_refresh_time_ < 0.0) return true;
  return simulator_.now() - last_refresh_time_ > max_age;
}

double AequusClient::backoff_delay(int attempt) const noexcept {
  const double delay =
      config_.backoff_base * std::pow(config_.backoff_multiplier, attempt);
  return std::clamp(delay, 0.0, config_.backoff_max);
}

void AequusClient::end_client_span(obs::SpanContext& span, std::string detail,
                                   double value) {
  if (span.valid() && obs_.tracer != nullptr) {
    obs_.tracer->end_span(simulator_.now(), span, config_.site, "client",
                          std::move(detail), value);
  }
  span = obs::SpanContext{};
}

void AequusClient::refresh_fairshare_table() {
  // A new cycle supersedes any in-flight attempt or pending retry.
  timeout_task_.cancel();
  retry_task_.cancel();
  end_client_span(attempt_span_, "superseded");
  end_client_span(refresh_span_, "superseded");
  if (tracing()) {
    refresh_span_ =
        obs_.tracer->begin_span(simulator_.now(), config_.site, "client", "refresh");
  }
  start_refresh(0);
}

void AequusClient::start_refresh(int attempt) {
  const std::uint64_t generation = ++refresh_generation_;
  const double sent_at = simulator_.now();
  if (tracing()) {
    attempt_span_ = obs_.tracer->begin_child(sent_at, refresh_span_, config_.site, "client",
                                             "attempt:" + std::to_string(attempt));
  }
  // The bus request below inherits the attempt span, so each retry's rpc
  // (and its retransmitted legs) hangs under its own "attempt:<n>" child.
  obs::SpanScope span_scope(obs_.tracer, attempt_span_);
  if (config_.request_timeout > 0.0) {
    timeout_task_ = simulator_.schedule_after(
        config_.request_timeout, [this, generation, attempt] {
          if (generation != refresh_generation_) return;
          ++stats_.refresh_timeouts;
          obs::bump(metrics_.refresh_timeouts);
          refresh_attempt_failed(attempt);
        });
  }
  json::Object request;
  request["op"] = "table";
  bus_.request(
      config_.site, config_.site + ".fcs", json::Value(std::move(request)),
      [this, generation, sent_at](const json::Value& reply) {
        if (generation != refresh_generation_) return;  // superseded or timed out
        timeout_task_.cancel();
        ++refresh_generation_;  // retire this attempt (duplicates become stale)
        try {
          const auto users = reply.find("users");
          if (!users) return;
          for (const auto& [user, value] : users->get().as_object()) {
            fairshare_table_[user] = value.as_number();
          }
          snapshot_ = core::FairshareSnapshot::with_factors(
              std::make_shared<core::FairshareSnapshot>(nullptr, ++snapshot_generation_,
                                                        core::kDefaultResolution, 0),
              {}, fairshare_table_);
          ++stats_.fairshare_refreshes;
          obs::bump(metrics_.fairshare_refreshes);
          last_refresh_time_ = simulator_.now();
          const double elapsed = simulator_.now() - sent_at;
          end_client_span(attempt_span_, "ok", elapsed);
          end_client_span(refresh_span_, "ok", elapsed);
        } catch (const std::exception& e) {
          AEQ_WARN("libaequus") << "bad fairshare table reply: " << e.what();
        }
      },
      [this, generation, attempt](const json::Value& error) {
        if (generation != refresh_generation_) return;
        timeout_task_.cancel();
        ++stats_.refresh_errors;
        obs::bump(metrics_.refresh_errors);
        AEQ_DEBUG("libaequus") << config_.site << ": fairshare refresh bounced: "
                               << error.get_string("error", "unknown");
        refresh_attempt_failed(attempt);
      });
}

void AequusClient::refresh_attempt_failed(int attempt) {
  ++refresh_generation_;  // a late reply to the failed attempt is stale
  end_client_span(attempt_span_, "failed");
  if (attempt >= config_.max_retries) {
    ++stats_.refresh_failures;
    obs::bump(metrics_.refresh_failures);
    {
      obs::SpanScope scope(obs_.tracer, refresh_span_);
      trace(obs::EventKind::kCacheStaleFallback, "fairshare_table",
            last_refresh_time_ >= 0.0 ? simulator_.now() - last_refresh_time_ : -1.0);
    }
    end_client_span(refresh_span_, "stale_fallback");
    AEQ_DEBUG("libaequus") << config_.site
                           << ": fairshare refresh retries exhausted; serving stale table";
    return;  // stale-cache fallback until the next periodic cycle
  }
  retry_task_ = simulator_.schedule_after(backoff_delay(attempt), [this, attempt] {
    ++stats_.refresh_retries;
    obs::bump(metrics_.refresh_retries);
    start_refresh(attempt + 1);
  });
}

double AequusClient::fairshare_factor(const std::string& grid_user) {
  ++stats_.fairshare_lookups;
  obs::bump(metrics_.fairshare_lookups);
  // Served from the published snapshot: same values a snapshot() reader
  // sees, neutral before the first refresh or for unknown users.
  return snapshot_ != nullptr ? snapshot_->factor_for(grid_user) : core::kNeutralFactor;
}

std::optional<std::string> AequusClient::resolve_identity(const std::string& system_user) {
  const double now = simulator_.now();
  const auto it = identity_cache_.find(system_user);
  if (it != identity_cache_.end() && it->second.expires > now) {
    ++stats_.identity_hits;
    obs::bump(metrics_.identity_hits);
    trace(obs::EventKind::kCacheHit, "identity:" + system_user);
    return it->second.grid_user;
  }
  ++stats_.identity_misses;
  obs::bump(metrics_.identity_misses);
  trace(obs::EventKind::kCacheMiss, "identity:" + system_user);
  json::Object request;
  request["op"] = "resolve";
  request["system_user"] = system_user;
  request["cluster"] = config_.cluster;
  // The IRS is co-located with the installation; the paper resolves
  // identities synchronously during the fairshare calculation process.
  // A crashed IRS must not take the scheduler down with it: fall back to
  // "unresolvable" and let the caller drop or retry the record.
  json::Value reply;
  try {
    reply = bus_.call(config_.site + ".irs", json::Value(std::move(request)));
  } catch (const std::exception& e) {
    ++stats_.identity_failures;
    obs::bump(metrics_.identity_failures);
    AEQ_DEBUG("libaequus") << config_.site << ": identity lookup failed: " << e.what();
    return std::nullopt;
  }
  if (reply.get_bool("unknown", false)) return std::nullopt;
  const std::string grid_user = reply.get_string("grid_user");
  if (grid_user.empty()) return std::nullopt;
  identity_cache_[system_user] = {grid_user, now + config_.identity_cache_ttl};
  return grid_user;
}

void AequusClient::report_usage(const std::string& grid_user, double usage) {
  if (usage <= 0.0) return;
  ++stats_.usage_reports;
  obs::bump(metrics_.usage_reports);
  obs::SpanContext span;
  if (tracing()) {
    span = obs_.tracer->begin_span(simulator_.now(), config_.site, "client",
                                   "report_usage:" + grid_user);
  }
  obs::SpanScope scope(obs_.tracer, span);
  if (delta_log_ != nullptr) {
    // Batched path: the record joins the site's delta log and ships on
    // cadence; the batch's own span covers the eventual bus send.
    delta_log_->append(grid_user, usage);
  } else {
    json::Object record;
    record["op"] = "report";
    record["user"] = grid_user;
    record["usage"] = usage;
    bus_.send(config_.site, config_.site + ".uss", json::Value(std::move(record)));
  }
  end_client_span(span, {}, usage);
}

bool AequusClient::report_system_usage(const std::string& system_user, double usage) {
  const auto grid_user = resolve_identity(system_user);
  if (!grid_user) {
    AEQ_DEBUG("libaequus") << "unresolvable system user " << system_user
                           << "; usage record dropped";
    return false;
  }
  report_usage(*grid_user, usage);
  return true;
}

}  // namespace aequus::client
