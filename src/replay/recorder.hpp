// FlightRecorder: the always-on bus tap (§ DESIGN.md 6i).
//
// A FlightRecorder attaches to a net::ServiceBus as its BusTap and copies
// every one-way SendObservation into an owning Envelope ring. The ring is
// capacity-capped like the obs::Tracer event ring: when full, the oldest
// envelope is evicted and counted — once in `dropped()`, and once in the
// `replay.recorder_dropped` registry counter when a registry is attached.
// Drops are cap-dependent, not semantics-dependent, so that counter lives
// in the determinism fingerprints' excluded set (see replayer.hpp): the
// same run recorded at different cap sizes fingerprints identically.
//
// The recorder is passive by the BusTap contract — it reads the
// observation, copies strings, and never touches the bus or any RNG — so
// attaching one does not perturb the experiment it records.
#pragma once

#include <cstdint>
#include <deque>

#include "replay/log.hpp"

namespace aequus::obs {
class Registry;
}

namespace aequus::net {
class ServiceBus;
}

namespace aequus::replay {

class FlightRecorder : public net::BusTap {
 public:
  /// `capacity` caps the envelope ring; 0 (default) means unbounded.
  explicit FlightRecorder(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Attach as `bus`'s tap. When `registry` is non-null the
  /// `replay.recorder_dropped` counter is registered immediately (so it
  /// appears in snapshots even at zero) and mirrors eviction counts.
  void attach(net::ServiceBus& bus, obs::Registry* registry = nullptr);

  /// Detach from `bus` if this recorder is its current tap.
  void detach(net::ServiceBus& bus);

  void on_send(const net::SendObservation& observation) override;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return envelopes_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] const std::deque<Envelope>& envelopes() const noexcept { return envelopes_; }

  /// Move the recording out as an EnvelopeLog carrying `meta` and the drop
  /// count; the recorder is left empty (drop count reset) and can keep
  /// recording. The log's fingerprint_hash is left empty — computing it
  /// is the replayer's job.
  [[nodiscard]] EnvelopeLog take_log(json::Value meta = json::Value(json::Object{}));

 private:
  std::size_t capacity_;
  std::deque<Envelope> envelopes_;
  std::uint64_t dropped_ = 0;
  obs::Counter* dropped_counter_ = nullptr;
};

}  // namespace aequus::replay
