#include "replay/replayer.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <utility>

#include "core/engine.hpp"
#include "core/policy.hpp"
#include "net/service_bus.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"

namespace aequus::replay {

namespace {

/// Collect the grid users one envelope's payload touches.
void users_of_payload(const json::Value& payload, std::set<std::string>& users) {
  if (!payload.is_object()) return;
  const std::string op = payload.get_string("op", "");
  if (op == "report") {
    const std::string user = payload.get_string("user", "");
    if (!user.empty()) users.insert(user);
  } else if (op == "report_batch") {
    const auto deltas = payload.find("deltas");
    if (!deltas || !deltas->get().is_array()) return;
    for (const json::Value& delta : deltas->get().as_array()) {
      if (delta.is_array() && delta.size() >= 1 && delta.at(0).is_string()) {
        users.insert(delta.at(0).as_string());
      }
    }
  }
}

json::Value parse_payload(const Envelope& envelope, std::size_t index) {
  std::optional<json::Value> payload = json::try_parse(envelope.payload);
  if (!payload) {
    throw LogError(util::format("corrupt log: envelope %zu payload is not valid JSON", index));
  }
  return *std::move(payload);
}

std::vector<std::string> sorted_unique(std::vector<std::string> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

}  // namespace

std::vector<std::string> BusReplayer::users_of(const EnvelopeLog& log) {
  std::set<std::string> users;
  for (std::size_t i = 0; i < log.envelopes.size(); ++i) {
    users_of_payload(parse_payload(log.envelopes[i], i), users);
  }
  return {users.begin(), users.end()};
}

std::vector<std::string> BusReplayer::sites_of(const EnvelopeLog& log) {
  std::set<std::string> sites;
  for (const Envelope& envelope : log.envelopes) {
    std::string site = net::ServiceBus::site_of(envelope.address);
    if (!site.empty()) sites.insert(std::move(site));
  }
  return {sites.begin(), sites.end()};
}

const std::vector<std::string>& BusReplayer::fingerprint_excluded_counters() {
  // Cap-dependent (ring evictions) or observational-only (divergence
  // verdicts, trace drops): none of these may perturb a state fingerprint.
  static const std::vector<std::string> kExcluded = {
      "replay.recorder_dropped",
      "replay.divergences",
      "trace.dropped_events",
  };
  return kExcluded;
}

ReplayResult BusReplayer::replay(const EnvelopeLog& log) const {
  const auto wall_start = std::chrono::steady_clock::now();

  // Stack shape comes from the FULL log (or the explicit overrides) so
  // prefix replays of one log share policy, sites, and registered
  // counters — only the traffic fed differs.
  const std::vector<std::string> users =
      options_.users.empty() ? users_of(log) : sorted_unique(options_.users);
  const std::vector<std::string> sites =
      options_.sites.empty() ? sites_of(log) : sorted_unique(options_.sites);
  services::UssConfig uss_config = options_.uss;
  if (log.meta.is_object()) {
    const double meta_width = log.meta.get_number("uss_bin_width", 0.0);
    if (meta_width > 0.0) uss_config.bin_width = meta_width;
  }

  sim::Simulator simulator;
  net::ServiceBus bus(simulator);
  obs::Registry registry;
  bus.attach_observability({&registry, nullptr});
  obs::Counter& envelopes_counter = registry.counter("replay.envelopes");
  obs::Counter& dropped_counter = registry.counter("replay.dropped");
  (void)registry.counter("replay.divergences");  // register: snapshots always carry it

  std::vector<std::unique_ptr<services::Uss>> stack;
  stack.reserve(sites.size());
  for (const std::string& site : sites) {
    stack.push_back(std::make_unique<services::Uss>(simulator, bus, site, uss_config,
                                                    obs::Observability{&registry, nullptr}));
  }

  ReplayResult result;
  const std::size_t considered = std::min(options_.prefix, log.envelopes.size());
  double last_arrival = 0.0;
  for (std::size_t i = 0; i < considered; ++i) {
    const Envelope& envelope = log.envelopes[i];
    envelopes_counter.inc();
    ++result.envelopes;
    if (!envelope.delivered() || !bus.bound(envelope.address)) {
      dropped_counter.inc();
      ++result.dropped;
      continue;
    }
    json::Value payload = parse_payload(envelope, i);
    if (!payload.is_object()) {
      dropped_counter.inc();
      ++result.dropped;
      continue;
    }
    last_arrival = std::max(last_arrival, envelope.delivered_at);
    if (envelope.duplicated) {
      last_arrival = std::max(last_arrival, envelope.duplicate_delivered_at);
    }
    if (options_.preserve_spacing) {
      // Primary then duplicate, scheduled in log order: the simulator
      // breaks time ties by insertion sequence, which reproduces the
      // original arrival interleaving.
      const std::string address = envelope.address;
      simulator.schedule_at(envelope.delivered_at, [&bus, address, payload] {
        (void)bus.call(address, payload);
      });
      if (envelope.duplicated) {
        simulator.schedule_at(envelope.duplicate_delivered_at, [&bus, address, payload] {
          (void)bus.call(address, payload);
        });
        ++result.applied;
      }
      ++result.applied;
    } else {
      (void)bus.call(envelope.address, payload);
      ++result.applied;
      if (envelope.duplicated) {
        (void)bus.call(envelope.address, payload);
        ++result.applied;
      }
    }
  }
  simulator.run_all();

  // Fold per-site histograms into one engine: sorted site -> sorted user
  // -> bin order, a fixed summation order so the render is byte-stable.
  core::FairshareEngine engine;
  core::PolicyTree policy;
  for (const std::string& user : users) policy.set_share("/" + user, 1.0);
  engine.set_policy(policy);
  for (const auto& uss : stack) {
    for (const auto& [user, bins] : uss->histograms()) {
      for (const auto& [bin_time, amount] : bins) {
        if (amount > 0.0) engine.apply_usage("/" + user, amount, bin_time);
      }
    }
  }
  engine.set_decay_epoch(last_arrival);
  const core::FairshareSnapshotPtr snapshot = engine.snapshot();

  result.fingerprint_comparable = options_.preserve_spacing;
  result.snapshot = registry.snapshot();

  std::string fp;
  fp += "aequus-replay-fingerprint-v1\n";
  fp += util::format("envelopes %llu applied %llu dropped %llu\n",
                     static_cast<unsigned long long>(result.envelopes),
                     static_cast<unsigned long long>(result.applied),
                     static_cast<unsigned long long>(result.dropped));
  fp += util::format("epoch %.17g\n", engine.decay_epoch());
  fp += util::format("generation %llu\n",
                     static_cast<unsigned long long>(snapshot ? snapshot->generation() : 0));
  if (snapshot) {
    for (const std::string& path : snapshot->user_paths()) {
      fp += util::format("factor %s %.17g\n", path.c_str(), snapshot->factor_for(path));
    }
  }
  for (std::size_t i = 0; i < stack.size(); ++i) {
    const services::Uss& uss = *stack[i];
    fp += util::format("uss %s reports %llu batches %llu dupes %llu\n", sites[i].c_str(),
                       static_cast<unsigned long long>(uss.reports_received()),
                       static_cast<unsigned long long>(uss.batches_applied()),
                       static_cast<unsigned long long>(uss.batch_duplicates()));
    for (const auto& [user, bins] : uss.histograms()) {
      for (const auto& [bin_time, amount] : bins) {
        fp += util::format("hist %s %s %.17g %.17g\n", sites[i].c_str(), user.c_str(), bin_time,
                           amount);
      }
    }
  }
  const std::vector<std::string>& excluded = fingerprint_excluded_counters();
  for (const auto& [key, value] : result.snapshot.counters) {
    if (std::find(excluded.begin(), excluded.end(), key) != excluded.end()) continue;
    fp += util::format("counter %s %llu\n", key.c_str(), static_cast<unsigned long long>(value));
  }
  result.fingerprint = std::move(fp);
  result.fingerprint_hash = util::format(
      "%016llx", static_cast<unsigned long long>(util::fnv1a64(result.fingerprint)));

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

VerifyResult BusReplayer::verify(const EnvelopeLog& log) const {
  VerifyResult verdict;
  verdict.result = replay(log);
  verdict.expected_hash = log.fingerprint_hash;
  verdict.comparable = !verdict.expected_hash.empty() && verdict.result.fingerprint_comparable &&
                       options_.prefix >= log.envelopes.size();
  verdict.bit_identical =
      verdict.comparable && verdict.result.fingerprint_hash == verdict.expected_hash;
  if (verdict.comparable && !verdict.bit_identical) {
    // Count on a throwaway registry-free path: the result snapshot is
    // already taken, so expose the divergence in the returned counts.
    verdict.result.snapshot.counters["replay.divergences"] += 1;
  }
  return verdict;
}

}  // namespace aequus::replay
