// Flight-recorder envelope log (§ DESIGN.md 6i).
//
// An EnvelopeLog is the durable form of one run's one-way bus traffic:
// every send/send_batch the ServiceBus accepted, with its payload (the
// exact compact-JSON wire text), addressing, span context, transport
// verdict, and delivery timestamps. One-way sends are the complete
// usage-mutating traffic (requests only *read* state), so a log is a
// sufficient input to reconstruct USS/engine state offline — see
// replayer.hpp.
//
// Binary format (little-endian throughout, "AEQLOG1\n" magic):
//
//   magic[8]            "AEQLOG1\n"
//   u32 meta_len        length of the meta JSON text
//   meta[meta_len]      free-form JSON object (scenario, seed, ...)
//   repeated records:
//     u32 record_len    > 0; length of the encoded record
//     record[record_len]
//   u32 0               end marker (a zero-length record)
//   u32 footer_len
//   footer[footer_len]  JSON object: {"envelopes": n, "recorder_dropped":
//                       d, "fingerprint_hash": "<16 hex>", ...}
//
// One record encodes, in order: sent_at f64, delivered_at f64,
// duplicate_delivered_at f64, trace_id u64, span_id u64, parent_span_id
// u64, verdict u8 (net::SendVerdict wire values), flags u8 (bit0 batch,
// bit1 duplicated), record_count u32, then from_site / address / payload
// each as u32 length + bytes. Any EOF before the end marker or footer, a
// bad magic, or an oversized length field raises LogError — a truncated
// recording is an error with an address, never silently short data.
//
// The JSONL debug mode is the same data as text: a header line
// {"schema": "aequus-envelope-log-v1", "meta": {...}}, one object per
// envelope, and a final {"footer": {...}} line. Binary and JSONL round
// trip losslessly; load_log() auto-detects the format by the magic.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "net/service_bus.hpp"
#include "obs/trace.hpp"

namespace aequus::replay {

/// Malformed/truncated log data: one line naming what broke where.
struct LogError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One captured one-way envelope (owning copy of a net::SendObservation).
struct Envelope {
  double sent_at = 0.0;
  double delivered_at = 0.0;            ///< == sent_at when dropped
  double duplicate_delivered_at = 0.0;  ///< 0 unless duplicated
  net::SendVerdict verdict = net::SendVerdict::kDelivered;
  bool batch = false;
  bool duplicated = false;
  std::uint32_t record_count = 0;
  obs::SpanContext span;
  std::string from_site;
  std::string address;
  std::string payload;  ///< compact JSON wire text

  [[nodiscard]] bool delivered() const noexcept {
    return verdict == net::SendVerdict::kDelivered;
  }
  bool operator==(const Envelope&) const = default;

  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static Envelope from_json(const json::Value& value);
};

/// A complete recording: meta, envelope stream, and footer facts.
struct EnvelopeLog {
  json::Value meta;  ///< free-form object ({} when none)
  std::vector<Envelope> envelopes;
  /// Envelopes the recorder ring evicted before this log was taken. Cap-
  /// dependent, not semantics-dependent: excluded from fingerprints.
  std::uint64_t recorder_dropped = 0;
  /// fnv1a64 hash (16 hex chars) of the replay state fingerprint computed
  /// at record time; empty when never computed. bus_replay recomputes it
  /// to check record→replay bit-identity.
  std::string fingerprint_hash;

  [[nodiscard]] std::size_t size() const noexcept { return envelopes.size(); }
  [[nodiscard]] bool empty() const noexcept { return envelopes.empty(); }
};

enum class LogFormat : std::uint8_t { kBinary, kJsonl };

void write_binary(const EnvelopeLog& log, std::ostream& out);
[[nodiscard]] EnvelopeLog read_binary(std::istream& in);

void write_jsonl(const EnvelopeLog& log, std::ostream& out);
[[nodiscard]] EnvelopeLog read_jsonl(std::istream& in);

/// Write `log` to `path` in `format` (parent directories must exist).
void save_log(const std::string& path, const EnvelopeLog& log,
              LogFormat format = LogFormat::kBinary);

/// Read a log from `path`, auto-detecting binary vs JSONL by the magic.
[[nodiscard]] EnvelopeLog load_log(const std::string& path);

}  // namespace aequus::replay
