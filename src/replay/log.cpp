#include "replay/log.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace aequus::replay {

namespace {

constexpr char kMagic[8] = {'A', 'E', 'Q', 'L', 'O', 'G', '1', '\n'};
constexpr std::uint8_t kFlagBatch = 0x01;
constexpr std::uint8_t kFlagDuplicated = 0x02;
/// Sanity bound on every length field: a corrupt length must fail as
/// "corrupt", not as a multi-gigabyte allocation.
constexpr std::uint32_t kMaxChunk = 1u << 30;

// --- little-endian packing (explicit bytes: host-endianness independent) --

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

void put_bytes(std::string& out, const std::string& bytes) {
  put_u32(out, static_cast<std::uint32_t>(bytes.size()));
  out.append(bytes);
}

/// Cursor over one decoded record body with bounds-checked reads.
struct Reader {
  const std::string& data;
  std::size_t pos = 0;
  const char* what;  ///< context for error messages

  void need(std::size_t n) const {
    if (pos + n > data.size()) {
      throw LogError(util::format("corrupt log: %s truncated at byte %zu", what, pos));
    }
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos + i])) << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos + i])) << (8 * i);
    }
    pos += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data[pos++]);
  }
  std::string bytes() {
    const std::uint32_t len = u32();
    if (len > kMaxChunk) {
      throw LogError(util::format("corrupt log: %s string length %u exceeds bound", what, len));
    }
    need(len);
    std::string out = data.substr(pos, len);
    pos += len;
    return out;
  }
};

std::string encode_record(const Envelope& envelope) {
  std::string out;
  out.reserve(64 + envelope.from_site.size() + envelope.address.size() +
              envelope.payload.size());
  put_f64(out, envelope.sent_at);
  put_f64(out, envelope.delivered_at);
  put_f64(out, envelope.duplicate_delivered_at);
  put_u64(out, envelope.span.trace_id);
  put_u64(out, envelope.span.span_id);
  put_u64(out, envelope.span.parent_span_id);
  out.push_back(static_cast<char>(envelope.verdict));
  std::uint8_t flags = 0;
  if (envelope.batch) flags |= kFlagBatch;
  if (envelope.duplicated) flags |= kFlagDuplicated;
  out.push_back(static_cast<char>(flags));
  put_u32(out, envelope.record_count);
  put_bytes(out, envelope.from_site);
  put_bytes(out, envelope.address);
  put_bytes(out, envelope.payload);
  return out;
}

Envelope decode_record(const std::string& body, std::size_t index) {
  const std::string what = util::format("record %zu", index);
  Reader reader{body, 0, what.c_str()};
  Envelope envelope;
  envelope.sent_at = reader.f64();
  envelope.delivered_at = reader.f64();
  envelope.duplicate_delivered_at = reader.f64();
  envelope.span.trace_id = reader.u64();
  envelope.span.span_id = reader.u64();
  envelope.span.parent_span_id = reader.u64();
  const std::uint8_t verdict = reader.u8();
  if (verdict > static_cast<std::uint8_t>(net::SendVerdict::kDroppedLoss)) {
    throw LogError(util::format("corrupt log: record %zu has unknown verdict %u", index,
                                static_cast<unsigned>(verdict)));
  }
  envelope.verdict = static_cast<net::SendVerdict>(verdict);
  const std::uint8_t flags = reader.u8();
  envelope.batch = (flags & kFlagBatch) != 0;
  envelope.duplicated = (flags & kFlagDuplicated) != 0;
  envelope.record_count = reader.u32();
  envelope.from_site = reader.bytes();
  envelope.address = reader.bytes();
  envelope.payload = reader.bytes();
  if (reader.pos != body.size()) {
    throw LogError(util::format("corrupt log: record %zu has %zu trailing bytes", index,
                                body.size() - reader.pos));
  }
  return envelope;
}

json::Value footer_json(const EnvelopeLog& log) {
  json::Object footer;
  footer["envelopes"] = static_cast<double>(log.envelopes.size());
  footer["recorder_dropped"] = static_cast<double>(log.recorder_dropped);
  footer["fingerprint_hash"] = log.fingerprint_hash;
  return json::Value(std::move(footer));
}

void apply_footer(EnvelopeLog& log, const json::Value& footer, const char* origin) {
  if (!footer.is_object()) throw LogError(std::string(origin) + ": footer is not an object");
  const double declared = footer.get_number("envelopes", -1.0);
  if (declared >= 0.0 &&
      static_cast<std::size_t>(declared) != log.envelopes.size()) {
    throw LogError(util::format("%s: footer declares %zu envelopes but %zu were read", origin,
                                static_cast<std::size_t>(declared), log.envelopes.size()));
  }
  log.recorder_dropped =
      static_cast<std::uint64_t>(footer.get_number("recorder_dropped", 0.0));
  log.fingerprint_hash = footer.get_string("fingerprint_hash", "");
}

std::uint32_t read_u32_stream(std::istream& in, const char* what) {
  char raw[4];
  in.read(raw, 4);
  if (in.gcount() != 4) {
    throw LogError(util::format("truncated log: EOF while reading %s", what));
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(raw[i])) << (8 * i);
  }
  return v;
}

std::string read_chunk(std::istream& in, std::uint32_t len, const char* what) {
  if (len > kMaxChunk) {
    throw LogError(util::format("corrupt log: %s length %u exceeds bound", what, len));
  }
  std::string chunk(len, '\0');
  in.read(chunk.data(), static_cast<std::streamsize>(len));
  if (static_cast<std::uint32_t>(in.gcount()) != len) {
    throw LogError(util::format("truncated log: EOF inside %s", what));
  }
  return chunk;
}

json::Value parse_json_chunk(const std::string& text, const char* what) {
  std::optional<json::Value> value = json::try_parse(text);
  if (!value) throw LogError(util::format("corrupt log: %s is not valid JSON", what));
  return *std::move(value);
}

}  // namespace

json::Value Envelope::to_json() const {
  json::Object out;
  out["sent_at"] = sent_at;
  out["delivered_at"] = delivered_at;
  if (duplicated) out["duplicate_delivered_at"] = duplicate_delivered_at;
  out["verdict"] = std::string(net::to_string(verdict));
  if (batch) out["batch"] = true;
  if (duplicated) out["duplicated"] = true;
  if (record_count > 0) out["record_count"] = static_cast<double>(record_count);
  if (span.valid()) {
    json::Object span_json;
    // Ids are rendered as hex strings: trace ids use 48 bits but span ids
    // are full u64, which a JSON double cannot hold exactly.
    span_json["trace_id"] = util::format("%llx", static_cast<unsigned long long>(span.trace_id));
    span_json["span_id"] = util::format("%llx", static_cast<unsigned long long>(span.span_id));
    span_json["parent_span_id"] =
        util::format("%llx", static_cast<unsigned long long>(span.parent_span_id));
    out["span"] = json::Value(std::move(span_json));
  }
  out["from_site"] = from_site;
  out["address"] = address;
  out["payload"] = payload;
  return json::Value(std::move(out));
}

Envelope Envelope::from_json(const json::Value& value) {
  if (!value.is_object()) throw LogError("envelope line is not a JSON object");
  Envelope envelope;
  envelope.sent_at = value.get_number("sent_at");
  envelope.delivered_at = value.get_number("delivered_at");
  envelope.duplicate_delivered_at = value.get_number("duplicate_delivered_at", 0.0);
  const std::string verdict = value.get_string("verdict", "delivered");
  if (!net::send_verdict_from_string(verdict, envelope.verdict)) {
    throw LogError("envelope has unknown verdict '" + verdict + "'");
  }
  envelope.batch = value.get_bool("batch", false);
  envelope.duplicated = value.get_bool("duplicated", false);
  envelope.record_count =
      static_cast<std::uint32_t>(value.get_number("record_count", 0.0));
  if (const auto span = value.find("span")) {
    const json::Value& context = span->get();
    envelope.span.trace_id =
        std::strtoull(context.get_string("trace_id", "0").c_str(), nullptr, 16);
    envelope.span.span_id =
        std::strtoull(context.get_string("span_id", "0").c_str(), nullptr, 16);
    envelope.span.parent_span_id =
        std::strtoull(context.get_string("parent_span_id", "0").c_str(), nullptr, 16);
  }
  envelope.from_site = value.get_string("from_site");
  envelope.address = value.get_string("address");
  envelope.payload = value.get_string("payload");
  return envelope;
}

void write_binary(const EnvelopeLog& log, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  std::string header;
  const std::string meta = (log.meta.is_object() ? log.meta : json::Value(json::Object{})).dump();
  put_bytes(header, meta);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  for (const Envelope& envelope : log.envelopes) {
    const std::string body = encode_record(envelope);
    std::string framed;
    put_u32(framed, static_cast<std::uint32_t>(body.size()));
    framed.append(body);
    out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  }
  std::string tail;
  put_u32(tail, 0);  // end marker
  put_bytes(tail, footer_json(log).dump());
  out.write(tail.data(), static_cast<std::streamsize>(tail.size()));
}

EnvelopeLog read_binary(std::istream& in) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(kMagic));
  if (in.gcount() != sizeof(kMagic) || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw LogError("not an aequus envelope log (bad magic)");
  }
  EnvelopeLog log;
  log.meta = parse_json_chunk(read_chunk(in, read_u32_stream(in, "meta length"), "meta"),
                              "meta");
  for (;;) {
    const std::uint32_t len = read_u32_stream(in, "record length");
    if (len == 0) break;  // end marker
    const std::string body = read_chunk(in, len, "record");
    log.envelopes.push_back(decode_record(body, log.envelopes.size()));
  }
  apply_footer(log,
               parse_json_chunk(
                   read_chunk(in, read_u32_stream(in, "footer length"), "footer"), "footer"),
               "binary log");
  return log;
}

void write_jsonl(const EnvelopeLog& log, std::ostream& out) {
  json::Object header;
  header["schema"] = "aequus-envelope-log-v1";
  header["meta"] = log.meta.is_object() ? log.meta : json::Value(json::Object{});
  out << json::Value(std::move(header)).dump() << "\n";
  for (const Envelope& envelope : log.envelopes) out << envelope.to_json().dump() << "\n";
  json::Object tail;
  tail["footer"] = footer_json(log);
  out << json::Value(std::move(tail)).dump() << "\n";
}

EnvelopeLog read_jsonl(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw LogError("truncated log: empty JSONL stream");
  const json::Value header = parse_json_chunk(line, "JSONL header");
  if (!header.is_object() || header.get_string("schema", "") != "aequus-envelope-log-v1") {
    throw LogError("not an aequus envelope log (JSONL header schema mismatch)");
  }
  EnvelopeLog log;
  if (const auto meta = header.find("meta")) log.meta = meta->get();
  bool saw_footer = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const json::Value value = parse_json_chunk(
        line, util::format("JSONL line %zu", log.envelopes.size() + 2).c_str());
    if (value.is_object()) {
      if (const auto footer = value.find("footer")) {
        apply_footer(log, footer->get(), "JSONL log");
        saw_footer = true;
        break;
      }
    }
    log.envelopes.push_back(Envelope::from_json(value));
  }
  if (!saw_footer) throw LogError("truncated log: JSONL stream has no footer line");
  return log;
}

void save_log(const std::string& path, const EnvelopeLog& log, LogFormat format) {
  std::ofstream out(path, format == LogFormat::kBinary
                              ? std::ios::binary | std::ios::trunc
                              : std::ios::trunc);
  if (!out) throw LogError("cannot write log file '" + path + "'");
  if (format == LogFormat::kBinary) {
    write_binary(log, out);
  } else {
    write_jsonl(log, out);
  }
  out.flush();
  if (!out) throw LogError("write failed for log file '" + path + "'");
}

EnvelopeLog load_log(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw LogError("cannot open log file '" + path + "'");
  char first = '\0';
  in.get(first);
  in.seekg(0);
  if (first == kMagic[0]) {
    // Could still be JSONL? JSONL starts with '{'. 'A' unambiguously
    // selects binary.
    return read_binary(in);
  }
  if (first == '{') return read_jsonl(in);
  throw LogError("not an aequus envelope log: '" + path + "'");
}

}  // namespace aequus::replay
