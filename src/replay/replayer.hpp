// BusReplayer: feed a recorded envelope log back into a live USS/engine
// stack without the simulator that produced it (§ DESIGN.md 6i).
//
// One-way bus traffic is the complete usage-mutating input of a run
// (requests only read state), so a replay can rebuild the distributed
// usage state from the log alone: a private stack of one services::Uss
// per destination site plus one core::FairshareEngine, fed each delivered
// envelope at its *recorded* delivery timestamp over a fresh
// sim::Simulator (preserve_spacing, the default), or inline in log order
// (as-fast-as-possible). Timed replay is bit-exact: the USS bins per-RPC
// reports by now(), and the replay clock hits the recorded arrival times
// exactly, so the histograms — and everything derived from them — come
// out byte-identical run after run. AFAP replay collapses the clock, so
// its fingerprint is flagged non-comparable.
//
// After the feed, per-site histograms are folded into the engine
// (sorted site → sorted user → bin order), the decay epoch is set to the
// last recorded arrival, and the state is rendered as a multi-line
// determinism fingerprint (every double as %.17g, the repo-wide
// byte-exactness convention). The fnv1a64 hash of that text is what log
// footers carry; verify() recomputes it to check record→replay
// bit-identity.
//
// Replay-side counters live on the stack's registry: `replay.envelopes`
// (considered), `replay.dropped` (non-delivered verdicts plus envelopes
// with no replay endpoint), `replay.divergences` (verify mismatches).
// Cap-dependent and meta counters — `replay.recorder_dropped`,
// `replay.divergences`, `trace.dropped_events` — are excluded from the
// fingerprint: the same traffic recorded at a different ring cap (or
// verified twice) must fingerprint identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "replay/log.hpp"
#include "services/uss.hpp"

namespace aequus::replay {

struct ReplayOptions {
  /// Deliver each envelope at its recorded simulated arrival time
  /// (default). false = as-fast-as-possible: apply in log order with a
  /// collapsed clock; the result's fingerprint is not comparable to a
  /// timed one.
  bool preserve_spacing = true;
  /// Replay only the first `prefix` envelopes (npos = all). The stack is
  /// still built from the *full* log, so prefix fingerprints of the same
  /// log are comparable to each other — the bisection invariant.
  std::size_t prefix = static_cast<std::size_t>(-1);
  /// Override the user set (sorted, deduped by the replayer). The
  /// bisector passes the union over both logs so both stacks carry the
  /// same flat policy. Empty = derive from the log.
  std::vector<std::string> users;
  /// Override the destination-site set, same contract as `users`.
  std::vector<std::string> sites;
  /// Replay-side USS config; meta key "uss_bin_width" (written by the
  /// scenario recorder) overrides bin_width when present.
  services::UssConfig uss;
};

struct ReplayResult {
  std::uint64_t envelopes = 0;  ///< considered (prefix-limited)
  std::uint64_t applied = 0;    ///< applications (duplicates count twice)
  std::uint64_t dropped = 0;
  bool fingerprint_comparable = true;  ///< false for AFAP replays
  std::string fingerprint;             ///< multi-line state render
  std::string fingerprint_hash;        ///< fnv1a64 of `fingerprint`, 16 hex
  obs::Snapshot snapshot;              ///< replay stack registry export
  double wall_seconds = 0.0;
};

struct VerifyResult {
  ReplayResult result;
  std::string expected_hash;  ///< from the log footer ("" = unverifiable)
  bool comparable = false;    ///< footer hash present and replay was timed
  bool bit_identical = false;
};

class BusReplayer {
 public:
  explicit BusReplayer(ReplayOptions options = {}) : options_(std::move(options)) {}

  /// Replay `log` through a fresh stack. Throws LogError on undecodable
  /// payloads (a recorded payload is wire JSON by construction).
  [[nodiscard]] ReplayResult replay(const EnvelopeLog& log) const;

  /// Replay and compare against the footer fingerprint hash.
  [[nodiscard]] VerifyResult verify(const EnvelopeLog& log) const;

  [[nodiscard]] const ReplayOptions& options() const noexcept { return options_; }

  /// Sorted unique grid users mentioned by any envelope payload (per-RPC
  /// "report" and batched "report_batch" deltas alike).
  [[nodiscard]] static std::vector<std::string> users_of(const EnvelopeLog& log);

  /// Sorted unique destination sites over all envelope addresses.
  [[nodiscard]] static std::vector<std::string> sites_of(const EnvelopeLog& log);

  /// Counter keys excluded from replay fingerprints (cap-dependent or
  /// meta-observational).
  [[nodiscard]] static const std::vector<std::string>& fingerprint_excluded_counters();

 private:
  ReplayOptions options_;
};

}  // namespace aequus::replay
