#include "replay/bisect.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace aequus::replay {

namespace {

/// Union of two sorted unique vectors (stack-shape inputs for both sides).
std::vector<std::string> merged(std::vector<std::string> a, const std::vector<std::string>& b) {
  a.insert(a.end(), b.begin(), b.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  return a;
}

std::vector<Envelope> chain_of(const EnvelopeLog& log, const Envelope& offending) {
  std::vector<Envelope> chain;
  if (!offending.span.valid()) return chain;
  for (const Envelope& envelope : log.envelopes) {
    if (envelope.span.trace_id == offending.span.trace_id) chain.push_back(envelope);
  }
  return chain;
}

}  // namespace

json::Value BisectReport::to_json() const {
  json::Object out;
  out["diverged"] = diverged;
  out["cosmetic_only"] = cosmetic_only;
  out["length_divergence"] = length_divergence;
  out["first_divergence"] = static_cast<double>(first_divergence);
  out["first_record_difference"] = static_cast<double>(first_record_difference);
  out["probes"] = static_cast<double>(probes);
  out["fingerprint_hash_a"] = fingerprint_hash_a;
  out["fingerprint_hash_b"] = fingerprint_hash_b;
  if (diverged) {
    out["envelope_a"] = envelope_a.to_json();
    if (!length_divergence) out["envelope_b"] = envelope_b.to_json();
    json::Array chain;
    for (const Envelope& envelope : span_chain) chain.push_back(envelope.to_json());
    out["span_chain"] = json::Value(std::move(chain));
  }
  return json::Value(std::move(out));
}

BisectReport DivergenceBisector::bisect(const EnvelopeLog& a, const EnvelopeLog& b) const {
  BisectReport report;
  const std::size_t common = std::min(a.size(), b.size());

  // Pre-scan: prefixes up to the first record-level difference replay
  // identically by construction — no probes needed below `low`.
  std::size_t low = 0;
  while (low < common && a.envelopes[low] == b.envelopes[low]) ++low;
  report.first_record_difference = low;

  // Both sides replay over the union stack so pre-divergence prefixes
  // fingerprint identically even when the logs mention different users.
  ReplayOptions base = options_;
  if (base.users.empty()) base.users = merged(BusReplayer::users_of(a), BusReplayer::users_of(b));
  if (base.sites.empty()) base.sites = merged(BusReplayer::sites_of(a), BusReplayer::sites_of(b));

  const auto hash_prefix = [&](const EnvelopeLog& log, std::size_t prefix) {
    ReplayOptions options = base;
    options.prefix = prefix;
    ++report.probes;
    return BusReplayer(options).replay(log).fingerprint_hash;
  };

  if (low == common && a.size() == b.size()) return report;  // identical logs

  report.fingerprint_hash_a = hash_prefix(a, common);
  report.fingerprint_hash_b = hash_prefix(b, common);
  if (report.fingerprint_hash_a == report.fingerprint_hash_b) {
    if (a.size() == b.size()) {
      // Records differ somewhere but no prefix changes state.
      report.cosmetic_only = true;
      report.first_divergence = low;
      return report;
    }
    // Common prefix agrees in full: the first extra envelope diverges.
    report.diverged = true;
    report.length_divergence = true;
    report.first_divergence = common;
    const EnvelopeLog& longer = a.size() > b.size() ? a : b;
    report.envelope_a = longer.envelopes[common];
    report.span_chain = chain_of(longer, report.envelope_a);
    return report;
  }

  // Invariant: fp(low) equal (identical records, identical stacks),
  // fp(high) differs. Binary search the smallest differing prefix.
  std::size_t equal = low;
  std::size_t differs = common;
  while (differs - equal > 1) {
    const std::size_t mid = equal + (differs - equal) / 2;
    if (hash_prefix(a, mid) == hash_prefix(b, mid)) {
      equal = mid;
    } else {
      differs = mid;
    }
  }
  report.diverged = true;
  report.first_divergence = differs - 1;
  report.fingerprint_hash_a = hash_prefix(a, differs);
  report.fingerprint_hash_b = hash_prefix(b, differs);
  report.envelope_a = a.envelopes[differs - 1];
  report.envelope_b = b.envelopes[differs - 1];
  report.span_chain = chain_of(a, report.envelope_a);
  return report;
}

BisectReport DivergenceBisector::bisect_against(
    const EnvelopeLog& a, const std::function<std::string(std::size_t)>& fingerprint_of) const {
  BisectReport report;
  const std::size_t size = a.size();
  report.first_record_difference = size;  // no second record stream to scan

  ReplayOptions base = options_;
  if (base.users.empty()) base.users = BusReplayer::users_of(a);
  if (base.sites.empty()) base.sites = BusReplayer::sites_of(a);

  const auto hash_prefix = [&](std::size_t prefix) {
    ReplayOptions options = base;
    options.prefix = prefix;
    ++report.probes;
    return BusReplayer(options).replay(a).fingerprint_hash;
  };

  report.fingerprint_hash_a = hash_prefix(size);
  report.fingerprint_hash_b = fingerprint_of(size);
  if (report.fingerprint_hash_a == report.fingerprint_hash_b) return report;

  // The empty prefix must agree for the search invariant; when even that
  // differs the oracle's stack shape is wrong and index 0 is the answer.
  std::size_t equal = 0;
  std::size_t differs = size;
  if (hash_prefix(0) != fingerprint_of(0)) {
    differs = 0;
  }
  while (differs - equal > 1) {
    const std::size_t mid = equal + (differs - equal) / 2;
    if (hash_prefix(mid) == fingerprint_of(mid)) {
      equal = mid;
    } else {
      differs = mid;
    }
  }
  report.diverged = true;
  report.first_divergence = differs == 0 ? 0 : differs - 1;
  report.fingerprint_hash_a = hash_prefix(differs);
  report.fingerprint_hash_b = fingerprint_of(differs);
  if (differs > 0) {
    report.envelope_a = a.envelopes[differs - 1];
    report.span_chain = chain_of(a, report.envelope_a);
  }
  return report;
}

}  // namespace aequus::replay
