#include "replay/recorder.hpp"

#include <utility>

#include "net/service_bus.hpp"
#include "obs/metrics.hpp"

namespace aequus::replay {

void FlightRecorder::attach(net::ServiceBus& bus, obs::Registry* registry) {
  if (registry != nullptr) {
    // Register eagerly: the counter shows up in snapshots even when the
    // ring never overflows.
    dropped_counter_ = &registry->counter("replay.recorder_dropped");
  }
  bus.set_tap(this);
}

void FlightRecorder::detach(net::ServiceBus& bus) {
  if (bus.tap() == this) bus.set_tap(nullptr);
}

void FlightRecorder::on_send(const net::SendObservation& observation) {
  if (capacity_ > 0 && envelopes_.size() >= capacity_) {
    envelopes_.pop_front();
    ++dropped_;
    obs::bump(dropped_counter_);
  }
  Envelope envelope;
  envelope.sent_at = observation.sent_at;
  envelope.delivered_at = observation.delivered_at;
  envelope.duplicate_delivered_at = observation.duplicate_delivered_at;
  envelope.verdict = observation.verdict;
  envelope.batch = observation.batch;
  envelope.duplicated = observation.duplicated;
  envelope.record_count = static_cast<std::uint32_t>(observation.record_count);
  envelope.span = observation.span;
  envelope.from_site.assign(observation.from_site);
  envelope.address.assign(observation.address);
  envelope.payload.assign(observation.payload);
  envelopes_.push_back(std::move(envelope));
}

EnvelopeLog FlightRecorder::take_log(json::Value meta) {
  EnvelopeLog log;
  log.meta = std::move(meta);
  log.envelopes.assign(std::make_move_iterator(envelopes_.begin()),
                       std::make_move_iterator(envelopes_.end()));
  log.recorder_dropped = dropped_;
  envelopes_.clear();
  dropped_ = 0;
  return log;
}

}  // namespace aequus::replay
