// DivergenceBisector: find the first envelope whose inclusion makes two
// recordings disagree (§ DESIGN.md 6i).
//
// Given logs A and B, the bisector binary-searches the smallest prefix
// length k such that the replay fingerprints of A[0..k) and B[0..k)
// differ; the offending envelope is index k-1. Both prefixes replay over
// stacks built from the *union* of the two logs' user and site sets, so
// a pre-divergence prefix fingerprints identically on both sides — the
// search invariant. The search leans on monotonicity: USS state is
// additive (reports and idempotent batches only ever accumulate), so
// once a prefix diverges every longer prefix stays diverged.
//
// A cheap record-equality pre-scan bounds the search from below: prefixes
// up to the first byte-different record need no replay at all. Cosmetic
// differences (span ids, timestamps of *dropped* envelopes — anything
// that never reaches state) are detected and reported as such instead of
// as a divergence. When one log is a strict prefix of the other with
// identical state, the divergence is the first extra envelope.
//
// The "one log vs live engine" form takes a fingerprint callback instead
// of a second log: the caller renders its engine's state for a given
// prefix length, and the bisector drives the same search.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "replay/log.hpp"
#include "replay/replayer.hpp"

namespace aequus::replay {

struct BisectReport {
  bool diverged = false;
  /// Records differed but every replayed prefix fingerprinted the same:
  /// the difference never reaches state (span ids, drop timestamps, ...).
  bool cosmetic_only = false;
  /// The divergence is one log simply being longer (state identical over
  /// the common prefix).
  bool length_divergence = false;
  /// 0-based index of the first envelope whose inclusion diverges the
  /// fingerprints (or of the first extra envelope for length divergence).
  std::size_t first_divergence = 0;
  /// First index where the two logs' *records* differ byte-wise
  /// (= common length when they never do).
  std::size_t first_record_difference = 0;
  std::size_t probes = 0;  ///< replays performed by the search
  std::string fingerprint_hash_a;  ///< prefix hashes at the divergence point
  std::string fingerprint_hash_b;
  /// The offending envelope as each log recorded it (envelope_a is also
  /// the report for the single-log form). Default-constructed for length
  /// divergence past the shorter log's end.
  Envelope envelope_a;
  Envelope envelope_b;
  /// Envelopes of log A sharing the offending envelope's trace id, in log
  /// order — the span chain to print alongside the verdict.
  std::vector<Envelope> span_chain;

  [[nodiscard]] json::Value to_json() const;
};

class DivergenceBisector {
 public:
  explicit DivergenceBisector(ReplayOptions options = {}) : options_(std::move(options)) {}

  /// Bisect two recorded logs.
  [[nodiscard]] BisectReport bisect(const EnvelopeLog& a, const EnvelopeLog& b) const;

  /// Bisect log `a` against an external state oracle: `fingerprint_of(k)`
  /// must return the oracle's fingerprint hash for the first k envelopes
  /// (e.g. a live engine replaying its own copy of the traffic). The
  /// oracle sees the same ReplayOptions-derived user/site unions via
  /// options(); record-equality pre-scanning is unavailable, so the
  /// search runs over [0, size].
  [[nodiscard]] BisectReport bisect_against(
      const EnvelopeLog& a, const std::function<std::string(std::size_t)>& fingerprint_of) const;

  [[nodiscard]] const ReplayOptions& options() const noexcept { return options_; }

 private:
  ReplayOptions options_;
};

}  // namespace aequus::replay
