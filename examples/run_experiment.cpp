// Config-driven experiment runner: read a JSON experiment spec, run it
// through the full testbed, print the measurement summary, and optionally
// export the workload as SWF/CSV.
//
// Usage:
//   ./build/examples/run_experiment <spec.json> [trace-out.{swf,csv}]
//
// Example spec (see src/testbed/config.hpp for all keys):
//   {
//     "scenario": "bursty",
//     "jobs": 6000,
//     "timings": {"service_update_interval": 60},
//     "fairshare": {"projection": {"kind": "dictionary"}},
//     "sites": {"5": {"rm": "maui"}}
//   }
#include <cstdio>
#include <fstream>
#include <sstream>

#include "testbed/config.hpp"
#include "util/strings.hpp"
#include "workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace aequus;

  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <spec.json> [trace-out.{swf,csv}]\n", argv[0]);
    return 2;
  }

  json::Value spec;
  try {
    std::ifstream in(argv[1]);
    if (!in) throw std::runtime_error(std::string("cannot open ") + argv[1]);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    spec = json::parse(buffer.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error reading spec: %s\n", e.what());
    return 1;
  }

  try {
    const auto scenario = json::decode<workload::Scenario>(spec);
    const auto config = json::decode<testbed::ExperimentConfig>(spec);

    std::printf("scenario '%s': %zu jobs, %d clusters x %d hosts, %.1f h window\n",
                scenario.name.c_str(), scenario.trace.size(), scenario.cluster_count,
                scenario.hosts_per_cluster, scenario.duration_seconds / 3600.0);

    if (argc > 2) {
      workload::save_trace(argv[2], scenario.trace);
      std::printf("workload exported to %s\n", argv[2]);
    }

    testbed::Experiment experiment(scenario, config);
    const testbed::ExperimentResult result = experiment.run();

    std::printf("\n%s\n",
                result.priorities
                    .render_chart("global fairshare priorities (balance = 0.5)", 90, 12,
                                  0.3, 0.7)
                    .c_str());
    std::printf("completed %llu/%llu jobs | utilization %.1f%% | makespan %s\n",
                static_cast<unsigned long long>(result.jobs_completed),
                static_cast<unsigned long long>(result.jobs_submitted),
                100.0 * result.mean_utilization,
                util::format_duration(result.makespan).c_str());
    const double convergence =
        result.priority_convergence_time(0.05, scenario.duration_seconds);
    std::printf("priority convergence (+-0.05): %s\n",
                convergence >= 0 ? util::format("%.0f min", convergence / 60.0).c_str()
                                 : "not reached");
    std::printf("final usage shares:");
    for (const auto& [user, share] : result.final_usage_share) {
      std::printf("  %s %.3f", user.c_str(), share);
    }
    std::printf("\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "experiment failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
