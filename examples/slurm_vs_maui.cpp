// SLURM vs Maui integration (§III-A): the same Aequus installation
// drives both RM flavours — SLURM through its plugin system, Maui through
// source patches — and both end up with identical global fairshare
// factors for the same jobs, which is exactly the point of moving the
// calculation out of the RM and into Aequus.
//
// Usage:  ./build/examples/slurm_vs_maui
#include <cstdio>

#include "maui/patches.hpp"
#include "services/installation.hpp"
#include "slurm/aequus_plugins.hpp"
#include "slurm/controller.hpp"

int main() {
  using namespace aequus;

  sim::Simulator simulator;
  net::ServiceBus bus(simulator);

  services::Installation site(simulator, bus, "site0");
  core::PolicyTree policy;
  policy.set_share("/alice", 0.6);
  policy.set_share("/bob", 0.4);
  site.set_policy(std::move(policy));
  site.irs().add_mapping("site0", "a_account", "alice");
  site.irs().add_mapping("site0", "b_account", "bob");

  client::ClientConfig client_config;
  client_config.site = "site0";
  client_config.cluster = "site0";
  client::AequusClient client(simulator, bus, client_config);

  // SLURM flavour: priority/aequus + jobcomp/aequus plugins.
  slurm::SlurmController slurm_rm(simulator, rms::Cluster("slurm-cluster", 8, 1),
                                  slurm::make_aequus_priority_plugin(client));
  slurm_rm.add_jobcomp_plugin(std::make_unique<slurm::AequusJobCompPlugin>(client));

  // Maui flavour: the two patches applied to the scheduler source.
  maui::MauiScheduler maui_rm(simulator, rms::Cluster("maui-cluster", 8, 1));
  maui::apply_aequus_patches(maui_rm, client);

  // alice burns 10 jobs on the SLURM cluster; bob 2 on the Maui cluster.
  for (int i = 0; i < 10; ++i) {
    rms::Job job;
    job.system_user = "a_account";
    job.duration = 500.0;
    slurm_rm.submit(std::move(job));
  }
  for (int i = 0; i < 2; ++i) {
    rms::Job job;
    job.system_user = "b_account";
    job.duration = 500.0;
    maui_rm.submit(std::move(job));
  }
  simulator.run_until(2000.0);

  // Both RMs now ask Aequus for priorities of fresh jobs.
  rms::Job alice_job;
  alice_job.system_user = "a_account";
  rms::Job bob_job;
  bob_job.system_user = "b_account";

  const auto slurm_factor = [&](const rms::Job& job) {
    return slurm::aequus_fairshare_source(client)(
        rms::PriorityContext{job, simulator.now()});
  };
  const auto maui_factor = [&](const rms::Job& job) {
    return maui_rm.fairshare_component(rms::PriorityContext{job, simulator.now()});
  };

  std::printf("global fairshare factors after cross-cluster usage:\n");
  std::printf("  user   SLURM plugin   Maui patch\n");
  std::printf("  alice  %.6f       %.6f\n", slurm_factor(alice_job), maui_factor(alice_job));
  std::printf("  bob    %.6f       %.6f\n", slurm_factor(bob_job), maui_factor(bob_job));

  const bool identical =
      slurm_factor(alice_job) == maui_factor(alice_job) &&
      slurm_factor(bob_job) == maui_factor(bob_job);
  std::printf("\nidentical across RM flavours: %s\n", identical ? "yes" : "NO");
  std::printf("alice used 5000 core-s against a 0.6 share; bob 1000 against 0.4 —\n"
              "alice's factor is below bob's: %s\n",
              slurm_factor(alice_job) < slurm_factor(bob_job) ? "yes" : "NO");
  return 0;
}
