// Trace analysis tool: run the paper's full workload-modeling pipeline on
// any SWF or CSV trace file — cleanup filters, per-user statistics,
// 18-family MLE fitting with BIC selection, KS and Anderson-Darling
// goodness of fit, and periodicity detection.
//
// Usage:
//   ./build/examples/analyze_trace <trace.{swf,csv}> [max-users]
//
// Try it on a synthetic trace:
//   ./build/examples/run_experiment spec.json /tmp/trace.swf
//   ./build/examples/analyze_trace /tmp/trace.swf
#include <algorithm>
#include <cstdio>
#include <cmath>
#include <cstdlib>
#include <map>

#include "stats/autocorr.hpp"
#include "stats/descriptive.hpp"
#include "stats/fit.hpp"
#include "stats/ks.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace aequus;

  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.{swf,csv}> [max-users]\n", argv[0]);
    return 2;
  }
  std::size_t max_users = 8;
  if (argc > 2 && std::atol(argv[2]) > 0) max_users = static_cast<std::size_t>(std::atol(argv[2]));

  workload::Trace raw;
  try {
    raw = workload::load_trace(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const auto [trace, report] = workload::filter_for_modeling(raw);
  std::printf("%s: %zu records; cleanup removed %zu admin + %zu zero-duration "
              "(%.1f%% of jobs, %.2f%% of usage)\n\n",
              argv[1], raw.size(), report.removed_admin, report.removed_zero_duration,
              100.0 * report.removed_job_fraction, 100.0 * report.removed_usage_fraction);

  // Per-user overview, largest usage first.
  auto stats_by_user = trace.user_stats();
  std::vector<std::pair<std::string, workload::UserStats>> ordered(stats_by_user.begin(),
                                                                   stats_by_user.end());
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    return a.second.usage > b.second.usage;
  });
  if (ordered.size() > max_users) ordered.resize(max_users);

  util::Table overview({"User", "Jobs", "Job %", "Usage %", "Median dur (s)",
                        "Median gap (s)"});
  for (const auto& [user, user_stats] : ordered) {
    overview.add_row({user, util::format("%zu", user_stats.jobs),
                      util::format("%.2f", 100.0 * user_stats.job_fraction),
                      util::format("%.2f", 100.0 * user_stats.usage_fraction),
                      util::format("%.0f", stats::median(trace.durations(user))),
                      util::format("%.0f", stats::median(trace.interarrival_times(user)))});
  }
  std::printf("%s\n", overview.render().c_str());

  // Fit durations per user (BIC over 18 families), report KS + AD.
  util::Table fits({"User", "Duration fit (BIC best)", "KS", "A^2", "Note"});
  for (const auto& [user, user_stats] : ordered) {
    (void)user_stats;
    auto durations = trace.durations(user);
    if (durations.size() < 20) {
      fits.add_row({user, "(too few samples)", "-", "-", ""});
      continue;
    }
    // Point masses (e.g. a walltime-cap spike) break continuous MLE; flag
    // them so the fit quality column is read with the right suspicion.
    std::string note;
    {
      std::map<long, std::size_t> rounded;
      for (double d : durations) ++rounded[std::lround(d)];
      std::size_t mode_count = 0;
      for (const auto& [value, count] : rounded) {
        (void)value;
        mode_count = std::max(mode_count, count);
      }
      const double mass = static_cast<double>(mode_count) / durations.size();
      if (mass > 0.2) note = util::format("%.0f%% point mass", 100.0 * mass);
    }
    if (durations.size() > 3000) durations.resize(3000);
    const stats::ModelSelection selection = stats::fit_best(durations);
    if (!selection.best.ok()) {
      fits.add_row({user, "(no family converged)", "-", "-", note});
      continue;
    }
    const auto ks = stats::ks_test(durations, *selection.best.distribution);
    const double ad = stats::anderson_darling(durations, *selection.best.distribution);
    fits.add_row({user, selection.best.distribution->describe(),
                  util::format("%.3f", ks.statistic), util::format("%.2f", ad), note});
  }
  std::printf("%s\n", fits.render().c_str());

  // Periodicity of daily arrivals.
  const auto [t_lo, t_hi] = trace.timespan();
  const auto days = std::max<std::size_t>(
      2, static_cast<std::size_t>((t_hi - t_lo) / 86400.0) + 1);
  stats::Histogram daily(t_lo, t_lo + static_cast<double>(days) * 86400.0, days);
  for (const auto& r : trace.records()) daily.add(r.submit);
  const auto periodicity =
      stats::detect_periodicity(daily.counts(), std::min<std::size_t>(days / 2, 180));
  if (periodicity.found) {
    std::printf("periodicity: dominant lag %zu days (ACF %.2f)\n", periodicity.lag,
                periodicity.strength);
  } else {
    std::printf("periodicity: no clear pattern in daily arrivals\n");
  }
  return 0;
}
