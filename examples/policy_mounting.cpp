// Policy mounting: the §II-A delegation story. A site administrator keeps
// control of the coarse split (70 % local users, 30 % to the national
// grid) while the grid's internal subdivision is managed by a remote,
// globally administered PDS and mounted dynamically — including a policy
// change at run time that propagates on the next refresh.
//
// Usage:  ./build/examples/policy_mounting
#include <cstdio>

#include "services/installation.hpp"

int main() {
  using namespace aequus;

  sim::Simulator simulator;
  net::ServiceBus bus(simulator);

  // The globally administered PDS (e.g. run by the national grid office).
  services::Pds global_pds(simulator, bus, "grid-office");
  {
    core::PolicyTree grid_policy;
    grid_policy.set_share("/climate-project", 2.0);
    grid_policy.set_share("/physics-project", 1.0);
    global_pds.set_policy(std::move(grid_policy));
  }

  // The local site: full Aequus installation.
  services::Installation site(simulator, bus, "siteA");
  {
    core::PolicyTree local_policy;
    local_policy.set_share("/staff", 0.7);
    site.set_policy(std::move(local_policy));
  }

  // Mount the grid's policy under /grid with 30 % of the site, refreshing
  // every 10 minutes.
  site.pds().mount_remote("/grid", "grid-office.pds", 0.3, 600.0);
  simulator.run_until(5.0);

  const auto show = [&](const char* when) {
    std::printf("%s\n", when);
    for (const auto& path : site.pds().policy().leaf_paths()) {
      std::printf("  %-28s effective share %.4f\n", path.c_str(),
                  *site.pds().policy().normalized_share(path) *
                      (core::split_path(path).size() > 1
                           ? *site.pds().policy().normalized_share(
                                 "/" + core::split_path(path).front())
                           : 1.0));
    }
    std::printf("\n");
  };
  show("after initial mount (staff 70%, grid 30% split 2:1):");

  // The grid office rebalances its projects; the site picks it up on the
  // next refresh without local intervention.
  {
    core::PolicyTree updated;
    updated.set_share("/climate-project", 1.0);
    updated.set_share("/physics-project", 1.0);
    updated.set_share("/genomics-project", 2.0);
    global_pds.set_policy(std::move(updated));
  }
  simulator.run_until(700.0);
  show("after remote policy change + refresh (genomics joins with 50%):");

  std::printf("mounts applied so far: %d (initial + %d refreshes)\n",
              site.pds().mounts_applied(), site.pds().mounts_applied() - 1);
  return 0;
}
