// National-grid simulation: the paper's full integrated stack (Figure 2)
// at a reduced scale — six clusters with their own Aequus installations
// and SLURM-like schedulers, a submission host replaying a synthetic
// trace sampled from the 2012 national workload model, and a shared
// name-resolution endpoint.
//
// Usage:  ./build/examples/national_grid [jobs]     (default 4000)
#include <cstdio>
#include <cstdlib>

#include "testbed/experiment.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace aequus;

  std::size_t jobs = 4000;
  if (argc > 1 && std::atol(argv[1]) > 0) jobs = static_cast<std::size_t>(std::atol(argv[1]));

  // The baseline scenario: 6 clusters x 40 hosts, six simulated hours,
  // 95 % load, policy targets equal to the workload's usage shares.
  const workload::Scenario scenario = workload::baseline_scenario(/*seed=*/42, jobs);
  std::printf("national grid simulation: %zu jobs, %d clusters x %d hosts, %.1f h\n\n",
              scenario.trace.size(), scenario.cluster_count, scenario.hosts_per_cluster,
              scenario.duration_seconds / 3600.0);

  testbed::ExperimentConfig config;
  config.dispatch = testbed::DispatchPolicy::kStochastic;  // as in the paper's tests
  testbed::Experiment experiment(scenario, config);
  const testbed::ExperimentResult result = experiment.run();

  std::printf("%s\n", result.priorities
                          .render_chart("global fairshare priorities (balance = 0.5)", 90,
                                        12, 0.3, 0.7)
                          .c_str());
  std::printf("%s\n",
              result.usage_shares.render_table("cumulative usage shares over time", 8)
                  .c_str());

  std::printf("completed %llu/%llu jobs, mean utilization %.1f%%, makespan %s\n",
              static_cast<unsigned long long>(result.jobs_completed),
              static_cast<unsigned long long>(result.jobs_submitted),
              100.0 * result.mean_utilization,
              util::format_duration(result.makespan).c_str());
  std::printf("bus traffic: %llu requests, %llu one-way, %.1f kB payload\n",
              static_cast<unsigned long long>(result.bus.requests),
              static_cast<unsigned long long>(result.bus.one_way),
              static_cast<double>(result.bus.payload_bytes) / 1024.0);
  return 0;
}
