// Parallel sweep quickstart: evaluate a grid of decay configurations
// with replications and confidence intervals, on all available cores.
//
//   ./build/examples/sweep_grid [jobs] [--threads N]
//   AEQUUS_THREADS=4 ./build/examples/sweep_grid
//
// Each (variant, replication) task runs its own Experiment on a worker
// thread with a seed derived from the root seed and the task index, so
// the numbers printed here are identical at any thread count.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/decay.hpp"
#include "testbed/sweep.hpp"
#include "util/strings.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace aequus;

  std::size_t jobs = 2000;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (argv[i][0] != '-') {
      const long parsed = std::strtol(argv[i], nullptr, 10);
      if (parsed > 0) jobs = static_cast<std::size_t>(parsed);
    }
  }

  workload::Scenario scenario = workload::baseline_scenario(2012, jobs);
  scenario.cluster_count = 3;
  scenario.hosts_per_cluster = 10;
  const double target = scenario.target_load * scenario.capacity_core_seconds();
  const double current = scenario.trace.total_usage();
  for (auto& record : scenario.trace.records()) record.duration *= target / current;

  // The grid: three half-lives of exponential usage decay.
  std::vector<std::pair<std::string, testbed::ExperimentConfig>> configs;
  for (const double half_life_hours : {1.0, 6.0, 48.0}) {
    testbed::ExperimentConfig config;
    config.fairshare.decay = core::DecayConfig{core::DecayKind::kExponentialHalfLife,
                                               half_life_hours * 3600.0, 0.0};
    configs.emplace_back(util::format("halflife_%.0fh", half_life_hours), config);
  }

  testbed::SweepSpec spec;
  spec.variants = testbed::cross_variants({{"", scenario}}, configs);
  spec.replications = 3;
  spec.root_seed = 42;
  spec.threads = threads;
  spec.keep_results = false;  // aggregates are all this example needs

  std::printf("sweeping %zu variants x %zu replications of %zu jobs on %d thread(s)\n\n",
              spec.variants.size(), spec.replications, scenario.trace.size(),
              testbed::resolve_thread_count(threads));
  const testbed::SweepResult result = testbed::run_sweep(spec);

  std::printf("%-14s %22s %22s %16s\n", "decay", "convergence [s]", "utilization",
              "max share err");
  for (std::size_t v = 0; v < spec.variants.size(); ++v) {
    const auto& aggregate = result.aggregates.at(spec.variants[v].name);
    const auto& convergence = aggregate.at("convergence_time_s");
    const auto& utilization = aggregate.at("mean_utilization");
    std::printf("%-14s %12.0f +- %-7.0f %14.1f%% +- %-4.1f %12.4f\n",
                spec.variants[v].name.c_str(), convergence.mean, convergence.ci95_half,
                100.0 * utilization.mean, 100.0 * utilization.ci95_half,
                aggregate.at("max_share_error").mean);
  }
  std::printf("\n%zu experiments in %.2f s wall on %d thread(s)\n", result.tasks.size(),
              result.wall_seconds, result.threads_used);
  return 0;
}
