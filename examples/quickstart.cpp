// Quickstart: the fairshare calculation in isolation (Figure 1's flow).
//
//   1. define a policy tree (target shares),
//   2. record historical usage,
//   3. run the fairshare algorithm,
//   4. extract per-user fairshare vectors,
//   5. project them to the [0,1] priority factors an RM consumes.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/engine.hpp"
#include "core/projection.hpp"

int main() {
  using namespace aequus::core;

  // 1. Policy: a grid gets 70% of the machine, a local queue 30%. Inside
  //    the grid, projects A and B split 50/50; alice owns 60% of A.
  PolicyTree policy;
  policy.set_share("/grid", 0.7);
  policy.set_share("/grid/projA", 0.5);
  policy.set_share("/grid/projB", 0.5);
  policy.set_share("/grid/projA/alice", 0.6);
  policy.set_share("/grid/projA/bob", 0.4);
  policy.set_share("/grid/projB/carol", 1.0);
  policy.set_share("/local", 0.3);

  // 2. Usage: alice has been hammering the machine; carol barely used it.
  UsageTree usage;
  usage.add("/grid/projA/alice", 5000.0);  // core-seconds
  usage.add("/grid/projA/bob", 800.0);
  usage.add("/grid/projB/carol", 150.0);
  usage.add("/local", 2000.0);

  // 3. Fairshare: k weighs the relative vs absolute distance metrics
  //    (paper default 0.5); resolution sets the vector encoding range.
  const FairshareConfig fairshare{0.5, kDefaultResolution};
  const FairshareTree tree = FairshareEngine::compute_once(fairshare, policy, usage);

  // 4. Vectors: one element per hierarchy level, balance point = 5000.
  std::printf("fairshare vectors (0-9999, balance 5000):\n");
  for (const auto& path : tree.user_paths()) {
    std::printf("  %-22s %s\n", path.c_str(), tree.vector_for(path)->to_string().c_str());
  }

  // 5. Projection: percental (the production configuration).
  std::printf("\npercental priority factors (0.5 = perfectly balanced):\n");
  for (const auto& [path, value] : project(tree, {ProjectionKind::kPercental, 8})) {
    std::printf("  %-22s %.4f\n", path.c_str(), value);
  }

  std::printf("\ncarol is under her share -> factor above 0.5; alice is over -> below.\n");
  return 0;
}
