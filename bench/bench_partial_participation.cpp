// Partial cluster participation (§IV-A-4): one of six sites only reads
// global usage data but does not contribute; another contributes but only
// considers local data for prioritization. Expected shape:
//   - the read-only site's priorities stay well aligned with fully
//     participating sites;
//   - the local-only site converges towards the same levels but slower
//     and with more fluctuation;
//   - the local-only site's data acts as noise for the others without a
//     noticeable impact on global prioritization.
//
// The partial configuration and the all-participating control run as one
// parallel sweep (default 2 replications each); the global-impact
// comparison uses the aggregate convergence times. Emits
// BENCH_partial_participation.json.
#include <cmath>
#include <cstdio>

#include "common.hpp"

using namespace aequus;

namespace {

struct Alignment {
  double mean_gap = 0.0;   ///< mean |site priority - reference priority|
  double variance = 0.0;   ///< fluctuation of the site's own series
};

Alignment alignment_of(const testbed::ExperimentResult& result, const std::string& site,
                       const std::string& reference_site, double t0, double t1) {
  Alignment a;
  std::size_t n = 0;
  std::vector<double> values;
  for (const auto* user : {"U65", "U30", "U3", "Uoth"}) {
    const auto& site_series = result.per_site.all().at(site + "/" + user);
    const auto& reference = result.per_site.all().at(reference_site + "/" + user);
    for (std::size_t i = 0; i < site_series.size(); ++i) {
      const double t = site_series.times()[i];
      if (t < t0 || t > t1) continue;
      a.mean_gap += std::fabs(site_series.values()[i] - reference.value_at(t, 0.5));
      values.push_back(site_series.values()[i]);
      ++n;
    }
  }
  if (n > 0) a.mean_gap /= static_cast<double>(n);
  double mean = 0.0;
  for (double v : values) mean += v;
  if (!values.empty()) mean /= static_cast<double>(values.size());
  for (double v : values) a.variance += (v - mean) * (v - mean);
  if (values.size() > 1) a.variance /= static_cast<double>(values.size() - 1);
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner("Partial cluster participation",
                      "Espling et al., IPPS'14, Section IV-A test 4");

  const bench::BenchArgs args = bench::parse_bench_args(argc, argv, bench::kTestbedJobs, 2);
  const workload::Scenario scenario = workload::baseline_scenario(2012, args.jobs);

  testbed::ExperimentConfig config;
  config.record_per_site = true;
  testbed::SiteSpec read_only;  // reads global data, does not contribute
  read_only.participation.contributes = false;
  config.site_overrides[4] = read_only;
  testbed::SiteSpec local_only;  // contributes, considers only local data
  local_only.participation.reads_global = false;
  config.site_overrides[5] = local_only;

  std::printf("site4: reads global, does not contribute; site5: contributes, "
              "prioritizes on local data only; site0-3 fully participate\n\n");
  const testbed::SweepSpec spec = bench::make_sweep(
      {{"partial", scenario, config}, {"control", scenario, testbed::ExperimentConfig{}}},
      args);
  bench::SweepRun sweep = bench::run_sweep_with_reference(spec, args);

  // Per-site shape analysis on the first partial replication (the
  // aggregate table below covers all of them).
  const testbed::ExperimentResult& result = sweep.result.tasks.front().result;

  // The local-only site prioritizes on its ~1/6 sample of the workload:
  // it converges to the same levels, but "at a slower pace and with more
  // fluctuations" — most visible while its local history is still thin.
  const double end = scenario.duration_seconds;
  const Alignment full_early = alignment_of(result, "site1", "site0", 120.0, 3600.0);
  const Alignment read_only_early = alignment_of(result, "site4", "site0", 120.0, 3600.0);
  const Alignment local_only_early = alignment_of(result, "site5", "site0", 120.0, 3600.0);
  const Alignment read_only_late = alignment_of(result, "site4", "site0", 3600.0, end);
  const Alignment local_only_late = alignment_of(result, "site5", "site0", 3600.0, end);

  std::printf("mean |priority gap| to the fully-participating reference (site0):\n");
  std::printf("  %-24s  first hour   rest of run\n", "");
  std::printf("  full participant (site1)  %.4f       (reference pair)\n",
              full_early.mean_gap);
  std::printf("  read-only (site4)         %.4f       %.4f\n", read_only_early.mean_gap,
              read_only_late.mean_gap);
  std::printf("  local-only (site5)        %.4f       %.4f\n\n", local_only_early.mean_gap,
              local_only_late.mean_gap);

  // Fluctuation: mean |change between consecutive samples| of the
  // priority each site computes for the sparse users (U3, Uoth), whose
  // local sample is smallest.
  const auto fluctuation = [&](const std::string& site) {
    double total = 0.0;
    std::size_t n = 0;
    for (const auto* user : {"U3", "Uoth"}) {
      const auto& s = result.per_site.all().at(site + "/" + user);
      for (std::size_t i = 1; i < s.size(); ++i) {
        if (s.times()[i] > end) break;
        total += std::fabs(s.values()[i] - s.values()[i - 1]);
        ++n;
      }
    }
    return n > 0 ? total / static_cast<double>(n) : 0.0;
  };
  std::printf("sparse-user (U3/Uoth) priority fluctuation per sample:\n");
  std::printf("  full %.5f | read-only %.5f | local-only %.5f\n\n", fluctuation("site0"),
              fluctuation("site4"), fluctuation("site5"));

  std::printf("shape checks:\n");
  std::printf("  read-only tracks global closely throughout: %s\n",
              (read_only_early.mean_gap < 0.06 && read_only_late.mean_gap < 0.06) ? "yes"
                                                                                  : "NO");
  std::printf("  local-only fluctuates more than participating sites: %s\n",
              fluctuation("site5") > fluctuation("site4") &&
                      fluctuation("site5") > fluctuation("site0")
                  ? "yes"
                  : "NO");
  std::printf("  local-only converges to comparable levels eventually: %s\n",
              local_only_late.mean_gap < 0.08 ? "yes" : "NO");
  (void)local_only_early;

  // Global impact: compare fully-participating sites' convergence against
  // the all-participating control, now with CIs over the replications.
  const auto& with_noise = sweep.result.aggregates.at("partial").at("convergence_time_s");
  const auto& without_noise = sweep.result.aggregates.at("control").at("convergence_time_s");
  std::printf("  global convergence with vs without the partial sites: "
              "%.0f +- %.0f s vs %.0f +- %.0f s\n",
              with_noise.mean, with_noise.ci95_half, without_noise.mean,
              without_noise.ci95_half);
  std::printf("  (paper: the local-only site's noise has no noticeable impact)\n");
  // Bus drop count straight from the task's metrics snapshot — the same
  // registry the ServiceBus counts into (BusStats is a façade over it).
  std::printf("\njobs completed (replication 0): %llu/%llu, bus messages dropped by "
              "participation: %llu\n\n",
              static_cast<unsigned long long>(result.jobs_completed),
              static_cast<unsigned long long>(result.jobs_submitted),
              static_cast<unsigned long long>(
                  sweep.result.tasks.front().obs.counter("bus.dropped_participation")));

  bench::print_aggregates(sweep.result);
  bench::report_observability(args, sweep.result);
  // With --trace: the non-participating sites show up as broken chains
  // (participation drops leave the rpc span open); the hop tables contrast
  // the partial and control variants' update pipelines directly.
  sweep.extra.merge(bench::report_trace_analysis(args, spec, sweep.result));
  bench::write_bench_json("partial_participation", args, spec, sweep.result, sweep.extra);
  return 0;
}
