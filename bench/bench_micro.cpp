// Microbenchmarks (google-benchmark) for the performance-critical paths:
// fairshare tree computation (the FCS pre-calculation the paper relies on
// to avoid real-time work), projections, vector operations, decay
// evaluation, JSON wire handling, cached libaequus lookups, and synthetic
// trace generation.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "common.hpp"
#include "core/engine.hpp"
#include "core/projection.hpp"
#include "json/json.hpp"
#include "libaequus/client.hpp"
#include "obs/trace.hpp"
#include "services/installation.hpp"
#include "stats/families.hpp"
#include "stats/fit.hpp"
#include "stats/ks.hpp"

using namespace aequus;

namespace {

core::PolicyTree flat_policy(int users) {
  core::PolicyTree policy;
  for (int i = 0; i < users; ++i) {
    policy.set_share(util::format("/group%d/user%d", i % 16, i), 1.0 + i % 7);
  }
  return policy;
}

core::UsageTree usage_for(int users, util::Rng& rng) {
  core::UsageTree usage;
  for (int i = 0; i < users; ++i) {
    usage.add(util::format("/group%d/user%d", i % 16, i), rng.uniform(1.0, 1000.0));
  }
  return usage;
}

void BM_FairshareTreeCompute(benchmark::State& state) {
  const auto users = static_cast<int>(state.range(0));
  util::Rng rng(1);
  const core::PolicyTree policy = flat_policy(users);
  const core::UsageTree usage = usage_for(users, rng);
  const core::FairshareAlgorithm algorithm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FairshareEngine::compute_once(
        algorithm.config(), policy, usage));
  }
  state.SetItemsProcessed(state.iterations() * users);
}
BENCHMARK(BM_FairshareTreeCompute)->Arg(16)->Arg(256)->Arg(2048);

void BM_FairshareEngineDelta(benchmark::State& state) {
  // One usage delta + snapshot publish through the incremental engine —
  // the per-update cost that replaced BM_FairshareTreeCompute's
  // whole-tree recompute in the FCS pre-calculation loop.
  const auto users = static_cast<int>(state.range(0));
  util::Rng rng(1);
  core::FairshareEngine engine({}, core::DecayConfig{core::DecayKind::kNone, 0.0, 0.0});
  engine.set_policy(flat_policy(users));
  engine.set_usage(usage_for(users, rng));
  (void)engine.snapshot();
  int i = 0;
  for (auto _ : state) {
    const int user = i++ % users;
    engine.apply_usage(util::format("/group%d/user%d", user % 16, user), 1.0, 0.0);
    benchmark::DoNotOptimize(engine.snapshot());
  }
  state.SetItemsProcessed(state.iterations() * users);
}
BENCHMARK(BM_FairshareEngineDelta)->Arg(16)->Arg(256)->Arg(2048);

void BM_Projection(benchmark::State& state) {
  const auto kind = static_cast<core::ProjectionKind>(state.range(0));
  util::Rng rng(1);
  const core::PolicyTree policy = flat_policy(512);
  const core::UsageTree usage = usage_for(512, rng);
  const core::FairshareTree tree = core::FairshareEngine::compute_once({}, policy, usage);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::project(tree, {kind, 8}));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_Projection)
    ->Arg(static_cast<int>(core::ProjectionKind::kDictionaryOrdering))
    ->Arg(static_cast<int>(core::ProjectionKind::kBitwiseVector))
    ->Arg(static_cast<int>(core::ProjectionKind::kPercental));

void BM_VectorCompare(benchmark::State& state) {
  const core::FairshareVector a({0.3, -0.2, 0.7, 0.1, -0.5});
  const core::FairshareVector b({0.3, -0.2, 0.7, 0.1, -0.4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compare(b));
  }
}
BENCHMARK(BM_VectorCompare);

void BM_DecayedTotal(benchmark::State& state) {
  const auto bins_count = static_cast<std::size_t>(state.range(0));
  std::vector<std::pair<double, double>> bins;
  for (std::size_t i = 0; i < bins_count; ++i) {
    bins.emplace_back(static_cast<double>(i) * 60.0, 10.0);
  }
  const core::Decay decay(
      core::DecayConfig{core::DecayKind::kExponentialHalfLife, 3600.0, 0.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(decay.decayed_total(bins, bins_count * 60.0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(bins_count));
}
BENCHMARK(BM_DecayedTotal)->Arg(64)->Arg(1024);

void BM_JsonRoundTrip(benchmark::State& state) {
  util::Rng rng(2);
  core::UsageTree tree;
  for (int i = 0; i < 200; ++i) {
    tree.add(util::format("/g%d/u%d", i % 8, i), rng.uniform(0.0, 1e6));
  }
  const std::string wire = tree.to_json().dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::UsageTree::from_json(json::parse(wire)));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<long>(wire.size()));
}
BENCHMARK(BM_JsonRoundTrip);

void BM_CachedFairshareLookup(benchmark::State& state) {
  sim::Simulator simulator;
  net::ServiceBus bus(simulator);
  services::Installation site(simulator, bus, "site0");
  core::PolicyTree policy;
  policy.set_share("/alice", 0.5);
  policy.set_share("/bob", 0.5);
  site.set_policy(std::move(policy));
  client::ClientConfig config;
  config.site = "site0";
  config.cluster = "site0";
  client::AequusClient client(simulator, bus, config);
  site.uss().report("alice", 100.0);
  simulator.run_until(120.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.fairshare_factor("alice"));
  }
}
BENCHMARK(BM_CachedFairshareLookup);

void BM_TraceGeneration(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const auto model = workload::NationalGridModel::paper_2012(21600.0);
  workload::GeneratorConfig config;
  config.total_jobs = jobs;
  for (auto _ : state) {
    config.seed++;
    benchmark::DoNotOptimize(workload::generate_trace(model, config));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(jobs));
}
BENCHMARK(BM_TraceGeneration)->Arg(1000)->Arg(10000);

void BM_TracerDisabledRecord(benchmark::State& state) {
  obs::Tracer tracer;  // default-constructed: tracing off
  double t = 0.0;
  for (auto _ : state) {
    tracer.record(t += 1.0, obs::EventKind::kMessageSend, "site0", "bus", "rpc:site0.fcs");
    benchmark::DoNotOptimize(&tracer);
  }
  // Micro-assert pinning the disabled fast path: a disabled record() is a
  // single branch, so nothing may have been buffered or interned — a
  // regression here taxes every bus message of every untraced run.
  if (tracer.event_count() != 0 || tracer.interned_count() != 0) std::abort();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerDisabledRecord);

void BM_TracerEnabledRecord(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.enable();
  tracer.set_capacity(1u << 16);  // steady-state ring rotation, no growth
  double t = 0.0;
  for (auto _ : state) {
    tracer.record(t += 1.0, obs::EventKind::kMessageSend, "site0", "bus", "rpc:site0.fcs");
  }
  benchmark::DoNotOptimize(tracer.event_count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerEnabledRecord);

void BM_TracerSpanRoundTrip(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.enable();
  tracer.set_capacity(1u << 16);
  double t = 0.0;
  for (auto _ : state) {
    const obs::SpanContext span = tracer.begin_span(t, "site0", "bus", "rpc:site0.fcs");
    tracer.end_span(t + 0.5, span, "site0", "bus", "ok");
    t += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerSpanRoundTrip);

void BM_KsTest(benchmark::State& state) {
  util::Rng rng(3);
  const stats::Weibull model(100.0, 0.8);
  std::vector<double> data;
  for (int i = 0; i < 5000; ++i) data.push_back(model.sample(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::ks_test(data, model));
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_KsTest);

void BM_GevMleFit(benchmark::State& state) {
  util::Rng rng(4);
  const stats::Gev model(-0.3, 20.0, 100.0);
  std::vector<double> data;
  for (int i = 0; i < 1000; ++i) data.push_back(model.sample(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_mle(stats::Family::kGev, data));
  }
}
BENCHMARK(BM_GevMleFit);

}  // namespace

BENCHMARK_MAIN();
