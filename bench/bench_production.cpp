// Production deployment test (§IV, "Production system tests"): Aequus
// deployed alongside SLURM at HPC2N on a 68-node / 544-core cluster.
// "Since the system was deployed at the start of 2013, about 40,000 jobs
// per month has been executed on the cluster. During this period the
// system has shown to be stable and the transition from using local
// fairshare to global fairshare as performed by Aequus has had no
// noticeable impact on the performance or the stability of the cluster."
//
// The bench simulates one month of production on the HPC2N-sized cluster
// twice — once with SLURM's local multifactor fairshare, once with the
// Aequus priority + jobcomp plugins — and compares throughput, waits,
// and utilization. "No noticeable impact" = the two runs agree closely.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "services/installation.hpp"
#include "slurm/aequus_plugins.hpp"
#include "slurm/controller.hpp"
#include "util/table.hpp"

using namespace aequus;

namespace {

constexpr double kMonthSeconds = 30.0 * 86400.0;

struct RunStats {
  std::uint64_t completed = 0;
  double mean_wait = 0.0;
  double utilization = 0.0;
  double priority_jitter = 0.0;  ///< stddev of sampled U65 factor
};

workload::Trace month_trace(std::size_t jobs) {
  const auto model = workload::NationalGridModel::paper_2012(kMonthSeconds);
  workload::GeneratorConfig config;
  config.total_jobs = jobs;
  config.seed = 1301;  // January 2013
  config.target_total_usage = 0.90 * 544.0 * kMonthSeconds;
  workload::Trace trace = workload::generate_trace(model, config);
  // HPC2N-style 7-day maximum walltime.
  std::map<std::string, double> targets;
  for (const auto& user : model.users()) {
    targets[user.name] = config.target_total_usage * user.usage_fraction;
  }
  workload::enforce_walltime_cap(trace, targets, 7.0 * 86400.0);
  return trace;
}

RunStats run(const workload::Trace& trace, bool use_aequus) {
  sim::Simulator simulator;
  net::ServiceBus bus(simulator);

  services::InstallationConfig site_config;
  site_config.uss.bin_width = 3600.0;
  site_config.ums.update_interval = 600.0;
  site_config.fcs.update_interval = 600.0;
  site_config.ums.decay =
      core::DecayConfig{core::DecayKind::kExponentialHalfLife, 7.0 * 86400.0, 0.0};
  services::Installation site(simulator, bus, "hpc2n", site_config);

  core::PolicyTree policy;
  const auto model = workload::NationalGridModel::paper_2012(kMonthSeconds);
  for (const auto& user : model.users()) policy.set_share("/" + user.name, user.usage_fraction);
  site.set_policy(std::move(policy));

  // The paper's HPC2N setup: a small name-resolution endpoint reverts the
  // grid-to-system mapping for Aequus.
  bus.bind("hpc2n.nameresolver", [](const json::Value& query) -> json::Value {
    const auto grid_user = testbed::grid_user_for(query.get_string("system_user"));
    json::Object reply;
    if (grid_user) reply["grid_user"] = *grid_user;
    else reply["unknown"] = true;
    return json::Value(std::move(reply));
  });
  site.irs().set_endpoint("hpc2n.nameresolver");

  client::ClientConfig client_config;
  client_config.site = "hpc2n";
  client_config.cluster = "hpc2n";
  client_config.fairshare_cache_ttl = 300.0;
  client::AequusClient client(simulator, bus, client_config);

  rms::SchedulerConfig scheduler_config;
  scheduler_config.reprioritize_interval = 300.0;  // SLURM PriorityCalcPeriod default
  rms::Cluster cluster("hpc2n", 68, 8);  // 544 cores, 5.8 TFLOPS in the paper

  std::unique_ptr<slurm::SlurmController> controller;
  auto local_fairshare = std::make_shared<slurm::LocalFairshare>(
      core::DecayConfig{core::DecayKind::kExponentialHalfLife, 7.0 * 86400.0, 0.0});
  if (use_aequus) {
    controller = std::make_unique<slurm::SlurmController>(
        simulator, std::move(cluster), slurm::make_aequus_priority_plugin(client),
        scheduler_config);
    controller->add_jobcomp_plugin(std::make_unique<slurm::AequusJobCompPlugin>(client));
  } else {
    for (const auto& user : model.users()) {
      local_fairshare->set_share(testbed::system_account_for(user.name),
                                 user.usage_fraction);
    }
    auto plugin = std::make_unique<slurm::MultifactorPriorityPlugin>(
        slurm::MultifactorWeights{},
        [local_fairshare](const rms::PriorityContext& context) {
          return local_fairshare->factor(context.job.system_user, context.now);
        });
    controller = std::make_unique<slurm::SlurmController>(
        simulator, std::move(cluster), std::move(plugin), scheduler_config);
    controller->add_completion_listener([local_fairshare, &simulator](const rms::Job& job) {
      local_fairshare->record_usage(job.system_user, job.usage(), simulator.now());
    });
  }

  for (const auto& record : trace.records()) {
    simulator.schedule_at(record.submit, [&, record] {
      rms::Job job;
      job.system_user = testbed::system_account_for(record.user);
      job.duration = record.duration;
      job.cores = record.cores;
      controller->submit(std::move(job));
    });
  }

  // Sample the U65 fairshare factor hourly for the stability metric.
  std::vector<double> samples;
  simulator.schedule_periodic(3600.0, 3600.0, [&] {
    samples.push_back(use_aequus ? client.fairshare_factor("U65")
                                 : local_fairshare->factor("acct_u65", simulator.now()));
  });

  // Run until the backlog drains (bounded at 4 simulated months).
  double until = kMonthSeconds * 1.25;
  while (controller->stats().completed < trace.size() && until < kMonthSeconds * 4.0) {
    simulator.run_until(until);
    until += kMonthSeconds * 0.25;
  }

  RunStats stats;
  stats.completed = controller->stats().completed;
  stats.mean_wait = controller->stats().started > 0
                        ? controller->stats().total_wait_time /
                              static_cast<double>(controller->stats().started)
                        : 0.0;
  stats.utilization = controller->cluster().utilization(kMonthSeconds);
  double mean = 0.0;
  for (double s : samples) mean += s;
  if (!samples.empty()) mean /= static_cast<double>(samples.size());
  for (double s : samples) stats.priority_jitter += (s - mean) * (s - mean);
  if (samples.size() > 1) {
    stats.priority_jitter =
        std::sqrt(stats.priority_jitter / static_cast<double>(samples.size() - 1));
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner("Production test: one month on the HPC2N cluster (544 cores)",
                      "Espling et al., IPPS'14, Section IV production tests");

  // Default scaled to a sixth of the paper's monthly volume so both runs
  // finish in minutes; pass 40000 as argv[1] for the full month.
  const std::size_t jobs = bench::jobs_from_argv(argc, argv, 16000);
  const workload::Trace trace = month_trace(jobs);
  std::printf("trace: %zu jobs over 30 days (paper volume: ~40,000 jobs/month; pass 40000 to match)\n\n",
              trace.size());

  std::printf("running with SLURM local multifactor fairshare...\n");
  const RunStats local = run(trace, false);
  std::printf("running with Aequus priority + jobcomp plugins...\n\n");
  const RunStats aequus_run = run(trace, true);

  util::Table table({"Configuration", "Completed", "Mean wait (s)", "Utilization",
                     "U65 factor stddev"});
  table.add_row({"local fairshare", util::format("%llu", (unsigned long long)local.completed),
                 util::format("%.1f", local.mean_wait),
                 util::format("%.1f%%", 100.0 * local.utilization),
                 util::format("%.4f", local.priority_jitter)});
  table.add_row({"Aequus (global)",
                 util::format("%llu", (unsigned long long)aequus_run.completed),
                 util::format("%.1f", aequus_run.mean_wait),
                 util::format("%.1f%%", 100.0 * aequus_run.utilization),
                 util::format("%.4f", aequus_run.priority_jitter)});
  std::printf("%s\n", table.render().c_str());

  const double utilization_delta =
      std::fabs(local.utilization - aequus_run.utilization);
  std::printf("transition impact: utilization delta %.2f%%, all jobs completed in both\n"
              "runs: %s — consistent with the paper's 'no noticeable impact on the\n"
              "performance or the stability of the cluster'.\n",
              100.0 * utilization_delta,
              (local.completed == trace.size() && aequus_run.completed == trace.size())
                  ? "yes"
                  : "NO");
  return 0;
}
