// Figure 10 (baseline convergence test, §IV-A): six clusters x 40 virtual
// hosts, 43,200 jobs over six hours at 95 % load, fairshare-only
// scheduling with the percental projection, policy targets equal to the
// workload's actual usage shares. The system should converge towards
// balance: cumulative usage shares approach the targets and all users'
// priorities approach the 0.5 balance point.
#include <cstdio>

#include "common.hpp"

using namespace aequus;

int main(int argc, char** argv) {
  bench::print_banner("Figure 10: baseline six-cluster convergence",
                      "Espling et al., IPPS'14, Section IV-A test 1");

  const std::size_t jobs = bench::jobs_from_argv(argc, argv, bench::kTestbedJobs);
  const workload::Scenario scenario = workload::baseline_scenario(2012, jobs);
  std::printf("scenario: %d clusters x %d hosts, %zu jobs, %.0f s, target load %.0f%%\n\n",
              scenario.cluster_count, scenario.hosts_per_cluster, scenario.trace.size(),
              scenario.duration_seconds, 100.0 * scenario.target_load);

  const testbed::ExperimentResult result = bench::run_scenario(scenario);

  std::printf("%s\n",
              result.usage_shares
                  .render_chart("Fig 10a analogue: cumulative usage share per user", 100, 14,
                                0.0, 1.0)
                  .c_str());
  std::printf("%s\n",
              result.priorities
                  .render_chart("Fig 10b analogue: global fairshare priority per user "
                                "(percental; balance = 0.5)",
                                100, 14, 0.3, 0.7)
                  .c_str());

  std::printf("jobs completed: %llu / %llu\n",
              static_cast<unsigned long long>(result.jobs_completed),
              static_cast<unsigned long long>(result.jobs_submitted));
  std::printf("mean utilization over the 6 h window: %.1f%% (paper: 93-97%%)\n",
              100.0 * result.mean_utilization);
  std::printf("sustained submission rate: %.0f jobs/min (paper: ~120)\n",
              result.rates.sustained_per_minute);

  const double convergence = result.priority_convergence_time(0.05, scenario.duration_seconds);
  std::printf("priority convergence to balance +-0.05: %s\n",
              convergence >= 0
                  ? util::format("%.0f s (%.0f min)", convergence, convergence / 60.0).c_str()
                  : "not reached");

  std::printf("\nfinal usage shares vs targets:\n");
  for (const auto& [user, share] : result.final_usage_share) {
    std::printf("  %-5s measured %.4f  target %.4f  |delta| %.4f\n", user.c_str(), share,
                scenario.usage_shares.at(user),
                std::abs(share - scenario.usage_shares.at(user)));
  }
  return 0;
}
