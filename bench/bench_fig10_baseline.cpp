// Figure 10 (baseline convergence test, §IV-A): six clusters x 40 virtual
// hosts, 43,200 jobs over six hours at 95 % load, fairshare-only
// scheduling with the percental projection, policy targets equal to the
// workload's actual usage shares. The system should converge towards
// balance: cumulative usage shares approach the targets and all users'
// priorities approach the 0.5 balance point.
//
// Runs as a parallel sweep (default 4 replications, seeds derived from
// the root seed) so the convergence numbers carry confidence intervals;
// unless --no-serial-reference is given, a single-threaded reference
// sweep measures the parallel speedup. Emits BENCH_fig10_baseline.json.
#include <cmath>
#include <cstdio>

#include "common.hpp"

using namespace aequus;

int main(int argc, char** argv) {
  bench::print_banner("Figure 10: baseline six-cluster convergence",
                      "Espling et al., IPPS'14, Section IV-A test 1");

  const bench::BenchArgs args = bench::parse_bench_args(argc, argv, bench::kTestbedJobs, 4);
  const workload::Scenario scenario = workload::baseline_scenario(2012, args.jobs);
  std::printf("scenario: %d clusters x %d hosts, %zu jobs, %.0f s, target load %.0f%%\n\n",
              scenario.cluster_count, scenario.hosts_per_cluster, scenario.trace.size(),
              scenario.duration_seconds, 100.0 * scenario.target_load);

  const testbed::SweepSpec spec =
      bench::make_sweep({{"baseline", scenario, testbed::ExperimentConfig{}}}, args);
  const bench::SweepRun sweep = bench::run_sweep_with_reference(spec, args);

  // The charts show replication 0; the tables aggregate all of them.
  const testbed::ExperimentResult& result = sweep.result.tasks.front().result;
  std::printf("%s\n",
              result.usage_shares
                  .render_chart("Fig 10a analogue: cumulative usage share per user "
                                "(replication 0)",
                                100, 14, 0.0, 1.0)
                  .c_str());
  std::printf("%s\n",
              result.priorities
                  .render_chart("Fig 10b analogue: global fairshare priority per user "
                                "(percental; balance = 0.5; replication 0)",
                                100, 14, 0.3, 0.7)
                  .c_str());

  const auto& aggregate = sweep.result.aggregates.at("baseline");
  std::printf("across %zu replications (mean +- 95%% CI):\n",
              aggregate.at("mean_utilization").count);
  std::printf("  mean utilization: %.1f%% +- %.1f%% (paper: 93-97%%)\n",
              100.0 * aggregate.at("mean_utilization").mean,
              100.0 * aggregate.at("mean_utilization").ci95_half);
  std::printf("  sustained submission rate: %.0f jobs/min (paper: ~120)\n",
              aggregate.at("sustained_rate_per_min").mean);
  const auto& convergence = aggregate.at("convergence_time_s");
  if (aggregate.at("converged").min >= 1.0) {
    std::printf("  priority convergence to balance +-0.05: %.0f s +- %.0f s (%.0f min)\n",
                convergence.mean, convergence.ci95_half, convergence.mean / 60.0);
  } else {
    std::printf("  priority convergence to balance +-0.05: not reached in every run\n");
  }
  std::printf("  worst final-share error vs targets: %.4f (max over reps %.4f)\n\n",
              aggregate.at("max_share_error").mean, aggregate.at("max_share_error").max);

  bench::print_aggregates(sweep.result);

  std::printf("final usage shares vs targets (replication 0):\n");
  for (const auto& [user, share] : result.final_usage_share) {
    std::printf("  %-5s measured %.4f  target %.4f  |delta| %.4f\n", user.c_str(), share,
                scenario.usage_shares.at(user),
                std::abs(share - scenario.usage_shares.at(user)));
  }

  bench::write_bench_json("fig10_baseline", args, spec, sweep.result, sweep.extra);
  return 0;
}
