// Flight-recorder replay throughput bench: envelopes/sec replayed vs
// simulated (DESIGN.md §6i).
//
// Records one full testbed run of the baseline scenario with the
// FlightRecorder tapped into the bus, then replays the captured log
// through the offline USS/engine stack — timed (preserve-spacing, the
// bit-exact mode) and as-fast-as-possible — `reps` times, taking the
// minimum wall per mode. The headline ratio speedup_replay_vs_simulated
// (simulated wall / timed-replay wall) is gated one-sided by
// tools/bench_gate.py: replay skips job scheduling, host simulation, and
// RM bookkeeping, so it must stay well faster than the run it replays.
// Absolute envelope rates are emitted ungated (machine-specific).
//
// Replay determinism is a hard failure, not a metric: every timed replay
// must produce the same fingerprint hash, or the bench exits 1.
//
//   bench_replay_throughput [jobs] [--reps N] [--seed S] [--json-dir DIR]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "common.hpp"
#include "json/json.hpp"
#include "replay/recorder.hpp"
#include "replay/replayer.hpp"

using namespace aequus;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner("Flight-recorder replay throughput",
                      "DESIGN.md 6i; envelopes/sec replayed vs simulated");
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv, 800, 3);
  const std::size_t reps = args.replications > 0 ? args.replications : 3;

  const workload::Scenario scenario = workload::baseline_scenario(args.root_seed, args.jobs);
  std::printf("recording: baseline scenario, %zu jobs, %.0f simulated seconds\n",
              scenario.trace.size(), scenario.duration_seconds);

  // Record one full simulated run with the recorder tapped into its bus.
  replay::FlightRecorder recorder(0);  // unbounded: the bench wants every envelope
  testbed::Experiment experiment(scenario, testbed::ExperimentConfig{});
  recorder.attach(experiment.bus(), &experiment.registry());
  const auto sim_start = std::chrono::steady_clock::now();
  (void)experiment.run();
  const double sim_seconds = seconds_since(sim_start);
  json::Object meta;
  meta["scenario"] = std::string("bench_replay_throughput");
  meta["uss_bin_width"] = experiment.config().timings.uss_bin_width;
  const replay::EnvelopeLog log = recorder.take_log(json::Value(std::move(meta)));
  const double envelopes = static_cast<double>(log.envelopes.size());
  if (log.envelopes.empty()) {
    std::fprintf(stderr, "error: the recorded run produced no envelopes\n");
    return 1;
  }
  std::printf("recorded %zu envelope(s) in %.3f s simulated-run wall (%.0f env/s)\n\n",
              log.envelopes.size(), sim_seconds, envelopes / sim_seconds);

  // Timed replay: the bit-exact mode. Identical fingerprints across reps
  // is a hard correctness requirement, not a gated metric.
  double timed_seconds = std::numeric_limits<double>::infinity();
  std::string fingerprint_hash;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const replay::ReplayResult result = replay::BusReplayer().replay(log);
    timed_seconds = std::min(timed_seconds, result.wall_seconds);
    if (rep == 0) {
      fingerprint_hash = result.fingerprint_hash;
    } else if (result.fingerprint_hash != fingerprint_hash) {
      std::fprintf(stderr, "error: timed replay fingerprint diverged across reps (%s vs %s)\n",
                   result.fingerprint_hash.c_str(), fingerprint_hash.c_str());
      return 1;
    }
  }

  double afap_seconds = std::numeric_limits<double>::infinity();
  replay::ReplayOptions afap;
  afap.preserve_spacing = false;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const replay::ReplayResult result = replay::BusReplayer(afap).replay(log);
    afap_seconds = std::min(afap_seconds, result.wall_seconds);
  }

  const double sim_rate = envelopes / sim_seconds;
  const double timed_rate = envelopes / timed_seconds;
  const double afap_rate = envelopes / afap_seconds;
  const double speedup = sim_seconds / timed_seconds;
  std::printf("simulated run  %10.0f env/s  (%.4f s)\n", sim_rate, sim_seconds);
  std::printf("timed replay   %10.0f env/s  (%.4f s, min of %zu)  fingerprint %s\n",
              timed_rate, timed_seconds, reps, fingerprint_hash.c_str());
  std::printf("afap replay    %10.0f env/s  (%.4f s, min of %zu)\n", afap_rate, afap_seconds,
              reps);
  std::printf("replay speedup vs simulated: %.1fx\n\n", speedup);

  json::Object metrics;
  const auto metric = [&metrics](const std::string& name, double mean) {
    json::Object summary;
    summary["count"] = 1;
    summary["mean"] = mean;
    metrics[name] = json::Value(std::move(summary));
  };
  metric("sim_envelopes_per_sec", sim_rate);
  metric("replay_envelopes_per_sec", timed_rate);
  metric("afap_envelopes_per_sec", afap_rate);
  metric("speedup_replay_vs_simulated", speedup);
  metric("envelopes", envelopes);

  json::Object variant;
  variant["metrics"] = json::Value(std::move(metrics));
  json::Object variants;
  variants["replay"] = json::Value(std::move(variant));

  json::Object root;
  root["bench"] = std::string("replay_throughput");
  root["schema_version"] = 1;
  root["jobs"] = args.jobs;
  root["threads"] = 1;
  root["replications"] = reps;
  root["root_seed"] = util::format("0x%llx", static_cast<unsigned long long>(args.root_seed));
  root["wall_seconds"] = sim_seconds + timed_seconds + afap_seconds;
  root["variants"] = json::Value(std::move(variants));

  const std::string path = args.json_dir + "/BENCH_replay_throughput.json";
  std::error_code ec;
  std::filesystem::create_directories(args.json_dir, ec);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return 1;
  }
  out << json::Value(std::move(root)).pretty() << "\n";
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
