// Fault recovery: time-to-reconvergence of the replicated usage views as
// a function of inter-site message loss.
//
// Each run injects a hard ten-minute outage of site1 one third into the
// run, on top of a swept base loss rate. At every sampling tick the bench
// records the worst pairwise relative disagreement between the UMS usage
// views of the fully participating sites; the reconvergence time is how
// long after the outage ends that disagreement takes to drop (and stay)
// below the tolerance. The paper's premise — decentralized exchange
// tolerates degraded networks by serving stale-but-sane data — predicts
// graceful growth with loss, not a cliff.
//
// The loss rates form the variants of one parallel sweep (default 2
// replications per rate, each with a re-derived fault seed, so the
// recovery times carry confidence intervals over loss realizations).
// Emits BENCH_fault_recovery.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "common.hpp"
#include "testing/invariants.hpp"
#include "util/timeseries.hpp"

using namespace aequus;

namespace {

// Worst pairwise relative per-leaf disagreement across sites' UMS views.
double view_divergence(testbed::Experiment& experiment) {
  auto& sites = experiment.sites();
  double worst = 0.0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      const auto& leaves_a = sites[i]->aequus().ums().usage_tree().leaves();
      const auto& leaves_b = sites[j]->aequus().ums().usage_tree().leaves();
      const double scale = std::max({sites[i]->aequus().ums().usage_tree().total(),
                                     sites[j]->aequus().ums().usage_tree().total(), 1e-9});
      std::set<std::string> keys;
      for (const auto& [path, amount] : leaves_a) (void)amount, keys.insert(path);
      for (const auto& [path, amount] : leaves_b) (void)amount, keys.insert(path);
      for (const auto& path : keys) {
        const auto it_a = leaves_a.find(path);
        const auto it_b = leaves_b.find(path);
        const double va = it_a != leaves_a.end() ? it_a->second : 0.0;
        const double vb = it_b != leaves_b.end() ? it_b->second : 0.0;
        worst = std::max(worst, std::fabs(va - vb) / scale);
      }
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner("Fault recovery: reconvergence time vs message loss",
                      "fault-injection harness; extends §IV-A failure analysis");

  const bench::BenchArgs args = bench::parse_bench_args(argc, argv, 2000, 2);
  const double tolerance = 0.02;
  const std::vector<double> loss_rates = {0.0, 0.10, 0.25, 0.40};
  const net::OutageWindow outage{"site1", 7200.0, 7800.0};

  std::printf("%zu jobs, 3 sites, 10-minute outage of site1 at t=%.0f s,\n", args.jobs,
              outage.start);
  std::printf("reconvergence = max pairwise UMS view divergence < %.0f%%\n\n",
              100.0 * tolerance);

  std::vector<testbed::SweepVariant> variants;
  for (const double loss : loss_rates) {
    workload::Scenario scenario = workload::baseline_scenario(2012, args.jobs);
    scenario.cluster_count = 3;
    scenario.hosts_per_cluster = 8;
    bench::rescale_to_capacity(scenario);

    testbed::SweepVariant variant;
    variant.name = util::format("loss_%02.0f", 100.0 * loss);
    variant.scenario = std::move(scenario);
    variant.config.faults.loss_rate = loss;
    variant.config.faults.seed = 1914;  // re-derived per replication
    variant.config.faults.outages.push_back(outage);
    variants.push_back(std::move(variant));
  }

  testbed::SweepSpec spec = bench::make_sweep(std::move(variants), args);

  // Per-task observers, addressed by task index so concurrent tasks never
  // share state: an invariant checker and the divergence tick series.
  std::vector<std::unique_ptr<testing::InvariantChecker>> checkers(spec.task_count());
  std::vector<util::Series> divergences(spec.task_count());
  spec.on_setup = [&](testbed::Experiment& experiment, std::size_t task_index) {
    checkers[task_index] = std::make_unique<testing::InvariantChecker>(experiment);
    divergences[task_index] = util::Series{};  // the serial reference sweep reruns tasks
    experiment.add_tick_hook([&experiment, &divergences, task_index](double now) {
      divergences[task_index].add(now, view_divergence(experiment));
    });
  };
  spec.on_teardown = [&](testbed::Experiment& experiment, testbed::SweepTaskResult& slot) {
    testing::InvariantChecker& checker = *checkers[slot.task_index];
    checker.check_reconvergence();
    slot.metrics["invariants_ok"] = checker.ok() ? 1.0 : 0.0;

    std::uint64_t retries = 0;
    for (auto& site : experiment.sites()) retries += site->client().stats().refresh_retries;
    slot.metrics["refresh_retries"] = static_cast<double>(retries);

    // Peak divergence, and the earliest tick after which the divergence
    // never rises above the tolerance again.
    const util::Series& divergence = divergences[slot.task_index];
    double peak = 0.0;
    double reconverged_at = -1.0;
    for (std::size_t i = 0; i < divergence.size(); ++i) {
      peak = std::max(peak, divergence.values()[i]);
    }
    for (std::size_t i = divergence.size(); i-- > 0;) {
      if (divergence.values()[i] > tolerance) {
        if (i + 1 < divergence.size()) reconverged_at = divergence.times()[i + 1];
        break;
      }
      reconverged_at = divergence.times()[i];
    }
    slot.metrics["peak_divergence"] = peak;
    slot.metrics["reconverged_at_s"] = reconverged_at;
    slot.metrics["recovery_s"] =
        reconverged_at >= 0.0 ? std::max(0.0, reconverged_at - outage.end) : -1.0;
  };

  const bench::SweepRun sweep = bench::run_sweep_with_reference(spec, args);

  std::printf("\n%8s %12s %14s %14s %10s %9s %6s\n", "loss", "peak div", "reconverged",
              "recovery", "dropped", "retries", "inv");
  for (std::size_t v = 0; v < loss_rates.size(); ++v) {
    const auto& aggregate = sweep.result.aggregates.at(spec.variants[v].name);
    std::printf("%7.0f%% %10.1f%%  %11.0f s  %7.0f+-%.0f s %10.0f %9.0f %6s\n",
                100.0 * loss_rates[v], 100.0 * aggregate.at("peak_divergence").mean,
                aggregate.at("reconverged_at_s").mean, aggregate.at("recovery_s").mean,
                aggregate.at("recovery_s").ci95_half, aggregate.at("bus_dropped").mean,
                aggregate.at("refresh_retries").mean,
                aggregate.at("invariants_ok").min >= 1.0 ? "ok" : "FAIL");
  }

  std::printf("\nreading: the outage dominates peak divergence; higher loss delays\n");
  std::printf("the cleanup polls, stretching recovery roughly with 1/(1-loss)^2\n");
  std::printf("(both poll legs must survive) rather than collapsing the system.\n\n");

  bench::print_aggregates(sweep.result);
  bench::write_bench_json("fault_recovery", args, spec, sweep.result, sweep.extra);

  // Exit nonzero if any run failed its invariants or lost jobs — this
  // bench doubles as a long-form fault soak.
  for (const auto& [variant, metrics] : sweep.result.aggregates) {
    (void)variant;
    if (metrics.at("invariants_ok").min < 1.0) return 1;
    if (metrics.at("jobs_completed").min <= 0.0) return 1;
  }
  return 0;
}
