// Fault recovery: time-to-reconvergence of the replicated usage views as
// a function of inter-site message loss.
//
// Each run injects a hard ten-minute outage of site1 one third into the
// run, on top of a swept base loss rate. At every sampling tick the bench
// records the worst pairwise relative disagreement between the UMS usage
// views of the fully participating sites; the reconvergence time is how
// long after the outage ends that disagreement takes to drop (and stay)
// below the tolerance. The paper's premise — decentralized exchange
// tolerates degraded networks by serving stale-but-sane data — predicts
// graceful growth with loss, not a cliff.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "common.hpp"
#include "testing/invariants.hpp"

using namespace aequus;

namespace {

// Worst pairwise relative per-leaf disagreement across sites' UMS views.
double view_divergence(testbed::Experiment& experiment) {
  auto& sites = experiment.sites();
  double worst = 0.0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      const auto& leaves_a = sites[i]->aequus().ums().usage_tree().leaves();
      const auto& leaves_b = sites[j]->aequus().ums().usage_tree().leaves();
      const double scale = std::max({sites[i]->aequus().ums().usage_tree().total(),
                                     sites[j]->aequus().ums().usage_tree().total(), 1e-9});
      std::set<std::string> keys;
      for (const auto& [path, amount] : leaves_a) (void)amount, keys.insert(path);
      for (const auto& [path, amount] : leaves_b) (void)amount, keys.insert(path);
      for (const auto& path : keys) {
        const auto it_a = leaves_a.find(path);
        const auto it_b = leaves_b.find(path);
        const double va = it_a != leaves_a.end() ? it_a->second : 0.0;
        const double vb = it_b != leaves_b.end() ? it_b->second : 0.0;
        worst = std::max(worst, std::fabs(va - vb) / scale);
      }
    }
  }
  return worst;
}

struct SweepRow {
  double loss_rate = 0.0;
  double peak_divergence = 0.0;      ///< worst disagreement during the run
  double reconverged_at = -1.0;      ///< first tick after which div stays < tol
  double recovery_seconds = -1.0;    ///< reconverged_at - outage end
  std::uint64_t dropped = 0;
  std::uint64_t retries = 0;         ///< libaequus backoff retries, all sites
  bool invariants_ok = false;
  std::uint64_t completed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner("Fault recovery: reconvergence time vs message loss",
                      "fault-injection harness; extends §IV-A failure analysis");

  const std::size_t jobs = bench::jobs_from_argv(argc, argv, 2000);
  const double tolerance = 0.02;
  const std::vector<double> loss_rates = {0.0, 0.10, 0.25, 0.40};

  std::printf("%zu jobs, 3 sites, 10-minute outage of site1 at t=7200 s,\n", jobs);
  std::printf("reconvergence = max pairwise UMS view divergence < %.0f%%\n\n",
              100.0 * tolerance);

  std::vector<SweepRow> rows;
  for (const double loss : loss_rates) {
    workload::Scenario scenario = workload::baseline_scenario(2012, jobs);
    scenario.cluster_count = 3;
    scenario.hosts_per_cluster = 8;
    bench::rescale_to_capacity(scenario);

    testbed::ExperimentConfig config;
    config.faults.loss_rate = loss;
    config.faults.seed = 1914;
    const net::OutageWindow outage{"site1", 7200.0, 7800.0};
    config.faults.outages.push_back(outage);

    testbed::Experiment experiment(scenario, config);
    testing::InvariantChecker checker(experiment);
    util::Series divergence;
    experiment.add_tick_hook(
        [&](double now) { divergence.add(now, view_divergence(experiment)); });

    std::printf("running loss=%.0f%% ...\n", 100.0 * loss);
    const testbed::ExperimentResult result = experiment.run();
    checker.check_reconvergence();

    SweepRow row;
    row.loss_rate = loss;
    row.dropped = result.bus.dropped_loss + result.bus.dropped_outage;
    row.completed = result.jobs_completed;
    row.invariants_ok = checker.ok();
    for (auto& site : experiment.sites()) {
      row.retries += site->client().stats().refresh_retries;
    }
    // Peak divergence, and the earliest tick after which the divergence
    // never rises above the tolerance again.
    for (std::size_t i = 0; i < divergence.size(); ++i) {
      row.peak_divergence = std::max(row.peak_divergence, divergence.values()[i]);
    }
    for (std::size_t i = divergence.size(); i-- > 0;) {
      if (divergence.values()[i] > tolerance) {
        if (i + 1 < divergence.size()) row.reconverged_at = divergence.times()[i + 1];
        break;
      }
      row.reconverged_at = divergence.times()[i];
    }
    if (row.reconverged_at >= 0.0) {
      row.recovery_seconds = std::max(0.0, row.reconverged_at - outage.end);
    }
    rows.push_back(row);
  }

  std::printf("\n%8s %10s %14s %12s %10s %9s %6s\n", "loss", "peak div", "reconverged",
              "recovery", "dropped", "retries", "inv");
  for (const auto& row : rows) {
    std::printf("%7.0f%% %9.1f%% %12.0f s %10.0f s %10llu %9llu %6s\n",
                100.0 * row.loss_rate, 100.0 * row.peak_divergence, row.reconverged_at,
                row.recovery_seconds, static_cast<unsigned long long>(row.dropped),
                static_cast<unsigned long long>(row.retries),
                row.invariants_ok ? "ok" : "FAIL");
  }

  std::printf("\nreading: the outage dominates peak divergence; higher loss delays\n");
  std::printf("the cleanup polls, stretching recovery roughly with 1/(1-loss)^2\n");
  std::printf("(both poll legs must survive) rather than collapsing the system.\n");

  // Exit nonzero if any run failed its invariants or lost jobs — this
  // bench doubles as a long-form fault soak.
  for (const auto& row : rows) {
    if (!row.invariants_ok || row.completed == 0) return 1;
  }
  return 0;
}
