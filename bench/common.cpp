#include "common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/rng.hpp"

namespace aequus::bench {

std::size_t jobs_from_argv(int argc, char** argv, std::size_t fallback) {
  if (argc > 1) {
    const long parsed = std::strtol(argv[1], nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

workload::Trace raw_year_trace(std::size_t jobs, std::uint64_t seed) {
  const auto model = workload::NationalGridModel::paper_2012();
  workload::GeneratorConfig config;
  config.total_jobs = jobs;
  config.seed = seed;
  // Extra records on top of the regular jobs: tuned so the cleanup removes
  // ~15 % of records carrying ~1.5 % of usage (§IV-1).
  config.admin_job_fraction = 0.150;
  config.zero_duration_fraction = 0.027;
  config.admin_duration_lo = 600.0;
  config.admin_duration_hi = 21600.0;
  return workload::generate_trace(model, config);
}

std::vector<double> subsample(const std::vector<double>& data, std::size_t limit,
                              std::uint64_t seed) {
  if (data.size() <= limit) return data;
  util::Rng rng(seed);
  std::vector<double> out;
  out.reserve(limit);
  // Stride sampling with random phase keeps the subsample spread evenly.
  const double stride = static_cast<double>(data.size()) / static_cast<double>(limit);
  double position = rng.uniform() * stride;
  for (std::size_t i = 0; i < limit; ++i) {
    out.push_back(data[static_cast<std::size_t>(position) % data.size()]);
    position += stride;
  }
  return out;
}

std::vector<std::vector<double>> split_u65_phases(const std::vector<double>& arrivals,
                                                  double window_seconds) {
  std::vector<std::vector<double>> phases(4);
  for (double t : arrivals) {
    auto index = static_cast<std::size_t>(t / (window_seconds / 4.0));
    if (index > 3) index = 3;
    phases[index].push_back(t);
  }
  return phases;
}

long whole_seconds(double seconds) {
  return std::lround(seconds);
}

void rescale_to_capacity(workload::Scenario& scenario) {
  const double target = scenario.target_load * scenario.capacity_core_seconds();
  const double current = scenario.trace.total_usage();
  if (current <= 0.0) return;
  for (auto& record : scenario.trace.records()) record.duration *= target / current;
}

testbed::ExperimentResult run_scenario(const workload::Scenario& scenario,
                                       testbed::ExperimentConfig config) {
  testbed::Experiment experiment(scenario, std::move(config));
  return experiment.run();
}

void print_banner(const std::string& title, const std::string& paper_reference) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_reference.c_str());
  std::printf("================================================================\n\n");
}

}  // namespace aequus::bench
