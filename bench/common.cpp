#include "common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "json/json.hpp"
#include "obs/span_analysis.hpp"
#include "obs/trace.hpp"
#include "testing/determinism.hpp"
#include "util/rng.hpp"

namespace aequus::bench {

std::size_t jobs_from_argv(int argc, char** argv, std::size_t fallback) {
  if (argc > 1) {
    const long parsed = std::strtol(argv[1], nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

BenchArgs parse_bench_args(int argc, char** argv, std::size_t fallback_jobs,
                           std::size_t fallback_replications) {
  BenchArgs args;
  args.jobs = fallback_jobs;
  args.replications = fallback_replications;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : "0"; };
    if (std::strcmp(arg, "--threads") == 0) {
      args.threads = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (std::strcmp(arg, "--reps") == 0) {
      const long parsed = std::strtol(value(), nullptr, 10);
      if (parsed > 0) args.replications = static_cast<std::size_t>(parsed);
    } else if (std::strcmp(arg, "--seed") == 0) {
      args.root_seed = std::strtoull(value(), nullptr, 0);
    } else if (std::strcmp(arg, "--json-dir") == 0) {
      args.json_dir = value();
    } else if (std::strcmp(arg, "--no-serial-reference") == 0) {
      args.serial_reference = false;
    } else if (std::strcmp(arg, "--trace") == 0) {
      args.trace_path = value();
    } else if (std::strcmp(arg, "--trace-cap") == 0) {
      args.trace_cap = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(arg, "--metrics") == 0) {
      args.metrics_path = value();
    } else if (arg[0] != '-') {
      const long parsed = std::strtol(arg, nullptr, 10);
      if (parsed > 0) args.jobs = static_cast<std::size_t>(parsed);
    } else {
      std::fprintf(stderr, "warning: unknown option '%s' ignored\n", arg);
    }
  }
  return args;
}

testbed::SweepSpec make_sweep(std::vector<testbed::SweepVariant> variants,
                              const BenchArgs& args) {
  testbed::SweepSpec spec;
  spec.variants = std::move(variants);
  spec.replications = args.replications > 0 ? args.replications : 1;
  spec.root_seed = args.root_seed;
  spec.threads = args.threads;
  testing::attach_fingerprints(spec);
  if (!args.trace_path.empty()) {
    // Trace each variant's first replication (tasks are variant-major, so
    // that is task_index % replications == 0); tracing every replication
    // would multiply the buffers for no analytical gain. The ring cap
    // bounds memory on long runs — evictions show up as
    // trace.dropped_events and as unmatched ends in the analysis.
    const std::size_t replications = spec.replications;
    const std::size_t cap = args.trace_cap;
    spec.on_setup = [replications, cap](testbed::Experiment& experiment,
                                        std::size_t task_index) {
      if (task_index % replications == 0) {
        experiment.tracer().set_capacity(cap);
        experiment.tracer().enable();
      }
    };
  }
  return spec;
}

SweepRun run_sweep_with_reference(const testbed::SweepSpec& spec, const BenchArgs& args) {
  SweepRun run;
  const int threads = testbed::resolve_thread_count(spec.threads);
  std::printf("sweep: %zu variant(s) x %zu replication(s) on %d thread(s)...\n",
              spec.variants.size(), spec.replications, threads);
  run.result = testbed::run_sweep(spec);
  std::printf("sweep done in %.2f s wall\n", run.result.wall_seconds);
  if (args.serial_reference && run.result.threads_used > 1) {
    testbed::SweepSpec serial = spec;
    serial.threads = 1;
    serial.keep_results = false;  // the reference only contributes wall time
    std::printf("serial reference sweep (--threads 1)...\n");
    const testbed::SweepResult reference = testbed::run_sweep(serial);
    std::printf("serial reference done in %.2f s wall\n", reference.wall_seconds);
    run.extra["serial_wall_seconds"] = reference.wall_seconds;
    if (run.result.wall_seconds > 0.0) {
      run.extra["speedup_vs_serial"] = reference.wall_seconds / run.result.wall_seconds;
      std::printf("speedup vs serial at %d threads: %.2fx\n\n", run.result.threads_used,
                  run.extra["speedup_vs_serial"]);
    }
  }
  return run;
}

void report_observability(const BenchArgs& args, const testbed::SweepResult& result) {
  if (!args.trace_path.empty()) {
    const auto traced = std::find_if(result.tasks.begin(), result.tasks.end(),
                                     [](const auto& task) { return !task.result.trace.empty(); });
    if (traced == result.tasks.end()) {
      std::fprintf(stderr, "warning: no trace events collected (keep_results off?)\n");
    } else {
      std::ofstream out(args.trace_path);
      if (!out) {
        std::fprintf(stderr, "warning: cannot write %s\n", args.trace_path.c_str());
      } else {
        obs::write_jsonl(out, traced->result.trace);
        std::printf("wrote %zu trace events to %s\n", traced->result.trace.size(),
                    args.trace_path.c_str());
      }
    }
  }
  if (!args.metrics_path.empty()) {
    json::Object snapshots;
    for (const auto& [variant, snapshot] : result.obs) {
      snapshots[variant] = snapshot.to_json();
    }
    json::Object dump;
    dump["schema"] = "aequus-metrics-dump-v1";
    dump["source"] = "bench";
    dump["snapshots"] = json::Value(std::move(snapshots));
    const json::Value document = json::Value(std::move(dump));
    if (args.metrics_path == "-") {
      std::printf("%s\n", document.pretty().c_str());
    } else {
      std::ofstream out(args.metrics_path);
      if (!out) {
        std::fprintf(stderr, "warning: cannot write %s\n", args.metrics_path.c_str());
      } else {
        out << document.pretty() << "\n";
        // Keep the human-readable table when the JSON goes to a file.
        for (const auto& [variant, snapshot] : result.obs) {
          std::printf("metrics %s:\n", variant.c_str());
          for (const auto& [key, value] : snapshot.counters) {
            std::printf("  %-40s %llu\n", key.c_str(), static_cast<unsigned long long>(value));
          }
          for (const auto& [key, gauge] : snapshot.gauges) {
            std::printf("  %-40s last=%.6g mean=%.6g (n=%llu)\n", key.c_str(), gauge.last,
                        gauge.mean(), static_cast<unsigned long long>(gauge.samples));
          }
          for (const auto& [key, histogram] : snapshot.histograms) {
            std::printf("  %-40s n=%llu mean=%.6g [%.6g, %.6g]\n", key.c_str(),
                        static_cast<unsigned long long>(histogram.count), histogram.mean(),
                        histogram.min, histogram.max);
          }
        }
        std::printf("metrics dump written to %s\n\n", args.metrics_path.c_str());
      }
    }
  }
}

std::map<std::string, double> report_trace_analysis(const BenchArgs& args,
                                                    const testbed::SweepSpec& spec,
                                                    const testbed::SweepResult& result) {
  std::map<std::string, double> extra;
  if (args.trace_path.empty()) return extra;
  for (std::size_t variant_index = 0; variant_index < spec.variants.size(); ++variant_index) {
    const std::string& variant = spec.variants[variant_index].name;
    const testbed::SweepTaskResult* traced = nullptr;
    for (const auto* task : result.tasks_of(variant_index)) {
      if (!task->result.trace.empty()) {
        traced = task;
        break;
      }
    }
    if (traced == nullptr) continue;
    const obs::TraceAnalysis analysis = obs::analyze_spans(traced->result.trace);
    std::printf("per-hop delay decomposition, variant %s (replication %zu, %zu spans):\n",
                variant.c_str(), traced->replication, analysis.spans.size());
    std::size_t complete_chains = 0;
    for (const auto& [chain, stats] : analysis.chains) {
      complete_chains += stats.complete;
      if (stats.complete == 0 && stats.broken == 0) continue;
      std::printf("  chain %-20s %7zu complete %5zu broken   mean %10.4f s\n", chain.c_str(),
                  stats.complete, stats.broken, stats.mean_duration());
      double hop_sum = 0.0;
      for (const auto& [hop, self] : stats.hop_self_time) {
        hop_sum += self;
        const double share =
            stats.total_duration > 0.0 ? 100.0 * self / stats.total_duration : 0.0;
        std::printf("    %-24s %7zu spans  %12.4f s self  %5.1f%%\n", hop.c_str(),
                    stats.hop_spans.count(hop) ? stats.hop_spans.at(hop) : 0, self, share);
      }
      // Strict-partition identity: the hop rows repartition the summed
      // complete-chain durations, so they must add back up (within float
      // accumulation error). A violation means the analyzer and tracer
      // disagree about the span tree — worth shouting about.
      const double tolerance = 1e-6 * std::max(1.0, stats.total_duration);
      if (std::fabs(hop_sum - stats.total_duration) > tolerance) {
        std::fprintf(stderr,
                     "warning: variant %s chain %s: hop self times sum to %.9f s "
                     "but complete chains total %.9f s\n",
                     variant.c_str(), chain.c_str(), hop_sum, stats.total_duration);
      }
      extra["trace." + variant + "." + chain + ".mean_s"] = stats.mean_duration();
    }
    if (analysis.orphan_spans > 0 || analysis.retry_storms > 0 ||
        analysis.duplicate_ends > 0 || analysis.unmatched_ends > 0) {
      std::printf("  anomalies: %zu orphan spans, %zu retry storms, %zu duplicate ends, "
                  "%zu unmatched ends\n",
                  analysis.orphan_spans, analysis.retry_storms, analysis.duplicate_ends,
                  analysis.unmatched_ends);
    }
    extra["trace." + variant + ".complete_chains"] = static_cast<double>(complete_chains);
    extra["trace." + variant + ".broken_chains"] = static_cast<double>(analysis.broken_chains);
    extra["trace." + variant + ".dropped_events"] =
        static_cast<double>(traced->obs.counter("trace.dropped_events"));
  }
  if (!extra.empty()) std::printf("\n");
  return extra;
}

void print_aggregates(const testbed::SweepResult& result) {
  for (const auto& [variant, metrics] : result.aggregates) {
    std::printf("variant %s (n=%zu):\n", variant.c_str(),
                metrics.empty() ? 0 : metrics.begin()->second.count);
    for (const auto& [metric, summary] : metrics) {
      std::printf("  %-24s %12.4f +- %-10.4f [%.4f, %.4f]\n", metric.c_str(), summary.mean,
                  summary.ci95_half, summary.min, summary.max);
    }
  }
  std::printf("\n");
}

void write_bench_json(const std::string& bench_name, const BenchArgs& args,
                      const testbed::SweepSpec& spec, const testbed::SweepResult& result,
                      const std::map<std::string, double>& extra) {
  json::Object root;
  root["bench"] = bench_name;
  root["schema_version"] = 1;
  root["jobs"] = args.jobs;
  root["threads"] = result.threads_used;
  root["replications"] = spec.replications;
  root["root_seed"] = util::format("0x%llx", static_cast<unsigned long long>(spec.root_seed));
  root["wall_seconds"] = result.wall_seconds;

  json::Object extras;
  for (const auto& [key, value] : extra) extras[key] = value;
  root["extra"] = json::Value(std::move(extras));

  json::Object variants;
  for (const auto& [variant, metrics] : result.aggregates) {
    json::Object metric_obj;
    for (const auto& [metric, summary] : metrics) {
      json::Object s;
      s["count"] = summary.count;
      s["mean"] = summary.mean;
      s["stddev"] = summary.stddev;
      s["ci95_half"] = summary.ci95_half;
      s["min"] = summary.min;
      s["max"] = summary.max;
      metric_obj[metric] = json::Value(std::move(s));
    }
    json::Object variant_obj;
    variant_obj["metrics"] = json::Value(std::move(metric_obj));
    // Merged metrics snapshot, histogram bucket layouts included — the
    // source of truth tools/trace_analyze --report and bench_gate.py read
    // histogram bounds from.
    const auto obs_it = result.obs.find(variant);
    if (obs_it != result.obs.end() && !obs_it->second.empty()) {
      variant_obj["obs"] = obs_it->second.to_json();
    }
    variants[variant] = json::Value(std::move(variant_obj));
  }
  root["variants"] = json::Value(std::move(variants));

  json::Array tasks;
  for (const auto& task : result.tasks) {
    json::Object t;
    t["variant"] = spec.variants[task.variant_index].name;
    t["replication"] = task.replication;
    t["seed"] = util::format("0x%llx", static_cast<unsigned long long>(task.seed));
    t["wall_seconds"] = task.wall_seconds;
    if (!task.fingerprint.empty()) {
      t["fingerprint_hash"] = util::format(
          "0x%016llx", static_cast<unsigned long long>(util::fnv1a64(task.fingerprint)));
    }
    tasks.push_back(json::Value(std::move(t)));
  }
  root["tasks"] = json::Value(std::move(tasks));

  const std::string path = args.json_dir + "/BENCH_" + bench_name + ".json";
  std::error_code ec;
  std::filesystem::create_directories(args.json_dir, ec);  // best effort; open reports failure
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << json::Value(std::move(root)).pretty() << "\n";
  std::printf("wrote %s\n", path.c_str());
}

workload::Trace raw_year_trace(std::size_t jobs, std::uint64_t seed) {
  const auto model = workload::NationalGridModel::paper_2012();
  workload::GeneratorConfig config;
  config.total_jobs = jobs;
  config.seed = seed;
  // Extra records on top of the regular jobs: tuned so the cleanup removes
  // ~15 % of records carrying ~1.5 % of usage (§IV-1).
  config.admin_job_fraction = 0.150;
  config.zero_duration_fraction = 0.027;
  config.admin_duration_lo = 600.0;
  config.admin_duration_hi = 21600.0;
  return workload::generate_trace(model, config);
}

std::vector<double> subsample(const std::vector<double>& data, std::size_t limit,
                              std::uint64_t seed) {
  if (data.size() <= limit) return data;
  util::Rng rng(seed);
  std::vector<double> out;
  out.reserve(limit);
  // Stride sampling with random phase keeps the subsample spread evenly.
  const double stride = static_cast<double>(data.size()) / static_cast<double>(limit);
  double position = rng.uniform() * stride;
  for (std::size_t i = 0; i < limit; ++i) {
    out.push_back(data[static_cast<std::size_t>(position) % data.size()]);
    position += stride;
  }
  return out;
}

std::vector<std::vector<double>> split_u65_phases(const std::vector<double>& arrivals,
                                                  double window_seconds) {
  std::vector<std::vector<double>> phases(4);
  for (double t : arrivals) {
    auto index = static_cast<std::size_t>(t / (window_seconds / 4.0));
    if (index > 3) index = 3;
    phases[index].push_back(t);
  }
  return phases;
}

long whole_seconds(double seconds) {
  return std::lround(seconds);
}

void rescale_to_capacity(workload::Scenario& scenario) {
  const double target = scenario.target_load * scenario.capacity_core_seconds();
  const double current = scenario.trace.total_usage();
  if (current <= 0.0) return;
  for (auto& record : scenario.trace.records()) record.duration *= target / current;
}

testbed::ExperimentResult run_scenario(const workload::Scenario& scenario,
                                       testbed::ExperimentConfig config) {
  testbed::Experiment experiment(scenario, std::move(config));
  return experiment.run();
}

void print_banner(const std::string& title, const std::string& paper_reference) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_reference.c_str());
  std::printf("================================================================\n\n");
}

}  // namespace aequus::bench
