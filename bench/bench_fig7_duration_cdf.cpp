// Figure 7: "The empirical CDF of the job sizes for each user... the job
// size distributions for users U65, U3, and Uoth are focused in the
// [0, 6e5] range, while U30 exhibits a larger tail and generally exhibits
// larger job sizes."
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "util/timeseries.hpp"

using namespace aequus;

int main(int argc, char** argv) {
  bench::print_banner("Figure 7: job duration empirical CDFs per user",
                      "Espling et al., IPPS'14, Figure 7 / Section IV-3");

  const std::size_t jobs = bench::jobs_from_argv(argc, argv, bench::kYearTraceJobs);
  const workload::Trace raw = bench::raw_year_trace(jobs);
  const auto [trace, report] = workload::filter_for_modeling(raw);
  (void)report;

  util::SeriesSet overlay;
  std::printf("per-user duration statistics:\n");
  double u30_q90 = 0.0;
  double others_max_q90 = 0.0;
  for (const auto* user :
       {workload::kU65, workload::kU30, workload::kU3, workload::kUoth}) {
    auto durations = trace.durations(user);
    const stats::EmpiricalCdf ecdf(durations);
    constexpr int kPoints = 120;
    constexpr double kRange = 6.0e5;  // the paper's plotted x-range
    for (int i = 0; i <= kPoints; ++i) {
      const double x = kRange * i / kPoints;
      overlay.series(user).add(x, ecdf(x));
    }
    const double q50 = stats::median(durations);
    const double q90 = stats::quantile(durations, 0.9);
    const double mass_in_range = ecdf(kRange);
    std::printf("  %-5s median %9.0f s  p90 %10.0f s  mass in [0, 6e5]: %.3f\n", user, q50,
                q90, mass_in_range);
    if (std::string(user) == workload::kU30) u30_q90 = q90;
    else others_max_q90 = std::max(others_max_q90, q90);
  }
  std::printf("\n%s\n",
              overlay.render_chart("duration CDFs over [0, 6e5] s", 100, 14, 0.0, 1.0)
                  .c_str());

  std::printf("shape check — U30 has the largest tail (p90 %.0f s vs max %.0f s of the\n"
              "others): %s\n",
              u30_q90, others_max_q90, u30_q90 > others_max_q90 ? "yes" : "NO");
  return 0;
}
