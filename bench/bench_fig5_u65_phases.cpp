// Figure 5: "Probability density of job arrival as a function of time...
// Shown is the empirical job arrival and the constructed job arrival
// function for U65. Dashed lines delimiter the identified phases 1 to 4."
//
// The bench partitions U65 arrivals into the four quarterly phases, fits
// a GEV per phase, composes Equation (1), and overlays empirical density
// with the model density.
#include <cstdio>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "stats/fit.hpp"
#include "stats/ks.hpp"
#include "stats/mixture.hpp"
#include "util/timeseries.hpp"

using namespace aequus;

int main(int argc, char** argv) {
  bench::print_banner("Figure 5: U65 four-phase arrival model (Eq. 1)",
                      "Espling et al., IPPS'14, Figure 5 / Section IV-2");

  const std::size_t jobs = bench::jobs_from_argv(argc, argv, bench::kYearTraceJobs);
  const workload::Trace raw = bench::raw_year_trace(jobs);
  const auto [trace, report] = workload::filter_for_modeling(raw);
  (void)report;

  const auto arrivals = trace.arrival_times(workload::kU65);
  const auto phases = bench::split_u65_phases(arrivals, workload::kYearSeconds);

  std::vector<stats::Mixture::Component> components;
  std::printf("per-phase GEV fits (phases delimited at quarter boundaries):\n");
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const auto sample = bench::subsample(phases[p], bench::kFitSubsample);
    stats::FitResult fit = stats::fit_mle(stats::Family::kGev, sample);
    if (!fit.ok()) {
      std::fprintf(stderr, "phase %zu fit failed\n", p + 1);
      return 1;
    }
    const stats::KsResult ks = stats::ks_test(phases[p], *fit.distribution);
    const double weight =
        static_cast<double>(phases[p].size()) / static_cast<double>(arrivals.size());
    std::printf("  p%zu: %-45s weight %.3f  KS %.2f\n", p + 1,
                fit.distribution->describe().c_str(), weight, ks.statistic);
    components.push_back({std::move(fit.distribution), weight});
  }
  const stats::Mixture composite(std::move(components));
  const stats::KsResult composite_ks = stats::ks_test(arrivals, composite);
  std::printf("  composite (Eq. 1): KS %.2f (paper: 0.02)\n\n", composite_ks.statistic);

  // Overlay: empirical daily density vs model density.
  constexpr std::size_t kDays = 365;
  stats::Histogram empirical(0.0, workload::kYearSeconds, kDays);
  for (double t : arrivals) empirical.add(t);
  const auto density = empirical.density();

  util::SeriesSet overlay;
  for (std::size_t day = 0; day < kDays; ++day) {
    const double t = empirical.bin_center(day);
    overlay.series("empirical").add(t, density[day]);
    overlay.series("model(Eq.1)").add(t, composite.pdf(t));
  }
  std::printf("%s\n",
              overlay.render_chart("U65 arrival probability density (1-day bins)", 100, 16)
                  .c_str());
  std::printf("phase boundaries (dashed lines in the paper) at days 91, 182, 274.\n");
  return 0;
}
